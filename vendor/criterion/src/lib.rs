//! Offline minimal benchmark harness exposing the subset of the
//! criterion API this workspace's benches use: [`Criterion`],
//! [`Bencher::iter`], benchmark groups, [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Timings are wall-clock medians over a small number of batches —
//! adequate for relative, local comparisons; not a statistical
//! replacement for real criterion.

use std::fmt;
use std::hint;
use std::time::Instant;

/// Opaque identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Prevents the compiler from optimizing away a computed value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Runs closures and reports wall-clock timings.
pub struct Bencher {
    batches: u32,
}

impl Bencher {
    /// Times `f`, printing the median per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the iteration count until a batch takes >=1 ms.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed.as_millis() >= 1 || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        let mut samples: Vec<f64> = Vec::with_capacity(self.batches as usize);
        for _ in 0..self.batches {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed().as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        println!(
            "    median {:>12.3} us/iter ({iters} iters/batch)",
            median * 1e6
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.clamp(3, 100) as u32;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        println!("  {}/{}", self.name, id);
        let mut b = Bencher {
            batches: self.parent.sample_size.min(7),
        };
        f(&mut b);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        println!("  {}/{}", self.name, id);
        let mut b = Bencher {
            batches: self.parent.sample_size.min(7),
        };
        f(&mut b, input);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 5 }
    }
}

impl Criterion {
    /// Benchmarks `f` under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        println!("  {name}");
        let mut b = Bencher {
            batches: self.sample_size.min(7),
        };
        f(&mut b);
        self
    }

    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            parent: self,
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $(
                println!("group {}::{}", stringify!($group), stringify!($target));
                $target(&mut c);
            )+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
