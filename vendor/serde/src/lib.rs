//! Offline placeholder for `serde`.
//!
//! The workspace declares `serde` as an *optional* dependency behind a
//! per-crate `serde` cargo feature that nothing in this offline build
//! enables. This placeholder exists only so dependency resolution
//! succeeds without network access. It intentionally provides no derive
//! macros; enabling any crate's `serde` feature in this environment is
//! unsupported and will fail to compile, which is the honest outcome.

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
