//! Offline vendored subset of the `rand` crate API.
//!
//! The build environment for this workspace has no network access to
//! crates.io, so this crate provides the (small) slice of `rand` the
//! workspace actually uses, implemented from scratch:
//!
//! * [`RngCore`] / [`SeedableRng`] traits with the upstream signatures,
//! * an [`Rng`] extension trait with `gen`, `gen_range`,
//! * [`rngs::StdRng`]: a deterministic, seedable generator
//!   (xoshiro256** state seeded through SplitMix64).
//!
//! The exact output stream differs from upstream `rand`'s `StdRng`
//! (ChaCha12); every consumer in this workspace only relies on the
//! stream being deterministic, well distributed, and stable across
//! runs, which this implementation guarantees.

#![forbid(unsafe_code)]

use std::fmt;

/// Error type for fallible RNG operations (never produced by the
/// generators in this crate; kept for API compatibility).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure (infallible
    /// here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (SplitMix64 expansion, as
    /// recommended by the xoshiro authors).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from an RNG (the subset of
/// `rand`'s `Standard` distribution this workspace uses).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Lemire-style rejection for an unbiased draw.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample_from(rng)
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_from(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{Error, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Not the same stream as upstream `rand::rngs::StdRng` (ChaCha12),
    /// but deterministic, seedable, and statistically strong, which is
    /// all the simulators require.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let x = self.next_u64().to_le_bytes();
                for (b, s) in chunk.iter_mut().zip(x) {
                    *b = s;
                }
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let i = rng.gen_range(0..7usize);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
