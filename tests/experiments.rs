//! Integration tests of the experiment drivers and the scorecard —
//! the programmatic forms of the paper's studies.

use wcs::evaluate::Evaluator;
use wcs::platforms::PlatformId;
use wcs::workloads::WorkloadId;
use wcs_core::experiments::{cpu_study, memory_study, run_disk_study, unified_study};
use wcs_core::validate::run_scorecard;

#[test]
fn cpu_study_matches_figure2_shape() {
    let eval = Evaluator::quick();
    let study = cpu_study(&eval).expect("all platforms feasible");
    // ytube is nearly flat across the consumer platforms...
    for p in [PlatformId::Srvr2, PlatformId::Desk, PlatformId::Emb1] {
        let r = study.relative_perf(p, WorkloadId::Ytube).unwrap();
        assert!(r > 0.85, "{p}: ytube {r}");
    }
    // ...while webmail collapses down the ladder.
    let srvr2 = study
        .relative_perf(PlatformId::Srvr2, WorkloadId::Webmail)
        .unwrap();
    let emb1 = study
        .relative_perf(PlatformId::Emb1, WorkloadId::Webmail)
        .unwrap();
    assert!(srvr2 > 3.0 * emb1, "webmail ladder: {srvr2} vs {emb1}");
}

#[test]
fn memory_study_matches_figure4_shape() {
    let m = memory_study(0.25);
    let (ws_pcie, ws_cbf) = &m[&WorkloadId::Websearch];
    // websearch is the most affected workload, in the paper and here.
    for (id, (pcie, _)) in &m {
        if *id != WorkloadId::Websearch {
            assert!(
                pcie.slowdown < ws_pcie.slowdown,
                "{id} should slow less than websearch"
            );
        }
    }
    // CBF divides the slowdown by roughly the latency ratio (~3.9).
    let ratio = ws_pcie.slowdown / ws_cbf.slowdown;
    assert!((3.0..=5.0).contains(&ratio), "CBF ratio {ratio}");
}

#[test]
fn disk_study_matches_table3_shape() {
    let rows = run_disk_study(&wcs::workloads::perf::MeasureConfig::quick());
    assert_eq!(rows.len(), 4);
    // Flash beats the bare laptop on every metric.
    assert!(rows[2].perf > rows[1].perf);
    assert!(rows[2].perf_per_tco > rows[1].perf_per_tco);
    assert!(rows[2].perf_per_watt > rows[1].perf_per_watt);
    // Laptop-2 with flash is the overall winner.
    let best = rows.iter().map(|r| r.perf_per_tco).fold(f64::MIN, f64::max);
    assert!((rows[3].perf_per_tco - best).abs() < 1e-12);
}

#[test]
fn unified_study_matches_figure5_shape() {
    let eval = Evaluator::quick();
    let (n1, n2) = unified_study(&eval, PlatformId::Srvr1).expect("designs evaluate");
    assert!(n1.hmean(|r| r.perf_per_tco) > 1.3);
    assert!(n2.hmean(|r| r.perf_per_tco) > n1.hmean(|r| r.perf_per_tco));
    // Against desk, the text's 1.7x-2.5x band for ytube/mapreduce.
    let (_, n2_desk) = unified_study(&eval, PlatformId::Desk).expect("evaluates");
    let ytube = n2_desk
        .rows
        .iter()
        .find(|r| r.workload == WorkloadId::Ytube)
        .unwrap();
    assert!(
        ytube.perf_per_tco > 1.5,
        "ytube vs desk {}",
        ytube.perf_per_tco
    );
}

#[test]
fn full_scorecard_is_green() {
    let card = run_scorecard(&Evaluator::quick());
    let failures: Vec<String> = card
        .checks
        .iter()
        .filter(|c| !c.pass())
        .map(|c| {
            format!(
                "{} {}: {:.3} vs {:.3}",
                c.anchor, c.what, c.measured, c.paper
            )
        })
        .collect();
    assert!(failures.is_empty(), "failing checks: {failures:?}");
}
