//! Property-based tests over the extension substrates: FTL, blade
//! directory, link contention, diurnal curves, time series, batch means.
//!
//! Like `properties.rs`, these use a deterministic fixed-seed case
//! generator instead of `proptest` (unavailable in the offline build).

use wcs::flashcache::ftl::Ftl;
use wcs::memshare::contention::SharedLink;
use wcs::memshare::directory::{BladeDirectory, ServerId};
use wcs::memshare::link::RemoteLink;
use wcs::simcore::batchmeans::batch_means_ci;
use wcs::simcore::timeseries::TimeSeries;
use wcs::simcore::{SimDuration, SimRng, SimTime};
use wcs::workloads::diurnal::DiurnalCurve;
use wcs::workloads::mix::WorkloadMix;
use wcs::workloads::WorkloadId;

const CASES: usize = 48;

/// The FTL's logical/physical maps stay mutually consistent under any
/// write pattern, and write amplification never drops below 1.
#[test]
fn ftl_consistent_under_any_writes() {
    let mut rng = SimRng::seed_from(0xF71);
    for _ in 0..16 {
        let n_writes = 1 + rng.index(1999);
        let mut ftl = Ftl::new(8, 64, 0.25);
        let n = ftl.logical_pages();
        for _ in 0..n_writes {
            let w = (rng.next_u64() % 400) as u32;
            ftl.write(w % n);
        }
        assert!(ftl.check_consistency());
        assert!(ftl.write_amplification() >= 1.0);
        assert!(ftl.healthy(u32::MAX));
    }
}

/// The blade directory never hands the same physical page to two owners
/// and never exceeds per-server limits.
#[test]
fn directory_never_double_allocates() {
    let mut rng = SimRng::seed_from(0xD12);
    for _ in 0..CASES {
        let n_ops = 1 + rng.index(399);
        let mut dir = BladeDirectory::new(128);
        for s in 0..4 {
            dir.register(ServerId(s), 32).unwrap();
        }
        let mut owned: std::collections::HashMap<u64, ServerId> = Default::default();
        for _ in 0..n_ops {
            let s = (rng.next_u64() % 4) as u32;
            let v = rng.next_u64() % 64;
            let server = ServerId(s);
            match dir.map_page(server, v) {
                Ok(phys) => {
                    if let Some(prev) = owned.insert(phys, server) {
                        assert_eq!(prev, server, "physical page reassigned while owned");
                    }
                    assert!(dir.check_access(server, phys).is_ok());
                    // Nobody else may touch it.
                    let other = ServerId((s + 1) % 4);
                    assert!(dir.check_access(other, phys).is_err());
                }
                Err(_) => {
                    assert!(dir.used_pages(server) <= 32);
                }
            }
            assert!(dir.used_pages(server) <= 32);
        }
    }
}

/// Link queueing delay is monotone in both fault rate and server count,
/// and zero at zero load.
#[test]
fn contention_monotone() {
    let mut rng = SimRng::seed_from(0xC09);
    for _ in 0..CASES {
        let rate = rng.uniform_range(0.0, 5000.0);
        let extra = rng.uniform_range(1.0, 5000.0);
        let servers = 1 + (rng.next_u64() % 15) as u32;
        let few = SharedLink::new(RemoteLink::pcie_x4(), servers);
        let more = SharedLink::new(RemoteLink::pcie_x4(), servers + 1);
        assert_eq!(few.queueing_delay_secs(0.0), 0.0);
        let d1 = few.queueing_delay_secs(rate);
        let d2 = few.queueing_delay_secs(rate + extra);
        assert!(d2 >= d1);
        if d1.is_finite() {
            assert!(more.queueing_delay_secs(rate) >= d1);
        }
    }
}

/// Diurnal load stays within [trough, 1] everywhere and means correctly.
#[test]
fn diurnal_bounds() {
    let mut rng = SimRng::seed_from(0xD10);
    for _ in 0..CASES {
        let trough = rng.uniform_range(0.05, 1.0);
        let peak = rng.uniform_range(0.0, 23.99);
        let hour = rng.uniform_range(0.0, 48.0);
        let c = DiurnalCurve::new(trough, peak);
        let v = c.load_at(hour);
        assert!(v >= trough - 1e-9 && v <= 1.0 + 1e-9, "load {v}");
        assert!((c.mean_load() - (1.0 + trough) / 2.0).abs() < 1e-12);
        assert!((c.load_at(peak) - 1.0).abs() < 1e-9);
    }
}

/// Time-series window totals equal the number of recorded samples.
#[test]
fn timeseries_conserves_counts() {
    let mut rng = SimRng::seed_from(0x75E);
    for _ in 0..CASES {
        let n = 1 + rng.index(299);
        let times: Vec<u64> = (0..n).map(|_| rng.next_u64() % 10_000_000).collect();
        let mut ts = TimeSeries::new(SimDuration::from_micros(100));
        for &t in &times {
            ts.record(SimTime::from_nanos(t), 1.0);
        }
        let total: u64 = ts.windows().iter().map(|w| w.count).sum();
        assert_eq!(total, times.len() as u64);
        let peak = ts.peak_window().unwrap();
        for w in ts.windows() {
            assert!(w.count <= peak.count);
        }
    }
}

/// Batch-means intervals always contain their own grand mean and shrink
/// (weakly) with more batches of iid data.
#[test]
fn batch_means_sane() {
    let mut rng = SimRng::seed_from(0xBA7);
    for _ in 0..CASES {
        let n = 40 + rng.index(360);
        let values: Vec<f64> = (0..n).map(|_| rng.uniform_range(0.0, 100.0)).collect();
        let ci = batch_means_ci(&values, 10).unwrap();
        assert!(ci.contains(ci.mean));
        assert!(ci.half_width >= 0.0);
        let grand = {
            let per = values.len() / 10;
            let used = &values[..per * 10];
            used.iter().sum::<f64>() / used.len() as f64
        };
        assert!((ci.mean - grand).abs() < 1e-9);
    }
}

/// Workload-mix aggregation sits between the min and max member rates
/// and equals the plain value on a uniform vector.
#[test]
fn mix_aggregate_bounded() {
    let mut rng = SimRng::seed_from(0xA88);
    for _ in 0..CASES {
        let vals: Vec<f64> = (0..5).map(|_| rng.uniform_range(0.1, 100.0)).collect();
        let perf: std::collections::BTreeMap<_, _> = WorkloadId::ALL
            .iter()
            .copied()
            .zip(vals.iter().copied())
            .collect();
        let agg = WorkloadMix::uniform().aggregate_perf(&perf).unwrap();
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        assert!(agg >= min - 1e-9 && agg <= max + 1e-9);
    }
}

/// Fleet partitions always sum to the fleet, for any normalized mix.
#[test]
fn mix_partition_conserves_servers() {
    let mut rng = SimRng::seed_from(0x5E2);
    for _ in 0..CASES {
        let w: Vec<f64> = (0..5).map(|_| rng.uniform_range(0.01, 10.0)).collect();
        let servers = 1 + (rng.next_u64() % 4999) as u32;
        let entries: Vec<_> = WorkloadId::ALL
            .iter()
            .copied()
            .zip(w.iter().copied())
            .collect();
        let mix = WorkloadMix::new(&entries);
        let parts = mix.partition_fleet(servers);
        let total: u32 = parts.values().sum();
        assert_eq!(total, servers);
    }
}
