//! Property-based tests over the extension substrates: FTL, blade
//! directory, link contention, diurnal curves, time series, batch means.

use proptest::prelude::*;

use wcs::flashcache::ftl::Ftl;
use wcs::memshare::contention::SharedLink;
use wcs::memshare::directory::{BladeDirectory, ServerId};
use wcs::memshare::link::RemoteLink;
use wcs::simcore::batchmeans::batch_means_ci;
use wcs::simcore::timeseries::TimeSeries;
use wcs::simcore::{SimDuration, SimTime};
use wcs::workloads::diurnal::DiurnalCurve;
use wcs::workloads::mix::WorkloadMix;
use wcs::workloads::WorkloadId;

proptest! {
    /// The FTL's logical/physical maps stay mutually consistent under
    /// any write pattern, and write amplification never drops below 1.
    #[test]
    fn ftl_consistent_under_any_writes(
        writes in prop::collection::vec(0u32..400, 1..2000),
    ) {
        let mut ftl = Ftl::new(8, 64, 0.25);
        let n = ftl.logical_pages();
        for w in writes {
            ftl.write(w % n);
        }
        prop_assert!(ftl.check_consistency());
        prop_assert!(ftl.write_amplification() >= 1.0);
        prop_assert!(ftl.healthy(u32::MAX));
    }

    /// The blade directory never hands the same physical page to two
    /// owners and never exceeds per-server limits.
    #[test]
    fn directory_never_double_allocates(
        ops in prop::collection::vec((0u32..4, 0u64..64), 1..400),
    ) {
        let mut dir = BladeDirectory::new(128);
        for s in 0..4 {
            dir.register(ServerId(s), 32).unwrap();
        }
        let mut owned: std::collections::HashMap<u64, ServerId> = Default::default();
        for (s, v) in ops {
            let server = ServerId(s);
            match dir.map_page(server, v) {
                Ok(phys) => {
                    if let Some(prev) = owned.insert(phys, server) {
                        prop_assert_eq!(prev, server, "physical page reassigned while owned");
                    }
                    prop_assert!(dir.check_access(server, phys).is_ok());
                    // Nobody else may touch it.
                    let other = ServerId((s + 1) % 4);
                    prop_assert!(dir.check_access(other, phys).is_err());
                }
                Err(_) => {
                    prop_assert!(dir.used_pages(server) <= 32);
                }
            }
            prop_assert!(dir.used_pages(server) <= 32);
        }
    }

    /// Link queueing delay is monotone in both fault rate and server
    /// count, and zero at zero load.
    #[test]
    fn contention_monotone(
        rate in 0.0f64..5000.0,
        extra in 1.0f64..5000.0,
        servers in 1u32..16,
    ) {
        let few = SharedLink::new(RemoteLink::pcie_x4(), servers);
        let more = SharedLink::new(RemoteLink::pcie_x4(), servers + 1);
        prop_assert_eq!(few.queueing_delay_secs(0.0), 0.0);
        let d1 = few.queueing_delay_secs(rate);
        let d2 = few.queueing_delay_secs(rate + extra);
        prop_assert!(d2 >= d1);
        if d1.is_finite() {
            prop_assert!(more.queueing_delay_secs(rate) >= d1);
        }
    }

    /// Diurnal load stays within [trough, 1] everywhere and means
    /// correctly.
    #[test]
    fn diurnal_bounds(trough in 0.05f64..1.0, peak in 0.0f64..23.99, hour in 0.0f64..48.0) {
        let c = DiurnalCurve::new(trough, peak);
        let v = c.load_at(hour);
        prop_assert!(v >= trough - 1e-9 && v <= 1.0 + 1e-9, "load {v}");
        prop_assert!((c.mean_load() - (1.0 + trough) / 2.0).abs() < 1e-12);
        prop_assert!((c.load_at(peak) - 1.0).abs() < 1e-9);
    }

    /// Time-series window totals equal the number of recorded samples.
    #[test]
    fn timeseries_conserves_counts(
        times in prop::collection::vec(0u64..10_000_000u64, 1..300),
    ) {
        let mut ts = TimeSeries::new(SimDuration::from_micros(100));
        for &t in &times {
            ts.record(SimTime::from_nanos(t), 1.0);
        }
        let total: u64 = ts.windows().iter().map(|w| w.count).sum();
        prop_assert_eq!(total, times.len() as u64);
        let peak = ts.peak_window().unwrap();
        for w in ts.windows() {
            prop_assert!(w.count <= peak.count);
        }
    }

    /// Batch-means intervals always contain their own grand mean and
    /// shrink (weakly) with more batches of iid data.
    #[test]
    fn batch_means_sane(values in prop::collection::vec(0.0f64..100.0, 40..400)) {
        let ci = batch_means_ci(&values, 10).unwrap();
        prop_assert!(ci.contains(ci.mean));
        prop_assert!(ci.half_width >= 0.0);
        let grand = {
            let per = values.len() / 10;
            let used = &values[..per * 10];
            used.iter().sum::<f64>() / used.len() as f64
        };
        prop_assert!((ci.mean - grand).abs() < 1e-9);
    }

    /// Workload-mix aggregation sits between the min and max member
    /// rates and equals the plain value on a uniform vector.
    #[test]
    fn mix_aggregate_bounded(vals in prop::collection::vec(0.1f64..100.0, 5)) {
        let perf: std::collections::BTreeMap<_, _> =
            WorkloadId::ALL.iter().copied().zip(vals.iter().copied()).collect();
        let agg = WorkloadMix::uniform().aggregate_perf(&perf).unwrap();
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(agg >= min - 1e-9 && agg <= max + 1e-9);
    }

    /// Fleet partitions always sum to the fleet, for any normalized mix.
    #[test]
    fn mix_partition_conserves_servers(
        w in prop::collection::vec(0.01f64..10.0, 5),
        servers in 1u32..5000,
    ) {
        let entries: Vec<_> = WorkloadId::ALL.iter().copied().zip(w.iter().copied()).collect();
        let mix = WorkloadMix::new(&entries);
        let parts = mix.partition_fleet(servers);
        let total: u32 = parts.values().sum();
        prop_assert_eq!(total, servers);
    }
}
