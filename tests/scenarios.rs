//! Cross-crate integration tests of the open scenario API.
//!
//! Two pins matter here. First, a steady-traffic paper scenario must be
//! **byte-identical** to the closed-loop evaluator (`Evaluator::evaluate`)
//! for every suite workload, across worker-thread counts and memo
//! settings — the registry is a new front door, not a new result.
//! Second, the new FaaS and DAG families (and every non-steady traffic
//! pack) must render bit-identically across threads × event-queue kinds
//! × memo on/off, the same determinism contract the rest of the
//! workspace holds.

use wcs::designs::DesignPoint;
use wcs::evaluate::Evaluator;
use wcs::simcore::event::set_default_queue_kind;
use wcs::simcore::QueueKind;
use wcs::workloads::{registry, suite, ScenarioSpec, TrafficPack, WorkloadId};
use wcs::WcsError;

fn evaluator(threads: usize, memo: bool) -> Evaluator {
    Evaluator::builder()
        .quick()
        .threads(threads)
        .expect("positive thread count")
        .memo(memo)
        .build()
        .expect("evaluator builds")
}

#[test]
fn steady_scenarios_pin_the_closed_loop_across_engine_knobs() {
    let design = DesignPoint::baseline_srvr1();
    let reference = Evaluator::quick().evaluate(&design).unwrap();
    for threads in [1usize, 2, 8] {
        for memo in [true, false] {
            let eval = evaluator(threads, memo);
            for id in WorkloadId::ALL {
                let ev = eval
                    .evaluate_scenario(&design, &ScenarioSpec::from_id(id))
                    .unwrap();
                assert_eq!(
                    ev.value.to_bits(),
                    reference.perf[&id].to_bits(),
                    "{id} diverged from the closed loop at threads={threads} memo={memo}"
                );
                assert!(ev.traffic.is_none(), "steady runs render no traffic");
                assert_eq!(
                    format!("{:?}", ev.report),
                    format!("{:?}", reference.report),
                    "BOM pricing diverged at threads={threads} memo={memo}"
                );
            }
        }
    }
}

#[test]
fn new_families_render_identically_across_all_knobs() {
    let design = DesignPoint::n2();
    let slate = [
        ScenarioSpec::steady("faas").with_traffic(TrafficPack::flash_crowd()),
        ScenarioSpec::steady("dag-analytics").with_traffic(TrafficPack::diurnal()),
        ScenarioSpec::steady("webmail").with_traffic(TrafficPack::failover_surge()),
    ];
    let mut reference: Option<(String, String)> = None;
    for threads in [1usize, 2, 8] {
        for kind in QueueKind::ALL {
            set_default_queue_kind(kind);
            for memo in [true, false] {
                let label = format!("threads={threads} queue={} memo={memo}", kind.as_str());
                let evals = evaluator(threads, memo)
                    .evaluate_scenarios(&design, &slate)
                    .unwrap();
                let render = format!("{evals:?}");
                match &reference {
                    None => reference = Some((render, label)),
                    Some((want, base)) => assert_eq!(
                        want, &render,
                        "scenario renders diverged between [{base}] and [{label}]"
                    ),
                }
            }
        }
    }
    set_default_queue_kind(QueueKind::Auto);
}

#[test]
fn unknown_scenarios_list_the_registry() {
    let err = Evaluator::quick()
        .evaluate_scenario(
            &DesignPoint::baseline_srvr1(),
            &ScenarioSpec::steady("no-such-workload"),
        )
        .unwrap_err();
    match err {
        WcsError::UnknownScenario { name, known } => {
            assert_eq!(name, "no-such-workload");
            for want in ["faas", "dag-analytics", "websearch", "mapred-wc"] {
                assert!(known.contains(&want), "{want} missing from {known:?}");
            }
        }
        other => panic!("expected UnknownScenario, got {other:?}"),
    }
}

#[test]
fn registered_workloads_run_end_to_end() {
    // A workload registered at startup evaluates through the same
    // pipeline as the built-in it mirrors — no core changes needed.
    let key = registry::register(
        "integration-custom",
        suite::workload(WorkloadId::Webmail),
        registry::Family::Paper(WorkloadId::Webmail),
    )
    .expect("fresh name registers");
    assert_eq!(key.name(), "integration-custom");

    let eval = Evaluator::quick();
    let design = DesignPoint::baseline_srvr1();
    let custom = eval
        .evaluate_scenario(&design, &ScenarioSpec::steady("integration-custom"))
        .unwrap();
    let builtin = eval
        .evaluate_scenario(&design, &ScenarioSpec::from_id(WorkloadId::Webmail))
        .unwrap();
    assert_eq!(custom.value.to_bits(), builtin.value.to_bits());
    assert_eq!(custom.unit, builtin.unit);
}
