//! End-to-end validation against the paper's published numbers.
//!
//! Each test anchors one table or figure. Tolerances are tight where the
//! paper's inputs are fully published (the cost model) and looser where
//! our substitute simulator stands in for the authors' full-system
//! simulation (the performance grid); EXPERIMENTS.md records the exact
//! residuals.

use wcs::designs::DesignPoint;
use wcs::evaluate::Evaluator;
use wcs::platforms::{catalog, PlatformId};
use wcs::tco::TcoModel;
use wcs::workloads::perf::{measure_perf, MeasureConfig};
use wcs::workloads::{suite, WorkloadId};

/// Figure 1(a): the cost model reproduces the paper's totals exactly.
#[test]
fn figure1_totals() {
    let model = TcoModel::paper_default();
    let r1 = model.server_tco(&catalog::platform(PlatformId::Srvr1));
    assert!(
        (r1.total_usd() - 5758.0).abs() < 2.0,
        "srvr1 {}",
        r1.total_usd()
    );
    assert!((r1.pc_usd() - 2464.0).abs() < 2.0);
    let r2 = model.server_tco(&catalog::platform(PlatformId::Srvr2));
    assert!(
        (r2.total_usd() - 3249.0).abs() < 2.0,
        "srvr2 {}",
        r2.total_usd()
    );
    assert!((r2.pc_usd() - 1561.0).abs() < 2.0);
}

/// Table 2: power and infrastructure cost of all six platforms.
#[test]
fn table2_totals() {
    let expected = [
        (PlatformId::Srvr1, 340.0, 3294.0),
        (PlatformId::Srvr2, 215.0, 1689.0),
        (PlatformId::Desk, 135.0, 849.0),
        (PlatformId::Mobl, 78.0, 989.0),
        (PlatformId::Emb1, 52.0, 499.0),
        (PlatformId::Emb2, 35.0, 379.0),
    ];
    for (id, watt, inf) in expected {
        let p = catalog::platform(id);
        assert!((p.max_power_w() - watt).abs() < 0.51, "{id} power");
        let total = p.hardware_cost_usd() + catalog::switch_share().cost_usd;
        assert!((total - inf).abs() < 1.0, "{id} inf ${total}");
    }
}

/// Figure 2(c): the relative-performance grid. The simulator was
/// calibrated against this grid; the test pins the calibration so later
/// changes can't silently drift. Tolerances reflect the documented
/// residuals (emb2 is systematically underestimated; see EXPERIMENTS.md).
#[test]
fn figure2c_relative_performance() {
    let cfg = MeasureConfig::quick();
    let perf = |w: WorkloadId, p: PlatformId| {
        measure_perf(&suite::workload(w), &catalog::platform(p), &cfg)
            .expect("feasible")
            .value
    };
    // (workload, platform, paper value, tolerance)
    let cases = [
        (WorkloadId::Websearch, PlatformId::Srvr2, 0.68, 0.08),
        (WorkloadId::Websearch, PlatformId::Desk, 0.36, 0.08),
        (WorkloadId::Websearch, PlatformId::Emb1, 0.24, 0.08),
        (WorkloadId::Webmail, PlatformId::Srvr2, 0.48, 0.08),
        (WorkloadId::Webmail, PlatformId::Desk, 0.19, 0.06),
        (WorkloadId::Webmail, PlatformId::Emb1, 0.11, 0.05),
        (WorkloadId::Ytube, PlatformId::Srvr2, 0.97, 0.08),
        (WorkloadId::Ytube, PlatformId::Emb1, 0.86, 0.12),
        (WorkloadId::MapredWc, PlatformId::Srvr2, 0.93, 0.08),
        (WorkloadId::MapredWc, PlatformId::Desk, 0.78, 0.08),
        (WorkloadId::MapredWr, PlatformId::Srvr2, 0.72, 0.10),
        (WorkloadId::MapredWr, PlatformId::Emb1, 0.48, 0.12),
    ];
    for (w, p, paper, tol) in cases {
        let rel = perf(w, p) / perf(w, PlatformId::Srvr1);
        assert!(
            (rel - paper).abs() < tol,
            "{w} on {p}: {rel:.3} vs paper {paper} (tol {tol})"
        );
    }
}

/// Figure 2(c) ordering: emb2 is always the worst performer, and the
/// performance order follows platform capability per workload.
#[test]
fn figure2c_orderings() {
    let cfg = MeasureConfig::quick();
    for w in WorkloadId::ALL {
        let wl = suite::workload(w);
        let vals: Vec<f64> = PlatformId::ALL
            .iter()
            .map(|&p| {
                measure_perf(&wl, &catalog::platform(p), &cfg)
                    .expect("feasible")
                    .value
            })
            .collect();
        // srvr1 best, emb2 worst, for every workload.
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        assert!(vals[0] >= max * 0.99, "{w}: srvr1 must lead");
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        assert!(vals[5] <= min * 1.01, "{w}: emb2 must trail");
    }
}

/// Figure 5: the headline result. N1 and N2 beat srvr1 on mean
/// Perf/TCO-$ by ~1.5x and ~2x; webmail degrades on both; ytube and
/// mapreduce see multi-x gains.
#[test]
fn figure5_headline() {
    let eval = Evaluator::quick();
    let base = eval.evaluate(&DesignPoint::baseline_srvr1()).unwrap();

    let n1 = eval.evaluate(&DesignPoint::n1()).unwrap().compare(&base);
    let n1_tco = n1.hmean(|r| r.perf_per_tco);
    assert!((1.3..=2.2).contains(&n1_tco), "N1 mean Perf/TCO-$ {n1_tco}");

    let n2 = eval.evaluate(&DesignPoint::n2()).unwrap().compare(&base);
    let n2_tco = n2.hmean(|r| r.perf_per_tco);
    assert!((1.8..=3.0).contains(&n2_tco), "N2 mean Perf/TCO-$ {n2_tco}");
    assert!(n2_tco > n1_tco, "N2 must beat N1");

    for cmp in [&n1, &n2] {
        for row in &cmp.rows {
            match row.workload {
                WorkloadId::Webmail => assert!(
                    row.perf_per_tco < 1.1,
                    "webmail should degrade or break even ({:.2})",
                    row.perf_per_tco
                ),
                WorkloadId::Ytube | WorkloadId::MapredWc | WorkloadId::MapredWr => assert!(
                    row.perf_per_tco > 1.8,
                    "{} should win big ({:.2})",
                    row.workload,
                    row.perf_per_tco
                ),
                WorkloadId::Websearch => assert!(
                    row.perf_per_tco > 1.0,
                    "websearch should still win ({:.2})",
                    row.perf_per_tco
                ),
            }
        }
    }
}

/// Section 3.6: against the srvr2 and desk baselines, N2 still delivers
/// roughly 1.8-2x average Perf/TCO-$.
#[test]
fn section36_alternate_baselines() {
    let eval = Evaluator::quick();
    let n2 = eval.evaluate(&DesignPoint::n2()).unwrap();
    for id in [PlatformId::Srvr2, PlatformId::Desk] {
        let base = eval.evaluate(&DesignPoint::baseline(id)).unwrap();
        let tco = n2.compare(&base).hmean(|r| r.perf_per_tco);
        assert!(
            (1.4..=3.2).contains(&tco),
            "N2 vs {id}: mean Perf/TCO-$ {tco}"
        );
    }
}

/// Section 3.2's cost narrative: desk is ~25% of srvr1's hardware cost,
/// emb1 ~15%, and desktop P&C is ~60% lower while emb1 saves ~85%.
#[test]
fn section32_cost_narrative() {
    let model = TcoModel::paper_default();
    let pc = |id| model.server_tco(&catalog::platform(id)).pc_usd();
    let srvr1 = pc(PlatformId::Srvr1);
    let desk_saving = 1.0 - pc(PlatformId::Desk) / srvr1;
    let emb1_saving = 1.0 - pc(PlatformId::Emb1) / srvr1;
    assert!(
        (0.5..0.7).contains(&desk_saving),
        "desk P&C saving {desk_saving}"
    );
    assert!(
        (0.8..0.9).contains(&emb1_saving),
        "emb1 P&C saving {emb1_saving}"
    );
}
