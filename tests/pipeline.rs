//! Cross-crate integration tests of the evaluation pipeline.

use wcs::designs::{CoolingConfig, DesignPoint};
use wcs::evaluate::Evaluator;
use wcs::flashcache::study::StorageScenario;
use wcs::platforms::{Component, PlatformId};
use wcs::workloads::WorkloadId;

#[test]
fn evaluation_is_deterministic() {
    let eval = Evaluator::quick();
    let a = eval.evaluate(&DesignPoint::n2()).unwrap();
    let b = eval.evaluate(&DesignPoint::n2()).unwrap();
    for id in WorkloadId::ALL {
        assert_eq!(a.perf[&id], b.perf[&id], "{id}");
    }
    assert_eq!(a.report.total_usd(), b.report.total_usd());
}

#[test]
fn effective_platform_bom_is_priced() {
    let eval = Evaluator::quick();
    let n2 = DesignPoint::n2();
    let e = eval.evaluate(&n2).unwrap();
    // Every BOM component of the effective platform appears in the
    // report, plus the rack switch line.
    let platform = n2.effective_platform();
    for item in platform.bom() {
        let line = e.report.line(item.component).expect("line present");
        assert!(line.hw_usd >= item.cost_usd - 1e-9);
    }
    assert!(e.report.line(Component::RackSwitch).is_some());
}

#[test]
fn cooling_scale_reduces_pc_not_hw() {
    let eval = Evaluator::quick();
    let mut conv = DesignPoint::baseline(PlatformId::Mobl);
    let mut cooled = DesignPoint::baseline(PlatformId::Mobl);
    cooled.cooling = CoolingConfig {
        cooling_scale: 0.5,
        systems_per_rack: 320,
        power_fans: None,
    };
    conv.name = "conv".into();
    cooled.name = "cooled".into();
    let a = eval.evaluate(&conv).unwrap();
    let b = eval.evaluate(&cooled).unwrap();
    assert!((a.report.inf_usd() - b.report.inf_usd()).abs() < 1e-9);
    assert!(b.report.pc_usd() < a.report.pc_usd());
    // Performance unchanged: cooling is not on the request path.
    for id in WorkloadId::ALL {
        assert_eq!(a.perf[&id], b.perf[&id]);
    }
}

#[test]
fn storage_scenarios_change_disk_sensitive_workloads_most() {
    let eval = Evaluator::quick();
    let mut base = DesignPoint::baseline(PlatformId::Emb1);
    base.name = "emb1-desktop".into();
    let mut laptop = DesignPoint::baseline(PlatformId::Emb1);
    laptop.storage = Some(StorageScenario::laptop_remote());
    laptop.name = "emb1-laptop".into();

    let a = eval.evaluate(&base).unwrap();
    let b = eval.evaluate(&laptop).unwrap();
    let drop = |id: WorkloadId| b.perf[&id] / a.perf[&id];
    // The streaming and write-heavy workloads hurt most; webmail's tiny
    // exposed disk demand barely notices.
    assert!(
        drop(WorkloadId::Ytube) < 0.95,
        "ytube {}",
        drop(WorkloadId::Ytube)
    );
    assert!(
        drop(WorkloadId::MapredWr) < 0.8,
        "mapred-wr {}",
        drop(WorkloadId::MapredWr)
    );
    assert!(
        drop(WorkloadId::Webmail) > 0.97,
        "webmail {}",
        drop(WorkloadId::Webmail)
    );
}

#[test]
fn memshare_costs_less_but_slows_slightly() {
    let eval = Evaluator::quick();
    let mut base = DesignPoint::baseline(PlatformId::Emb1);
    base.name = "emb1-plain".into();
    let mut shared = DesignPoint::baseline(PlatformId::Emb1);
    shared.memshare = DesignPoint::n2().memshare;
    shared.name = "emb1-blade".into();

    let a = eval.evaluate(&base).unwrap();
    let b = eval.evaluate(&shared).unwrap();
    assert!(b.report.inf_usd() < a.report.inf_usd());
    assert!(b.report.power_w() < a.report.power_w());
    for id in WorkloadId::ALL {
        assert!(
            b.perf[&id] <= a.perf[&id] * 1.001,
            "{id} should not speed up"
        );
        assert!(b.perf[&id] >= a.perf[&id] * 0.90, "{id} slows too much");
    }
}

#[test]
fn comparisons_are_antisymmetric() {
    let eval = Evaluator::quick();
    let a = eval
        .evaluate(&DesignPoint::baseline(PlatformId::Desk))
        .unwrap();
    let b = eval
        .evaluate(&DesignPoint::baseline(PlatformId::Emb1))
        .unwrap();
    let ab = b.compare(&a);
    let ba = a.compare(&b);
    for (x, y) in ab.rows.iter().zip(&ba.rows) {
        assert!((x.perf * y.perf - 1.0).abs() < 1e-9);
        assert!((x.perf_per_tco * y.perf_per_tco - 1.0).abs() < 1e-9);
    }
}

#[test]
fn qos_infeasible_design_reports_cleanly() {
    // A deliberately hobbled design: emb2 with the slow remote laptop
    // disk makes ytube's QoS unreachable at even one client — the
    // evaluator must return an error, not panic or hang.
    let eval = Evaluator::quick();
    let mut design = DesignPoint::baseline(PlatformId::Emb2);
    design.storage = Some(StorageScenario::laptop_remote());
    design.name = "emb2-crippled".into();
    match eval.evaluate(&design) {
        Ok(e) => {
            // If it happens to be feasible, performance must be very low
            // (emb2's CPU caps ytube at a handful of requests/second).
            assert!(e.perf[&WorkloadId::Ytube] < 6.0);
        }
        Err(err) => {
            assert!(err.to_string().contains("QoS"), "{err}");
        }
    }
}

#[test]
fn session_structured_webmail_matches_calibrated_throughput() {
    // Replacing the log-normal request stream with LoadSim-style session
    // structure (same mean demand) must not shift webmail's measured
    // throughput by much — the calibration is preserved by construction.
    use wcs::platforms::catalog;
    use wcs::simserver::ServerSim;
    use wcs::workloads::service::PlatformDemand;
    use wcs::workloads::sessions::SessionSource;
    use wcs::workloads::suite;

    let wl = suite::workload(WorkloadId::Webmail);
    let platform = catalog::platform(PlatformId::Desk);
    let demand = PlatformDemand::new(&wl, &platform);
    let sim = ServerSim::new(demand.server_spec());

    let lognormal = sim
        .run_closed_loop(&mut demand.source(1), 8, 300, 4000, 99)
        .throughput_rps();
    let mut sessions = SessionSource::new(demand, 8);
    let structured = sim
        .run_closed_loop(&mut sessions, 8, 300, 4000, 99)
        .throughput_rps();
    let ratio = structured / lognormal;
    assert!(
        (0.85..=1.15).contains(&ratio),
        "session structure shifted throughput by {ratio}"
    );
}

#[test]
fn open_loop_agrees_with_closed_loop_at_matched_load() {
    // Drive the open loop at 70% of the closed loop's saturated
    // throughput; it must sustain that arrival rate.
    use wcs::platforms::catalog;
    use wcs::simserver::{run_open_loop, ServerSim};
    use wcs::workloads::service::PlatformDemand;
    use wcs::workloads::suite;

    let wl = suite::workload(WorkloadId::Websearch);
    let platform = catalog::platform(PlatformId::Srvr2);
    let demand = PlatformDemand::new(&wl, &platform);
    let sim = ServerSim::new(demand.server_spec());
    let closed = sim
        .run_closed_loop(&mut demand.source(1), 64, 500, 6000, 7)
        .throughput_rps();
    let offered = closed * 0.7;
    let open = run_open_loop(
        demand.server_spec(),
        &mut demand.source(2),
        offered,
        500,
        6000,
        7,
    );
    let achieved = open.throughput_rps();
    assert!(
        (achieved - offered).abs() / offered < 0.08,
        "open loop {achieved} vs offered {offered}"
    );
}
