//! End-to-end tests of the `wcs` CLI binary.

use std::process::Command;

fn wcs() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wcs"))
}

#[test]
fn list_names_everything() {
    let out = wcs().arg("list").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["srvr1", "emb2", "n1", "n2", "websearch", "mapred-wr"] {
        assert!(stdout.contains(name), "missing {name} in: {stdout}");
    }
}

#[test]
fn evaluate_prints_tco_and_perf() {
    let out = wcs().args(["evaluate", "emb1"]).output().expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("TCO report"));
    assert!(stdout.contains("websearch"));
    assert!(stdout.contains("systems/rack"));
}

#[test]
fn compare_emits_relative_table() {
    let out = wcs()
        .args(["compare", "n1", "srvr1"])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("N1 relative to srvr1"));
    assert!(stdout.contains("HMean"));
    assert!(stdout.contains("Perf/TCO-$"));
}

#[test]
fn sweep_tariff_scales_pc() {
    let out = wcs().args(["sweep-tariff", "desk"]).output().expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("$50"));
    assert!(stdout.contains("$170"));
}

#[test]
fn unknown_design_fails_cleanly() {
    let out = wcs().args(["evaluate", "srvr9"]).output().expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown design"));
}

#[test]
fn no_args_prints_usage() {
    let out = wcs().output().expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage"));
}
