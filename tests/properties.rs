//! Property-based tests over the core data structures and models.

use proptest::prelude::*;

use wcs::memshare::policy::{PageStore, PolicyKind, Touch};
use wcs::platforms::{BomItem, Component};
use wcs::simcore::dist::{Distribution, Exp, Zipf};
use wcs::simcore::stats::{harmonic_mean, Histogram, OnlineStats};
use wcs::simcore::{EventQueue, SimRng, SimTime};
use wcs::tco::{BurdenedParams, TcoModel};

proptest! {
    /// Events always pop in nondecreasing time order, regardless of the
    /// schedule order.
    #[test]
    fn event_queue_orders_any_schedule(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((when, _)) = q.pop() {
            prop_assert!(when >= last);
            last = when;
        }
    }

    /// Histogram percentiles are monotone in the percentile and bracket
    /// the recorded extremes.
    #[test]
    fn histogram_percentiles_monotone(values in prop::collection::vec(1e-9f64..1e3, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values { h.record(v); }
        let p10 = h.percentile(10.0).unwrap();
        let p50 = h.percentile(50.0).unwrap();
        let p99 = h.percentile(99.0).unwrap();
        prop_assert!(p10 <= p50 && p50 <= p99);
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        // Bucketing overestimates by at most ~2.1%.
        prop_assert!(p10 >= min * 0.97);
        prop_assert!(p99 <= max * 1.03);
    }

    /// The mean-inequality chain: harmonic <= arithmetic, and the
    /// streaming stats agree with a direct computation.
    #[test]
    fn mean_inequalities(values in prop::collection::vec(0.001f64..1e6, 1..100)) {
        let mut s = OnlineStats::new();
        for &v in &values { s.record(v); }
        let arith = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((s.mean() - arith).abs() / arith < 1e-9);
        let h = harmonic_mean(&values).unwrap();
        prop_assert!(h <= arith * (1.0 + 1e-12));
    }

    /// A Zipf pmf sums to 1 and is non-increasing in rank.
    #[test]
    fn zipf_pmf_properties(n in 1usize..2000, s in 0.0f64..2.5) {
        let z = Zipf::new(n, s).unwrap();
        let total: f64 = (1..=n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for k in 2..=n {
            prop_assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }

    /// Exponential samples are non-negative and the sample mean tracks
    /// the parameter.
    #[test]
    fn exp_samples_nonnegative(mean in 0.001f64..100.0, seed in 0u64..1000) {
        let d = Exp::new(mean).unwrap();
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..100 {
            prop_assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    /// Page stores never exceed capacity and never evict while below it,
    /// under any policy and any trace.
    #[test]
    fn page_store_capacity_invariant(
        capacity in 1usize..64,
        pages in prop::collection::vec((0u64..128, any::<bool>()), 1..500),
        policy in prop::sample::select(vec![PolicyKind::Lru, PolicyKind::Random, PolicyKind::Clock]),
    ) {
        let mut store = PageStore::new(capacity, policy, 1);
        for &(page, write) in &pages {
            let before = store.len();
            match store.touch(page, write) {
                Touch::Hit => prop_assert!(store.contains(page)),
                Touch::Miss { evicted: None } => prop_assert!(before < capacity),
                Touch::Miss { evicted: Some((victim, _)) } => {
                    prop_assert_eq!(before, capacity);
                    prop_assert!(victim != page);
                    prop_assert!(!store.contains(victim) || victim == page);
                }
            }
            prop_assert!(store.len() <= capacity);
            prop_assert!(store.contains(page));
        }
    }

    /// Burdened P&C cost is monotone in power, tariff, and activity
    /// factor, and the multiplier always exceeds 1 (burdening can only
    /// add cost).
    #[test]
    fn burdened_cost_monotone(
        power in 0.0f64..2000.0,
        extra in 0.1f64..500.0,
        tariff in 50.0f64..170.0,
        af in 0.5f64..1.0,
    ) {
        let base = BurdenedParams::paper_default()
            .with_tariff(tariff)
            .with_activity_factor(af);
        prop_assert!(base.multiplier() > 1.0);
        prop_assert!(base.burdened_cost_usd(power + extra) > base.burdened_cost_usd(power));
        let hotter = base.with_tariff(tariff + 10.0);
        prop_assert!(hotter.burdened_cost_usd(power + extra) > base.burdened_cost_usd(power + extra));
    }

    /// Adding any BOM item can only increase a server's TCO.
    #[test]
    fn tco_monotone_in_bom(cost in 0.0f64..5000.0, power in 0.0f64..500.0) {
        let model = TcoModel::paper_default();
        let small = model.bom_tco("small", &[BomItem::new(Component::Cpu, 100.0, 50.0)]);
        let big = model.bom_tco(
            "big",
            &[
                BomItem::new(Component::Cpu, 100.0, 50.0),
                BomItem::new(Component::Flash, cost, power),
            ],
        );
        prop_assert!(big.total_usd() >= small.total_usd());
        prop_assert!(big.power_w() >= small.power_w());
    }

    /// LRU inclusion: a hit in a smaller LRU store implies a hit in a
    /// larger one fed the same trace (the stack property).
    #[test]
    fn lru_inclusion(pages in prop::collection::vec(0u64..256, 1..400)) {
        let mut small = PageStore::new(16, PolicyKind::Lru, 0);
        let mut large = PageStore::new(64, PolicyKind::Lru, 0);
        for &p in &pages {
            let s_hit = matches!(small.touch(p, false), Touch::Hit);
            let l_hit = matches!(large.touch(p, false), Touch::Hit);
            prop_assert!(!s_hit || l_hit, "inclusion violated");
        }
    }
}
