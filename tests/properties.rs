//! Property-based tests over the core data structures and models.
//!
//! The offline build environment cannot fetch `proptest`, so these
//! properties are exercised with a hand-rolled deterministic case
//! generator: each property runs against many pseudo-random inputs drawn
//! from a fixed-seed [`SimRng`], which keeps failures reproducible.

use wcs::memshare::policy::{PageStore, PolicyKind, Touch};
use wcs::platforms::{BomItem, Component};
use wcs::simcore::dist::{Distribution, Exp, Zipf};
use wcs::simcore::stats::{harmonic_mean, Histogram, OnlineStats};
use wcs::simcore::{EventQueue, SimRng, SimTime};
use wcs::tco::{BurdenedParams, TcoModel};

const CASES: usize = 64;

fn vec_u64(rng: &mut SimRng, lo: u64, hi: u64, min_len: usize, max_len: usize) -> Vec<u64> {
    let len = min_len + rng.index(max_len - min_len);
    (0..len).map(|_| lo + rng.next_u64() % (hi - lo)).collect()
}

fn vec_f64(rng: &mut SimRng, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
    let len = min_len + rng.index(max_len - min_len);
    (0..len).map(|_| rng.uniform_range(lo, hi)).collect()
}

/// Events always pop in nondecreasing time order, regardless of the
/// schedule order.
#[test]
fn event_queue_orders_any_schedule() {
    let mut rng = SimRng::seed_from(0xE4E);
    for _ in 0..CASES {
        let times = vec_u64(&mut rng, 0, 1_000_000, 1, 200);
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((when, _)) = q.pop() {
            assert!(when >= last);
            last = when;
        }
    }
}

/// Histogram percentiles are monotone in the percentile and bracket the
/// recorded extremes.
#[test]
fn histogram_percentiles_monotone() {
    let mut rng = SimRng::seed_from(0x415);
    for _ in 0..CASES {
        let values = vec_f64(&mut rng, 1e-9, 1e3, 1, 300);
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let p10 = h.percentile(10.0).unwrap();
        let p50 = h.percentile(50.0).unwrap();
        let p99 = h.percentile(99.0).unwrap();
        assert!(p10 <= p50 && p50 <= p99);
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        // Bucketing overestimates by at most ~2.1%.
        assert!(p10 >= min * 0.97);
        assert!(p99 <= max * 1.03);
    }
}

/// The mean-inequality chain: harmonic <= arithmetic, and the streaming
/// stats agree with a direct computation.
#[test]
fn mean_inequalities() {
    let mut rng = SimRng::seed_from(0x3A4);
    for _ in 0..CASES {
        let values = vec_f64(&mut rng, 0.001, 1e6, 1, 100);
        let mut s = OnlineStats::new();
        for &v in &values {
            s.record(v);
        }
        let arith = values.iter().sum::<f64>() / values.len() as f64;
        assert!((s.mean() - arith).abs() / arith < 1e-9);
        let h = harmonic_mean(&values).unwrap();
        assert!(h <= arith * (1.0 + 1e-12));
    }
}

/// A Zipf pmf sums to 1 and is non-increasing in rank.
#[test]
fn zipf_pmf_properties() {
    let mut rng = SimRng::seed_from(0x21F);
    for _ in 0..24 {
        let n = 1 + rng.index(2000);
        let s = rng.uniform_range(0.0, 2.5);
        let z = Zipf::new(n, s).unwrap();
        let total: f64 = (1..=n).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 2..=n {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }
}

/// Exponential samples are non-negative and the sample mean tracks the
/// parameter.
#[test]
fn exp_samples_nonnegative() {
    let mut rng = SimRng::seed_from(0xE27);
    for _ in 0..CASES {
        let mean = rng.uniform_range(0.001, 100.0);
        let seed = rng.next_u64() % 1000;
        let d = Exp::new(mean).unwrap();
        let mut sample_rng = SimRng::seed_from(seed);
        for _ in 0..100 {
            assert!(d.sample(&mut sample_rng) >= 0.0);
        }
    }
}

/// Page stores never exceed capacity and never evict while below it,
/// under any policy and any trace.
#[test]
fn page_store_capacity_invariant() {
    let mut rng = SimRng::seed_from(0x9A6);
    let policies = [PolicyKind::Lru, PolicyKind::Random, PolicyKind::Clock];
    for case in 0..CASES {
        let capacity = 1 + rng.index(63);
        let policy = policies[case % policies.len()];
        let n_ops = 1 + rng.index(499);
        let mut store = PageStore::new(capacity, policy, 1);
        for _ in 0..n_ops {
            let page = rng.next_u64() % 128;
            let write = rng.chance(0.5);
            let before = store.len();
            match store.touch(page, write) {
                Touch::Hit => assert!(store.contains(page)),
                Touch::Miss { evicted: None } => assert!(before < capacity),
                Touch::Miss {
                    evicted: Some((victim, _)),
                } => {
                    assert_eq!(before, capacity);
                    assert!(victim != page);
                    assert!(!store.contains(victim) || victim == page);
                }
            }
            assert!(store.len() <= capacity);
            assert!(store.contains(page));
        }
    }
}

/// Burdened P&C cost is monotone in power, tariff, and activity factor,
/// and the multiplier always exceeds 1 (burdening can only add cost).
#[test]
fn burdened_cost_monotone() {
    let mut rng = SimRng::seed_from(0xB42);
    for _ in 0..CASES {
        let power = rng.uniform_range(0.0, 2000.0);
        let extra = rng.uniform_range(0.1, 500.0);
        let tariff = rng.uniform_range(50.0, 170.0);
        let af = rng.uniform_range(0.5, 1.0);
        let base = BurdenedParams::paper_default()
            .with_tariff(tariff)
            .with_activity_factor(af);
        assert!(base.multiplier() > 1.0);
        assert!(base.burdened_cost_usd(power + extra) > base.burdened_cost_usd(power));
        let hotter = base.with_tariff(tariff + 10.0);
        assert!(hotter.burdened_cost_usd(power + extra) > base.burdened_cost_usd(power + extra));
    }
}

/// Adding any BOM item can only increase a server's TCO.
#[test]
fn tco_monotone_in_bom() {
    let mut rng = SimRng::seed_from(0x7C0);
    for _ in 0..CASES {
        let cost = rng.uniform_range(0.0, 5000.0);
        let power = rng.uniform_range(0.0, 500.0);
        let model = TcoModel::paper_default();
        let small = model.bom_tco("small", &[BomItem::new(Component::Cpu, 100.0, 50.0)]);
        let big = model.bom_tco(
            "big",
            &[
                BomItem::new(Component::Cpu, 100.0, 50.0),
                BomItem::new(Component::Flash, cost, power),
            ],
        );
        assert!(big.total_usd() >= small.total_usd());
        assert!(big.power_w() >= small.power_w());
    }
}

/// LRU inclusion: a hit in a smaller LRU store implies a hit in a larger
/// one fed the same trace (the stack property).
#[test]
fn lru_inclusion() {
    let mut rng = SimRng::seed_from(0x14C);
    for _ in 0..CASES {
        let pages = vec_u64(&mut rng, 0, 256, 1, 400);
        let mut small = PageStore::new(16, PolicyKind::Lru, 0);
        let mut large = PageStore::new(64, PolicyKind::Lru, 0);
        for &p in &pages {
            let s_hit = matches!(small.touch(p, false), Touch::Hit);
            let l_hit = matches!(large.touch(p, false), Touch::Hit);
            assert!(!s_hit || l_hit, "inclusion violated");
        }
    }
}
