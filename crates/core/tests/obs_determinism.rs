//! The observability contract, end to end: the deterministic snapshot of
//! a full design-point evaluation is bit-identical across worker-pool
//! sizes and memoization settings, because every exact-class metric is
//! recorded from returned simulation values (cached or recomputed), never
//! from scheduling order or cache state.

use wcs_core::designs::DesignPoint;
use wcs_core::evaluate::Evaluator;
use wcs_simcore::obs::Registry;

/// Evaluates the N2 design (which exercises the storage-replay,
/// memory-replay, and performance caches) and returns the deterministic
/// snapshot rendered to JSON.
fn deterministic_json(threads: usize, memo: bool) -> String {
    let reg = Registry::new();
    let eval = Evaluator::builder()
        .quick()
        .threads(threads)
        .expect("positive thread count")
        .memo(memo)
        .obs(reg.clone())
        .build()
        .expect("quick profile configuration is valid");
    eval.evaluate(&DesignPoint::n2()).expect("n2 evaluates");
    eval.export_obs();
    reg.snapshot().deterministic().to_json()
}

#[test]
fn deterministic_snapshot_is_identical_across_threads_and_memo() {
    let reference = deterministic_json(1, true);
    assert!(
        reference.contains("queue.scheduled"),
        "snapshot must carry the queue series: {reference}"
    );
    assert!(
        !reference.contains("memo.perf.hits"),
        "wall-class series must be excluded from the deterministic snapshot"
    );
    for threads in [1usize, 2, 8] {
        for memo in [true, false] {
            let got = deterministic_json(threads, memo);
            assert_eq!(
                reference, got,
                "deterministic snapshot diverged at threads={threads} memo={memo}"
            );
        }
    }
}

#[test]
fn warm_cache_replays_identical_queue_series() {
    // A second evaluation on the same evaluator is answered from the
    // perf cache; the cached PerfSample must replay the same queue
    // counters the original computation recorded.
    let reg = Registry::new();
    let eval = Evaluator::builder()
        .quick()
        .obs(reg.clone())
        .build()
        .expect("quick profile configuration is valid");
    eval.evaluate(&DesignPoint::n2()).expect("n2 evaluates");
    let first = reg.snapshot().deterministic();
    let scheduled = first.count("queue.scheduled").expect("series present");
    eval.evaluate(&DesignPoint::n2()).expect("n2 evaluates");
    assert!(eval.memo.stats().hits > 0, "second run must hit the cache");
    let second = reg.snapshot().deterministic();
    assert_eq!(
        second.count("queue.scheduled"),
        Some(2 * scheduled),
        "a cache hit must contribute exactly the original queue counters"
    );
}

/// Runs a journaled evaluation then a resumed one, returning the resumed
/// run's deterministic snapshot (which includes the exact `recovery.*`
/// counters — cells replayed, resume hits, cells journaled).
fn resumed_deterministic_snapshot(
    threads: usize,
    memo: bool,
    tag: &str,
) -> wcs_simcore::obs::Snapshot {
    let path = std::env::temp_dir().join(format!(
        "wcs-obsdet-{tag}-{}-{threads}-{memo}.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let first = Evaluator::builder()
        .quick()
        .threads(threads)
        .expect("positive thread count")
        .memo(memo)
        .resume(&path)
        .build()
        .expect("fresh journal opens");
    first.evaluate(&DesignPoint::n2()).expect("n2 evaluates");
    drop(first);

    let reg = Registry::new();
    let resumed = Evaluator::builder()
        .quick()
        .threads(threads)
        .expect("positive thread count")
        .memo(memo)
        .obs(reg.clone())
        .resume(&path)
        .build()
        .expect("journal replays");
    resumed.evaluate(&DesignPoint::n2()).expect("n2 evaluates");
    resumed.export_obs();
    let _ = std::fs::remove_file(&path);
    reg.snapshot().deterministic()
}

#[test]
fn recovery_counters_are_deterministic_across_threads_and_memo() {
    let reference = resumed_deterministic_snapshot(1, true, "ref");
    // The resumed run answered cells from the journal, and that count is
    // part of the deterministic snapshot being compared below.
    let replayed = reference
        .count("recovery.cells_replayed")
        .expect("snapshot carries the recovery series");
    assert!(replayed > 0, "resume must replay journaled cells");
    let reference = reference.to_json();
    for threads in [2usize, 8] {
        for memo in [true, false] {
            let got = resumed_deterministic_snapshot(threads, memo, "cmp").to_json();
            assert_eq!(
                reference, got,
                "recovery snapshot diverged at threads={threads} memo={memo}"
            );
        }
    }
}
