//! The evaluation pipeline: performance simulation + cost model +
//! efficiency metrics for any design point.

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use wcs_memshare::contention::SharedLink;
use wcs_memshare::slowdown::{estimate_slowdown_pooled, SlowdownConfig};
use wcs_platforms::Platform;
use wcs_simcore::journal;
use wcs_simcore::obs::Registry;
use wcs_simcore::stats::harmonic_mean;
use wcs_simcore::watchdog::{CancelToken, Watchdog};
use wcs_simcore::{ConfigError, ThreadPool};
use wcs_tco::{
    AvailabilityModel, AvailableEfficiency, BurdenedParams, Efficiency, RackConfig,
    RealEstateParams, TcoModel, TcoReport,
};
use wcs_workloads::disktrace::params_for as disk_params;
use wcs_workloads::perf::{measure_perf_with_demand, MeasureConfig, MeasureError};
use wcs_workloads::service::PlatformDemand;
use wcs_workloads::{suite, WorkloadId};

use wcs_simcore::event::QueueObs;

use crate::designs::DesignPoint;
use crate::error::WcsError;
use crate::memo::{EvalMemo, PerfSample};

/// Evaluates design points: runs every workload's performance metric and
/// prices the design's bill of materials.
#[derive(Debug, Clone)]
pub struct Evaluator {
    /// Measurement effort.
    pub measure: MeasureConfig,
    /// Rack configuration for cost amortization.
    pub rack: RackConfig,
    /// Burdened power-and-cooling parameters before any cooling-design
    /// scaling.
    pub burdened: BurdenedParams,
    /// Disk-trace replay length for storage scenarios.
    pub storage_replay: u64,
    /// Optional real-estate pricing. `None` matches the paper's Figure 1
    /// cost scope exactly; `Some` adds an amortized floor-space line that
    /// rewards dense packaging.
    pub real_estate: Option<RealEstateParams>,
    /// Worker pool for fanning out independent evaluations. Serial by
    /// default so library results are reproducible on any machine by
    /// construction; any thread count produces bit-identical results
    /// because every task seeds its own RNG stream from the task index.
    pub pool: ThreadPool,
    /// Sub-simulation caches shared by every evaluation (and, through
    /// the `Arc`, by every clone of this evaluator). Enabled by default;
    /// memoized results are byte-identical to cold recomputation because
    /// each cached value is a pure function of its key.
    pub memo: Arc<EvalMemo>,
    /// Metrics registry. Disabled by default (a single-branch no-op on
    /// every record). Exact-class series are recorded from returned
    /// simulation values only, so enabling observability cannot change
    /// any evaluation result, and the recorded values are bit-identical
    /// at any thread count with the memo on or off.
    pub obs: Registry,
    /// Optional failure/repair burden applied to efficiency metrics via
    /// [`DesignEval::available_efficiency`]. `None` reproduces the
    /// paper's fail-free metrics exactly.
    pub availability: Option<AvailabilityModel>,
    /// Optional deadline monitor for [`Evaluator::evaluate_cells`]: cells
    /// exceeding the budget are cancelled cooperatively and reported as
    /// [`WcsError::Deadline`] instead of hanging the sweep. `None` (the
    /// default) applies no deadline, keeping results pure functions of
    /// the cell inputs.
    pub watchdog: Option<Arc<Watchdog>>,
    /// Optional overload-resilience layer for scenario traffic runs
    /// ([`Evaluator::evaluate_scenario`]): admission control, a retry
    /// budget, circuit breakers, and a chaos plan co-varied with the
    /// traffic pack. `None` (the default) reproduces the plain traffic
    /// path byte-for-byte.
    pub resilience: Option<crate::scenario::ResilienceSpec>,
}

impl Evaluator {
    /// The builder-style entry point: every evaluation knob — thread
    /// count, memoization, fault burden, observability, seed — in one
    /// place, starting from the paper's full-accuracy profile.
    ///
    /// ```no_run
    /// use wcs_core::evaluate::Evaluator;
    /// let eval = Evaluator::builder().quick().threads(8).unwrap().memo(true).build().unwrap();
    /// # let _ = eval;
    /// ```
    pub fn builder() -> EvalBuilder {
        EvalBuilder::paper()
    }

    /// Full-accuracy evaluator with the paper's cost parameters.
    pub fn paper_default() -> Self {
        EvalBuilder::paper()
            .build()
            .expect("paper default configuration is valid")
    }

    /// Reduced-effort evaluator for tests and examples.
    pub fn quick() -> Self {
        EvalBuilder::paper()
            .quick()
            .build()
            .expect("quick default configuration is valid")
    }

    /// Flushes end-of-run metrics (memo hit/miss counters, watchdog
    /// deadline cancels) into the attached registry. Counters accumulate
    /// — call once, right before snapshotting.
    pub fn export_obs(&self) {
        self.memo.export_obs();
        if let Some(wd) = &self.watchdog {
            self.obs
                .wall_counter("recovery.deadline_cancels")
                .add(wd.deadline_cancels());
        }
    }

    /// Evaluates a design point across the whole benchmark suite.
    ///
    /// # Errors
    /// Returns a [`MeasureError`] if any workload's QoS bound is
    /// infeasible on the design.
    pub fn evaluate(&self, design: &DesignPoint) -> Result<DesignEval, MeasureError> {
        match self.evaluate_cell(design, &CancelToken::never()) {
            Ok(e) => Ok(e),
            Err(WcsError::Measure(e)) => Err(e),
            // A never-firing token admits no deadline, and this path has
            // no catch_unwind, so only measurement errors can surface.
            Err(other) => unreachable!("uncancellable evaluation surfaced {other}"),
        }
    }

    /// Evaluates a design point under a cooperative cancellation token:
    /// the token is polled before each workload measurement, so a cell
    /// cancelled by a deadline [`Watchdog`] returns
    /// [`WcsError::Deadline`] at the next workload boundary instead of
    /// running to completion.
    ///
    /// # Errors
    /// [`WcsError::Measure`] for an infeasible QoS bound,
    /// [`WcsError::Deadline`] when `token` fired.
    pub fn evaluate_cell(
        &self,
        design: &DesignPoint,
        token: &CancelToken,
    ) -> Result<DesignEval, WcsError> {
        let platform = design.effective_platform();
        let report = self.design_report(design, &platform);

        // Workloads are independent: each derives its seed from the shared
        // MeasureConfig, not from evaluation order, so fanning them out
        // over the pool cannot change any value. The cancel token is
        // polled once per workload — the cooperative deadline boundary.
        let values = self.pool.try_par_map(&WorkloadId::ALL, |_, &id| {
            if token.is_cancelled() {
                return Err(WcsError::Deadline {
                    cell: design.name.clone(),
                });
            }
            let _span = self.obs.timer("pool.task_wall_ns").start();
            self.workload_perf(design, &platform, id)
                .map_err(WcsError::from)
        })?;
        // Exact-class series are recorded only after the whole fan-out
        // succeeded, from its returned values: the counts depend on the
        // design list alone, never on worker scheduling. The queue
        // counters come out of the (possibly cached) PerfSamples, so
        // they are identical with the memo on or off.
        self.obs.counter("eval.designs").inc();
        self.obs.counter("eval.workloads").add(values.len() as u64);
        self.obs.counter("pool.tasks").add(values.len() as u64);
        self.obs
            .histogram("cooling.cooling_scale_x100")
            .record((design.cooling.cooling_scale * 100.0).round() as u64);
        let queue = values
            .iter()
            .fold(QueueObs::default(), |acc, s| acc.merged(&s.queue));
        queue.export(&self.obs);
        let perf: BTreeMap<WorkloadId, f64> = WorkloadId::ALL
            .into_iter()
            .zip(values.into_iter().map(|s| s.value))
            .collect();
        Ok(DesignEval {
            name: design.name.clone(),
            perf,
            report,
            systems_per_rack: design.cooling.systems_per_rack,
            availability: self.availability,
        })
    }

    /// Splits the pool between the across-cell fan-out and the work
    /// inside each cell: with more threads than cells, each cell's
    /// inner evaluator keeps the leftover `threads / cells` workers for
    /// its own workload fan-out and replay lane staging, so a 3-design
    /// study at `--threads 8` still uses idle workers intra-study
    /// instead of leaving five of them parked. The split affects wall
    /// time only — every path is bit-identical at any thread count.
    fn intra_cell_pool(&self, cells: usize) -> ThreadPool {
        let outer = self.pool.threads().min(cells.max(1));
        ThreadPool::new((self.pool.threads() / outer).max(1)).expect("thread count is positive")
    }

    /// Evaluates many design points, fanning the designs out over the
    /// pool. The returned evaluations are in input order and bit-identical
    /// to calling [`Evaluator::evaluate`] in a loop.
    ///
    /// Parallelism is applied across designs first; threads left over
    /// when the pool is wider than the design list are applied *within*
    /// each design (see [`intra_cell_pool`](Self::intra_cell_pool)).
    ///
    /// # Errors
    /// Returns the first (lowest-index) design's [`MeasureError`], exactly
    /// as the serial loop would.
    pub fn evaluate_many(&self, designs: &[DesignPoint]) -> Result<Vec<DesignEval>, MeasureError> {
        let inner = Evaluator {
            pool: self.intra_cell_pool(designs.len()),
            ..self.clone()
        };
        let evals = self.pool.try_par_map(designs, |_, d| {
            let _span = self.obs.timer("pool.task_wall_ns").start();
            inner.evaluate(d)
        })?;
        self.obs.counter("pool.tasks").add(evals.len() as u64);
        Ok(evals)
    }

    /// Evaluates many design points with **per-cell fault isolation**: a
    /// cell that panics (twice, after the retry-once policy) or exceeds
    /// the evaluator's watchdog budget becomes an `Err` in its own
    /// [`CellOutcome`] while every other cell completes normally. This is
    /// the crash-safe counterpart of [`evaluate_many`](Self::evaluate_many),
    /// which aborts the whole fan-out on the first error.
    ///
    /// Outcomes are returned in input order. With no watchdog configured,
    /// success/failure of each cell is a pure function of the cell, so
    /// the outcome vector is bit-identical at any thread count.
    pub fn evaluate_cells(&self, designs: &[DesignPoint]) -> Vec<CellOutcome> {
        let inner = Evaluator {
            pool: self.intra_cell_pool(designs.len()),
            ..self.clone()
        };
        let (results, recovery) =
            self.pool
                .par_map_watched(designs, self.watchdog.as_deref(), |_, d, token| {
                    let _span = self.obs.timer("pool.task_wall_ns").start();
                    inner.evaluate_cell(d, token)
                });
        self.obs.counter("pool.tasks").add(results.len() as u64);
        // Panic and retry counts are pure functions of the cell set
        // (tasks share no mutable state), hence exact-class.
        self.obs
            .counter("recovery.task_panics")
            .add(recovery.panics_caught);
        self.obs
            .counter("recovery.task_retries")
            .add(recovery.retries);
        results
            .into_iter()
            .zip(designs)
            .enumerate()
            .map(|(index, (r, d))| CellOutcome {
                index,
                name: d.name.clone(),
                result: match r {
                    Ok(cell) => cell,
                    Err(panic) => Err(WcsError::TaskPanic(panic)),
                },
            })
            .collect()
    }

    /// Prices the design's bill of materials under the evaluator's cost
    /// scope (shared by the suite and scenario pipelines).
    pub(crate) fn design_report(&self, design: &DesignPoint, platform: &Platform) -> TcoReport {
        let burdened = self
            .burdened
            .with_cooling_scale(design.cooling.cooling_scale);
        let tco_model = TcoModel::new(self.rack, burdened);
        match &self.real_estate {
            None => tco_model.server_tco(platform),
            Some(re) => {
                let mut bom = platform.bom().to_vec();
                bom.push(re.bom_item(design.cooling.systems_per_rack));
                tco_model.bom_tco(&platform.name, &bom)
            }
        }
    }

    /// The platform demand of `wl` on `design`: applies the storage
    /// scenario's effective disk service and the memory-sharing slowdown
    /// before any simulation runs. `trace_id` anchors the disk-trace and
    /// memory-trace sub-simulations — for paper workloads it is the
    /// workload itself; registry scenarios reuse the calibration anchor
    /// carried in their `Workload::id`.
    pub(crate) fn demand_for(
        &self,
        design: &DesignPoint,
        platform: &Platform,
        wl: &wcs_workloads::Workload,
        trace_id: WorkloadId,
    ) -> PlatformDemand {
        let disk = design
            .storage
            .as_ref()
            .map(|s| s.disk.clone())
            .unwrap_or_else(|| design.platform.disk.clone());
        let mut demand = PlatformDemand::with_overrides(
            wl,
            &design.platform,
            &disk,
            platform.memory.capacity_gib,
        );
        if let Some(scenario) = &design.storage {
            let stats = self.memo.storage().replay(
                &scenario.disk,
                scenario.flash.as_ref(),
                disk_params(trace_id),
                self.measure.seed ^ 0xD15C,
                self.storage_replay,
            );
            demand.set_disk_secs(wl.demand.io_per_req * stats.mean_service_secs());
        }
        if let Some(ms) = &design.memshare {
            // First pass: fault rate at the uncontended link; second
            // pass folds the shared link's M/D/1 queueing delay back in.
            let base = estimate_slowdown_pooled(
                trace_id,
                &SlowdownConfig {
                    local_fraction: ms.provisioning.local_fraction,
                    link: ms.link,
                    ..SlowdownConfig::paper_default()
                },
                self.memo.replay(),
                &self.pool,
            )
            .expect("memshare design has local_fraction in (0, 1]");
            let shared = SharedLink::new(ms.link, ms.servers_per_blade.max(1));
            let effective = shared.effective_link(base.faults_per_cpu_sec);
            let slowdown = 1.0 + base.faults_per_cpu_sec * effective.fault_latency_secs();
            demand.inflate_cpu(slowdown);
        }
        demand
    }

    /// Performance of one paper workload on the design.
    pub(crate) fn workload_perf(
        &self,
        design: &DesignPoint,
        platform: &Platform,
        id: WorkloadId,
    ) -> Result<PerfSample, MeasureError> {
        let wl = suite::workload(id);
        let demand = self.demand_for(design, platform, &wl, id);
        self.memo.perf(id, &demand, &self.measure, || {
            measure_perf_with_demand(&wl, &demand, &self.measure).map(|r| PerfSample {
                value: r.value,
                queue: r.queue,
            })
        })
    }
}

impl Default for Evaluator {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Builder for [`Evaluator`]: one place for every evaluation knob.
///
/// Replaces the scattered `with_*` combinators and ad-hoc flag
/// threading: thread count, memoization, observability, fault burden,
/// and seed are all configured here and validated together in
/// [`EvalBuilder::build`].
///
/// ```no_run
/// use wcs_core::evaluate::Evaluator;
/// use wcs_simcore::obs::Registry;
///
/// let reg = Registry::new();
/// let eval = Evaluator::builder()
///     .quick()
///     .threads(8)
///     .unwrap()
///     .memo(true)
///     .obs(reg.clone())
///     .seed(0x5EED)
///     .build()
///     .unwrap();
/// # let _ = eval;
/// ```
#[derive(Debug, Clone)]
pub struct EvalBuilder {
    measure: MeasureConfig,
    rack: RackConfig,
    burdened: BurdenedParams,
    storage_replay: u64,
    real_estate: Option<RealEstateParams>,
    pool: ThreadPool,
    memo: bool,
    obs: Registry,
    seed: Option<u64>,
    availability: Option<AvailabilityModel>,
    resume: Option<PathBuf>,
    task_budget: Option<Duration>,
    resilience: Option<crate::scenario::ResilienceSpec>,
}

impl EvalBuilder {
    /// The paper's full-accuracy profile (the [`Evaluator::builder`]
    /// starting point).
    pub fn paper() -> Self {
        EvalBuilder {
            measure: MeasureConfig::default_accuracy(),
            rack: RackConfig::paper_default(),
            burdened: BurdenedParams::paper_default(),
            storage_replay: 120_000,
            real_estate: None,
            pool: ThreadPool::serial(),
            memo: true,
            obs: Registry::disabled(),
            seed: None,
            availability: None,
            resume: None,
            task_budget: None,
            resilience: None,
        }
    }

    /// Journals completed cells to `path` and seeds the evaluator from
    /// any valid prefix already there, so a run interrupted mid-sweep
    /// resumes bit-identical to an uninterrupted one. A missing file
    /// starts a fresh journal; a torn or corrupt tail is truncated on
    /// open. Resuming works with the memo on *or* off — replayed cells
    /// live in their own always-on lane.
    #[must_use]
    pub fn resume(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume = Some(path.into());
        self
    }

    /// Applies a per-cell wall-clock budget to
    /// [`Evaluator::evaluate_cells`]: cells exceeding it are cancelled
    /// cooperatively and reported as degraded. Wall-clock deadlines are
    /// inherently nondeterministic — leave unset for bit-reproducible
    /// sweeps.
    #[must_use]
    pub fn task_budget(mut self, budget: Duration) -> Self {
        self.task_budget = Some(budget);
        self
    }

    /// Switches to the reduced-effort profile (shorter probes, shorter
    /// storage replays) used by tests, examples, and smoke benches.
    #[must_use]
    pub fn quick(mut self) -> Self {
        self.measure = MeasureConfig::quick();
        self.storage_replay = 40_000;
        self
    }

    /// Fans independent evaluations out over `n` worker threads.
    /// Results are bit-identical at any thread count.
    ///
    /// # Errors
    /// Rejects a zero thread count.
    pub fn threads(mut self, n: usize) -> Result<Self, WcsError> {
        self.pool = ThreadPool::new(n)?;
        Ok(self)
    }

    /// Fans independent evaluations out over an existing pool.
    #[must_use]
    pub fn pool(mut self, pool: ThreadPool) -> Self {
        self.pool = pool;
        self
    }

    /// Switches sub-simulation memoization on or off. Off reproduces
    /// the cold path: every replay recomputes from its live generators.
    #[must_use]
    pub fn memo(mut self, enabled: bool) -> Self {
        self.memo = enabled;
        self
    }

    /// Attaches a metrics registry. The evaluator and its memo record
    /// their series into it; a [`Registry::disabled`] handle (the
    /// default) records nothing at one branch per call.
    #[must_use]
    pub fn obs(mut self, registry: Registry) -> Self {
        self.obs = registry;
        self
    }

    /// Overrides the base RNG seed of the measurement config. Every
    /// probe run derives its stream from this value, so two evaluators
    /// with equal seeds (and otherwise equal configs) are bit-identical.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Burdens efficiency metrics with a failure/repair model (see
    /// [`DesignEval::available_efficiency`]). Raw performance values
    /// are unchanged — faults tax the metric, not the simulation.
    #[must_use]
    pub fn faults(mut self, model: AvailabilityModel) -> Self {
        self.availability = Some(model);
        self
    }

    /// Enables the overload-resilience layer for scenario traffic runs:
    /// admission control, a global retry budget, per-backend circuit
    /// breakers, and an optional chaos plan whose fault waves co-vary
    /// with the traffic pack. Leaving this unset (the default) keeps
    /// every scenario render byte-identical to an evaluator that never
    /// heard of resilience.
    #[must_use]
    pub fn resilience(mut self, spec: crate::scenario::ResilienceSpec) -> Self {
        self.resilience = Some(spec);
        self
    }

    /// Adds amortized floor-space pricing to the cost scope.
    #[must_use]
    pub fn real_estate(mut self, params: RealEstateParams) -> Self {
        self.real_estate = Some(params);
        self
    }

    /// Overrides the measurement-effort config wholesale.
    #[must_use]
    pub fn measure(mut self, measure: MeasureConfig) -> Self {
        self.measure = measure;
        self
    }

    /// Overrides the disk-trace replay length for storage scenarios.
    #[must_use]
    pub fn storage_replay(mut self, events: u64) -> Self {
        self.storage_replay = events;
        self
    }

    /// Overrides the rack configuration for cost amortization.
    #[must_use]
    pub fn rack(mut self, rack: RackConfig) -> Self {
        self.rack = rack;
        self
    }

    /// Overrides the burdened power-and-cooling parameters.
    #[must_use]
    pub fn burdened(mut self, burdened: BurdenedParams) -> Self {
        self.burdened = burdened;
        self
    }

    /// Validates the configuration and builds the evaluator. When a
    /// resume journal is configured, its valid prefix is replayed into
    /// the memo here (truncating any torn tail) and an append handle is
    /// attached for the cells this run computes.
    ///
    /// # Errors
    /// Rejects a zero storage-replay length; surfaces
    /// [`WcsError::Journal`] when the resume journal cannot be opened
    /// (unreadable, or not a journal at all).
    pub fn build(self) -> Result<Evaluator, WcsError> {
        if self.storage_replay == 0 {
            return Err(ConfigError::ZeroCount {
                param: "storage_replay",
            }
            .into());
        }
        let mut measure = self.measure;
        if let Some(seed) = self.seed {
            measure.seed = seed;
        }
        let memo = Arc::new(EvalMemo::with_enabled(self.memo).with_obs(self.obs.clone()));
        if let Some(path) = &self.resume {
            let (records, writer, report) = journal::open(path)?;
            memo.seed_journal(&records);
            memo.attach_journal(writer);
            self.obs
                .wall_counter("recovery.journal_truncated_bytes")
                .add(report.truncated_bytes);
        }
        let watchdog = self
            .task_budget
            .map(|budget| Arc::new(Watchdog::new(budget)));
        Ok(Evaluator {
            measure,
            rack: self.rack,
            burdened: self.burdened,
            storage_replay: self.storage_replay,
            real_estate: self.real_estate,
            pool: self.pool,
            memo,
            obs: self.obs,
            availability: self.availability,
            watchdog,
            resilience: self.resilience,
        })
    }
}

impl Default for EvalBuilder {
    fn default() -> Self {
        Self::paper()
    }
}

/// One cell's outcome from [`Evaluator::evaluate_cells`]: the design's
/// evaluation, or the isolated error that degraded it (panic, deadline,
/// infeasible QoS) while the rest of the sweep completed.
#[derive(Debug)]
pub struct CellOutcome {
    /// Input-order index of the design.
    pub index: usize,
    /// The design's name.
    pub name: String,
    /// The evaluation, or the isolated per-cell error.
    pub result: Result<DesignEval, WcsError>,
}

impl CellOutcome {
    /// True when the cell evaluated cleanly.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }
}

impl fmt::Display for CellOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.result {
            Ok(_) => write!(f, "cell {} '{}': ok", self.index, self.name),
            Err(e) => write!(f, "cell {} '{}': DEGRADED — {e}", self.index, self.name),
        }
    }
}

/// The evaluation of one design: per-workload performance plus the TCO
/// report.
#[derive(Debug, Clone)]
pub struct DesignEval {
    /// Design name.
    pub name: String,
    /// Per-workload performance (workload-defined units).
    pub perf: BTreeMap<WorkloadId, f64>,
    /// The priced bill of materials.
    pub report: TcoReport,
    /// Rack density of the design's packaging.
    pub systems_per_rack: u32,
    /// The fault burden the evaluator was configured with, if any,
    /// carried along so availability-adjusted metrics use the same
    /// model the evaluation ran under.
    pub availability: Option<AvailabilityModel>,
}

impl DesignEval {
    /// Efficiency bundle for one workload.
    ///
    /// # Panics
    /// Panics if the workload was not evaluated.
    pub fn efficiency(&self, id: WorkloadId) -> Efficiency {
        Efficiency::new(self.perf[&id], self.report.clone())
    }

    /// Efficiency burdened with the evaluator's fault model (perfect
    /// availability when none was configured) over `years` of
    /// operation.
    ///
    /// # Errors
    /// Rejects a non-positive depreciation period.
    ///
    /// # Panics
    /// Panics if the workload was not evaluated.
    pub fn available_efficiency(
        &self,
        id: WorkloadId,
        years: f64,
    ) -> Result<AvailableEfficiency, ConfigError> {
        AvailableEfficiency::new(
            self.efficiency(id),
            self.availability.unwrap_or_else(AvailabilityModel::perfect),
            years,
        )
    }

    /// Compares this design against a baseline, workload by workload.
    pub fn compare(&self, baseline: &DesignEval) -> Comparison {
        let mut rows = Vec::new();
        for id in WorkloadId::ALL {
            let rel = self.efficiency(id).relative_to(&baseline.efficiency(id));
            rows.push(ComparisonRow {
                workload: id,
                perf: rel.perf,
                perf_per_inf: rel.perf_per_inf,
                perf_per_watt: rel.perf_per_watt,
                perf_per_pc: rel.perf_per_pc,
                perf_per_tco: rel.perf_per_tco,
            });
        }
        Comparison {
            design: self.name.clone(),
            baseline: baseline.name.clone(),
            rows,
        }
    }
}

/// One workload's relative metrics in a design comparison.
#[derive(Debug, Clone, Copy)]
pub struct ComparisonRow {
    /// The workload.
    pub workload: WorkloadId,
    /// Relative performance.
    pub perf: f64,
    /// Relative Perf/Inf-$.
    pub perf_per_inf: f64,
    /// Relative Perf/W.
    pub perf_per_watt: f64,
    /// Relative Perf/P&C-$.
    pub perf_per_pc: f64,
    /// Relative Perf/TCO-$.
    pub perf_per_tco: f64,
}

/// A design-vs-baseline comparison across the suite (one of Figure 5's
/// groups).
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Name of the compared design.
    pub design: String,
    /// Name of the baseline.
    pub baseline: String,
    /// Per-workload rows.
    pub rows: Vec<ComparisonRow>,
}

impl Comparison {
    /// Harmonic mean across workloads of one metric selected by `f`.
    pub fn hmean(&self, f: impl Fn(&ComparisonRow) -> f64) -> f64 {
        let vals: Vec<f64> = self.rows.iter().map(f).collect();
        harmonic_mean(&vals).unwrap_or(f64::NAN)
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} vs {}", self.design, self.baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcs_platforms::PlatformId;

    #[test]
    fn baseline_self_comparison_is_unity() {
        let eval = Evaluator::quick();
        let b = eval
            .evaluate(&DesignPoint::baseline(PlatformId::Desk))
            .unwrap();
        let cmp = b.compare(&b);
        for row in &cmp.rows {
            assert!((row.perf - 1.0).abs() < 1e-9);
            assert!((row.perf_per_tco - 1.0).abs() < 1e-9);
        }
        assert!((cmp.hmean(|r| r.perf) - 1.0).abs() < 1e-9);
    }

    /// Memoization must not change a single bit of any evaluation: the
    /// N2 design exercises all three caches (storage replay, memory
    /// replay, performance points).
    #[test]
    fn memoized_evaluation_is_bit_identical() {
        let cold = Evaluator::builder().quick().memo(false).build().unwrap();
        let warm = Evaluator::quick();
        let design = DesignPoint::n2();
        let a = cold.evaluate(&design).unwrap();
        let b = warm.evaluate(&design).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // A warm re-evaluation is answered from the caches, identically.
        let c = warm.evaluate(&design).unwrap();
        assert_eq!(format!("{a:?}"), format!("{c:?}"));
        assert!(warm.memo.stats().hits > 0, "{:?}", warm.memo.stats());
        assert_eq!(cold.memo.stats().hits, 0);
    }

    /// The builder path is the only construction surface now that the
    /// deprecated `with_pool`/`with_memo` shims are gone: pin that every
    /// builder combination (threads, memo, pre-built pool) stays
    /// bit-identical to the plain quick evaluator.
    #[test]
    fn builder_paths_are_bit_identical() {
        let design = DesignPoint::n2();
        let want = format!("{:?}", Evaluator::quick().evaluate(&design).unwrap());
        let via_threads = Evaluator::builder()
            .quick()
            .threads(2)
            .unwrap()
            .memo(false)
            .build()
            .unwrap()
            .evaluate(&design)
            .unwrap();
        assert_eq!(want, format!("{via_threads:?}"));
        let via_pool = Evaluator::builder()
            .quick()
            .pool(ThreadPool::new(4).unwrap())
            .memo(true)
            .build()
            .unwrap()
            .evaluate(&design)
            .unwrap();
        assert_eq!(want, format!("{via_pool:?}"));
    }

    #[test]
    fn builder_seed_overrides_measure_seed() {
        let eval = Evaluator::builder().quick().seed(42).build().unwrap();
        assert_eq!(eval.measure.seed, 42);
    }

    #[test]
    fn builder_rejects_bad_configs() {
        assert!(Evaluator::builder().threads(0).is_err());
        assert!(Evaluator::builder().storage_replay(0).build().is_err());
    }

    #[test]
    fn obs_enabled_evaluation_is_unchanged_and_records() {
        use wcs_simcore::obs::Registry;
        let design = DesignPoint::n2();
        let plain = Evaluator::quick().evaluate(&design).unwrap();
        let reg = Registry::new();
        let observed = Evaluator::builder()
            .quick()
            .obs(reg.clone())
            .build()
            .unwrap();
        let e = observed.evaluate(&design).unwrap();
        assert_eq!(format!("{plain:?}"), format!("{e:?}"));
        observed.export_obs();
        let snap = reg.snapshot();
        assert_eq!(snap.count("eval.designs"), Some(1));
        assert_eq!(snap.count("eval.workloads"), Some(5));
        assert!(snap.count("flashcache.replays").unwrap_or(0) > 0);
        assert!(snap.count("memshare.replays").unwrap_or(0) > 0);
        assert!(snap.metrics.contains_key("memo.perf.hits"));
    }

    #[test]
    fn faults_burden_taxes_efficiency_not_perf() {
        let model = AvailabilityModel::new(0.9, 2.0, 100.0).unwrap();
        let design = DesignPoint::baseline(wcs_platforms::PlatformId::Desk);
        let plain = Evaluator::quick().evaluate(&design).unwrap();
        let burdened = Evaluator::builder()
            .quick()
            .faults(model)
            .build()
            .unwrap()
            .evaluate(&design)
            .unwrap();
        // Raw perf identical; the availability-adjusted metric pays.
        assert_eq!(plain.perf, burdened.perf);
        let id = WorkloadId::Websearch;
        let adj = burdened.available_efficiency(id, 3.0).unwrap();
        assert!(adj.effective_perf() < plain.efficiency(id).perf);
        let perfect = plain.available_efficiency(id, 3.0).unwrap();
        assert_eq!(perfect.effective_perf(), plain.efficiency(id).perf);
    }

    /// A run interrupted mid-sweep and resumed from its journal must be
    /// bit-identical to an uninterrupted run — at every thread count,
    /// with the memo on and off, and even when the journal tail is torn.
    #[test]
    fn resumed_run_is_bit_identical_to_clean_run() {
        let designs = [
            DesignPoint::baseline(PlatformId::Desk),
            DesignPoint::baseline(PlatformId::Emb1),
        ];
        let path = std::env::temp_dir().join(format!(
            "wcs-core-resume-{}-{:?}.wal",
            std::process::id(),
            std::thread::current().id()
        ));
        for threads in [1usize, 2, 8] {
            for memo in [true, false] {
                std::fs::remove_file(&path).ok();
                let clean = Evaluator::builder()
                    .quick()
                    .threads(threads)
                    .unwrap()
                    .memo(memo)
                    .build()
                    .unwrap();
                let want: Vec<String> = clean
                    .evaluate_many(&designs)
                    .unwrap()
                    .iter()
                    .map(|e| format!("{e:?}"))
                    .collect();

                // "Crash": evaluate only the first design while journaling,
                // then tear the journal's tail.
                {
                    let interrupted = Evaluator::builder()
                        .quick()
                        .threads(threads)
                        .unwrap()
                        .memo(memo)
                        .resume(&path)
                        .build()
                        .unwrap();
                    interrupted.evaluate(&designs[0]).unwrap();
                    assert!(interrupted.memo.cells_journaled() > 0);
                }
                {
                    use std::io::Write as _;
                    let mut f = std::fs::OpenOptions::new()
                        .append(true)
                        .open(&path)
                        .unwrap();
                    f.write_all(&[0xAB; 11]).unwrap(); // torn half-record
                }

                // Resume: replays the journaled cells, recomputes the rest.
                let resumed = Evaluator::builder()
                    .quick()
                    .threads(threads)
                    .unwrap()
                    .memo(memo)
                    .resume(&path)
                    .build()
                    .unwrap();
                assert!(
                    resumed.memo.cells_replayed() > 0,
                    "threads={threads} memo={memo}"
                );
                let got: Vec<String> = resumed
                    .evaluate_many(&designs)
                    .unwrap()
                    .iter()
                    .map(|e| format!("{e:?}"))
                    .collect();
                assert_eq!(want, got, "threads={threads} memo={memo}");
                assert!(resumed.memo.resume_hits() > 0);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn builder_rejects_non_journal_resume_file() {
        let path =
            std::env::temp_dir().join(format!("wcs-core-badjournal-{}.wal", std::process::id()));
        std::fs::write(&path, b"not a journal at all").unwrap();
        let err = Evaluator::builder()
            .quick()
            .resume(&path)
            .build()
            .unwrap_err();
        assert!(matches!(err, WcsError::Journal(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    /// evaluate_cells isolates per-cell failures: a pre-cancelled token
    /// degrades the cell deterministically, other cells complete.
    #[test]
    fn cancelled_cell_degrades_without_aborting() {
        let eval = Evaluator::quick();
        let design = DesignPoint::baseline(PlatformId::Desk);
        let token = CancelToken::never();
        token.cancel();
        let err = eval.evaluate_cell(&design, &token).unwrap_err();
        assert!(matches!(err, WcsError::Deadline { .. }), "{err}");

        // The isolated sweep entry point returns per-cell outcomes in
        // order, all Ok for healthy designs, at every thread count.
        let designs = [
            DesignPoint::baseline(PlatformId::Desk),
            DesignPoint::baseline(PlatformId::Emb1),
            DesignPoint::baseline(PlatformId::Mobl),
        ];
        for threads in [1usize, 2, 8] {
            let eval = Evaluator::builder()
                .quick()
                .threads(threads)
                .unwrap()
                .build()
                .unwrap();
            let outcomes = eval.evaluate_cells(&designs);
            assert_eq!(outcomes.len(), 3);
            for (i, o) in outcomes.iter().enumerate() {
                assert_eq!(o.index, i);
                assert_eq!(o.name, designs[i].name);
                assert!(o.is_ok(), "{o}");
            }
        }
    }

    #[test]
    fn evaluation_covers_all_workloads() {
        let eval = Evaluator::quick();
        let e = eval
            .evaluate(&DesignPoint::baseline(PlatformId::Emb1))
            .unwrap();
        assert_eq!(e.perf.len(), 5);
        assert!(e.perf.values().all(|&v| v > 0.0));
    }
}

#[cfg(test)]
mod real_estate_tests {
    use super::*;
    use crate::designs::DesignPoint;
    use wcs_platforms::Component;

    #[test]
    fn real_estate_rewards_density() {
        let mut eval = Evaluator::quick();
        eval.real_estate = Some(RealEstateParams::default_2008());
        let srvr1 = eval.evaluate(&DesignPoint::baseline_srvr1()).unwrap();
        let n2 = eval.evaluate(&DesignPoint::n2()).unwrap();
        let floor_1u = srvr1.report.line(Component::RealEstate).unwrap().hw_usd;
        let floor_n2 = n2.report.line(Component::RealEstate).unwrap().hw_usd;
        // 40 vs 1280 systems per rack: a 32x smaller floor share.
        assert!(
            (floor_1u / floor_n2 - 32.0).abs() < 0.5,
            "{floor_1u} / {floor_n2}"
        );
    }

    #[test]
    fn default_scope_has_no_floor_line() {
        let eval = Evaluator::quick();
        let e = eval.evaluate(&DesignPoint::baseline_srvr1()).unwrap();
        assert!(e.report.line(Component::RealEstate).is_none());
    }
}
