//! The evaluation pipeline: performance simulation + cost model +
//! efficiency metrics for any design point.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use wcs_memshare::contention::SharedLink;
use wcs_memshare::slowdown::{estimate_slowdown_with, SlowdownConfig};
use wcs_platforms::Platform;
use wcs_simcore::stats::harmonic_mean;
use wcs_simcore::ThreadPool;
use wcs_tco::{BurdenedParams, Efficiency, RackConfig, RealEstateParams, TcoModel, TcoReport};
use wcs_workloads::disktrace::params_for as disk_params;
use wcs_workloads::perf::{measure_perf_with_demand, MeasureConfig, MeasureError};
use wcs_workloads::service::PlatformDemand;
use wcs_workloads::{suite, WorkloadId};

use crate::designs::DesignPoint;
use crate::memo::EvalMemo;

/// Evaluates design points: runs every workload's performance metric and
/// prices the design's bill of materials.
#[derive(Debug, Clone)]
pub struct Evaluator {
    /// Measurement effort.
    pub measure: MeasureConfig,
    /// Rack configuration for cost amortization.
    pub rack: RackConfig,
    /// Burdened power-and-cooling parameters before any cooling-design
    /// scaling.
    pub burdened: BurdenedParams,
    /// Disk-trace replay length for storage scenarios.
    pub storage_replay: u64,
    /// Optional real-estate pricing. `None` matches the paper's Figure 1
    /// cost scope exactly; `Some` adds an amortized floor-space line that
    /// rewards dense packaging.
    pub real_estate: Option<RealEstateParams>,
    /// Worker pool for fanning out independent evaluations. Serial by
    /// default so library results are reproducible on any machine by
    /// construction; any thread count produces bit-identical results
    /// because every task seeds its own RNG stream from the task index.
    pub pool: ThreadPool,
    /// Sub-simulation caches shared by every evaluation (and, through
    /// the `Arc`, by every clone of this evaluator). Enabled by default;
    /// memoized results are byte-identical to cold recomputation because
    /// each cached value is a pure function of its key.
    pub memo: Arc<EvalMemo>,
}

impl Evaluator {
    /// Full-accuracy evaluator with the paper's cost parameters.
    pub fn paper_default() -> Self {
        Evaluator {
            measure: MeasureConfig::default_accuracy(),
            rack: RackConfig::paper_default(),
            burdened: BurdenedParams::paper_default(),
            storage_replay: 120_000,
            real_estate: None,
            pool: ThreadPool::serial(),
            memo: Arc::new(EvalMemo::new()),
        }
    }

    /// Reduced-effort evaluator for tests and examples.
    pub fn quick() -> Self {
        Evaluator {
            measure: MeasureConfig::quick(),
            storage_replay: 40_000,
            ..Self::paper_default()
        }
    }

    /// Returns this evaluator with its work fanned out over `pool`.
    ///
    /// Results are bit-identical at any thread count: each (design,
    /// workload) task derives its RNG stream purely from the task, never
    /// from scheduling order.
    pub fn with_pool(mut self, pool: ThreadPool) -> Self {
        self.pool = pool;
        self
    }

    /// Returns this evaluator with memoization switched on or off (a
    /// fresh, empty memo either way). Disabled, every sub-simulation
    /// recomputes from its live generators — the pre-memoization cold
    /// path.
    pub fn with_memo(mut self, enabled: bool) -> Self {
        self.memo = Arc::new(EvalMemo::with_enabled(enabled));
        self
    }

    /// Evaluates a design point across the whole benchmark suite.
    ///
    /// # Errors
    /// Returns a [`MeasureError`] if any workload's QoS bound is
    /// infeasible on the design.
    pub fn evaluate(&self, design: &DesignPoint) -> Result<DesignEval, MeasureError> {
        let platform = design.effective_platform();
        let burdened = self
            .burdened
            .with_cooling_scale(design.cooling.cooling_scale);
        let tco_model = TcoModel::new(self.rack, burdened);
        let report = match &self.real_estate {
            None => tco_model.server_tco(&platform),
            Some(re) => {
                let mut bom = platform.bom().to_vec();
                bom.push(re.bom_item(design.cooling.systems_per_rack));
                tco_model.bom_tco(&platform.name, &bom)
            }
        };

        // Workloads are independent: each derives its seed from the shared
        // MeasureConfig, not from evaluation order, so fanning them out
        // over the pool cannot change any value.
        let values = self.pool.try_par_map(&WorkloadId::ALL, |_, &id| {
            self.workload_perf(design, &platform, id)
        })?;
        let perf: BTreeMap<WorkloadId, f64> = WorkloadId::ALL.into_iter().zip(values).collect();
        Ok(DesignEval {
            name: design.name.clone(),
            perf,
            report,
            systems_per_rack: design.cooling.systems_per_rack,
        })
    }

    /// Evaluates many design points, fanning the designs out over the
    /// pool. The returned evaluations are in input order and bit-identical
    /// to calling [`Evaluator::evaluate`] in a loop.
    ///
    /// Parallelism is applied across designs (each design evaluated
    /// serially inside its task) to keep the worker count bounded by the
    /// pool size.
    ///
    /// # Errors
    /// Returns the first (lowest-index) design's [`MeasureError`], exactly
    /// as the serial loop would.
    pub fn evaluate_many(&self, designs: &[DesignPoint]) -> Result<Vec<DesignEval>, MeasureError> {
        let inner = Evaluator {
            pool: ThreadPool::serial(),
            ..self.clone()
        };
        self.pool.try_par_map(designs, |_, d| inner.evaluate(d))
    }

    /// Performance of one workload on the design: applies the storage
    /// scenario's effective disk service and the memory-sharing slowdown
    /// before running the simulation.
    fn workload_perf(
        &self,
        design: &DesignPoint,
        platform: &Platform,
        id: WorkloadId,
    ) -> Result<f64, MeasureError> {
        let wl = suite::workload(id);
        let disk = design
            .storage
            .as_ref()
            .map(|s| s.disk.clone())
            .unwrap_or_else(|| design.platform.disk.clone());
        let mut demand = PlatformDemand::with_overrides(
            &wl,
            &design.platform,
            &disk,
            platform.memory.capacity_gib,
        );
        if let Some(scenario) = &design.storage {
            let stats = self.memo.storage().replay(
                &scenario.disk,
                scenario.flash.as_ref(),
                disk_params(id),
                self.measure.seed ^ 0xD15C,
                self.storage_replay,
            );
            demand.set_disk_secs(wl.demand.io_per_req * stats.mean_service_secs());
        }
        if let Some(ms) = &design.memshare {
            // First pass: fault rate at the uncontended link; second
            // pass folds the shared link's M/D/1 queueing delay back in.
            let base = estimate_slowdown_with(
                id,
                &SlowdownConfig {
                    local_fraction: ms.provisioning.local_fraction,
                    link: ms.link,
                    ..SlowdownConfig::paper_default()
                },
                self.memo.replay(),
            )
            .expect("memshare design has local_fraction in (0, 1]");
            let shared = SharedLink::new(ms.link, ms.servers_per_blade.max(1));
            let effective = shared.effective_link(base.faults_per_cpu_sec);
            let slowdown = 1.0 + base.faults_per_cpu_sec * effective.fault_latency_secs();
            demand.inflate_cpu(slowdown);
        }
        self.memo.perf(id, &demand, &self.measure, || {
            measure_perf_with_demand(&wl, &demand, &self.measure).map(|r| r.value)
        })
    }
}

impl Default for Evaluator {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The evaluation of one design: per-workload performance plus the TCO
/// report.
#[derive(Debug, Clone)]
pub struct DesignEval {
    /// Design name.
    pub name: String,
    /// Per-workload performance (workload-defined units).
    pub perf: BTreeMap<WorkloadId, f64>,
    /// The priced bill of materials.
    pub report: TcoReport,
    /// Rack density of the design's packaging.
    pub systems_per_rack: u32,
}

impl DesignEval {
    /// Efficiency bundle for one workload.
    ///
    /// # Panics
    /// Panics if the workload was not evaluated.
    pub fn efficiency(&self, id: WorkloadId) -> Efficiency {
        Efficiency::new(self.perf[&id], self.report.clone())
    }

    /// Compares this design against a baseline, workload by workload.
    pub fn compare(&self, baseline: &DesignEval) -> Comparison {
        let mut rows = Vec::new();
        for id in WorkloadId::ALL {
            let rel = self.efficiency(id).relative_to(&baseline.efficiency(id));
            rows.push(ComparisonRow {
                workload: id,
                perf: rel.perf,
                perf_per_inf: rel.perf_per_inf,
                perf_per_watt: rel.perf_per_watt,
                perf_per_pc: rel.perf_per_pc,
                perf_per_tco: rel.perf_per_tco,
            });
        }
        Comparison {
            design: self.name.clone(),
            baseline: baseline.name.clone(),
            rows,
        }
    }
}

/// One workload's relative metrics in a design comparison.
#[derive(Debug, Clone, Copy)]
pub struct ComparisonRow {
    /// The workload.
    pub workload: WorkloadId,
    /// Relative performance.
    pub perf: f64,
    /// Relative Perf/Inf-$.
    pub perf_per_inf: f64,
    /// Relative Perf/W.
    pub perf_per_watt: f64,
    /// Relative Perf/P&C-$.
    pub perf_per_pc: f64,
    /// Relative Perf/TCO-$.
    pub perf_per_tco: f64,
}

/// A design-vs-baseline comparison across the suite (one of Figure 5's
/// groups).
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Name of the compared design.
    pub design: String,
    /// Name of the baseline.
    pub baseline: String,
    /// Per-workload rows.
    pub rows: Vec<ComparisonRow>,
}

impl Comparison {
    /// Harmonic mean across workloads of one metric selected by `f`.
    pub fn hmean(&self, f: impl Fn(&ComparisonRow) -> f64) -> f64 {
        let vals: Vec<f64> = self.rows.iter().map(f).collect();
        harmonic_mean(&vals).unwrap_or(f64::NAN)
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} vs {}", self.design, self.baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcs_platforms::PlatformId;

    #[test]
    fn baseline_self_comparison_is_unity() {
        let eval = Evaluator::quick();
        let b = eval
            .evaluate(&DesignPoint::baseline(PlatformId::Desk))
            .unwrap();
        let cmp = b.compare(&b);
        for row in &cmp.rows {
            assert!((row.perf - 1.0).abs() < 1e-9);
            assert!((row.perf_per_tco - 1.0).abs() < 1e-9);
        }
        assert!((cmp.hmean(|r| r.perf) - 1.0).abs() < 1e-9);
    }

    /// Memoization must not change a single bit of any evaluation: the
    /// N2 design exercises all three caches (storage replay, memory
    /// replay, performance points).
    #[test]
    fn memoized_evaluation_is_bit_identical() {
        let cold = Evaluator::quick().with_memo(false);
        let warm = Evaluator::quick();
        let design = DesignPoint::n2();
        let a = cold.evaluate(&design).unwrap();
        let b = warm.evaluate(&design).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // A warm re-evaluation is answered from the caches, identically.
        let c = warm.evaluate(&design).unwrap();
        assert_eq!(format!("{a:?}"), format!("{c:?}"));
        assert!(warm.memo.stats().hits > 0, "{:?}", warm.memo.stats());
        assert_eq!(cold.memo.stats().hits, 0);
    }

    #[test]
    fn evaluation_covers_all_workloads() {
        let eval = Evaluator::quick();
        let e = eval
            .evaluate(&DesignPoint::baseline(PlatformId::Emb1))
            .unwrap();
        assert_eq!(e.perf.len(), 5);
        assert!(e.perf.values().all(|&v| v > 0.0));
    }
}

#[cfg(test)]
mod real_estate_tests {
    use super::*;
    use crate::designs::DesignPoint;
    use wcs_platforms::Component;

    #[test]
    fn real_estate_rewards_density() {
        let mut eval = Evaluator::quick();
        eval.real_estate = Some(RealEstateParams::default_2008());
        let srvr1 = eval.evaluate(&DesignPoint::baseline_srvr1()).unwrap();
        let n2 = eval.evaluate(&DesignPoint::n2()).unwrap();
        let floor_1u = srvr1.report.line(Component::RealEstate).unwrap().hw_usd;
        let floor_n2 = n2.report.line(Component::RealEstate).unwrap().hw_usd;
        // 40 vs 1280 systems per rack: a 32x smaller floor share.
        assert!(
            (floor_1u / floor_n2 - 32.0).abs() < 0.5,
            "{floor_1u} / {floor_n2}"
        );
    }

    #[test]
    fn default_scope_has_no_floor_line() {
        let eval = Evaluator::quick();
        let e = eval.evaluate(&DesignPoint::baseline_srvr1()).unwrap();
        assert!(e.report.line(Component::RealEstate).is_none());
    }
}
