//! Text rendering of comparison tables (the paper's figure data).

use std::fmt::Write as _;

use crate::evaluate::Comparison;

/// Renders one comparison as a text table with the paper's four metric
/// columns plus the harmonic-mean row.
///
/// # Example
/// ```no_run
/// use wcs_core::{designs::DesignPoint, evaluate::Evaluator, report};
/// let eval = Evaluator::quick();
/// let base = eval.evaluate(&DesignPoint::baseline_srvr1()).unwrap();
/// let n1 = eval.evaluate(&DesignPoint::n1()).unwrap();
/// println!("{}", report::render_comparison(&n1.compare(&base)));
/// ```
pub fn render_comparison(cmp: &Comparison) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} relative to {} (100% = parity)",
        cmp.design, cmp.baseline
    );
    let _ = writeln!(
        out,
        "  {:<12} {:>8} {:>12} {:>8} {:>12} {:>12}",
        "workload", "Perf", "Perf/Inf-$", "Perf/W", "Perf/P&C-$", "Perf/TCO-$"
    );
    for row in &cmp.rows {
        let _ = writeln!(
            out,
            "  {:<12} {:>7.0}% {:>11.0}% {:>7.0}% {:>11.0}% {:>11.0}%",
            row.workload.label(),
            row.perf * 100.0,
            row.perf_per_inf * 100.0,
            row.perf_per_watt * 100.0,
            row.perf_per_pc * 100.0,
            row.perf_per_tco * 100.0
        );
    }
    let _ = writeln!(
        out,
        "  {:<12} {:>7.0}% {:>11.0}% {:>7.0}% {:>11.0}% {:>11.0}%",
        "HMean",
        cmp.hmean(|r| r.perf) * 100.0,
        cmp.hmean(|r| r.perf_per_inf) * 100.0,
        cmp.hmean(|r| r.perf_per_watt) * 100.0,
        cmp.hmean(|r| r.perf_per_pc) * 100.0,
        cmp.hmean(|r| r.perf_per_tco) * 100.0
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::ComparisonRow;
    use wcs_workloads::WorkloadId;

    #[test]
    fn renders_rows_and_hmean() {
        let cmp = Comparison {
            design: "N9".into(),
            baseline: "srvr1".into(),
            rows: vec![ComparisonRow {
                workload: WorkloadId::Websearch,
                perf: 0.5,
                perf_per_inf: 2.0,
                perf_per_watt: 3.0,
                perf_per_pc: 4.0,
                perf_per_tco: 2.5,
            }],
        };
        let s = render_comparison(&cmp);
        assert!(s.contains("N9 relative to srvr1"));
        assert!(s.contains("websearch"));
        assert!(s.contains("50%"));
        assert!(s.contains("250%"));
        assert!(s.contains("HMean"));
    }
}

/// Renders a full design evaluation as markdown: performance list, TCO
/// table, and density — ready to paste into a document.
///
/// # Example
/// ```no_run
/// use wcs_core::{designs::DesignPoint, evaluate::Evaluator, report};
/// let e = Evaluator::quick().evaluate(&DesignPoint::n2()).unwrap();
/// println!("{}", report::render_eval_markdown(&e));
/// ```
pub fn render_eval_markdown(eval: &crate::evaluate::DesignEval) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Design: {}", eval.name);
    let _ = writeln!(
        out,
        "\nPackaging density: **{} systems/rack**\n",
        eval.systems_per_rack
    );
    let _ = writeln!(out, "| workload | performance |");
    let _ = writeln!(out, "|---|---:|");
    for (id, perf) in &eval.perf {
        let _ = writeln!(out, "| {} | {perf:.2} |", id.label());
    }
    let _ = writeln!(out);
    out.push_str(&wcs_tco::render::report_markdown(&eval.report));
    out
}

#[cfg(test)]
mod markdown_tests {
    use crate::designs::DesignPoint;
    use crate::evaluate::Evaluator;

    #[test]
    fn eval_markdown_contains_sections() {
        let e = Evaluator::quick()
            .evaluate(&DesignPoint::baseline(wcs_platforms::PlatformId::Desk))
            .unwrap();
        let md = super::render_eval_markdown(&e);
        assert!(md.contains("## Design: desk"));
        assert!(md.contains("| websearch |"));
        assert!(md.contains("| CPU |"));
        assert!(md.contains("systems/rack"));
    }
}
