//! Scenario evaluation: registered workloads under traffic packs.
//!
//! [`Evaluator::evaluate_scenario`] is the open-world counterpart of
//! [`Evaluator::evaluate`]: instead of iterating the closed paper suite
//! it resolves one [`ScenarioSpec`] through the workload registry and
//! runs whatever family is registered there — a paper benchmark (via the
//! exact pre-registry code path, so `TrafficPack::Steady` results are
//! bit-identical to [`Evaluator::evaluate`]), a FaaS tenant mix whose
//! warm pool trades memory-blade capacity against cold starts, or a DAG
//! analytics job with stragglers.
//!
//! Non-steady packs additionally render a [`wcs_simserver::RateProfile`]
//! at the measured steady capacity and drive the open-loop simulator
//! with it, reporting the tail behaviour the paper's sustained-load
//! methodology cannot see (overload during a flash crowd, the latency
//! cost of a failover surge).
//!
//! Everything is deterministic: a [`ScenarioEval`]'s `Debug` render is
//! bit-identical across thread counts, event-queue kinds, and memo
//! on/off, because it contains only pure functions of the spec, the
//! design, and the measurement config (queue occupancy counters — which
//! legitimately differ by queue kind — stay out of the render and feed
//! observability only).

use std::fmt;

use wcs_simcore::event::QueueObs;
use wcs_simcore::faults::{self, FaultProcess};
use wcs_simcore::memo::MemoKey;
use wcs_simcore::{ConfigError, SimDuration, SimRng};
use wcs_simserver::{
    run_open_loop_profiled, run_open_loop_resilient, AdmissionConfig, BreakerConfig, QosSpec,
    RateProfile, ResilienceConfig, RetryBudgetConfig, RetryPolicy,
};
use wcs_tco::{AvailabilityModel, AvailableEfficiency, Efficiency, TcoReport};
use wcs_workloads::perf::{measure_perf_with_demand, MeasureConfig};
use wcs_workloads::registry::{self, Family};
use wcs_workloads::service::PlatformDemand;
use wcs_workloads::{dag, faas, Metric, ScenarioSpec, TrafficPack, WorkloadId};

use crate::designs::DesignPoint;
use crate::error::WcsError;
use crate::evaluate::Evaluator;
use crate::memo::PerfSample;

/// A memoized open-loop traffic run: the deterministic evaluation plus
/// the queue-kind-dependent occupancy counters, cached together so the
/// `queue.*` observability series stay identical with the memo on or
/// off.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSample {
    /// The pure-numeric evaluation (rendered into [`ScenarioEval`]).
    pub eval: TrafficEval,
    /// Event-queue occupancy of the run. Excluded from every render:
    /// calendar/heap counters differ by queue kind by design.
    pub queue: QueueObs,
}

/// What an open-loop traffic-pack run measured. Every field is a pure
/// function of the scenario, design, and measurement config — safe to
/// render and to compare byte-for-byte across thread counts and queue
/// kinds.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficEval {
    /// The pack's catalog name.
    pub pack: &'static str,
    /// Offered load at the profile's peak segment, requests/second.
    pub offered_peak_rps: f64,
    /// Time-average offered load over one profile cycle, requests/second.
    pub offered_mean_rps: f64,
    /// Requests completed in the measurement window.
    pub completed: u64,
    /// Sustained completion rate over the window, requests/second.
    pub throughput_rps: f64,
    /// Mean request latency, seconds.
    pub mean_latency_secs: f64,
    /// Median request latency, seconds.
    pub p50_latency_secs: f64,
    /// 95th-percentile request latency, seconds.
    pub p95_latency_secs: f64,
    /// 99th-percentile request latency, seconds.
    pub p99_latency_secs: f64,
    /// Fraction of measured requests meeting the workload's QoS bound
    /// (`None` for batch metrics, which have no per-request bound).
    pub qos_attainment: Option<f64>,
    /// Busiest-resource utilization over the run.
    pub peak_utilization: f64,
}

impl TrafficEval {
    /// Requests that missed the QoS bound (zero for batch metrics).
    pub fn qos_violations(&self) -> u64 {
        match self.qos_attainment {
            Some(att) => ((1.0 - att) * self.completed as f64).round() as u64,
            None => 0,
        }
    }
}

/// A chaos plan: seeded blade outages scaled to the traffic run's
/// expected span and, optionally, co-varied with its rate profile so
/// faults concentrate where offered load is high (the compound failure
/// mode — flash crowd plus blade loss — that steady-state availability
/// math averages away).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    /// Mean time to failure, as a fraction of the expected run span.
    pub mttf_span: f64,
    /// Mean repair time, as a fraction of the expected run span.
    pub mttr_span: f64,
    /// Thin the fault hazard by the traffic profile's rate multipliers:
    /// outages become proportionally likelier in high-traffic segments.
    /// Flat profiles are unaffected (hazard thinning at full weight
    /// consumes no draw).
    pub co_vary: bool,
}

impl ChaosPlan {
    /// The standard wave: roughly one-to-two blade outages per run, each
    /// taking out the blade for ~8% of the span, landing preferentially
    /// under peak load.
    pub fn blade_fault() -> Self {
        ChaosPlan {
            mttf_span: 0.45,
            mttr_span: 0.08,
            co_vary: true,
        }
    }

    fn validate(&self) {
        assert!(
            self.mttf_span.is_finite() && self.mttf_span > 0.0,
            "chaos MTTF fraction must be positive"
        );
        assert!(
            self.mttr_span.is_finite() && self.mttr_span > 0.0,
            "chaos MTTR fraction must be positive"
        );
    }
}

/// Capacity-relative resilience layer for scenario traffic runs.
///
/// Every knob scales off the design's measured steady capacity, so one
/// spec is meaningful across designs whose capacities differ by an
/// order of magnitude; [`ResilienceSpec::config_at`] renders it into
/// the absolute [`wcs_simserver::ResilienceConfig`] for a given run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceSpec {
    /// Admission rate as a multiple of steady capacity (`None` disables
    /// admission control).
    pub admission_x: Option<f64>,
    /// Fraction of arrivals classed low priority (sheddable first).
    pub low_fraction: f64,
    /// Retry-budget accrual ratio (`None` disables the budget, leaving
    /// retries bounded only by `max_retries`).
    pub retry_ratio: Option<f64>,
    /// Enable the circuit breaker in front of the blade.
    pub breaker: bool,
    /// Per-request retry ceiling for failed attempts.
    pub max_retries: u32,
    /// Seeded fault waves to run under (`None` for fault-free runs).
    pub chaos: Option<ChaosPlan>,
}

impl ResilienceSpec {
    /// The standard layer: 1.2x admission with a 20% low-priority
    /// class, a 10% retry budget, breakers on, and the co-varying
    /// blade-fault chaos wave.
    pub fn standard() -> Self {
        ResilienceSpec {
            admission_x: Some(1.2),
            low_fraction: 0.2,
            retry_ratio: Some(0.1),
            breaker: true,
            max_retries: 3,
            chaos: Some(ChaosPlan::blade_fault()),
        }
    }

    /// Overrides the retry-budget ratio.
    #[must_use]
    pub fn with_retry_ratio(mut self, ratio: f64) -> Self {
        self.retry_ratio = Some(ratio);
        self
    }

    /// Renders the capacity-relative spec into absolute simulator
    /// configuration for a run at `capacity_rps` whose expected length
    /// is `span`.
    pub fn config_at(&self, capacity_rps: f64, span: SimDuration) -> ResilienceConfig {
        ResilienceConfig {
            admission: self.admission_x.map(|x| AdmissionConfig {
                rate_rps: capacity_rps * x,
                burst: (capacity_rps * 0.25).max(8.0),
                low_reserve: (capacity_rps * 0.05).max(2.0),
                low_fraction: self.low_fraction,
            }),
            retry_budget: self.retry_ratio.map(|ratio| RetryBudgetConfig {
                ratio,
                initial: 8.0,
                cap: 64.0,
            }),
            breaker: self.breaker.then(|| BreakerConfig {
                failure_threshold: 3,
                open_for: SimDuration::from_secs_f64((span.as_secs_f64() * 0.02).max(1e-6)),
                jitter: 0.2,
                half_open_probes: 2,
            }),
        }
    }

    /// Folds every field into a memo key; the key changes whenever any
    /// knob does, so distinct specs never alias a cache entry.
    fn fold_key(&self, key: MemoKey) -> MemoKey {
        let key = match self.admission_x {
            None => key.push_u64(0),
            Some(x) => key.push_u64(1).push_f64(x),
        };
        let key = key.push_f64(self.low_fraction);
        let key = match self.retry_ratio {
            None => key.push_u64(0),
            Some(r) => key.push_u64(1).push_f64(r),
        };
        let key = key.push_bool(self.breaker).push_u32(self.max_retries);
        match self.chaos {
            None => key.push_u64(0),
            Some(c) => key
                .push_u64(1)
                .push_f64(c.mttf_span)
                .push_f64(c.mttr_span)
                .push_bool(c.co_vary),
        }
    }
}

/// What the resilience layer did during a traffic run: SLO attainment,
/// shed/goodput accounting, retry-budget spend, breaker activity, and
/// the chaos wave it ran under. Every field is a pure function of the
/// scenario, design, measurement config, and [`ResilienceSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceEval {
    /// Logical requests that reached the admission point (whole run).
    pub offered: u64,
    /// Requests admitted past the token bucket (whole run).
    pub admitted: u64,
    /// Requests shed by admission control (whole run).
    pub shed: u64,
    /// Shed fraction of offered load.
    pub shed_fraction: f64,
    /// Successfully completed requests per second over the measurement
    /// window.
    pub goodput_rps: f64,
    /// Requests dropped after exhausting retries, measurement window.
    pub dropped: u64,
    /// Completed / (completed + dropped) over the measurement window.
    pub availability: f64,
    /// Retry attempts granted by the budget (whole run).
    pub retries_spent: u64,
    /// Retry attempts the budget refused (whole run).
    pub retries_denied: u64,
    /// (admitted + retries) / admitted — the work-amplification factor
    /// the budget holds down under concurrent faults.
    pub retry_amplification: f64,
    /// Breaker trips across the run.
    pub breaker_trips: u64,
    /// Requests failed fast by an open breaker (no backend attempt).
    pub breaker_fast_fails: u64,
    /// Fraction of the expected span the breaker spent open.
    pub breaker_open_fraction: f64,
    /// The latency SLO scored against, seconds (the workload's QoS
    /// bound, or 10x its unloaded latency for batch metrics).
    pub slo_secs: f64,
    /// p99 latency over the SLO (>1 means the tail violates it).
    pub p99_over_slo: f64,
    /// Fraction of measured completions at or under the SLO.
    pub slo_attainment: f64,
    /// Outage windows the chaos plan scheduled within the horizon.
    pub chaos_outages: u32,
    /// Fraction of the expected span the blade spent down.
    pub chaos_down_fraction: f64,
}

/// A memoized resilient traffic run: the traffic sample plus the
/// resilience evaluation, cached together in their own lane so
/// resilient runs never alias plain traffic runs.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientSample {
    /// The open-loop traffic measurements (pack, latency, throughput).
    pub traffic: TrafficSample,
    /// What the resilience layer did.
    pub eval: ResilienceEval,
}

/// Family-specific detail of a scenario evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum FamilyEval {
    /// A paper benchmark ran through the exact pre-registry pipeline.
    Paper {
        /// Which of the five suite workloads.
        workload: WorkloadId,
    },
    /// A FaaS tenant mix: the warm pool the design's memory could hold
    /// and the cold-start burden the remainder imposed.
    Faas {
        /// Warm-pool capacity: local keep-alive DRAM plus the memory
        /// blade's share when the design attaches one, GiB.
        pool_gib: f64,
        /// Functions whose snapshots stayed resident.
        resident_functions: u32,
        /// Fraction of invocations served warm.
        warm_fraction: f64,
        /// Fraction of invocations paying a cold start.
        cold_fraction: f64,
        /// CPU inflation the cold starts imposed on the warm demand.
        cpu_inflation: f64,
    },
    /// A DAG analytics job under list scheduling.
    Dag {
        /// Tasks executed.
        tasks: u32,
        /// Straggling tasks among them.
        stragglers: u32,
        /// Service-weighted critical path, seconds.
        critical_path_secs: f64,
        /// Achieved makespan, seconds.
        makespan_secs: f64,
    },
}

/// The evaluation of one scenario on one design: the steady metric, the
/// family detail, the optional traffic-pack run, and the priced bill of
/// materials.
#[derive(Clone)]
pub struct ScenarioEval {
    /// Design name.
    pub design: String,
    /// The scenario, rendered `workload/pack`.
    pub scenario: String,
    /// The steady performance metric (the same value
    /// [`Evaluator::evaluate`] reports for paper workloads).
    pub value: f64,
    /// Unit label ("RPS" or "1/s").
    pub unit: &'static str,
    /// Family-specific detail.
    pub family: FamilyEval,
    /// The open-loop traffic run, for non-steady packs (always present
    /// when the evaluator carries a [`ResilienceSpec`]).
    pub traffic: Option<TrafficEval>,
    /// The resilience evaluation, when the evaluator carries a
    /// [`ResilienceSpec`].
    pub resilience: Option<ResilienceEval>,
    /// The priced bill of materials.
    pub report: TcoReport,
    /// The evaluator's fault burden, carried for
    /// [`ScenarioEval::available_efficiency`].
    pub availability: Option<AvailabilityModel>,
}

// Hand-written so the `resilience` field only appears when populated:
// evaluators without a resilience spec render byte-identically to
// builds that predate the field (the determinism fixture pins this).
impl fmt::Debug for ScenarioEval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("ScenarioEval");
        d.field("design", &self.design)
            .field("scenario", &self.scenario)
            .field("value", &self.value)
            .field("unit", &self.unit)
            .field("family", &self.family)
            .field("traffic", &self.traffic);
        if let Some(res) = &self.resilience {
            d.field("resilience", res);
        }
        d.field("report", &self.report)
            .field("availability", &self.availability)
            .finish()
    }
}

impl ScenarioEval {
    /// Efficiency bundle for the steady metric.
    pub fn efficiency(&self) -> Efficiency {
        Efficiency::new(self.value, self.report.clone())
    }

    /// Efficiency burdened with the evaluator's fault model (perfect
    /// availability when none was configured) over `years` of operation.
    ///
    /// # Errors
    /// Rejects a non-positive depreciation period.
    pub fn available_efficiency(&self, years: f64) -> Result<AvailableEfficiency, ConfigError> {
        AvailableEfficiency::new(
            self.efficiency(),
            self.availability.unwrap_or_else(AvailabilityModel::perfect),
            years,
        )
    }
}

impl fmt::Display for ScenarioEval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: {:.2} {}",
            self.scenario, self.design, self.value, self.unit
        )
    }
}

impl Evaluator {
    /// Evaluates one scenario on one design: resolves the workload
    /// through the registry, measures its steady metric through the
    /// family's pipeline (storage scenario and memory-sharing slowdown
    /// included, exactly as [`Evaluator::evaluate`] applies them), and —
    /// for non-steady packs — drives the open-loop simulator with the
    /// pack's rate profile rendered at the measured capacity.
    ///
    /// Paper workloads under [`TrafficPack::Steady`] share the suite's
    /// memo lane and are bit-identical to [`Evaluator::evaluate`];
    /// FaaS/DAG measurements and traffic runs cache in their own
    /// `scenario-*` lanes.
    ///
    /// # Errors
    /// [`WcsError::UnknownScenario`] when the name is not registered
    /// (the error lists every registered name);
    /// [`WcsError::Measure`] when the QoS bound is infeasible.
    pub fn evaluate_scenario(
        &self,
        design: &DesignPoint,
        spec: &ScenarioSpec,
    ) -> Result<ScenarioEval, WcsError> {
        let entry = registry::resolve(spec.workload).ok_or_else(|| WcsError::UnknownScenario {
            name: spec.workload.name().to_owned(),
            known: registry::names(),
        })?;
        let platform = design.effective_platform();
        let report = self.design_report(design, &platform);
        let wl = &entry.workload;

        let (sample, family, demand) = match &entry.family {
            // The paper path replicates `workload_perf` exactly — same
            // demand pipeline, same "eval-perf" memo lane and key — so a
            // steady paper scenario cannot differ from the closed API by
            // a single bit (and shares its cache entries).
            Family::Paper(id) => {
                let demand = self.demand_for(design, &platform, wl, *id);
                let s = self.memo.perf(*id, &demand, &self.measure, || {
                    measure_perf_with_demand(wl, &demand, &self.measure).map(|r| PerfSample {
                        value: r.value,
                        queue: r.queue,
                    })
                })?;
                (s, FamilyEval::Paper { workload: *id }, demand)
            }
            Family::Faas(params) => {
                let mut demand = self.demand_for(design, &platform, wl, wl.id);
                // The warm pool is the local keep-alive budget plus the
                // memory blade's share when the design attaches one:
                // disaggregated capacity buys down the cold-start rate.
                let pool_gib = params.keepalive_local_gib
                    + design.memshare.as_ref().map_or(0.0, |ms| {
                        design.platform.memory.capacity_gib * ms.provisioning.remote_fraction
                    });
                let pool = faas::warm_pool(params, pool_gib);
                let inflation =
                    faas::cold_inflation(params, wl.demand.cpu_ghz_s, pool.cold_fraction());
                demand.inflate_cpu(inflation);
                let key = MemoKey::new("scenario-perf")
                    .push(&spec.workload)
                    .push(params)
                    .push(&demand)
                    .push(&self.measure)
                    .finish();
                let s = self.memo.scenario_perf(key, || {
                    measure_perf_with_demand(wl, &demand, &self.measure).map(|r| PerfSample {
                        value: r.value,
                        queue: r.queue,
                    })
                })?;
                let family = FamilyEval::Faas {
                    pool_gib,
                    resident_functions: pool.resident_functions,
                    warm_fraction: pool.warm_fraction,
                    cold_fraction: pool.cold_fraction(),
                    cpu_inflation: inflation,
                };
                (s, family, demand)
            }
            Family::Dag(params) => {
                let demand = self.demand_for(design, &platform, wl, wl.id);
                let mean_task = SimDuration::from_secs_f64(demand.single_client_latency_secs());
                let slots = params.slots_per_core * demand.server_spec().cores;
                // Generation + scheduling are cheap pure functions, so
                // they recompute unconditionally (keeping the family
                // detail available on cache hits); the memo lane still
                // serves the sample for hit/miss parity with FaaS.
                let stats = dag::execute(
                    &dag::generate(params, mean_task, self.measure.seed ^ 0xDA6),
                    slots,
                );
                let key = MemoKey::new("scenario-perf")
                    .push(&spec.workload)
                    .push(params)
                    .push(&demand)
                    .push(&self.measure)
                    .finish();
                let s = self.memo.scenario_perf(key, || {
                    Ok(PerfSample {
                        value: stats.perf(),
                        queue: stats.queue,
                    })
                })?;
                let family = FamilyEval::Dag {
                    tasks: stats.tasks,
                    stragglers: stats.stragglers,
                    critical_path_secs: stats.critical_path_secs,
                    makespan_secs: stats.makespan_secs,
                };
                (s, family, demand)
            }
        };

        let unit = match wl.metric {
            Metric::ThroughputQos(_) => "RPS",
            Metric::Batch { .. } => "1/s",
        };
        // Non-steady packs replay the pack's rate profile at the
        // measured steady capacity through the open loop. An evaluator
        // carrying a resilience spec instead routes every pack — steady
        // included, as a constant profile — through the resilient open
        // loop, co-varying the chaos wave with the profile.
        let (traffic, resilience) = if let Some(rspec) = &self.resilience {
            let (capacity_rps, qos) = match wl.metric {
                Metric::ThroughputQos(q) => (sample.value, Some(q)),
                Metric::Batch { tasks, .. } => (sample.value * f64::from(tasks), None),
            };
            let total = self.measure.warmup + self.measure.measured;
            let profile = match spec.traffic {
                TrafficPack::Steady => RateProfile::constant(),
                pack => pack
                    .profile(capacity_rps, total)
                    .expect("non-steady packs render a profile"),
            };
            let key = rspec
                .fold_key(
                    MemoKey::new("scenario-resilience")
                        .push(spec)
                        .push(&demand)
                        .push(&self.measure)
                        .push_f64(capacity_rps),
                )
                .finish();
            let rs = self.memo.resilient(key, || {
                run_resilient_traffic(
                    &demand,
                    qos,
                    capacity_rps,
                    spec.traffic.label(),
                    &profile,
                    &self.measure,
                    rspec,
                )
            });
            // Exact-class: every count comes out of the (possibly
            // cached) sample, never from worker scheduling.
            self.obs.counter("scenario.traffic_runs").inc();
            self.obs
                .counter("scenario.requests")
                .add(rs.traffic.eval.completed);
            self.obs
                .counter("scenario.qos_violations")
                .add(rs.traffic.eval.qos_violations());
            self.obs.counter("resilience.runs").inc();
            self.obs.counter("resilience.requests").add(rs.eval.offered);
            self.obs.counter("resilience.shed").add(rs.eval.shed);
            self.obs
                .counter("resilience.retries_spent")
                .add(rs.eval.retries_spent);
            self.obs
                .counter("resilience.retries_denied")
                .add(rs.eval.retries_denied);
            self.obs
                .counter("resilience.breaker_trips")
                .add(rs.eval.breaker_trips);
            self.obs
                .counter("resilience.fast_fails")
                .add(rs.eval.breaker_fast_fails);
            rs.traffic.queue.export(&self.obs);
            (Some(rs.traffic.eval), Some(rs.eval))
        } else {
            let traffic = match spec.traffic {
                TrafficPack::Steady => None,
                pack => {
                    let (capacity_rps, qos) = match wl.metric {
                        Metric::ThroughputQos(q) => (sample.value, Some(q)),
                        // Batch metrics complete `tasks` tasks per makespan:
                        // the per-task completion rate is the open-loop
                        // capacity analogue.
                        Metric::Batch { tasks, .. } => (sample.value * f64::from(tasks), None),
                    };
                    let total = self.measure.warmup + self.measure.measured;
                    let profile = pack
                        .profile(capacity_rps, total)
                        .expect("non-steady packs render a profile");
                    let key = MemoKey::new("scenario-traffic")
                        .push(spec)
                        .push(&demand)
                        .push(&self.measure)
                        .push_f64(capacity_rps)
                        .finish();
                    let ts = self.memo.traffic(key, || {
                        run_traffic(
                            &demand,
                            qos,
                            capacity_rps,
                            pack.label(),
                            &profile,
                            &self.measure,
                        )
                    });
                    // Exact-class: completed/violation counts come out of the
                    // (possibly cached) sample, never from worker scheduling.
                    self.obs.counter("scenario.traffic_runs").inc();
                    self.obs.counter("scenario.requests").add(ts.eval.completed);
                    self.obs
                        .counter("scenario.qos_violations")
                        .add(ts.eval.qos_violations());
                    ts.queue.export(&self.obs);
                    Some(ts.eval)
                }
            };
            (traffic, None)
        };

        self.obs.counter("scenario.evals").inc();
        match &family {
            FamilyEval::Paper { .. } => {}
            FamilyEval::Faas {
                resident_functions,
                cold_fraction,
                ..
            } => {
                self.obs
                    .counter("scenario.faas_resident")
                    .add(u64::from(*resident_functions));
                self.obs
                    .histogram("scenario.faas_cold_x1000")
                    .record((cold_fraction * 1000.0).round() as u64);
            }
            FamilyEval::Dag {
                tasks, stragglers, ..
            } => {
                self.obs
                    .counter("scenario.dag_tasks")
                    .add(u64::from(*tasks));
                self.obs
                    .counter("scenario.dag_stragglers")
                    .add(u64::from(*stragglers));
            }
        }
        sample.queue.export(&self.obs);

        Ok(ScenarioEval {
            design: design.name.clone(),
            scenario: spec.to_string(),
            value: sample.value,
            unit,
            family,
            traffic,
            resilience,
            report,
            availability: self.availability,
        })
    }

    /// Evaluates many scenarios on one design, fanning them out over the
    /// pool. Results are in input order and bit-identical to calling
    /// [`Evaluator::evaluate_scenario`] in a loop.
    ///
    /// # Errors
    /// Returns the first (lowest-index) scenario's error, exactly as the
    /// serial loop would.
    pub fn evaluate_scenarios(
        &self,
        design: &DesignPoint,
        specs: &[ScenarioSpec],
    ) -> Result<Vec<ScenarioEval>, WcsError> {
        let evals = self.pool.try_par_map(specs, |_, spec| {
            let _span = self.obs.timer("pool.task_wall_ns").start();
            self.evaluate_scenario(design, spec)
        })?;
        self.obs.counter("pool.tasks").add(evals.len() as u64);
        Ok(evals)
    }
}

/// One open-loop run of a rendered traffic profile. Pure function of
/// its arguments (the seed lane is derived from the measurement seed),
/// so memoized and cold runs are byte-identical.
fn run_traffic(
    demand: &PlatformDemand,
    qos: Option<QosSpec>,
    capacity_rps: f64,
    pack: &'static str,
    profile: &RateProfile,
    cfg: &MeasureConfig,
) -> TrafficSample {
    let mut source = demand.source(0x7AFF);
    let stats = run_open_loop_profiled(
        demand.server_spec(),
        &mut source,
        capacity_rps,
        profile,
        cfg.warmup,
        cfg.measured,
        cfg.seed ^ 0x007A_FF1C,
    );
    let percentile = |p: f64| stats.latency.percentile(p).unwrap_or(0.0);
    TrafficSample {
        eval: TrafficEval {
            pack,
            offered_peak_rps: capacity_rps * profile.peak(),
            offered_mean_rps: capacity_rps * profile.mean(),
            completed: stats.completed,
            throughput_rps: stats.throughput_rps(),
            mean_latency_secs: stats.latency.mean(),
            p50_latency_secs: percentile(50.0),
            p95_latency_secs: percentile(95.0),
            p99_latency_secs: percentile(99.0),
            qos_attainment: qos.map(|q| stats.latency.fraction_at_or_below(q.bound.as_secs_f64())),
            peak_utilization: stats.utilization.iter().copied().fold(0.0, f64::max),
        },
        queue: stats.queue,
    }
}

/// One resilient open-loop run: renders the chaos wave (co-varied with
/// the profile when the plan asks), runs the traffic through admission
/// control, the retry budget, and the breaker, and scores the outcome
/// against the workload's SLO. Pure function of its arguments — the
/// chaos schedule comes from the pure [`SimRng::stream`], the run seed
/// from the measurement seed — so memoized and cold runs are
/// byte-identical.
fn run_resilient_traffic(
    demand: &PlatformDemand,
    qos: Option<QosSpec>,
    capacity_rps: f64,
    pack: &'static str,
    profile: &RateProfile,
    cfg: &MeasureConfig,
    rspec: &ResilienceSpec,
) -> ResilientSample {
    let total = cfg.warmup + cfg.measured;
    let span_secs = total as f64 / (capacity_rps * profile.mean());
    let span = SimDuration::from_secs_f64(span_secs);
    let config = rspec.config_at(capacity_rps, span);
    let retry = RetryPolicy {
        timeout: None,
        max_retries: rspec.max_retries,
        backoff: SimDuration::from_secs_f64((span_secs * 0.002).max(1e-6)),
    };

    // The horizon doubles the expected span so outages keep landing if
    // overload stretches the run past its nominal length.
    let mut outages = Vec::new();
    if let Some(chaos) = &rspec.chaos {
        chaos.validate();
        let process = FaultProcess::exponential(
            SimDuration::from_secs_f64(span_secs * chaos.mttf_span),
            SimDuration::from_secs_f64(span_secs * chaos.mttr_span),
        )
        .expect("chaos plan durations are positive");
        let horizon = SimDuration::from_secs_f64(span_secs * 2.0);
        let mut rng = SimRng::stream(cfg.seed ^ 0x000C_4A05, capacity_rps.to_bits());
        outages = if chaos.co_vary && !profile.is_constant() {
            let (seg_dur, weights) = profile.segments();
            process.windows_weighted(horizon, seg_dur, weights, &mut rng)
        } else {
            process.windows(horizon, &mut rng)
        };
    }

    let mut source = demand.source(0x7AFF);
    let (stats, res) = run_open_loop_resilient(
        demand.server_spec(),
        &mut source,
        capacity_rps,
        profile,
        cfg.warmup,
        cfg.measured,
        cfg.seed ^ 0x007A_FF1C,
        &outages,
        &retry,
        &config,
    );

    let percentile = |p: f64| stats.latency.percentile(p).unwrap_or(0.0);
    let p99 = percentile(99.0);
    // Batch metrics carry no per-request bound; score against 10x the
    // unloaded latency so degraded-mode tails still register.
    let slo_secs = qos.map_or_else(
        || 10.0 * demand.single_client_latency_secs(),
        |q| q.bound.as_secs_f64(),
    );
    let eval = ResilienceEval {
        offered: res.offered,
        admitted: res.admitted,
        shed: res.shed(),
        shed_fraction: res.shed_fraction(),
        goodput_rps: stats.goodput_rps(),
        dropped: stats.faults.dropped,
        availability: stats.completed as f64 / stats.faults.offered.max(1) as f64,
        retries_spent: res.retries_spent,
        retries_denied: res.retries_denied,
        retry_amplification: res.retry_amplification(),
        breaker_trips: res.breaker_trips,
        breaker_fast_fails: res.breaker_fast_fails,
        breaker_open_fraction: (res.breaker_open_ns as f64 / span.as_nanos() as f64).min(1.0),
        slo_secs,
        p99_over_slo: if slo_secs > 0.0 { p99 / slo_secs } else { 0.0 },
        slo_attainment: stats.latency.fraction_at_or_below(slo_secs),
        chaos_outages: outages.len() as u32,
        chaos_down_fraction: 1.0 - faults::availability(&outages, span),
    };
    let traffic = TrafficSample {
        eval: TrafficEval {
            pack,
            offered_peak_rps: capacity_rps * profile.peak(),
            offered_mean_rps: capacity_rps * profile.mean(),
            completed: stats.completed,
            throughput_rps: stats.throughput_rps(),
            mean_latency_secs: stats.latency.mean(),
            p50_latency_secs: percentile(50.0),
            p95_latency_secs: percentile(95.0),
            p99_latency_secs: percentile(99.0),
            qos_attainment: qos.map(|q| stats.latency.fraction_at_or_below(q.bound.as_secs_f64())),
            peak_utilization: stats.utilization.iter().copied().fold(0.0, f64::max),
        },
        queue: stats.queue,
    };
    ResilientSample { traffic, eval }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcs_platforms::PlatformId;
    use wcs_workloads::WorkloadKey;

    #[test]
    fn steady_paper_scenarios_match_the_closed_api() {
        let eval = Evaluator::quick();
        let design = DesignPoint::baseline(PlatformId::Desk);
        let suite = eval.evaluate(&design).unwrap();
        for id in [WorkloadId::Websearch, WorkloadId::MapredWc] {
            let s = eval
                .evaluate_scenario(&design, &ScenarioSpec::from_id(id))
                .unwrap();
            assert_eq!(
                s.value.to_bits(),
                suite.perf[&id].to_bits(),
                "{id}: scenario vs suite"
            );
            assert!(s.traffic.is_none());
            assert!(matches!(s.family, FamilyEval::Paper { workload } if workload == id));
            assert_eq!(format!("{:?}", s.report), format!("{:?}", suite.report));
        }
    }

    #[test]
    fn unknown_scenario_lists_the_registry() {
        let eval = Evaluator::quick();
        let design = DesignPoint::baseline(PlatformId::Desk);
        let err = eval
            .evaluate_scenario(&design, &ScenarioSpec::steady("tsunami-xyz"))
            .unwrap_err();
        let WcsError::UnknownScenario { name, known } = &err else {
            panic!("wrong error: {err}");
        };
        assert_eq!(name, "tsunami-xyz");
        assert!(known.contains(&"faas"), "{known:?}");
        assert!(known.contains(&"websearch"), "{known:?}");
        assert!(err.to_string().contains("dag-analytics"));
    }

    #[test]
    fn faas_pool_grows_with_a_memory_blade() {
        let eval = Evaluator::quick();
        let spec = ScenarioSpec::steady("faas");
        let local = eval
            .evaluate_scenario(&DesignPoint::baseline(PlatformId::Emb1), &spec)
            .unwrap();
        let bladed = eval.evaluate_scenario(&DesignPoint::n2(), &spec).unwrap();
        let warm = |e: &ScenarioEval| match e.family {
            FamilyEval::Faas {
                warm_fraction,
                cpu_inflation,
                ..
            } => (warm_fraction, cpu_inflation),
            ref other => panic!("not faas: {other:?}"),
        };
        let (w_local, infl_local) = warm(&local);
        let (w_blade, infl_blade) = warm(&bladed);
        assert!(
            w_blade > w_local,
            "blade warms the pool: {w_blade} vs {w_local}"
        );
        assert!(
            infl_blade < infl_local,
            "fewer cold starts inflate less: {infl_blade} vs {infl_local}"
        );
        assert_eq!(local.unit, "RPS");
        assert!(local.value > 0.0);
    }

    #[test]
    fn dag_scenario_reports_the_graph() {
        let eval = Evaluator::quick();
        let s = eval
            .evaluate_scenario(
                &DesignPoint::baseline(PlatformId::Desk),
                &ScenarioSpec::steady("dag-analytics"),
            )
            .unwrap();
        let FamilyEval::Dag {
            tasks,
            stragglers,
            critical_path_secs,
            makespan_secs,
        } = s.family
        else {
            panic!("not dag: {:?}", s.family);
        };
        assert_eq!(tasks, 256);
        assert!(stragglers > 0, "5% tail over 256 tasks");
        assert!(makespan_secs >= critical_path_secs - 1e-9);
        assert_eq!(s.unit, "1/s");
        assert!((s.value - 1.0 / makespan_secs).abs() < 1e-12);
    }

    #[test]
    fn traffic_packs_run_and_report_overload() {
        let eval = Evaluator::quick();
        let design = DesignPoint::baseline(PlatformId::Desk);
        let spec = ScenarioSpec::steady("faas").with_traffic(TrafficPack::flash_crowd());
        let s = eval.evaluate_scenario(&design, &spec).unwrap();
        let t = s.traffic.expect("non-steady pack ran the open loop");
        assert_eq!(t.pack, "flash-crowd");
        assert!(t.completed > 0);
        assert!(t.offered_peak_rps > t.offered_mean_rps);
        assert!(t.offered_peak_rps > s.value, "spike exceeds capacity");
        let att = t.qos_attainment.expect("QoS workload");
        assert!((0.0..=1.0).contains(&att), "{att}");
        assert!(t.p99_latency_secs >= t.p50_latency_secs);

        // The failover surge holds overload longer: tail at least as bad.
        let surge = eval
            .evaluate_scenario(
                &design,
                &ScenarioSpec::steady("faas").with_traffic(TrafficPack::failover_surge()),
            )
            .unwrap();
        assert!(surge.traffic.unwrap().completed > 0);
    }

    #[test]
    fn scenario_renders_are_bit_identical_across_knobs() {
        let design = DesignPoint::n2();
        let specs = [
            ScenarioSpec::steady("faas").with_traffic(TrafficPack::flash_crowd()),
            ScenarioSpec::steady("dag-analytics").with_traffic(TrafficPack::diurnal()),
        ];
        let render = |threads: usize, memo: bool| {
            let eval = Evaluator::builder()
                .quick()
                .threads(threads)
                .unwrap()
                .memo(memo)
                .build()
                .unwrap();
            let evals = eval.evaluate_scenarios(&design, &specs).unwrap();
            format!("{evals:?}")
        };
        let want = render(1, true);
        for threads in [2usize, 8] {
            for memo in [true, false] {
                assert_eq!(want, render(threads, memo), "threads={threads} memo={memo}");
            }
        }
    }

    #[test]
    fn scenario_obs_counters_record() {
        use wcs_simcore::obs::Registry;
        let reg = Registry::new();
        let eval = Evaluator::builder()
            .quick()
            .obs(reg.clone())
            .build()
            .unwrap();
        let design = DesignPoint::baseline(PlatformId::Desk);
        eval.evaluate_scenario(
            &design,
            &ScenarioSpec::steady("faas").with_traffic(TrafficPack::flash_crowd()),
        )
        .unwrap();
        eval.evaluate_scenario(&design, &ScenarioSpec::steady("dag-analytics"))
            .unwrap();
        eval.export_obs();
        let snap = reg.snapshot();
        assert_eq!(snap.count("scenario.evals"), Some(2));
        assert_eq!(snap.count("scenario.traffic_runs"), Some(1));
        assert!(snap.count("scenario.requests").unwrap_or(0) > 0);
        assert!(snap.count("scenario.dag_tasks").unwrap_or(0) >= 256);
        assert!(snap.metrics.contains_key("memo.scenario.hits"));
    }

    #[test]
    fn resilient_flash_crowd_sheds_and_stays_within_budget() {
        let rspec = ResilienceSpec::standard();
        let eval = Evaluator::builder()
            .quick()
            .resilience(rspec)
            .build()
            .unwrap();
        let design = DesignPoint::baseline(PlatformId::Desk);
        let spec = ScenarioSpec::steady("faas").with_traffic(TrafficPack::flash_crowd());
        let s = eval.evaluate_scenario(&design, &spec).unwrap();
        let r = s.resilience.expect("resilient evaluator populates eval");
        let t = s.traffic.expect("resilient evaluator runs traffic");
        assert_eq!(t.pack, "flash-crowd");
        assert!(r.offered > 0);
        assert_eq!(r.offered, r.admitted + r.shed);
        assert!((0.0..1.0).contains(&r.shed_fraction), "{}", r.shed_fraction);
        assert!(r.goodput_rps > 0.0);
        assert!((0.0..=1.0).contains(&r.availability));
        assert!((0.0..=1.0).contains(&r.slo_attainment));
        // The retry-budget invariant: spend never exceeds the accrual
        // ceiling, so amplification stays bounded no matter how the
        // chaos wave lands.
        let ratio = rspec.retry_ratio.unwrap();
        let ceiling = 8.0 + ratio * r.offered as f64;
        assert!(
            (r.retries_spent as f64) <= ceiling,
            "spent {} > ceiling {ceiling}",
            r.retries_spent
        );
        assert!(r.retry_amplification >= 1.0);
        assert!(r.retry_amplification <= 1.0 + ratio + 8.0 / r.admitted.max(1) as f64);
        assert!(r.slo_secs > 0.0);
        assert!((0.0..=1.0).contains(&r.chaos_down_fraction));
    }

    #[test]
    fn resilient_steady_runs_a_constant_profile() {
        let eval = Evaluator::builder()
            .quick()
            .resilience(ResilienceSpec::standard())
            .build()
            .unwrap();
        let design = DesignPoint::baseline(PlatformId::Desk);
        let s = eval
            .evaluate_scenario(&design, &ScenarioSpec::steady("websearch"))
            .unwrap();
        let t = s.traffic.expect("steady runs under resilience too");
        assert_eq!(t.pack, "steady");
        assert_eq!(t.offered_peak_rps.to_bits(), t.offered_mean_rps.to_bits());
        assert!(s.resilience.is_some());
    }

    #[test]
    fn resilient_renders_are_bit_identical_across_knobs() {
        let design = DesignPoint::n2();
        let specs = [
            ScenarioSpec::steady("faas").with_traffic(TrafficPack::flash_crowd()),
            ScenarioSpec::steady("websearch").with_traffic(TrafficPack::failover_surge()),
            ScenarioSpec::steady("dag-analytics").with_traffic(TrafficPack::diurnal()),
        ];
        let render = |threads: usize, memo: bool| {
            let eval = Evaluator::builder()
                .quick()
                .threads(threads)
                .unwrap()
                .memo(memo)
                .resilience(ResilienceSpec::standard())
                .build()
                .unwrap();
            let evals = eval.evaluate_scenarios(&design, &specs).unwrap();
            format!("{evals:?}")
        };
        let want = render(1, true);
        assert!(want.contains("resilience"), "render carries the eval");
        for threads in [2usize, 8] {
            for memo in [true, false] {
                assert_eq!(want, render(threads, memo), "threads={threads} memo={memo}");
            }
        }
    }

    #[test]
    fn no_resilience_render_omits_the_field() {
        let eval = Evaluator::quick();
        let design = DesignPoint::baseline(PlatformId::Desk);
        let spec = ScenarioSpec::steady("faas").with_traffic(TrafficPack::flash_crowd());
        let s = eval.evaluate_scenario(&design, &spec).unwrap();
        assert!(s.resilience.is_none());
        let render = format!("{s:?}");
        assert!(
            !render.contains("resilience"),
            "disabled layer must not perturb the render"
        );
    }

    #[test]
    fn resilience_obs_counters_record() {
        use wcs_simcore::obs::Registry;
        let reg = Registry::new();
        let eval = Evaluator::builder()
            .quick()
            .obs(reg.clone())
            .resilience(ResilienceSpec::standard())
            .build()
            .unwrap();
        let design = DesignPoint::baseline(PlatformId::Desk);
        eval.evaluate_scenario(
            &design,
            &ScenarioSpec::steady("faas").with_traffic(TrafficPack::flash_crowd()),
        )
        .unwrap();
        eval.export_obs();
        let snap = reg.snapshot();
        assert_eq!(snap.count("resilience.runs"), Some(1));
        assert!(snap.count("resilience.requests").unwrap_or(0) > 0);
        assert!(snap.metrics.contains_key("resilience.shed"));
        assert!(snap.metrics.contains_key("resilience.retries_spent"));
        assert!(snap.metrics.contains_key("resilience.breaker_trips"));
    }

    #[test]
    fn chaos_co_varies_with_the_profile() {
        // Same spec with and without co-variation: schedules differ
        // under a non-flat profile, and both are deterministic.
        let design = DesignPoint::baseline(PlatformId::Desk);
        let spec = ScenarioSpec::steady("faas").with_traffic(TrafficPack::flash_crowd());
        let run = |co_vary: bool| {
            let mut rspec = ResilienceSpec::standard();
            rspec.chaos = Some(ChaosPlan {
                co_vary,
                ..ChaosPlan::blade_fault()
            });
            let eval = Evaluator::builder()
                .quick()
                .resilience(rspec)
                .build()
                .unwrap();
            let s = eval.evaluate_scenario(&design, &spec).unwrap();
            format!("{:?}", s.resilience.unwrap())
        };
        assert_eq!(run(true), run(true), "co-varying wave is deterministic");
        assert_eq!(run(false), run(false), "plain wave is deterministic");
        assert_ne!(run(true), run(false), "thinning consumes draws");
    }

    #[test]
    fn key_spec_bridge_matches_ids() {
        let key = WorkloadKey::from(WorkloadId::Webmail);
        let spec = ScenarioSpec {
            workload: key,
            traffic: TrafficPack::Steady,
        };
        assert_eq!(spec.to_string(), "webmail/steady");
    }
}
