//! Design-space sweeps: evaluate a family of related design points and
//! tabulate the results.
//!
//! These are the exploration tools a datacenter architect would use on
//! top of the paper's framework: vary one design parameter, hold the
//! rest, and watch the HMean Perf/TCO-$ respond.

use wcs_memshare::provisioning::Provisioning;
use wcs_platforms::storage::FlashModel;
use wcs_platforms::PlatformId;
use wcs_workloads::perf::MeasureError;

use crate::designs::DesignPoint;
use crate::evaluate::{DesignEval, Evaluator};

/// One point of a sweep: the swept value, its label, and the evaluation.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub value: f64,
    /// Human-readable label.
    pub label: String,
    /// The evaluation at this point.
    pub eval: DesignEval,
}

/// Result of a sweep, with the baseline it is normalized against.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// What was swept.
    pub parameter: &'static str,
    /// Baseline evaluation (for relative metrics).
    pub baseline: DesignEval,
    /// The sweep points, in parameter order.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// HMean Perf/TCO-$ of each point relative to the baseline.
    pub fn tco_curve(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| {
                (
                    p.value,
                    p.eval.compare(&self.baseline).hmean(|r| r.perf_per_tco),
                )
            })
            .collect()
    }

    /// The sweep point with the best HMean Perf/TCO-$.
    pub fn best(&self) -> Option<&SweepPoint> {
        let mut best: Option<(&SweepPoint, f64)> = None;
        for p in &self.points {
            let v = p.eval.compare(&self.baseline).hmean(|r| r.perf_per_tco);
            if best.is_none_or(|(_, b)| v > b) {
                best = Some((p, v));
            }
        }
        best.map(|(p, _)| p)
    }
}

/// Sweeps the memory blade's local-memory fraction on the N2 design.
///
/// # Errors
/// Propagates evaluation failures.
pub fn sweep_local_fraction(eval: &Evaluator, fractions: &[f64]) -> Result<Sweep, MeasureError> {
    // Build the whole family first, then evaluate baseline + points as
    // one parallel batch.
    let mut designs = vec![DesignPoint::baseline_srvr1()];
    for &f in fractions {
        let mut design = DesignPoint::n2();
        let ms = design.memshare.as_mut().expect("N2 has memory sharing");
        ms.provisioning = Provisioning {
            name: "swept",
            local_fraction: f,
            remote_fraction: (1.0 - f).max(0.0) * 0.85,
            assumed_slowdown: 0.02,
        };
        design.name = format!("N2-local{:.0}%", f * 100.0);
        designs.push(design);
    }
    let mut evals = eval.evaluate_many(&designs)?.into_iter();
    let baseline = evals.next().expect("baseline evaluated");
    let points = fractions
        .iter()
        .zip(evals)
        .map(|(&f, e)| SweepPoint {
            value: f,
            label: e.name.clone(),
            eval: e,
        })
        .collect();
    Ok(Sweep {
        parameter: "local memory fraction",
        baseline,
        points,
    })
}

/// Sweeps the flash-cache capacity on the N2 design.
///
/// # Errors
/// Propagates evaluation failures.
pub fn sweep_flash_capacity(eval: &Evaluator, sizes_gb: &[f64]) -> Result<Sweep, MeasureError> {
    let mut designs = vec![DesignPoint::baseline_srvr1()];
    for &gb in sizes_gb {
        let mut design = DesignPoint::n2();
        let storage = design.storage.as_mut().expect("N2 has a storage scenario");
        storage.flash = Some(FlashModel::scaled(gb));
        design.name = format!("N2-flash{gb}GB");
        designs.push(design);
    }
    let mut evals = eval.evaluate_many(&designs)?.into_iter();
    let baseline = evals.next().expect("baseline evaluated");
    let points = sizes_gb
        .iter()
        .zip(evals)
        .map(|(&gb, e)| SweepPoint {
            value: gb,
            label: e.name.clone(),
            eval: e,
        })
        .collect();
    Ok(Sweep {
        parameter: "flash capacity (GB)",
        baseline,
        points,
    })
}

/// Evaluates every baseline platform — Figure 2(c)'s platform axis as a
/// sweep.
///
/// # Errors
/// Propagates evaluation failures.
pub fn sweep_platforms(eval: &Evaluator) -> Result<Sweep, MeasureError> {
    let mut designs = vec![DesignPoint::baseline_srvr1()];
    designs.extend(PlatformId::ALL.iter().map(|&id| DesignPoint::baseline(id)));
    let mut evals = eval.evaluate_many(&designs)?.into_iter();
    let baseline = evals.next().expect("baseline evaluated");
    let points = PlatformId::ALL
        .iter()
        .enumerate()
        .zip(evals)
        .map(|((i, id), e)| SweepPoint {
            value: i as f64,
            label: id.label().to_owned(),
            eval: e,
        })
        .collect();
    Ok(Sweep {
        parameter: "platform",
        baseline,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_fraction_tradeoff_is_visible() {
        let eval = Evaluator::quick();
        let sweep = sweep_local_fraction(&eval, &[0.5, 0.25, 0.125]).unwrap();
        let curve = sweep.tco_curve();
        assert_eq!(curve.len(), 3);
        // All N2 variants still beat srvr1 comfortably.
        for (f, tco) in &curve {
            assert!(*tco > 1.5, "local {f}: Perf/TCO {tco}");
        }
        assert!(sweep.best().is_some());
    }

    #[test]
    fn platform_sweep_finds_emb1_sweet_spot() {
        let eval = Evaluator::quick();
        let sweep = sweep_platforms(&eval).unwrap();
        let best = sweep.best().unwrap();
        assert_eq!(best.label, "emb1", "Figure 2(c)'s sweet spot");
    }

    #[test]
    fn flash_sweep_is_monotone_in_cost() {
        let eval = Evaluator::quick();
        let sweep = sweep_flash_capacity(&eval, &[0.5, 4.0]).unwrap();
        let small = &sweep.points[0].eval;
        let big = &sweep.points[1].eval;
        assert!(big.report.inf_usd() > small.report.inf_usd());
    }
}
