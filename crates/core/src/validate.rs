//! The reproduction scorecard: every paper anchor checked in one pass.
//!
//! Each [`Check`] compares one quantity from the paper against this
//! suite's measured value with a stated tolerance; [`run_scorecard`]
//! executes them all and reports pass/fail. The `validate` binary prints
//! the card; the integration tests assert it stays green.

use wcs_memshare::blade::BladeModel;
use wcs_memshare::provisioning::Provisioning;
use wcs_memshare::slowdown::{estimate_slowdown, SlowdownConfig};
use wcs_platforms::{catalog, PlatformId};
use wcs_tco::{Efficiency, TcoModel};
use wcs_workloads::calib::{measure_grid, rmse, PAPER_PERF_GRID};
use wcs_workloads::WorkloadId;

use crate::designs::DesignPoint;
use crate::evaluate::Evaluator;

/// One validated quantity.
#[derive(Debug, Clone)]
pub struct Check {
    /// Which table/figure this anchors.
    pub anchor: &'static str,
    /// What is being checked.
    pub what: String,
    /// The paper's value.
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
    /// Permitted absolute deviation.
    pub tolerance: f64,
}

impl Check {
    /// Whether the check passes.
    pub fn pass(&self) -> bool {
        (self.measured - self.paper).abs() <= self.tolerance
    }
}

/// The full scorecard.
#[derive(Debug, Clone)]
pub struct Scorecard {
    /// All checks, in paper order.
    pub checks: Vec<Check>,
}

impl Scorecard {
    /// Number of passing checks.
    pub fn passed(&self) -> usize {
        self.checks.iter().filter(|c| c.pass()).count()
    }

    /// True when every check passes.
    pub fn all_pass(&self) -> bool {
        self.passed() == self.checks.len()
    }
}

/// Runs the scorecard. `eval` controls simulation effort.
pub fn run_scorecard(eval: &Evaluator) -> Scorecard {
    let mut checks = Vec::new();
    let model = TcoModel::new(eval.rack, eval.burdened);

    // Figure 1(a): cost-model exactness.
    let r1 = model.server_tco(&catalog::platform(PlatformId::Srvr1));
    let r2 = model.server_tco(&catalog::platform(PlatformId::Srvr2));
    checks.push(Check {
        anchor: "Fig 1(a)",
        what: "srvr1 total TCO ($)".into(),
        paper: 5758.0,
        measured: r1.total_usd(),
        tolerance: 2.0,
    });
    checks.push(Check {
        anchor: "Fig 1(a)",
        what: "srvr1 3-yr P&C ($)".into(),
        paper: 2464.0,
        measured: r1.pc_usd(),
        tolerance: 2.0,
    });
    checks.push(Check {
        anchor: "Fig 1(a)",
        what: "srvr2 total TCO ($)".into(),
        paper: 3249.0,
        measured: r2.total_usd(),
        tolerance: 2.0,
    });

    // Table 2: platform totals.
    for (id, watt) in [
        (PlatformId::Srvr1, 340.0),
        (PlatformId::Desk, 135.0),
        (PlatformId::Emb1, 52.0),
        (PlatformId::Emb2, 35.0),
    ] {
        checks.push(Check {
            anchor: "Table 2",
            what: format!("{id} power (W)"),
            paper: watt,
            measured: catalog::platform(id).max_power_w(),
            tolerance: 0.51,
        });
    }

    // Figure 2(c): grid RMSE (excluding the documented emb2 residual).
    let residuals = measure_grid(&eval.measure);
    let non_emb2: Vec<_> = residuals
        .iter()
        .copied()
        .filter(|r| {
            r.platform != PlatformId::Emb2
                && !(r.platform == PlatformId::Mobl && r.workload == WorkloadId::MapredWr)
        })
        .collect();
    checks.push(Check {
        anchor: "Fig 2(c)",
        what: "grid RMSE vs paper (excl. documented residuals)".into(),
        paper: 0.0,
        measured: rmse(&non_emb2),
        tolerance: 0.07,
    });
    let _ = PAPER_PERF_GRID; // grid lives in wcs-workloads::calib

    // Figure 4(b): websearch slowdowns.
    let ws_pcie = estimate_slowdown(WorkloadId::Websearch, &SlowdownConfig::paper_default())
        .expect("paper-default slowdown config is valid");
    checks.push(Check {
        anchor: "Fig 4(b)",
        what: "websearch slowdown, PCIe x4, 25% local (%)".into(),
        paper: 4.7,
        measured: ws_pcie.slowdown * 100.0,
        tolerance: 1.5,
    });
    let ws_cbf = estimate_slowdown(WorkloadId::Websearch, &SlowdownConfig::paper_cbf())
        .expect("paper-default slowdown config is valid");
    checks.push(Check {
        anchor: "Fig 4(b)",
        what: "websearch slowdown, CBF (%)".into(),
        paper: 1.2,
        measured: ws_cbf.slowdown * 100.0,
        tolerance: 0.5,
    });

    // Figure 4(c): provisioning efficiencies.
    let emb1 = catalog::platform(PlatformId::Emb1);
    let base_eff = Efficiency::new(1.0, model.server_tco(&emb1));
    for (scheme, paper_tco) in [
        (Provisioning::static_partitioning(), 1.08),
        (Provisioning::dynamic_provisioning(), 1.11),
    ] {
        let modified = scheme.apply(&emb1, &BladeModel::paper_default());
        let eff = Efficiency::new(
            1.0 / (1.0 + scheme.assumed_slowdown),
            model.server_tco(&modified),
        );
        checks.push(Check {
            anchor: "Fig 4(c)",
            what: format!("{} provisioning Perf/TCO-$ vs emb1", scheme.name),
            paper: paper_tco,
            measured: eff.relative_to(&base_eff).perf_per_tco,
            tolerance: 0.04,
        });
    }

    // Figure 5: the headline.
    let base = eval
        .evaluate(&DesignPoint::baseline_srvr1())
        .expect("srvr1 evaluates");
    for (design, paper_tco, tol) in [
        (DesignPoint::n1(), 1.5, 0.35),
        (DesignPoint::n2(), 2.0, 0.55),
    ] {
        let e = eval.evaluate(&design).expect("design evaluates");
        let cmp = e.compare(&base);
        checks.push(Check {
            anchor: "Fig 5",
            what: format!("{} HMean Perf/TCO-$ vs srvr1", cmp.design),
            paper: paper_tco,
            measured: cmp.hmean(|r| r.perf_per_tco),
            tolerance: tol,
        });
    }

    Scorecard { checks }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scorecard_is_green() {
        let card = run_scorecard(&Evaluator::quick());
        for c in &card.checks {
            assert!(
                c.pass(),
                "{} {}: measured {:.3} vs paper {:.3} (tol {:.3})",
                c.anchor,
                c.what,
                c.measured,
                c.paper,
                c.tolerance
            );
        }
        assert!(card.checks.len() >= 12, "scorecard covers the paper");
        assert!(card.all_pass());
    }
}
