//! The warehouse-computing server-architecture suite: public facade.
//!
//! This crate ties the substrates together into the paper's top-level
//! story:
//!
//! * [`designs`] — named design points: the six Table 2 baselines plus
//!   the unified **N1** (near-term: mobile blades in dual-entry
//!   enclosures) and **N2** (longer-term: embedded microblades with
//!   aggregated cooling, ensemble memory sharing, and flash-cached
//!   remote laptop disks) architectures of Section 3.6,
//! * [`evaluate`] — the evaluation pipeline: performance simulation +
//!   cost model + efficiency metrics for any design point,
//! * [`scenario`] — the open-world counterpart: registry-resolved
//!   workloads (paper suite, FaaS, DAG analytics) under traffic packs,
//! * [`report`] — text rendering of the comparison tables the paper's
//!   figures show.
//!
//! # Example
//! ```no_run
//! use wcs_core::designs::DesignPoint;
//! use wcs_core::evaluate::Evaluator;
//!
//! let eval = Evaluator::quick();
//! let baseline = eval.evaluate(&DesignPoint::baseline_srvr1()).unwrap();
//! let n2 = eval.evaluate(&DesignPoint::n2()).unwrap();
//! let cmp = n2.compare(&baseline);
//! println!("{}", wcs_core::report::render_comparison(&cmp));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod designs;
pub mod error;
pub mod evaluate;
pub mod experiments;
pub mod memo;
pub mod report;
pub mod scenario;
pub mod sweeps;
pub mod validate;

pub use designs::DesignPoint;
pub use error::WcsError;
pub use evaluate::{CellOutcome, DesignEval, EvalBuilder, Evaluator};
pub use scenario::{
    ChaosPlan, FamilyEval, ResilienceEval, ResilienceSpec, ScenarioEval, TrafficEval,
};
