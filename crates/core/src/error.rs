//! The unified error hierarchy for the evaluation facade.
//!
//! The substrate crates each define the error type natural to their
//! domain: [`ConfigError`] for rejected parameters, [`MeasureError`]
//! for infeasible QoS points, [`BladeError`] for memory-blade directory
//! capacity faults, [`TraceError`] for malformed trace files. Callers
//! of the facade should not have to enumerate them — everything
//! converts into [`WcsError`] with `?`, so a bench binary or study can
//! hold its whole pipeline in one `Result<_, WcsError>`.

use std::fmt;

use wcs_memshare::directory::BladeError;
use wcs_simcore::journal::JournalError;
use wcs_simcore::pool::TaskPanic;
use wcs_simcore::ConfigError;
use wcs_workloads::perf::MeasureError;
use wcs_workloads::tracefile::TraceError;

/// Any error the evaluation pipeline can surface.
#[derive(Debug)]
pub enum WcsError {
    /// A rejected configuration parameter (out-of-range value, zero
    /// count, event scheduled in the past, ...).
    Config(ConfigError),
    /// A workload measurement failed — typically an infeasible QoS
    /// bound on the platform under test.
    Measure(MeasureError),
    /// A memory-blade directory fault.
    Blade(BladeError),
    /// A malformed or unreadable trace file.
    Trace(TraceError),
    /// A malformed command line (bench binaries).
    Cli(String),
    /// A sweep cell panicked (twice, after the retry-once policy) and was
    /// isolated by the pool instead of aborting the run.
    TaskPanic(TaskPanic),
    /// A sweep cell exceeded its watchdog budget and was cancelled
    /// cooperatively; the cell is degraded, the sweep continues.
    Deadline {
        /// Name of the design point whose evaluation was cancelled.
        cell: String,
    },
    /// A scenario named a workload the registry does not know. Carries
    /// the registered names so CLI layers can print what *would* work.
    UnknownScenario {
        /// The name that failed to resolve.
        name: String,
        /// Every registered workload name, sorted.
        known: Vec<&'static str>,
    },
    /// The resume journal could not be opened, replayed, or appended to.
    Journal(JournalError),
    /// The multi-process sweep service failed: a worker could not be
    /// spawned, a cell exhausted its retry budget, or the merged journal
    /// diverged from the serial reference.
    Service(String),
}

impl fmt::Display for WcsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WcsError::Config(e) => write!(f, "configuration error: {e}"),
            WcsError::Measure(e) => write!(f, "measurement error: {e}"),
            WcsError::Blade(e) => write!(f, "memory blade error: {e}"),
            WcsError::Trace(e) => write!(f, "trace error: {e}"),
            WcsError::Cli(msg) => write!(f, "command line error: {msg}"),
            WcsError::TaskPanic(e) => write!(f, "task panic isolated: {e}"),
            WcsError::Deadline { cell } => {
                write!(
                    f,
                    "cell '{cell}' exceeded its deadline budget and was degraded"
                )
            }
            WcsError::UnknownScenario { name, known } => {
                write!(
                    f,
                    "unknown scenario workload {:?}; registered scenarios: {}",
                    name,
                    known.join(", ")
                )
            }
            WcsError::Journal(e) => write!(f, "journal error: {e}"),
            WcsError::Service(msg) => write!(f, "sweep service error: {msg}"),
        }
    }
}

impl std::error::Error for WcsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WcsError::Config(e) => Some(e),
            WcsError::Measure(e) => Some(e),
            WcsError::Blade(e) => Some(e),
            WcsError::Trace(e) => Some(e),
            WcsError::Cli(_) => None,
            WcsError::TaskPanic(e) => Some(e),
            WcsError::Deadline { .. } => None,
            WcsError::UnknownScenario { .. } => None,
            WcsError::Journal(e) => Some(e),
            WcsError::Service(_) => None,
        }
    }
}

impl From<ConfigError> for WcsError {
    fn from(e: ConfigError) -> Self {
        WcsError::Config(e)
    }
}

impl From<MeasureError> for WcsError {
    fn from(e: MeasureError) -> Self {
        WcsError::Measure(e)
    }
}

impl From<BladeError> for WcsError {
    fn from(e: BladeError) -> Self {
        WcsError::Blade(e)
    }
}

impl From<TraceError> for WcsError {
    fn from(e: TraceError) -> Self {
        WcsError::Trace(e)
    }
}

impl From<TaskPanic> for WcsError {
    fn from(e: TaskPanic) -> Self {
        WcsError::TaskPanic(e)
    }
}

impl From<JournalError> for WcsError {
    fn from(e: JournalError) -> Self {
        WcsError::Journal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_substrate_error_converts_and_displays() {
        let config: WcsError = ConfigError::ZeroCount { param: "threads" }.into();
        assert!(config.to_string().contains("configuration error"));
        assert!(config.to_string().contains("threads"));

        let measure: WcsError = MeasureError {
            workload: "websearch",
            reason: "QoS infeasible".to_owned(),
        }
        .into();
        assert!(measure.to_string().contains("measurement error"));

        let cli = WcsError::Cli("unknown flag --frobnicate".to_owned());
        assert!(cli.to_string().contains("--frobnicate"));

        let unknown = WcsError::UnknownScenario {
            name: "tsunami".to_owned(),
            known: vec!["faas", "websearch"],
        };
        let msg = unknown.to_string();
        assert!(msg.contains("tsunami"), "{msg}");
        assert!(msg.contains("faas, websearch"), "{msg}");
        {
            use std::error::Error as _;
            assert!(unknown.source().is_none());
        }
    }

    #[test]
    fn sources_chain_to_the_substrate_error() {
        use std::error::Error as _;
        let e: WcsError = ConfigError::ZeroCount { param: "fans" }.into();
        assert!(e.source().is_some());
        assert!(WcsError::Cli("x".into()).source().is_none());
    }

    #[test]
    fn recovery_errors_convert_and_display() {
        let panic: WcsError = TaskPanic {
            index: 4,
            message: "poisoned cell".to_owned(),
            retried: true,
        }
        .into();
        assert!(panic.to_string().contains("task panic isolated"));
        assert!(panic.to_string().contains("panicked twice"));
        {
            use std::error::Error as _;
            assert!(panic.source().is_some());
        }

        let deadline = WcsError::Deadline {
            cell: "flash-4x".to_owned(),
        };
        assert!(deadline.to_string().contains("flash-4x"));
        assert!(deadline.to_string().contains("deadline"));

        let journal: WcsError = JournalError::BadMagic {
            path: "/tmp/x.wal".into(),
        }
        .into();
        assert!(journal.to_string().contains("journal error"));
        assert!(journal.to_string().contains("bad magic"));
    }

    #[test]
    fn question_mark_converts_in_one_pipeline() {
        fn pipeline() -> Result<(), WcsError> {
            wcs_simcore::ThreadPool::new(0).map(|_| ())?;
            Ok(())
        }
        assert!(matches!(pipeline(), Err(WcsError::Config(_))));
    }
}
