//! The unified error hierarchy for the evaluation facade.
//!
//! The substrate crates each define the error type natural to their
//! domain: [`ConfigError`] for rejected parameters, [`MeasureError`]
//! for infeasible QoS points, [`BladeError`] for memory-blade directory
//! capacity faults, [`TraceError`] for malformed trace files. Callers
//! of the facade should not have to enumerate them — everything
//! converts into [`WcsError`] with `?`, so a bench binary or study can
//! hold its whole pipeline in one `Result<_, WcsError>`.

use std::fmt;

use wcs_memshare::directory::BladeError;
use wcs_simcore::ConfigError;
use wcs_workloads::perf::MeasureError;
use wcs_workloads::tracefile::TraceError;

/// Any error the evaluation pipeline can surface.
#[derive(Debug)]
pub enum WcsError {
    /// A rejected configuration parameter (out-of-range value, zero
    /// count, event scheduled in the past, ...).
    Config(ConfigError),
    /// A workload measurement failed — typically an infeasible QoS
    /// bound on the platform under test.
    Measure(MeasureError),
    /// A memory-blade directory fault.
    Blade(BladeError),
    /// A malformed or unreadable trace file.
    Trace(TraceError),
    /// A malformed command line (bench binaries).
    Cli(String),
}

impl fmt::Display for WcsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WcsError::Config(e) => write!(f, "configuration error: {e}"),
            WcsError::Measure(e) => write!(f, "measurement error: {e}"),
            WcsError::Blade(e) => write!(f, "memory blade error: {e}"),
            WcsError::Trace(e) => write!(f, "trace error: {e}"),
            WcsError::Cli(msg) => write!(f, "command line error: {msg}"),
        }
    }
}

impl std::error::Error for WcsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WcsError::Config(e) => Some(e),
            WcsError::Measure(e) => Some(e),
            WcsError::Blade(e) => Some(e),
            WcsError::Trace(e) => Some(e),
            WcsError::Cli(_) => None,
        }
    }
}

impl From<ConfigError> for WcsError {
    fn from(e: ConfigError) -> Self {
        WcsError::Config(e)
    }
}

impl From<MeasureError> for WcsError {
    fn from(e: MeasureError) -> Self {
        WcsError::Measure(e)
    }
}

impl From<BladeError> for WcsError {
    fn from(e: BladeError) -> Self {
        WcsError::Blade(e)
    }
}

impl From<TraceError> for WcsError {
    fn from(e: TraceError) -> Self {
        WcsError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_substrate_error_converts_and_displays() {
        let config: WcsError = ConfigError::ZeroCount { param: "threads" }.into();
        assert!(config.to_string().contains("configuration error"));
        assert!(config.to_string().contains("threads"));

        let measure: WcsError = MeasureError {
            workload: "websearch",
            reason: "QoS infeasible".to_owned(),
        }
        .into();
        assert!(measure.to_string().contains("measurement error"));

        let cli = WcsError::Cli("unknown flag --frobnicate".to_owned());
        assert!(cli.to_string().contains("--frobnicate"));
    }

    #[test]
    fn sources_chain_to_the_substrate_error() {
        use std::error::Error as _;
        let e: WcsError = ConfigError::ZeroCount { param: "fans" }.into();
        assert!(e.source().is_some());
        assert!(WcsError::Cli("x".into()).source().is_none());
    }

    #[test]
    fn question_mark_converts_in_one_pipeline() {
        fn pipeline() -> Result<(), WcsError> {
            wcs_simcore::ThreadPool::new(0).map(|_| ())?;
            Ok(())
        }
        assert!(matches!(pipeline(), Err(WcsError::Config(_))));
    }
}
