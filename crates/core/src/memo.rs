//! The evaluation pipeline's memoization layer.
//!
//! One [`EvalMemo`] aggregates the three caches a design-space sweep
//! exercises: storage-trace replays (from `wcs-flashcache`), two-level
//! memory replays (from `wcs-memshare`), and the final performance
//! measurements. Sweep points differ in a few design parameters but
//! share most sub-simulations — the same disk scenario, the same memory
//! trace, the same demand vector — so a warm sweep answers most of its
//! work from the caches.
//!
//! Every cached value is a pure function of its key (all inputs,
//! including RNG seeds, are folded into the key), so memoized and
//! unmemoized runs are byte-identical by construction.

use std::sync::Arc;

use wcs_flashcache::memo::StorageMemo;
use wcs_memshare::slowdown::ReplayMemo;
use wcs_simcore::memo::{MemoCache, MemoKey, MemoStats};
use wcs_workloads::perf::{MeasureConfig, MeasureError};
use wcs_workloads::service::PlatformDemand;
use wcs_workloads::WorkloadId;

/// Caches shared across every evaluation an [`Evaluator`] performs.
///
/// [`Evaluator`]: crate::evaluate::Evaluator
#[derive(Debug, Default)]
pub struct EvalMemo {
    storage: StorageMemo,
    replay: ReplayMemo,
    perf: MemoCache<Result<f64, MeasureError>>,
}

impl EvalMemo {
    /// An enabled memo.
    pub fn new() -> Self {
        Self::with_enabled(true)
    }

    /// A disabled memo: every sub-simulation recomputes from its live
    /// generator, exactly as the unmemoized code path would.
    pub fn disabled() -> Self {
        Self::with_enabled(false)
    }

    /// A memo with caching switched on or off.
    pub fn with_enabled(enabled: bool) -> Self {
        EvalMemo {
            storage: StorageMemo::with_enabled(enabled),
            replay: ReplayMemo::with_enabled(enabled),
            perf: MemoCache::with_enabled(enabled),
        }
    }

    /// Whether lookups hit the caches.
    pub fn is_enabled(&self) -> bool {
        self.perf.is_enabled()
    }

    /// The storage-replay caches.
    pub fn storage(&self) -> &StorageMemo {
        &self.storage
    }

    /// The two-level memory replay caches.
    pub fn replay(&self) -> &ReplayMemo {
        &self.replay
    }

    /// Hit/miss counters merged across every cache.
    pub fn stats(&self) -> MemoStats {
        self.storage
            .stats()
            .merged(&self.replay.stats())
            .merged(&self.perf.stats())
    }

    /// A cached performance measurement, keyed on the workload, the full
    /// platform demand vector (which already folds in storage service
    /// times and memory-sharing slowdowns), and the measurement config.
    /// `compute` runs on a miss and must be a pure function of the key.
    pub fn perf(
        &self,
        id: WorkloadId,
        demand: &PlatformDemand,
        cfg: &MeasureConfig,
        compute: impl FnOnce() -> Result<f64, MeasureError>,
    ) -> Result<f64, MeasureError> {
        let key = MemoKey::new("eval-perf").push(&id).push(demand).push(cfg);
        self.perf.get_or_compute(key.finish(), compute)
    }

    /// A shared handle to an enabled memo (the [`Evaluator`] default).
    ///
    /// [`Evaluator`]: crate::evaluate::Evaluator
    pub fn shared(enabled: bool) -> Arc<Self> {
        Arc::new(Self::with_enabled(enabled))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcs_platforms::{catalog, PlatformId};
    use wcs_workloads::suite;

    #[test]
    fn perf_cache_returns_first_computation() {
        let memo = EvalMemo::new();
        let wl = suite::workload(WorkloadId::Websearch);
        let platform = catalog::platform(PlatformId::Emb1);
        let demand = PlatformDemand::new(&wl, &platform);
        let cfg = MeasureConfig::quick();
        let a = memo.perf(WorkloadId::Websearch, &demand, &cfg, || Ok(1.0));
        let b = memo.perf(WorkloadId::Websearch, &demand, &cfg, || Ok(2.0));
        assert_eq!(a.unwrap(), 1.0);
        assert_eq!(b.unwrap(), 1.0);
        assert_eq!(memo.stats().hits, 1);
    }

    #[test]
    fn disabled_memo_always_recomputes() {
        let memo = EvalMemo::disabled();
        assert!(!memo.is_enabled());
        let wl = suite::workload(WorkloadId::Webmail);
        let platform = catalog::platform(PlatformId::Desk);
        let demand = PlatformDemand::new(&wl, &platform);
        let cfg = MeasureConfig::quick();
        let a = memo.perf(WorkloadId::Webmail, &demand, &cfg, || Ok(1.0));
        let b = memo.perf(WorkloadId::Webmail, &demand, &cfg, || Ok(2.0));
        assert_eq!(a.unwrap(), 1.0);
        assert_eq!(b.unwrap(), 2.0);
        assert_eq!(memo.stats().hits, 0);
    }
}
