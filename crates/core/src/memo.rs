//! The evaluation pipeline's memoization layer.
//!
//! One [`EvalMemo`] aggregates the three caches a design-space sweep
//! exercises: storage-trace replays (from `wcs-flashcache`), two-level
//! memory replays (from `wcs-memshare`), and the final performance
//! measurements. Sweep points differ in a few design parameters but
//! share most sub-simulations — the same disk scenario, the same memory
//! trace, the same demand vector — so a warm sweep answers most of its
//! work from the caches.
//!
//! Every cached value is a pure function of its key (all inputs,
//! including RNG seeds, are folded into the key), so memoized and
//! unmemoized runs are byte-identical by construction.

use std::sync::Arc;

use wcs_flashcache::memo::StorageMemo;
use wcs_memshare::slowdown::ReplayMemo;
use wcs_simcore::event::QueueObs;
use wcs_simcore::memo::{MemoCache, MemoKey, MemoStats};
use wcs_simcore::obs::Registry;
use wcs_workloads::perf::{MeasureConfig, MeasureError};
use wcs_workloads::service::PlatformDemand;
use wcs_workloads::WorkloadId;

/// A cached performance measurement: the metric value plus the
/// event-queue occupancy its probe runs accumulated. Caching the queue
/// counters alongside the value keeps the `queue.*` observability
/// series bit-identical whether a measurement was recomputed or served
/// from the cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfSample {
    /// The performance metric value (RPS or 1/makespan-seconds).
    pub value: f64,
    /// Event-queue occupancy summed over the measurement's probe runs.
    pub queue: QueueObs,
}

/// Caches shared across every evaluation an [`Evaluator`] performs.
///
/// [`Evaluator`]: crate::evaluate::Evaluator
#[derive(Debug, Default)]
pub struct EvalMemo {
    storage: StorageMemo,
    replay: ReplayMemo,
    perf: MemoCache<Result<PerfSample, MeasureError>>,
    obs: Registry,
}

impl EvalMemo {
    /// An enabled memo.
    pub fn new() -> Self {
        Self::with_enabled(true)
    }

    /// A disabled memo: every sub-simulation recomputes from its live
    /// generator, exactly as the unmemoized code path would.
    pub fn disabled() -> Self {
        Self::with_enabled(false)
    }

    /// A memo with caching switched on or off.
    pub fn with_enabled(enabled: bool) -> Self {
        EvalMemo {
            storage: StorageMemo::with_enabled(enabled),
            replay: ReplayMemo::with_enabled(enabled),
            perf: MemoCache::with_enabled(enabled),
            obs: Registry::disabled(),
        }
    }

    /// Returns this memo recording into `registry`: the storage and
    /// memory replay caches report their exact-class `flashcache.*` and
    /// `memshare.*` series (recorded from returned replay results, so
    /// the values are independent of cache state), and
    /// [`EvalMemo::export_obs`] reports the per-domain hit/miss
    /// counters.
    #[must_use]
    pub fn with_obs(mut self, registry: Registry) -> Self {
        self.storage = self.storage.with_obs(registry.clone());
        self.replay = self.replay.with_obs(registry.clone());
        self.obs = registry;
        self
    }

    /// Records the per-domain cache hit/miss counters into the attached
    /// registry as wall-class `memo.*` series. Hit counts depend on
    /// which racing worker computed a value first (and on whether the
    /// memo is enabled at all), so they are profiling data, not part of
    /// the deterministic snapshot. Counters accumulate: call once, just
    /// before snapshotting the registry.
    pub fn export_obs(&self) {
        if !self.obs.is_enabled() {
            return;
        }
        for (domain, stats) in [
            ("storage", self.storage.stats()),
            ("replay", self.replay.stats()),
            ("perf", self.perf.stats()),
        ] {
            self.obs
                .wall_counter(&format!("memo.{domain}.hits"))
                .add(stats.hits);
            self.obs
                .wall_counter(&format!("memo.{domain}.misses"))
                .add(stats.misses);
        }
    }

    /// Whether lookups hit the caches.
    pub fn is_enabled(&self) -> bool {
        self.perf.is_enabled()
    }

    /// The storage-replay caches.
    pub fn storage(&self) -> &StorageMemo {
        &self.storage
    }

    /// The two-level memory replay caches.
    pub fn replay(&self) -> &ReplayMemo {
        &self.replay
    }

    /// Hit/miss counters merged across every cache.
    pub fn stats(&self) -> MemoStats {
        self.storage
            .stats()
            .merged(&self.replay.stats())
            .merged(&self.perf.stats())
    }

    /// A cached performance measurement, keyed on the workload, the full
    /// platform demand vector (which already folds in storage service
    /// times and memory-sharing slowdowns), and the measurement config.
    /// `compute` runs on a miss and must be a pure function of the key.
    pub fn perf(
        &self,
        id: WorkloadId,
        demand: &PlatformDemand,
        cfg: &MeasureConfig,
        compute: impl FnOnce() -> Result<PerfSample, MeasureError>,
    ) -> Result<PerfSample, MeasureError> {
        let key = MemoKey::new("eval-perf").push(&id).push(demand).push(cfg);
        self.perf.get_or_compute(key.finish(), compute)
    }

    /// A shared handle to an enabled memo (the [`Evaluator`] default).
    ///
    /// [`Evaluator`]: crate::evaluate::Evaluator
    pub fn shared(enabled: bool) -> Arc<Self> {
        Arc::new(Self::with_enabled(enabled))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcs_platforms::{catalog, PlatformId};
    use wcs_workloads::suite;

    fn sample(value: f64) -> PerfSample {
        PerfSample {
            value,
            queue: QueueObs::default(),
        }
    }

    #[test]
    fn perf_cache_returns_first_computation() {
        let memo = EvalMemo::new();
        let wl = suite::workload(WorkloadId::Websearch);
        let platform = catalog::platform(PlatformId::Emb1);
        let demand = PlatformDemand::new(&wl, &platform);
        let cfg = MeasureConfig::quick();
        let a = memo.perf(WorkloadId::Websearch, &demand, &cfg, || Ok(sample(1.0)));
        let b = memo.perf(WorkloadId::Websearch, &demand, &cfg, || Ok(sample(2.0)));
        assert_eq!(a.unwrap().value, 1.0);
        assert_eq!(b.unwrap().value, 1.0);
        assert_eq!(memo.stats().hits, 1);
    }

    #[test]
    fn disabled_memo_always_recomputes() {
        let memo = EvalMemo::disabled();
        assert!(!memo.is_enabled());
        let wl = suite::workload(WorkloadId::Webmail);
        let platform = catalog::platform(PlatformId::Desk);
        let demand = PlatformDemand::new(&wl, &platform);
        let cfg = MeasureConfig::quick();
        let a = memo.perf(WorkloadId::Webmail, &demand, &cfg, || Ok(sample(1.0)));
        let b = memo.perf(WorkloadId::Webmail, &demand, &cfg, || Ok(sample(2.0)));
        assert_eq!(a.unwrap().value, 1.0);
        assert_eq!(b.unwrap().value, 2.0);
        assert_eq!(memo.stats().hits, 0);
    }
}
