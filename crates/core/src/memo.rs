//! The evaluation pipeline's memoization layer.
//!
//! One [`EvalMemo`] aggregates the three caches a design-space sweep
//! exercises: storage-trace replays (from `wcs-flashcache`), two-level
//! memory replays (from `wcs-memshare`), and the final performance
//! measurements. Sweep points differ in a few design parameters but
//! share most sub-simulations — the same disk scenario, the same memory
//! trace, the same demand vector — so a warm sweep answers most of its
//! work from the caches.
//!
//! Every cached value is a pure function of its key (all inputs,
//! including RNG seeds, are folded into the key), so memoized and
//! unmemoized runs are byte-identical by construction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use wcs_flashcache::memo::StorageMemo;
use wcs_memshare::slowdown::ReplayMemo;
use wcs_simcore::event::QueueObs;
use wcs_simcore::intern::intern;
use wcs_simcore::journal::{JournalRecord, JournalWriter};
use wcs_simcore::memo::{MemoCache, MemoKey, MemoStats};
use wcs_simcore::obs::Registry;
use wcs_workloads::perf::{MeasureConfig, MeasureError};
use wcs_workloads::service::PlatformDemand;
use wcs_workloads::WorkloadId;

/// A cached performance measurement: the metric value plus the
/// event-queue occupancy its probe runs accumulated. Caching the queue
/// counters alongside the value keeps the `queue.*` observability
/// series bit-identical whether a measurement was recomputed or served
/// from the cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfSample {
    /// The performance metric value (RPS or 1/makespan-seconds).
    pub value: f64,
    /// Event-queue occupancy summed over the measurement's probe runs.
    pub queue: QueueObs,
}

/// Encode a perf measurement into its journal payload (little-endian).
///
/// ```text
/// Ok : 0x00 value:f64-bits scheduled:u64 fast_path:u64
///      calendar_hits:u64 heap_fallbacks:u64 max_depth:u64
/// Err: 0x01 wl_len:u32 wl_bytes reason_len:u32 reason_bytes
/// ```
///
/// Both arms are journaled: an infeasible-QoS `Err` is as much a pure
/// function of the cell key as a successful sample, and replaying it
/// saves the resumed run the recompute. Records written before the
/// calendar-queue counters existed carry a 32-byte `Ok` body and fail
/// the length check below, so resumed runs recompute those cells
/// instead of reviving a half-decoded sample.
pub fn encode_perf(result: &Result<PerfSample, MeasureError>) -> Vec<u8> {
    match result {
        Ok(s) => {
            let mut out = Vec::with_capacity(1 + 8 * 6);
            out.push(0);
            out.extend_from_slice(&s.value.to_bits().to_le_bytes());
            out.extend_from_slice(&s.queue.scheduled.to_le_bytes());
            out.extend_from_slice(&s.queue.fast_path.to_le_bytes());
            out.extend_from_slice(&s.queue.calendar_hits.to_le_bytes());
            out.extend_from_slice(&s.queue.heap_fallbacks.to_le_bytes());
            out.extend_from_slice(&s.queue.max_depth.to_le_bytes());
            out
        }
        Err(e) => {
            let wl = e.workload.as_bytes();
            let reason = e.reason.as_bytes();
            let mut out = Vec::with_capacity(1 + 4 + wl.len() + 4 + reason.len());
            out.push(1);
            out.extend_from_slice(&(wl.len() as u32).to_le_bytes());
            out.extend_from_slice(wl);
            out.extend_from_slice(&(reason.len() as u32).to_le_bytes());
            out.extend_from_slice(reason);
            out
        }
    }
}

/// Decode a journal payload back into a perf measurement. Returns `None`
/// on any structural mismatch — a record that decodes wrong is dropped by
/// the replay seeding rather than poisoning the resumed run.
pub fn decode_perf(payload: &[u8]) -> Option<Result<PerfSample, MeasureError>> {
    let (&tag, rest) = payload.split_first()?;
    match tag {
        0 => {
            if rest.len() != 48 {
                return None;
            }
            let word =
                |i: usize| u64::from_le_bytes(rest[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
            Some(Ok(PerfSample {
                value: f64::from_bits(word(0)),
                queue: QueueObs {
                    scheduled: word(1),
                    fast_path: word(2),
                    calendar_hits: word(3),
                    heap_fallbacks: word(4),
                    max_depth: word(5),
                },
            }))
        }
        1 => {
            let take = |buf: &[u8]| -> Option<(String, usize)> {
                let len = u32::from_le_bytes(buf.get(..4)?.try_into().ok()?) as usize;
                let bytes = buf.get(4..4 + len)?;
                Some((String::from_utf8(bytes.to_vec()).ok()?, 4 + len))
            };
            let (workload, used) = take(rest)?;
            let (reason, used2) = take(&rest[used..])?;
            if used + used2 != rest.len() {
                return None;
            }
            Some(Err(MeasureError {
                workload: intern(&workload),
                reason,
            }))
        }
        _ => None,
    }
}

/// FNV-1a 64 digest of a journal payload; cross-checked when seeding a
/// resumed run so a CRC-colliding or hand-edited record is still dropped.
pub fn perf_digest(payload: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in payload {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Caches shared across every evaluation an [`Evaluator`] performs.
///
/// [`Evaluator`]: crate::evaluate::Evaluator
#[derive(Debug, Default)]
pub struct EvalMemo {
    storage: StorageMemo,
    replay: ReplayMemo,
    perf: MemoCache<Result<PerfSample, MeasureError>>,
    /// Steady-state measurements of registry scenarios outside the
    /// paper suite (FaaS, DAG, user registrations). A separate lane from
    /// `perf` because scenario keys are workload *names* plus family
    /// parameters — the paper lane's `WorkloadId` key cannot express
    /// them, and paper workloads under `TrafficPack::Steady` must keep
    /// hitting the `perf` lane bit-identically.
    scenario_perf: MemoCache<Result<PerfSample, MeasureError>>,
    /// Open-loop traffic-pack runs (diurnal, flash-crowd, failover
    /// surge) keyed on scenario, pack parameters, demand, and config.
    traffic: MemoCache<crate::scenario::TrafficSample>,
    /// Resilient traffic runs (admission + budget + breakers under a
    /// chaos plan) keyed additionally on the full resilience spec. A
    /// separate lane from `traffic` so a resilient run can never alias
    /// the plain run of the same scenario.
    resilient: MemoCache<crate::scenario::ResilientSample>,
    /// Cells recovered from a `--resume` journal. Consulted before the
    /// regular perf lane and *always* enabled — resuming must work under
    /// `--no-memo` too, and a replayed cell is by construction the value
    /// the cold path would recompute.
    resume: MemoCache<Result<PerfSample, MeasureError>>,
    /// Append handle for the active journal, when this run is journaling.
    /// Cleared on the first append failure (a full disk degrades the run
    /// to unjournaled rather than aborting it).
    journal: Mutex<Option<JournalWriter>>,
    /// When set, perf lookups answered by the resume lane are *also*
    /// journaled (normally only freshly computed cells are). The sweep
    /// service uses this to canonicalize a merged multi-worker journal:
    /// a serial pass over the plan with every cell in the resume lane
    /// re-journals the records in first-compute order, reproducing the
    /// byte layout of an uninterrupted single-process run.
    journal_resume_hits: std::sync::atomic::AtomicBool,
    replayed: AtomicU64,
    resume_hits: AtomicU64,
    journaled: AtomicU64,
    journal_errors: AtomicU64,
    obs: Registry,
}

impl EvalMemo {
    /// An enabled memo.
    pub fn new() -> Self {
        Self::with_enabled(true)
    }

    /// A disabled memo: every sub-simulation recomputes from its live
    /// generator, exactly as the unmemoized code path would.
    pub fn disabled() -> Self {
        Self::with_enabled(false)
    }

    /// A memo with caching switched on or off.
    pub fn with_enabled(enabled: bool) -> Self {
        EvalMemo {
            storage: StorageMemo::with_enabled(enabled),
            replay: ReplayMemo::with_enabled(enabled),
            perf: MemoCache::with_enabled(enabled),
            scenario_perf: MemoCache::with_enabled(enabled),
            traffic: MemoCache::with_enabled(enabled),
            resilient: MemoCache::with_enabled(enabled),
            resume: MemoCache::new(),
            journal: Mutex::new(None),
            journal_resume_hits: std::sync::atomic::AtomicBool::new(false),
            replayed: AtomicU64::new(0),
            resume_hits: AtomicU64::new(0),
            journaled: AtomicU64::new(0),
            journal_errors: AtomicU64::new(0),
            obs: Registry::disabled(),
        }
    }

    /// Seeds the resume lane from replayed journal records, first-insert
    /// wins. Records whose payload fails to decode or whose digest does
    /// not match are silently dropped — the resumed run recomputes those
    /// cells. Returns how many records were seeded.
    pub fn seed_journal(&self, records: &[JournalRecord]) -> u64 {
        let mut seeded = 0;
        for r in records {
            if perf_digest(&r.payload) != r.digest {
                continue;
            }
            let Some(value) = decode_perf(&r.payload) else {
                continue;
            };
            if self.resume.insert(r.key, value) {
                seeded += 1;
            }
        }
        self.replayed.fetch_add(seeded, Ordering::Relaxed);
        seeded
    }

    /// Attaches an append handle: every freshly computed perf cell is
    /// written to the journal from now on (one record per distinct key).
    pub fn attach_journal(&self, writer: JournalWriter) {
        *self.journal.lock().unwrap_or_else(PoisonError::into_inner) = Some(writer);
    }

    /// Whether a journal writer is currently attached.
    pub fn is_journaling(&self) -> bool {
        self.journal
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
    }

    /// Also journal perf lookups answered by the resume lane (normally
    /// only freshly computed cells are written). Used by the sweep
    /// service's canonicalization pass — see the field doc.
    pub fn set_journal_resume_hits(&self, enabled: bool) {
        self.journal_resume_hits.store(enabled, Ordering::Relaxed);
    }

    /// Append an opaque marker record (e.g. a service lease or
    /// completion marker) through the attached journal writer. A no-op
    /// without a writer; returns whether the record was written (`false`
    /// also for duplicate keys). Append failures degrade journaling
    /// exactly like result-record failures.
    pub fn journal_marker(&self, key: u128, digest: u64, payload: &[u8]) -> bool {
        let mut guard = self.journal.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(writer) = guard.as_mut() else {
            return false;
        };
        match writer.append(key, digest, payload) {
            Ok(wrote) => wrote,
            Err(e) => {
                self.journal_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!("warning: sweep journal append failed, journaling disabled: {e}");
                *guard = None;
                false
            }
        }
    }

    /// Flush and sync the attached journal to disk (clean shutdown); a
    /// no-op without a writer.
    pub fn sync_journal(&self) {
        let mut guard = self.journal.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(writer) = guard.as_mut() {
            if let Err(e) = writer.sync() {
                eprintln!("warning: sweep journal sync failed: {e}");
            }
        }
    }

    /// Cells seeded from a journal replay by [`seed_journal`](Self::seed_journal).
    pub fn cells_replayed(&self) -> u64 {
        self.replayed.load(Ordering::Relaxed)
    }

    /// Distinct cells appended to the journal by this run.
    pub fn cells_journaled(&self) -> u64 {
        self.journaled.load(Ordering::Relaxed)
    }

    /// Perf lookups served from the resume lane.
    pub fn resume_hits(&self) -> u64 {
        self.resume_hits.load(Ordering::Relaxed)
    }

    fn journal_result(&self, key: u128, value: &Result<PerfSample, MeasureError>) {
        let mut guard = self.journal.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(writer) = guard.as_mut() else { return };
        let payload = encode_perf(value);
        let digest = perf_digest(&payload);
        match writer.append(key, digest, &payload) {
            Ok(true) => {
                self.journaled.fetch_add(1, Ordering::Relaxed);
            }
            Ok(false) => {}
            Err(e) => {
                self.journal_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!("warning: sweep journal append failed, journaling disabled: {e}");
                *guard = None;
            }
        }
    }

    /// Returns this memo recording into `registry`: the storage and
    /// memory replay caches report their exact-class `flashcache.*` and
    /// `memshare.*` series (recorded from returned replay results, so
    /// the values are independent of cache state), and
    /// [`EvalMemo::export_obs`] reports the per-domain hit/miss
    /// counters.
    #[must_use]
    pub fn with_obs(mut self, registry: Registry) -> Self {
        self.storage = self.storage.with_obs(registry.clone());
        self.replay = self.replay.with_obs(registry.clone());
        self.obs = registry;
        self
    }

    /// Records the per-domain cache hit/miss counters into the attached
    /// registry as wall-class `memo.*` series. Hit counts depend on
    /// which racing worker computed a value first (and on whether the
    /// memo is enabled at all), so they are profiling data, not part of
    /// the deterministic snapshot. Counters accumulate: call once, just
    /// before snapshotting the registry.
    pub fn export_obs(&self) {
        if !self.obs.is_enabled() {
            return;
        }
        for (domain, stats) in [
            ("storage", self.storage.stats()),
            ("replay", self.replay.stats()),
            ("perf", self.perf.stats()),
            (
                "scenario",
                self.scenario_perf
                    .stats()
                    .merged(&self.traffic.stats())
                    .merged(&self.resilient.stats()),
            ),
        ] {
            self.obs
                .wall_counter(&format!("memo.{domain}.hits"))
                .add(stats.hits);
            self.obs
                .wall_counter(&format!("memo.{domain}.misses"))
                .add(stats.misses);
        }
        // Recovery counters are pure functions of the cell set and the
        // journal contents — deterministic across thread counts and memo
        // on/off — so they export under the exact class. Journal append
        // *errors* (full disk etc.) are environmental: wall class.
        self.obs
            .counter("recovery.cells_replayed")
            .add(self.replayed.load(Ordering::Relaxed));
        self.obs
            .counter("recovery.cells_journaled")
            .add(self.journaled.load(Ordering::Relaxed));
        self.obs
            .counter("recovery.resume_hits")
            .add(self.resume_hits.load(Ordering::Relaxed));
        self.obs
            .wall_counter("recovery.journal_errors")
            .add(self.journal_errors.load(Ordering::Relaxed));
    }

    /// Whether lookups hit the caches.
    pub fn is_enabled(&self) -> bool {
        self.perf.is_enabled()
    }

    /// The storage-replay caches.
    pub fn storage(&self) -> &StorageMemo {
        &self.storage
    }

    /// The two-level memory replay caches.
    pub fn replay(&self) -> &ReplayMemo {
        &self.replay
    }

    /// Hit/miss counters merged across every cache.
    pub fn stats(&self) -> MemoStats {
        self.storage
            .stats()
            .merged(&self.replay.stats())
            .merged(&self.perf.stats())
            .merged(&self.scenario_perf.stats())
            .merged(&self.traffic.stats())
            .merged(&self.resilient.stats())
    }

    /// A cached performance measurement, keyed on the workload, the full
    /// platform demand vector (which already folds in storage service
    /// times and memory-sharing slowdowns), and the measurement config.
    /// `compute` runs on a miss and must be a pure function of the key.
    pub fn perf(
        &self,
        id: WorkloadId,
        demand: &PlatformDemand,
        cfg: &MeasureConfig,
        compute: impl FnOnce() -> Result<PerfSample, MeasureError>,
    ) -> Result<PerfSample, MeasureError> {
        let key = MemoKey::new("eval-perf")
            .push(&id)
            .push(demand)
            .push(cfg)
            .finish();
        // The resume lane answers first: cells recovered from a journal
        // are served even under `--no-memo`, and the replayed bits are by
        // construction what the cold path would recompute.
        if let Some(v) = self.resume.get(key) {
            self.resume_hits.fetch_add(1, Ordering::Relaxed);
            if self.journal_resume_hits.load(Ordering::Relaxed) {
                // Canonicalization mode: re-journal replayed cells too
                // (the writer's key dedup keeps each record single).
                self.journal_result(key, &v);
            }
            return v;
        }
        let mut computed = false;
        let v = self.perf.get_or_compute(key, || {
            computed = true;
            compute()
        });
        if computed {
            self.journal_result(key, &v);
        }
        v
    }

    /// A cached steady-state measurement of a registry scenario (FaaS,
    /// DAG, user registrations). The caller builds the key — scenario
    /// name, family parameters, final demand vector, measurement config
    /// — because family-specific inputs vary; `compute` must be a pure
    /// function of it. Not journaled: the resume journal stays a pure
    /// record of the paper sweep lattice.
    pub fn scenario_perf(
        &self,
        key: u128,
        compute: impl FnOnce() -> Result<PerfSample, MeasureError>,
    ) -> Result<PerfSample, MeasureError> {
        self.scenario_perf.get_or_compute(key, compute)
    }

    /// A cached open-loop traffic-pack run, keyed by the caller on
    /// scenario, pack, demand, and config.
    pub fn traffic(
        &self,
        key: u128,
        compute: impl FnOnce() -> crate::scenario::TrafficSample,
    ) -> crate::scenario::TrafficSample {
        self.traffic.get_or_compute(key, compute)
    }

    /// A cached resilient traffic run, keyed by the caller on scenario,
    /// pack, demand, config, and the full resilience spec (admission,
    /// budget, breaker, and chaos-plan parameters).
    pub fn resilient(
        &self,
        key: u128,
        compute: impl FnOnce() -> crate::scenario::ResilientSample,
    ) -> crate::scenario::ResilientSample {
        self.resilient.get_or_compute(key, compute)
    }

    /// A shared handle to an enabled memo (the [`Evaluator`] default).
    ///
    /// [`Evaluator`]: crate::evaluate::Evaluator
    pub fn shared(enabled: bool) -> Arc<Self> {
        Arc::new(Self::with_enabled(enabled))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcs_platforms::{catalog, PlatformId};
    use wcs_workloads::suite;

    fn sample(value: f64) -> PerfSample {
        PerfSample {
            value,
            queue: QueueObs::default(),
        }
    }

    #[test]
    fn perf_cache_returns_first_computation() {
        let memo = EvalMemo::new();
        let wl = suite::workload(WorkloadId::Websearch);
        let platform = catalog::platform(PlatformId::Emb1);
        let demand = PlatformDemand::new(&wl, &platform);
        let cfg = MeasureConfig::quick();
        let a = memo.perf(WorkloadId::Websearch, &demand, &cfg, || Ok(sample(1.0)));
        let b = memo.perf(WorkloadId::Websearch, &demand, &cfg, || Ok(sample(2.0)));
        assert_eq!(a.unwrap().value, 1.0);
        assert_eq!(b.unwrap().value, 1.0);
        assert_eq!(memo.stats().hits, 1);
    }

    #[test]
    fn perf_payload_roundtrips_both_arms() {
        let ok: Result<PerfSample, MeasureError> = Ok(PerfSample {
            value: 1234.5678,
            queue: QueueObs {
                scheduled: 10,
                fast_path: 3,
                calendar_hits: 5,
                heap_fallbacks: 2,
                max_depth: 7,
            },
        });
        let err: Result<PerfSample, MeasureError> = Err(MeasureError {
            workload: "websearch",
            reason: "QoS infeasible at 99p".to_owned(),
        });
        for v in [ok, err] {
            let payload = encode_perf(&v);
            let back = decode_perf(&payload).expect("decode");
            assert_eq!(back, v);
            // The digest is stable and payload-sensitive.
            let d = perf_digest(&payload);
            assert_eq!(d, perf_digest(&payload));
            let mut damaged = payload.clone();
            damaged[0] ^= 0x80;
            assert_ne!(d, perf_digest(&damaged));
        }
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        assert!(decode_perf(&[]).is_none());
        assert!(decode_perf(&[9]).is_none(), "unknown tag");
        assert!(decode_perf(&[0, 1, 2]).is_none(), "short Ok body");
        assert!(
            decode_perf(&[0u8; 33]).is_none(),
            "pre-calendar 32-byte Ok body is dropped, not half-decoded"
        );
        assert!(
            decode_perf(&[1, 255, 255, 255, 255]).is_none(),
            "oversized Err len"
        );
        // Trailing garbage after a valid Err body is rejected too.
        let mut err = encode_perf(&Err(MeasureError {
            workload: "webmail",
            reason: "x".to_owned(),
        }));
        err.push(0);
        assert!(decode_perf(&err).is_none());
    }

    #[test]
    fn seeded_resume_lane_answers_before_compute_even_with_memo_off() {
        use wcs_simcore::journal::JournalRecord;
        let memo = EvalMemo::disabled();
        let wl = suite::workload(WorkloadId::Websearch);
        let platform = catalog::platform(PlatformId::Emb1);
        let demand = PlatformDemand::new(&wl, &platform);
        let cfg = MeasureConfig::quick();
        let key = MemoKey::new("eval-perf")
            .push(&WorkloadId::Websearch)
            .push(&demand)
            .push(&cfg)
            .finish();
        let value: Result<PerfSample, MeasureError> = Ok(sample(42.0));
        let payload = encode_perf(&value);
        let records = vec![JournalRecord {
            key,
            digest: perf_digest(&payload),
            payload: payload.clone(),
        }];
        assert_eq!(memo.seed_journal(&records), 1);
        assert_eq!(memo.cells_replayed(), 1);
        let got = memo.perf(WorkloadId::Websearch, &demand, &cfg, || {
            panic!("resume lane must answer")
        });
        assert_eq!(got.unwrap().value, 42.0);
        assert_eq!(memo.resume_hits(), 1);

        // A record with a wrong digest is dropped, not served.
        let bad = vec![JournalRecord {
            key: key ^ 1,
            digest: 0,
            payload,
        }];
        assert_eq!(memo.seed_journal(&bad), 0);
    }

    #[test]
    fn resume_hits_journal_in_first_compute_order_when_enabled() {
        use wcs_simcore::journal::{self, JournalRecord};
        let dir = std::env::temp_dir();
        let path = dir.join(format!("wcs-memo-canon-{}.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let wl = suite::workload(WorkloadId::Websearch);
        let platform = catalog::platform(PlatformId::Emb1);
        let demand = PlatformDemand::new(&wl, &platform);
        let cfg = MeasureConfig::quick();
        let key = |id: WorkloadId| MemoKey::new("eval-perf").push(&id).push(&demand).push(&cfg);
        let record = |id: WorkloadId, value: f64| {
            let payload = encode_perf(&Ok(sample(value)));
            JournalRecord {
                key: key(id).finish(),
                digest: perf_digest(&payload),
                payload,
            }
        };
        // Seed two cells into the resume lane (key-sorted order is
        // whatever it is); then look them up in a chosen compute order.
        let memo = EvalMemo::new();
        memo.seed_journal(&[
            record(WorkloadId::Websearch, 1.0),
            record(WorkloadId::Webmail, 2.0),
        ]);
        let (_, writer, _) = journal::open(&path).expect("fresh journal");
        memo.attach_journal(writer);

        // Without the flag, resume hits stay out of the journal.
        let got = memo.perf(WorkloadId::Webmail, &demand, &cfg, || unreachable!());
        assert_eq!(got.unwrap().value, 2.0);
        memo.sync_journal();
        let (records, _) = journal::replay(&path).expect("journal replays");
        assert!(
            records.is_empty(),
            "resume hits must not journal by default"
        );

        // With the flag, each hit re-journals — in lookup order, which is
        // how the canonicalization pass reproduces first-compute layout.
        memo.set_journal_resume_hits(true);
        let _ = memo.perf(WorkloadId::Webmail, &demand, &cfg, || unreachable!());
        let _ = memo.perf(WorkloadId::Websearch, &demand, &cfg, || unreachable!());
        memo.sync_journal();
        let (records, _) = journal::replay(&path).expect("journal replays");
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].key, key(WorkloadId::Webmail).finish());
        assert_eq!(records[1].key, key(WorkloadId::Websearch).finish());
        // Re-hitting an already-journaled key appends nothing (the writer
        // dedups by key), so the canonical pass is idempotent per key.
        let _ = memo.perf(WorkloadId::Webmail, &demand, &cfg, || unreachable!());
        memo.sync_journal();
        let (records, _) = journal::replay(&path).expect("journal replays");
        assert_eq!(records.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_marker_appends_and_dedups_opaque_records() {
        use wcs_simcore::journal;
        let path =
            std::env::temp_dir().join(format!("wcs-memo-marker-{}.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let memo = EvalMemo::new();
        // No writer attached: a marker is a no-op, not an error.
        assert!(!memo.journal_marker(7, 0, &[0xFE, 9]));

        let (_, writer, _) = journal::open(&path).expect("fresh journal");
        memo.attach_journal(writer);
        let payload = [0xFE, 2, 5, 0, 0, 0];
        assert!(memo.journal_marker(7, perf_digest(&payload), &payload));
        assert!(
            !memo.journal_marker(7, perf_digest(&payload), &payload),
            "duplicate keys dedup"
        );
        memo.sync_journal();
        let (records, _) = journal::replay(&path).expect("journal replays");
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].key, 7);
        assert_eq!(records[0].payload, payload);
        // Marker payloads are opaque to the resume path: seeding drops them.
        let fresh = EvalMemo::new();
        assert_eq!(fresh.seed_journal(&records), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disabled_memo_always_recomputes() {
        let memo = EvalMemo::disabled();
        assert!(!memo.is_enabled());
        let wl = suite::workload(WorkloadId::Webmail);
        let platform = catalog::platform(PlatformId::Desk);
        let demand = PlatformDemand::new(&wl, &platform);
        let cfg = MeasureConfig::quick();
        let a = memo.perf(WorkloadId::Webmail, &demand, &cfg, || Ok(sample(1.0)));
        let b = memo.perf(WorkloadId::Webmail, &demand, &cfg, || Ok(sample(2.0)));
        assert_eq!(a.unwrap().value, 1.0);
        assert_eq!(b.unwrap().value, 2.0);
        assert_eq!(memo.stats().hits, 0);
    }
}
