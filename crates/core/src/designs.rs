//! Named design points: baselines and the unified N1/N2 architectures.

use wcs_cooling::{EnclosureDesign, RackGeometry};
use wcs_flashcache::study::StorageScenario;
use wcs_memshare::blade::BladeModel;
use wcs_memshare::link::RemoteLink;
use wcs_memshare::provisioning::Provisioning;
use wcs_platforms::{catalog, BomItem, Component, Platform, PlatformId};

/// The packaging/cooling configuration of a design.
#[derive(Debug, Clone)]
pub struct CoolingConfig {
    /// Scale factor on the burdened cooling terms (1.0 = conventional).
    pub cooling_scale: f64,
    /// Achievable density, systems per rack.
    pub systems_per_rack: u32,
    /// Replacement power-supply + fan BOM line, if the packaging changes
    /// it (shared enclosure PSUs, aggregated heat sinks).
    pub power_fans: Option<BomItem>,
}

impl CoolingConfig {
    /// Conventional 1U packaging: no changes.
    pub fn conventional() -> Self {
        CoolingConfig {
            cooling_scale: 1.0,
            systems_per_rack: 40,
            power_fans: None,
        }
    }

    /// Dual-entry enclosure with directed airflow (Figure 3(a)), derived
    /// from the cooling crate's physical model: ~2x cooling efficiency,
    /// 320 systems/rack, shared enclosure PSUs and small per-blade fans.
    pub fn dual_entry() -> Self {
        let sol = EnclosureDesign::dual_entry().solution(&RackGeometry::standard_42u());
        CoolingConfig {
            cooling_scale: sol.cooling_scale,
            systems_per_rack: sol.systems_per_rack,
            // Shared PSUs halve the per-server power-conversion cost;
            // power = PSU conversion losses (~6% of load) + blade fan.
            power_fans: Some(BomItem::new(Component::PowerFans, 60.0, 6.0)),
        }
    }

    /// Microblade carriers with aggregated heat removal (Figure 3(b)):
    /// ~4x cooling efficiency, 1250+ systems/rack.
    pub fn microblade() -> Self {
        let sol = EnclosureDesign::microblade().solution(&RackGeometry::standard_42u());
        CoolingConfig {
            cooling_scale: sol.cooling_scale,
            systems_per_rack: sol.systems_per_rack,
            power_fans: Some(BomItem::new(Component::PowerFans, 25.0, 2.0)),
        }
    }
}

/// The memory-sharing configuration of a design.
#[derive(Debug, Clone)]
pub struct MemShareConfig {
    /// Capacity provisioning scheme.
    pub provisioning: Provisioning,
    /// Blade cost/power model.
    pub blade: BladeModel,
    /// Remote access link (whole-page PCIe or CBF).
    pub link: RemoteLink,
    /// Servers sharing one blade link (adds M/D/1 contention to the
    /// fault latency). The paper's enclosure-level blade serves a
    /// handful of servers.
    pub servers_per_blade: u32,
}

/// A complete server design point: platform plus the ensemble-level
/// options of Section 3.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// Design name ("srvr1", "N1", "N2", ...).
    pub name: String,
    /// The base platform.
    pub platform: Platform,
    /// Packaging and cooling.
    pub cooling: CoolingConfig,
    /// Ensemble memory sharing, if used.
    pub memshare: Option<MemShareConfig>,
    /// Storage configuration (None = the platform's stock local disk).
    pub storage: Option<StorageScenario>,
}

impl DesignPoint {
    /// A stock catalog platform in conventional packaging.
    pub fn baseline(id: PlatformId) -> Self {
        DesignPoint {
            name: id.label().to_owned(),
            platform: catalog::platform(id),
            cooling: CoolingConfig::conventional(),
            memshare: None,
            storage: None,
        }
    }

    /// The paper's main baseline, `srvr1`.
    pub fn baseline_srvr1() -> Self {
        Self::baseline(PlatformId::Srvr1)
    }

    /// **N1** — the near-term unified design (Section 3.6): mobile
    /// (`mobl`) blades in dual-entry enclosures with directed airflow;
    /// no memory sharing or flash disk caching.
    pub fn n1() -> Self {
        DesignPoint {
            name: "N1".to_owned(),
            platform: catalog::platform(PlatformId::Mobl),
            cooling: CoolingConfig::dual_entry(),
            memshare: None,
            storage: None,
        }
    }

    /// **N2** — the longer-term unified design (Section 3.6): embedded
    /// (`emb1`) microblades with aggregated cooling, dynamic ensemble
    /// memory sharing with critical-block-first transfers, and remote
    /// laptop disks with flash-based disk caching.
    pub fn n2() -> Self {
        DesignPoint {
            name: "N2".to_owned(),
            platform: catalog::platform(PlatformId::Emb1),
            cooling: CoolingConfig::microblade(),
            memshare: Some(MemShareConfig {
                provisioning: Provisioning::dynamic_provisioning(),
                blade: BladeModel::paper_default(),
                link: RemoteLink::pcie_x4_cbf(),
                servers_per_blade: 8,
            }),
            storage: Some(StorageScenario::laptop_flash()),
        }
    }

    /// The physical platform after applying memory sharing, storage, and
    /// packaging changes — the BOM the cost model prices.
    pub fn effective_platform(&self) -> Platform {
        let mut p = self.platform.clone();
        if let Some(ms) = &self.memshare {
            p = ms.provisioning.apply(&p, &ms.blade);
        }
        if let Some(s) = &self.storage {
            p = s.apply_bom(&p);
        }
        if let Some(pf) = &self.cooling.power_fans {
            p = p.with_component(*pf);
        }
        p.name = self.name.clone();
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_are_stock() {
        let b = DesignPoint::baseline_srvr1();
        let p = b.effective_platform();
        assert!((p.hardware_cost_usd() - 3225.0).abs() < 1.0);
        assert!((p.max_power_w() - 340.0).abs() < 0.5);
    }

    #[test]
    fn n1_is_cheaper_and_cooler_than_mobl() {
        let mobl = catalog::platform(PlatformId::Mobl);
        let n1 = DesignPoint::n1().effective_platform();
        assert!(n1.hardware_cost_usd() < mobl.hardware_cost_usd());
        assert!(n1.max_power_w() < mobl.max_power_w());
        assert!(DesignPoint::n1().cooling.cooling_scale < 0.6);
        assert_eq!(DesignPoint::n1().cooling.systems_per_rack, 320);
    }

    #[test]
    fn n2_composes_all_three_techniques() {
        let n2 = DesignPoint::n2();
        assert!(n2.memshare.is_some());
        assert!(n2.storage.is_some());
        assert!(n2.cooling.cooling_scale < 0.3);
        assert!(n2.cooling.systems_per_rack >= 1250);
        let p = n2.effective_platform();
        // Memory blade + flash + laptop disk + shared PSUs all present.
        assert!(p.component_cost(Component::MemoryBlade) > 0.0);
        assert!(p.component_cost(Component::Flash) > 0.0);
        assert_eq!(p.component_cost(Component::Disk), 80.0);
        assert_eq!(p.component_cost(Component::PowerFans), 25.0);
        // Far below the emb1 baseline in power.
        assert!(p.max_power_w() < 35.0, "N2 power {}", p.max_power_w());
    }

    #[test]
    fn n2_keeps_memory_capacity_visible() {
        // Memory sharing shrinks local DRAM but the blade backs the rest:
        // software still sees the full capacity.
        let p = DesignPoint::n2().effective_platform();
        assert_eq!(p.memory.capacity_gib, 4.0);
    }
}
