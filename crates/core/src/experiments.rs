//! Programmatic drivers for the paper's experiments.
//!
//! The `wcs-bench` binaries print tables; these functions return the
//! underlying data so library users can embed the studies in their own
//! analyses. Each driver corresponds to one table/figure:
//!
//! * [`cpu_study`] — Figure 2(c): the six platforms across the suite,
//! * [`memory_study`] — Figure 4(b): remote-memory slowdowns,
//! * [`disk_study`] — Table 3(b) (re-exported from `wcs-flashcache`),
//! * [`unified_study`] — Figure 5: N1/N2 against a chosen baseline.

use std::collections::BTreeMap;

use wcs_memshare::link::RemoteLink;
use wcs_memshare::slowdown::{estimate_slowdown_with, ReplayMemo, SlowdownConfig, SlowdownResult};
use wcs_platforms::PlatformId;
use wcs_workloads::perf::MeasureError;
use wcs_workloads::WorkloadId;

pub use wcs_flashcache::study::{run_disk_study, run_disk_study_with, DiskStudyRow};

use crate::designs::DesignPoint;
use crate::evaluate::{Comparison, Evaluator};

/// Result of the Figure 2(c) study: per-platform comparisons against
/// srvr1.
#[derive(Debug, Clone)]
pub struct CpuStudy {
    /// One comparison per non-baseline platform, in Table 2 order.
    pub comparisons: Vec<Comparison>,
}

impl CpuStudy {
    /// The relative performance of `platform` on `workload`.
    pub fn relative_perf(&self, platform: PlatformId, workload: WorkloadId) -> Option<f64> {
        self.comparisons
            .iter()
            .find(|c| c.design == platform.label())
            .and_then(|c| {
                c.rows
                    .iter()
                    .find(|r| r.workload == workload)
                    .map(|r| r.perf)
            })
    }
}

/// Runs the Figure 2(c) study: every platform vs srvr1 across the suite.
///
/// # Errors
/// Propagates a [`MeasureError`] if any workload is infeasible on any
/// platform (none are, with the catalog platforms).
pub fn cpu_study(eval: &Evaluator) -> Result<CpuStudy, MeasureError> {
    // All six platform evaluations are independent; fan them out in one
    // batch (the baseline rides along as designs[0]).
    let mut designs = vec![DesignPoint::baseline_srvr1()];
    designs.extend(
        [
            PlatformId::Srvr2,
            PlatformId::Desk,
            PlatformId::Mobl,
            PlatformId::Emb1,
            PlatformId::Emb2,
        ]
        .map(DesignPoint::baseline),
    );
    let mut evals = eval.evaluate_many(&designs)?.into_iter();
    let baseline = evals.next().expect("baseline evaluated");
    Ok(CpuStudy {
        comparisons: evals.map(|e| e.compare(&baseline)).collect(),
    })
}

/// Runs the Figure 4(b) study: slowdown of every workload under the
/// given local-memory fraction, for both the whole-page PCIe link and
/// CBF.
pub fn memory_study(local_fraction: f64) -> BTreeMap<WorkloadId, (SlowdownResult, SlowdownResult)> {
    memory_study_with(local_fraction, &ReplayMemo::disabled())
}

/// [`memory_study`] with a shared [`ReplayMemo`]: the PCIe and CBF
/// columns differ only in the link model, which the estimator applies
/// analytically after the replay, so each workload's two-level replay
/// runs once and the second column is answered from the cache.
pub fn memory_study_with(
    local_fraction: f64,
    memo: &ReplayMemo,
) -> BTreeMap<WorkloadId, (SlowdownResult, SlowdownResult)> {
    let mut out = BTreeMap::new();
    for id in WorkloadId::ALL {
        let pcie = estimate_slowdown_with(
            id,
            &SlowdownConfig {
                local_fraction,
                link: RemoteLink::pcie_x4(),
                ..SlowdownConfig::paper_default()
            },
            memo,
        )
        .expect("local fraction in (0, 1]");
        let cbf = estimate_slowdown_with(
            id,
            &SlowdownConfig {
                local_fraction,
                link: RemoteLink::pcie_x4_cbf(),
                ..SlowdownConfig::paper_default()
            },
            memo,
        )
        .expect("local fraction in (0, 1]");
        out.insert(id, (pcie, cbf));
    }
    out
}

/// Runs the Figure 5 study: N1 and N2 against the given baseline
/// platform.
///
/// # Errors
/// Propagates a [`MeasureError`] if any design/workload pair is
/// infeasible.
pub fn unified_study(
    eval: &Evaluator,
    baseline: PlatformId,
) -> Result<(Comparison, Comparison), MeasureError> {
    let designs = [
        DesignPoint::baseline(baseline),
        DesignPoint::n1(),
        DesignPoint::n2(),
    ];
    let [base, n1, n2]: [_; 3] = eval
        .evaluate_many(&designs)?
        .try_into()
        .expect("three designs evaluated");
    Ok((n1.compare(&base), n2.compare(&base)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_study_covers_five_platforms() {
        let eval = Evaluator::quick();
        let study = cpu_study(&eval).unwrap();
        assert_eq!(study.comparisons.len(), 5);
        let r = study
            .relative_perf(PlatformId::Emb1, WorkloadId::Ytube)
            .unwrap();
        assert!(r > 0.8, "ytube barely degrades on emb1 ({r})");
        assert!(study
            .relative_perf(PlatformId::Srvr1, WorkloadId::Ytube)
            .is_none());
    }

    #[test]
    fn memory_study_cbf_always_helps() {
        let m = memory_study(0.25);
        assert_eq!(m.len(), 5);
        for (id, (pcie, cbf)) in &m {
            assert!(
                cbf.slowdown <= pcie.slowdown,
                "{id}: CBF must not make things worse"
            );
        }
    }

    #[test]
    fn unified_study_n2_beats_n1() {
        let eval = Evaluator::quick();
        let (n1, n2) = unified_study(&eval, PlatformId::Srvr1).unwrap();
        assert!(n2.hmean(|r| r.perf_per_tco) > n1.hmean(|r| r.perf_per_tco));
    }
}
