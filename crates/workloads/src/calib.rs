//! The calibration contract: the paper's Figure 2(c) target grid and the
//! machinery to measure this suite's residuals against it.
//!
//! The suite's demand constants were fitted against these targets once
//! (see DESIGN.md §5) and frozen. This module keeps the targets in code
//! so a test can fail loudly if anyone retunes a workload and silently
//! shifts the reproduction, and so EXPERIMENTS.md's residual table can be
//! regenerated mechanically.

use wcs_platforms::{catalog, PlatformId};

use crate::perf::{measure_perf, MeasureConfig};
use crate::suite;
use crate::WorkloadId;

/// The platforms of Figure 2(c)'s columns (everything but the srvr1
/// baseline).
pub const GRID_PLATFORMS: [PlatformId; 5] = [
    PlatformId::Srvr2,
    PlatformId::Desk,
    PlatformId::Mobl,
    PlatformId::Emb1,
    PlatformId::Emb2,
];

/// The paper's published relative-performance grid (fractions of srvr1),
/// rows in [`WorkloadId::ALL`] order, columns in [`GRID_PLATFORMS`]
/// order.
pub const PAPER_PERF_GRID: [[f64; 5]; 5] = [
    [0.68, 0.36, 0.34, 0.24, 0.11], // websearch
    [0.48, 0.19, 0.17, 0.11, 0.05], // webmail
    [0.97, 0.92, 0.95, 0.86, 0.24], // ytube
    [0.93, 0.78, 0.72, 0.51, 0.12], // mapred-wc
    [0.72, 0.70, 0.54, 0.48, 0.16], // mapred-wr
];

/// One cell's calibration residual.
#[derive(Debug, Clone, Copy)]
pub struct Residual {
    /// The workload (row).
    pub workload: WorkloadId,
    /// The platform (column).
    pub platform: PlatformId,
    /// The paper's value.
    pub paper: f64,
    /// This suite's measured value.
    pub measured: f64,
}

impl Residual {
    /// Absolute error.
    pub fn abs_error(&self) -> f64 {
        (self.measured - self.paper).abs()
    }
}

/// Measures the full grid and returns the residual of every cell.
pub fn measure_grid(cfg: &MeasureConfig) -> Vec<Residual> {
    let mut out = Vec::with_capacity(25);
    for (wi, &w) in WorkloadId::ALL.iter().enumerate() {
        let wl = suite::workload(w);
        let base = measure_perf(&wl, &catalog::platform(PlatformId::Srvr1), cfg)
            .expect("srvr1 is feasible")
            .value;
        for (pi, &p) in GRID_PLATFORMS.iter().enumerate() {
            let v = measure_perf(&wl, &catalog::platform(p), cfg)
                .expect("catalog platforms are feasible")
                .value;
            out.push(Residual {
                workload: w,
                platform: p,
                paper: PAPER_PERF_GRID[wi][pi],
                measured: v / base,
            });
        }
    }
    out
}

/// Root-mean-square error over a set of residuals.
pub fn rmse(residuals: &[Residual]) -> f64 {
    if residuals.is_empty() {
        return 0.0;
    }
    let ss: f64 = residuals.iter().map(|r| r.abs_error().powi(2)).sum();
    (ss / residuals.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The calibration contract: excluding the documented emb2 residual,
    /// the grid must stay within an RMSE of 0.07 and no single cell may
    /// drift more than 0.12 from the paper. emb2's systematic
    /// underestimate is pinned separately so it cannot silently *grow*.
    #[test]
    fn calibration_contract_holds() {
        let residuals = measure_grid(&MeasureConfig::quick());
        assert_eq!(residuals.len(), 25);

        // Documented exceptions (see EXPERIMENTS.md): the paper's
        // mapred-wr desk/mobl split (70% vs 54% at a 10% frequency
        // difference with identical disks) is not reproducible by a
        // monotone resource model; we land both near the disk bound.
        let excepted =
            |r: &Residual| r.workload == WorkloadId::MapredWr && r.platform == PlatformId::Mobl;

        let (emb2, rest): (Vec<Residual>, Vec<Residual>) = residuals
            .into_iter()
            .partition(|r| r.platform == PlatformId::Emb2);
        let contract: Vec<Residual> = rest.iter().copied().filter(|r| !excepted(r)).collect();

        let e = rmse(&contract);
        assert!(e < 0.07, "non-emb2 grid RMSE {e:.3}");
        for r in &contract {
            assert!(
                r.abs_error() < 0.12,
                "{} on {}: measured {:.3} vs paper {:.3}",
                r.workload,
                r.platform,
                r.measured,
                r.paper
            );
        }
        // The excepted cell is pinned too, just with its own bound.
        for r in rest.iter().filter(|r| excepted(r)) {
            assert!(
                r.abs_error() < 0.30,
                "excepted cell drifted further: {:.3} vs {:.3}",
                r.measured,
                r.paper
            );
        }
        // emb2 is known to be underestimated but must stay within 0.09
        // of the paper and *below* it (the documented direction).
        for r in &emb2 {
            assert!(
                r.measured <= r.paper + 0.03 && r.abs_error() < 0.09,
                "emb2 {}: measured {:.3} vs paper {:.3}",
                r.workload,
                r.measured,
                r.paper
            );
        }
    }

    #[test]
    fn rmse_of_perfect_fit_is_zero() {
        let rs = vec![Residual {
            workload: WorkloadId::Websearch,
            platform: PlatformId::Desk,
            paper: 0.36,
            measured: 0.36,
        }];
        assert_eq!(rmse(&rs), 0.0);
        assert_eq!(rmse(&[]), 0.0);
    }
}
