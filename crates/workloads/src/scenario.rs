//! Scenario specifications: a workload plus a traffic pack.
//!
//! A [`ScenarioSpec`] names *what* runs (a [`WorkloadKey`] resolved
//! through [`crate::registry`]) and *how* traffic arrives (a
//! [`TrafficPack`]). `Steady` reproduces the paper's sustained-load
//! methodology bit-for-bit; the other packs render to a
//! [`RateProfile`] and drive the open-loop simulator with time-varying
//! offered load — the regime the paper explicitly defers ("requests
//! follow a time-of-day distribution... we only study request
//! distributions that focus on sustained performance", Section 4).
//!
//! Packs are *descriptions*, not simulations: each renders to a
//! deterministic piecewise-constant rate profile given the run's base
//! rate and request budget, so the same spec and seed always produce
//! the same arrival stream.

use std::fmt;

use wcs_simcore::memo::{MemoHash, MemoKey};
use wcs_simcore::SimDuration;
use wcs_simserver::RateProfile;

use crate::diurnal::DiurnalCurve;
use crate::registry::WorkloadKey;
use crate::WorkloadId;

/// A seeded arrival-process modifier layered on the open-loop
/// simulator. Load fields are fractions of the workload's measured
/// steady capacity: `1.0` offers exactly what the closed-loop driver
/// found sustainable, above `1.0` is deliberate overload.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TrafficPack {
    /// The paper's methodology: closed-loop sustained load. Renders no
    /// profile; results are bit-identical to the pre-registry API.
    Steady,
    /// A day of time-of-day traffic under `curve`, scaled so the daily
    /// peak offers `peak_load` of capacity (Fan et al.'s traces).
    Diurnal {
        /// Curve shape (trough fraction, peak hour).
        curve: DiurnalCurve,
        /// Offered load at the daily peak, as a fraction of capacity.
        peak_load: f64,
    },
    /// A flash crowd: steady base load, a sudden spike (possibly past
    /// capacity), then exponential decay back to base.
    FlashCrowd {
        /// Offered load before and long after the crowd.
        base_load: f64,
        /// Offered load at the top of the spike.
        spike_load: f64,
        /// Fraction of the run spent at the full spike, in `(0, 0.5]`.
        spike_fraction: f64,
    },
    /// A failover surge: at the midpoint, a peer cluster fails and the
    /// survivors absorb its traffic — offered load steps from
    /// `base_load` to `base_load * surge_factor` and stays there.
    FailoverSurge {
        /// Offered load before the failover.
        base_load: f64,
        /// Multiplier applied at the failover instant.
        surge_factor: f64,
    },
}

impl TrafficPack {
    /// Canonical diurnal pack: typical curve, 85% peak load.
    pub fn diurnal() -> Self {
        TrafficPack::Diurnal {
            curve: DiurnalCurve::typical(),
            peak_load: 0.85,
        }
    }

    /// Canonical flash crowd: 60% base, 150% spike (overload) for an
    /// eighth of the run.
    pub fn flash_crowd() -> Self {
        TrafficPack::FlashCrowd {
            base_load: 0.6,
            spike_load: 1.5,
            spike_fraction: 0.125,
        }
    }

    /// Canonical failover surge: 55% base load doubling at midpoint —
    /// the "lose half the fleet" drill.
    pub fn failover_surge() -> Self {
        TrafficPack::FailoverSurge {
            base_load: 0.55,
            surge_factor: 2.0,
        }
    }

    /// The four canonical packs, in catalog order.
    pub fn defaults() -> [TrafficPack; 4] {
        [
            TrafficPack::Steady,
            TrafficPack::diurnal(),
            TrafficPack::flash_crowd(),
            TrafficPack::failover_surge(),
        ]
    }

    /// The pack's catalog name.
    pub fn label(&self) -> &'static str {
        match self {
            TrafficPack::Steady => "steady",
            TrafficPack::Diurnal { .. } => "diurnal",
            TrafficPack::FlashCrowd { .. } => "flash-crowd",
            TrafficPack::FailoverSurge { .. } => "failover-surge",
        }
    }

    /// Parses a catalog name into the canonical pack of that shape.
    pub fn parse(name: &str) -> Option<TrafficPack> {
        match name {
            "steady" => Some(TrafficPack::Steady),
            "diurnal" => Some(TrafficPack::diurnal()),
            "flash-crowd" => Some(TrafficPack::flash_crowd()),
            "failover-surge" => Some(TrafficPack::failover_surge()),
            _ => None,
        }
    }

    /// The catalog names accepted by [`parse`](TrafficPack::parse).
    pub const NAMES: [&'static str; 4] = ["steady", "diurnal", "flash-crowd", "failover-surge"];

    /// Validates the pack's parameters.
    ///
    /// # Panics
    /// Panics on non-positive loads, a flash-crowd spike below base or
    /// `spike_fraction` outside `(0, 0.5]`, or a surge factor below 1.
    pub fn validate(&self) {
        match *self {
            TrafficPack::Steady => {}
            TrafficPack::Diurnal { peak_load, .. } => {
                assert!(
                    peak_load.is_finite() && peak_load > 0.0,
                    "peak_load must be positive"
                );
            }
            TrafficPack::FlashCrowd {
                base_load,
                spike_load,
                spike_fraction,
            } => {
                assert!(
                    base_load.is_finite() && base_load > 0.0,
                    "base_load must be positive"
                );
                assert!(
                    spike_load.is_finite() && spike_load >= base_load,
                    "spike_load must be >= base_load"
                );
                assert!(
                    spike_fraction > 0.0 && spike_fraction <= 0.5,
                    "spike_fraction in (0, 0.5]"
                );
            }
            TrafficPack::FailoverSurge {
                base_load,
                surge_factor,
            } => {
                assert!(
                    base_load.is_finite() && base_load > 0.0,
                    "base_load must be positive"
                );
                assert!(
                    surge_factor.is_finite() && surge_factor >= 1.0,
                    "surge_factor must be >= 1"
                );
            }
        }
    }

    /// Renders the pack to a rate profile for a run offering
    /// `capacity_rps * multiplier` and sized to complete roughly
    /// `total_requests` arrivals over one profile cycle. `Steady`
    /// renders `None`: it is the closed-loop path, not a profile.
    ///
    /// # Panics
    /// Panics if the pack is invalid, `capacity_rps` is not positive,
    /// or `total_requests` is zero.
    pub fn profile(&self, capacity_rps: f64, total_requests: u64) -> Option<RateProfile> {
        self.validate();
        assert!(
            capacity_rps.is_finite() && capacity_rps > 0.0,
            "capacity must be positive"
        );
        assert!(total_requests > 0, "need a request budget");
        let multipliers: Vec<f64> = match *self {
            TrafficPack::Steady => return None,
            TrafficPack::Diurnal { curve, peak_load } => (0..24)
                .map(|h| peak_load * curve.load_at(f64::from(h)))
                .collect(),
            TrafficPack::FlashCrowd {
                base_load,
                spike_load,
                spike_fraction,
            } => {
                // 16 segments: base, spike (at least one segment), then
                // a two-segment exponential decay back to base.
                let segs = 16usize;
                let spike_segs = ((segs as f64 * spike_fraction).ceil() as usize).max(1);
                let spike_start = segs / 4;
                (0..segs)
                    .map(|i| {
                        if i < spike_start {
                            base_load
                        } else if i < spike_start + spike_segs {
                            spike_load
                        } else if i == spike_start + spike_segs {
                            base_load + (spike_load - base_load) * 0.5
                        } else if i == spike_start + spike_segs + 1 {
                            base_load + (spike_load - base_load) * 0.25
                        } else {
                            base_load
                        }
                    })
                    .collect()
            }
            TrafficPack::FailoverSurge {
                base_load,
                surge_factor,
            } => {
                let segs = 16usize;
                (0..segs)
                    .map(|i| {
                        if i < segs / 2 {
                            base_load
                        } else {
                            base_load * surge_factor
                        }
                    })
                    .collect()
            }
        };
        // Size segments so one cycle carries the request budget:
        // capacity * mean(mult) * cycle = total_requests.
        let mean = multipliers.iter().sum::<f64>() / multipliers.len() as f64;
        let cycle_secs = total_requests as f64 / (capacity_rps * mean);
        let seg_secs = (cycle_secs / multipliers.len() as f64).max(1e-9);
        Some(RateProfile::new(
            SimDuration::from_secs_f64(seg_secs),
            multipliers,
        ))
    }
}

impl fmt::Display for TrafficPack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl MemoHash for TrafficPack {
    fn memo_hash(&self, key: &mut MemoKey) {
        *key = match *self {
            TrafficPack::Steady => key.push_str("steady"),
            TrafficPack::Diurnal { curve, peak_load } => key
                .push_str("diurnal")
                .push_f64(curve.trough)
                .push_f64(curve.peak_hour)
                .push_f64(peak_load),
            TrafficPack::FlashCrowd {
                base_load,
                spike_load,
                spike_fraction,
            } => key
                .push_str("flash-crowd")
                .push_f64(base_load)
                .push_f64(spike_load)
                .push_f64(spike_fraction),
            TrafficPack::FailoverSurge {
                base_load,
                surge_factor,
            } => key
                .push_str("failover-surge")
                .push_f64(base_load)
                .push_f64(surge_factor),
        };
    }
}

/// What to run: a registered workload under a traffic pack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioSpec {
    /// The workload, resolved through [`crate::registry`].
    pub workload: WorkloadKey,
    /// The arrival process.
    pub traffic: TrafficPack,
}

impl ScenarioSpec {
    /// A steady-traffic spec for a registered workload name.
    pub fn steady(name: &str) -> Self {
        ScenarioSpec {
            workload: WorkloadKey::new(name),
            traffic: TrafficPack::Steady,
        }
    }

    /// The steady spec equivalent to a paper [`WorkloadId`] — the
    /// bridge from the closed enum API.
    pub fn from_id(id: WorkloadId) -> Self {
        ScenarioSpec {
            workload: WorkloadKey::from(id),
            traffic: TrafficPack::Steady,
        }
    }

    /// Replaces the traffic pack.
    #[must_use]
    pub fn with_traffic(mut self, traffic: TrafficPack) -> Self {
        self.traffic = traffic;
        self
    }
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.workload, self.traffic)
    }
}

impl MemoHash for ScenarioSpec {
    fn memo_hash(&self, key: &mut MemoKey) {
        *key = key.push(&self.workload).push(&self.traffic);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_catalog_names() {
        for name in TrafficPack::NAMES {
            let pack = TrafficPack::parse(name).expect("catalog name parses");
            assert_eq!(pack.label(), name);
        }
        assert!(TrafficPack::parse("tsunami").is_none());
    }

    #[test]
    fn steady_renders_no_profile() {
        assert!(TrafficPack::Steady.profile(1000.0, 5000).is_none());
    }

    #[test]
    fn profiles_carry_the_request_budget() {
        for pack in [
            TrafficPack::diurnal(),
            TrafficPack::flash_crowd(),
            TrafficPack::failover_surge(),
        ] {
            let p = pack.profile(1000.0, 4000).expect("profiled pack");
            // capacity * mean multiplier * cycle ≈ budget.
            let carried = 1000.0 * p.mean() * p.cycle().as_secs_f64();
            assert!(
                (carried - 4000.0).abs() / 4000.0 < 0.01,
                "{}: carried {carried}",
                pack.label()
            );
        }
    }

    #[test]
    fn flash_crowd_peaks_past_capacity() {
        let p = TrafficPack::flash_crowd().profile(1000.0, 4000).unwrap();
        assert!(p.peak() > 1.0, "spike exceeds capacity");
        assert!(!p.is_constant());
    }

    #[test]
    fn failover_surge_doubles_and_holds() {
        let p = TrafficPack::failover_surge().profile(500.0, 2000).unwrap();
        assert!((p.peak() - 1.1).abs() < 1e-12, "0.55 * 2.0");
        let early = p.multiplier_at(wcs_simcore::SimTime::from_nanos(0));
        assert!((early - 0.55).abs() < 1e-12);
    }

    #[test]
    fn diurnal_profile_follows_the_curve() {
        let p = TrafficPack::diurnal().profile(1000.0, 24_000).unwrap();
        assert!((p.peak() - 0.85).abs() < 1e-9, "peak hour offers 85%");
        assert!(p.mean() < 0.85, "off-peak hours offer less");
    }

    #[test]
    fn memo_hash_separates_packs_and_parameters() {
        let k = |p: &TrafficPack| MemoKey::new("t").push(p).finish();
        let packs = TrafficPack::defaults();
        for (i, a) in packs.iter().enumerate() {
            for b in packs.iter().skip(i + 1) {
                assert_ne!(k(a), k(b), "{a} vs {b}");
            }
        }
        let hot = TrafficPack::FlashCrowd {
            base_load: 0.6,
            spike_load: 2.0,
            spike_fraction: 0.125,
        };
        assert_ne!(k(&TrafficPack::flash_crowd()), k(&hot));
    }

    #[test]
    fn spec_displays_and_hashes_both_halves() {
        let spec = ScenarioSpec::steady("faas").with_traffic(TrafficPack::flash_crowd());
        assert_eq!(spec.to_string(), "faas/flash-crowd");
        let steady = ScenarioSpec::steady("faas");
        let k = |s: &ScenarioSpec| MemoKey::new("t").push(s).finish();
        assert_ne!(k(&spec), k(&steady));
        assert_eq!(
            ScenarioSpec::from_id(WorkloadId::Ytube).workload.name(),
            "ytube"
        );
    }

    #[test]
    #[should_panic(expected = "spike_load")]
    fn rejects_spike_below_base() {
        TrafficPack::FlashCrowd {
            base_load: 1.0,
            spike_load: 0.5,
            spike_fraction: 0.1,
        }
        .validate();
    }
}
