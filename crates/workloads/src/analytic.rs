//! Closed-form bound analysis, for cross-validating the simulator.
//!
//! For a closed queueing network, asymptotic bound analysis gives two
//! classic limits on throughput:
//!
//! * the **bottleneck bound**: no station can serve faster than its
//!   capacity, `X <= min_i (servers_i / service_i)`;
//! * the **latency bound** with `N` clients: `X <= N / R_min`, where
//!   `R_min` is the zero-queueing round-trip time.
//!
//! The simulator's QoS-constrained throughput must always sit below the
//! bottleneck bound and approach it as the QoS loosens; the integration
//! tests pin that relationship.

use wcs_platforms::Platform;
use wcs_simserver::Resource;

use crate::service::PlatformDemand;
use crate::spec::Workload;

/// Per-station capacities and the resulting bounds for one workload on
/// one platform.
#[derive(Debug, Clone, Copy)]
pub struct Bounds {
    /// Station capacities in requests/second, indexed by
    /// [`Resource::index`] (infinite for unused stations).
    pub capacity: [f64; 4],
    /// Zero-queueing round-trip (single-client latency floor), seconds.
    pub r_min: f64,
}

impl Bounds {
    /// The bottleneck (hard-min) throughput bound, requests/second.
    pub fn bottleneck_rps(&self) -> f64 {
        self.capacity.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// The station that binds.
    pub fn bottleneck(&self) -> Resource {
        let mut best = Resource::Cpu;
        for r in Resource::ALL {
            if self.capacity[r.index()] < self.capacity[best.index()] {
                best = r;
            }
        }
        best
    }

    /// The latency bound for `n` closed-loop clients.
    pub fn latency_bound_rps(&self, n: u32) -> f64 {
        n as f64 / self.r_min
    }

    /// The classic crossing point `N*` where the two bounds meet — the
    /// population beyond which the bottleneck saturates.
    pub fn n_star(&self) -> f64 {
        self.bottleneck_rps() * self.r_min
    }
}

/// Computes asymptotic bounds for `workload` on `platform`.
pub fn bounds(workload: &Workload, platform: &Platform) -> Bounds {
    let demand = PlatformDemand::new(workload, platform);
    bounds_for_demand(&demand)
}

/// Computes bounds from an already-scaled demand (so perturbed demands —
/// memory-blade slowdowns, flash-cache disks — can be analyzed too).
pub fn bounds_for_demand(demand: &PlatformDemand) -> Bounds {
    let spec = demand.server_spec();
    let cap = |servers: u32, service: f64| -> f64 {
        if service <= 0.0 {
            f64::INFINITY
        } else {
            servers as f64 / service
        }
    };
    let capacity = [
        cap(spec.cores, demand.cpu_secs()),
        cap(spec.memory_channels, demand.mem_secs()),
        cap(spec.disks, demand.disk_secs()),
        cap(spec.nics, demand.net_secs()),
    ];
    Bounds {
        capacity,
        r_min: demand.single_client_latency_secs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::{measure_perf, MeasureConfig};
    use crate::suite;
    use crate::WorkloadId;
    use wcs_platforms::{catalog, PlatformId};

    #[test]
    fn simulated_throughput_respects_bottleneck_bound() {
        let cfg = MeasureConfig::quick();
        for id in [
            WorkloadId::Websearch,
            WorkloadId::Webmail,
            WorkloadId::Ytube,
        ] {
            let wl = suite::workload(id);
            for pid in [PlatformId::Srvr1, PlatformId::Desk, PlatformId::Emb1] {
                let p = catalog::platform(pid);
                let b = bounds(&wl, &p);
                let measured = measure_perf(&wl, &p, &cfg).unwrap().value;
                // The bound uses *mean* service times while the run
                // samples log-normally over a finite window, and the
                // driver keeps the best of many noisy probes (a max-
                // selection bias), so allow ~10% above the bound.
                assert!(
                    measured <= b.bottleneck_rps() * 1.12,
                    "{id} on {pid}: {measured} vs bound {}",
                    b.bottleneck_rps()
                );
                // And the driver should extract a decent fraction of it.
                assert!(
                    measured >= b.bottleneck_rps() * 0.3,
                    "{id} on {pid}: {measured} far below bound {}",
                    b.bottleneck_rps()
                );
            }
        }
    }

    #[test]
    fn bottleneck_identity_is_sensible() {
        // webmail is CPU-heavy on the embedded platform.
        let wl = suite::workload(WorkloadId::Webmail);
        let b = bounds(&wl, &catalog::platform(PlatformId::Emb1));
        assert_eq!(b.bottleneck(), Resource::Cpu);
        // ytube on srvr2 is capped by the memory/session path.
        let wl = suite::workload(WorkloadId::Ytube);
        let b = bounds(&wl, &catalog::platform(PlatformId::Srvr2));
        assert_eq!(b.bottleneck(), Resource::Memory);
    }

    #[test]
    fn n_star_marks_saturation() {
        let wl = suite::workload(WorkloadId::Websearch);
        let b = bounds(&wl, &catalog::platform(PlatformId::Srvr2));
        assert!(
            b.n_star() > 1.0,
            "multi-core platform saturates above one client"
        );
        assert!(b.latency_bound_rps(1) <= b.bottleneck_rps() * b.n_star());
    }

    #[test]
    fn unused_stations_are_unbounded() {
        let wl = suite::workload(WorkloadId::MapredWc); // tiny net demand
        let b = bounds(&wl, &catalog::platform(PlatformId::Desk));
        assert!(b.capacity[Resource::Net.index()] > b.capacity[Resource::Cpu.index()]);
    }
}
