//! Time-of-day load modelling (Section 4: "in actual deployments,
//! requests follow a time-of-day distribution [Fan et al.], but we only
//! study request distributions that focus on sustained performance").
//!
//! This module supplies what the paper defers: a diurnal load curve and
//! the fleet-energy arithmetic it drives. A fleet must be provisioned
//! for the daily peak, so the average utilization — and with it the
//! honest "activity factor" of the cost model — falls out of the curve
//! shape rather than being assumed.

use std::f64::consts::TAU;

use wcs_simcore::SimRng;

/// A diurnal load curve: load as a fraction of the daily peak, as a
/// function of the hour of day.
///
/// The shape is a raised cosine with a configurable trough (Fan et al.'s
/// datacenter traces bottom out around 40-60% of peak) plus optional
/// noise.
///
/// # Example
/// ```
/// use wcs_workloads::diurnal::DiurnalCurve;
/// let c = DiurnalCurve::typical();
/// assert!(c.load_at(c.peak_hour) > 0.99);
/// assert!(c.load_at(c.peak_hour + 12.0) < 0.6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiurnalCurve {
    /// Trough load as a fraction of peak (0 < trough <= 1).
    pub trough: f64,
    /// Hour of day at which load peaks.
    pub peak_hour: f64,
}

impl DiurnalCurve {
    /// A typical internet-service curve: 50% trough, 20:00 peak.
    pub fn typical() -> Self {
        DiurnalCurve {
            trough: 0.5,
            peak_hour: 20.0,
        }
    }

    /// Creates a curve.
    ///
    /// # Panics
    /// Panics unless `0 < trough <= 1` and `0 <= peak_hour < 24`.
    pub fn new(trough: f64, peak_hour: f64) -> Self {
        assert!(trough > 0.0 && trough <= 1.0, "trough in (0, 1]");
        assert!((0.0..24.0).contains(&peak_hour), "peak hour in [0, 24)");
        DiurnalCurve { trough, peak_hour }
    }

    /// Load fraction at the given hour (wraps past 24).
    pub fn load_at(&self, hour: f64) -> f64 {
        let phase = (hour - self.peak_hour) / 24.0 * TAU;
        let mid = (1.0 + self.trough) / 2.0;
        let amp = (1.0 - self.trough) / 2.0;
        mid + amp * phase.cos()
    }

    /// Mean load fraction over the day.
    pub fn mean_load(&self) -> f64 {
        (1.0 + self.trough) / 2.0
    }

    /// Samples a noisy hourly load profile for one day.
    pub fn sample_day(&self, noise: f64, rng: &mut SimRng) -> Vec<f64> {
        assert!((0.0..1.0).contains(&noise), "noise fraction in [0, 1)");
        (0..24)
            .map(|h| {
                let base = self.load_at(h as f64);
                let jitter = 1.0 + noise * (rng.uniform() * 2.0 - 1.0);
                (base * jitter).clamp(0.0, 1.0)
            })
            .collect()
    }
}

/// Fleet-energy summary under a diurnal curve.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FleetEnergy {
    /// Servers provisioned (sized for peak).
    pub servers: f64,
    /// Daily fleet energy in kWh without any power management (every
    /// server at full power all day).
    pub kwh_unmanaged: f64,
    /// Daily fleet energy with ideal energy proportionality (power
    /// tracks load).
    pub kwh_proportional: f64,
    /// Daily fleet energy with ensemble on/off management: unneeded
    /// servers are parked at `idle_fraction` of full power.
    pub kwh_parked: f64,
}

impl FleetEnergy {
    /// The effective activity factor implied by the curve under parked
    /// management — directly comparable with the cost model's assumed
    /// 0.75.
    pub fn effective_activity_factor(&self) -> f64 {
        self.kwh_parked / self.kwh_unmanaged
    }
}

/// Sizes a fleet for `peak_rps` given `per_server_rps`, then integrates
/// daily energy under `curve` for a server drawing `server_watts` at
/// full load, with parked servers drawing `idle_fraction` of that.
///
/// # Panics
/// Panics on non-positive rates/power or `idle_fraction` outside `[0,1]`.
pub fn fleet_energy(
    curve: &DiurnalCurve,
    peak_rps: f64,
    per_server_rps: f64,
    server_watts: f64,
    idle_fraction: f64,
) -> FleetEnergy {
    assert!(
        peak_rps > 0.0 && per_server_rps > 0.0,
        "rates must be positive"
    );
    assert!(server_watts > 0.0, "power must be positive");
    assert!(
        (0.0..=1.0).contains(&idle_fraction),
        "idle fraction in [0,1]"
    );
    let servers = (peak_rps / per_server_rps).ceil();
    let mut unmanaged = 0.0;
    let mut proportional = 0.0;
    let mut parked = 0.0;
    for h in 0..24 {
        let load = curve.load_at(h as f64);
        let active = (servers * load).ceil().min(servers);
        unmanaged += servers * server_watts;
        proportional += servers * server_watts * load;
        parked += active * server_watts + (servers - active) * server_watts * idle_fraction;
    }
    FleetEnergy {
        servers,
        kwh_unmanaged: unmanaged / 1000.0,
        kwh_proportional: proportional / 1000.0,
        kwh_parked: parked / 1000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_peaks_and_troughs_where_expected() {
        let c = DiurnalCurve::typical();
        assert!((c.load_at(20.0) - 1.0).abs() < 1e-9);
        assert!((c.load_at(8.0) - 0.5).abs() < 1e-9);
        assert!((c.mean_load() - 0.75).abs() < 1e-9);
        // Wraps smoothly.
        assert!((c.load_at(0.0) - c.load_at(24.0)).abs() < 1e-9);
    }

    #[test]
    fn energy_ordering() {
        let c = DiurnalCurve::typical();
        let e = fleet_energy(&c, 10_000.0, 50.0, 200.0, 0.3);
        assert!(e.kwh_proportional < e.kwh_parked);
        assert!(e.kwh_parked < e.kwh_unmanaged);
        assert_eq!(e.servers, 200.0);
    }

    #[test]
    fn effective_activity_factor_near_papers_assumption() {
        // With a 50% trough and 30% idle power, the implied activity
        // factor lands close to the paper's assumed 0.75.
        let c = DiurnalCurve::typical();
        let e = fleet_energy(&c, 10_000.0, 50.0, 200.0, 0.3);
        let af = e.effective_activity_factor();
        assert!((0.65..=0.95).contains(&af), "activity factor {af}");
    }

    #[test]
    fn sampled_day_is_bounded_and_deterministic() {
        let c = DiurnalCurve::typical();
        let mut r1 = SimRng::seed_from(5);
        let mut r2 = SimRng::seed_from(5);
        let a = c.sample_day(0.1, &mut r1);
        let b = c.sample_day(0.1, &mut r2);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| (0.0..=1.0).contains(&x)));
        assert_eq!(a.len(), 24);
    }

    #[test]
    #[should_panic(expected = "trough")]
    fn rejects_zero_trough() {
        DiurnalCurve::new(0.0, 12.0);
    }
}
