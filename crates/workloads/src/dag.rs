//! DAG analytics workload family: arbitrary task graphs with
//! stragglers.
//!
//! The paper's two `mapred-*` workloads are a single embarrassingly
//! parallel layer; production analytics engines run multi-stage DAGs
//! whose critical path and stragglers — not aggregate work — bound the
//! makespan ("Characterizing Data Analysis Workloads in Data Centers",
//! PAPERS.md). This module generalizes the batch metric: a seeded
//! generator produces a layered task graph with cross-layer
//! dependencies, lognormal task-size dispersion, and a straggler tail;
//! a deterministic list scheduler executes it on a bounded slot pool
//! over the event queue. The metric stays `1/makespan`, so DAG results
//! are directly comparable with the mapred ones.

use std::collections::VecDeque;

use wcs_simcore::dist::{Distribution, LogNormal};
use wcs_simcore::event::QueueObs;
use wcs_simcore::memo::{MemoHash, MemoKey};
use wcs_simcore::{EventQueue, SimDuration, SimRng, SimTime};

/// Parameters of a DAG analytics job.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DagParams {
    /// Total tasks in the job.
    pub tasks: u32,
    /// Graph depth: tasks spread over this many layers, front-loaded
    /// like a map-heavy job (the first layer is the widest).
    pub layers: u32,
    /// Dependencies per task on the previous layer (clamped to that
    /// layer's width). 0 makes the layers independent.
    pub fan_in: u32,
    /// Coefficient of variation of task sizes around the mean.
    pub task_cv: f64,
    /// Fraction of tasks that straggle.
    pub straggler_frac: f64,
    /// Service-time multiplier for straggling tasks.
    pub straggler_factor: f64,
    /// Task slots per CPU core (the Hadoop-style slot pool).
    pub slots_per_core: u32,
}

impl DagParams {
    /// A calibrated default: a 256-task, 4-layer job matching the
    /// mapred scale, with a 5% straggler tail running 6x long.
    pub fn paper_default() -> Self {
        DagParams {
            tasks: 256,
            layers: 4,
            fan_in: 3,
            task_cv: 0.4,
            straggler_frac: 0.05,
            straggler_factor: 6.0,
            slots_per_core: 4,
        }
    }

    /// Validates the parameters.
    ///
    /// # Panics
    /// Panics on zero tasks/layers/slots, more layers than tasks, or
    /// out-of-range dispersion/straggler settings.
    pub fn validate(&self) {
        assert!(self.tasks > 0, "need at least one task");
        assert!(
            self.layers > 0 && self.layers <= self.tasks,
            "layers must be in [1, tasks]"
        );
        assert!(self.slots_per_core > 0, "need at least one slot per core");
        assert!(
            self.task_cv.is_finite() && self.task_cv >= 0.0,
            "task_cv must be finite and >= 0"
        );
        assert!(
            (0.0..=1.0).contains(&self.straggler_frac),
            "straggler_frac in [0, 1]"
        );
        assert!(
            self.straggler_factor.is_finite() && self.straggler_factor >= 1.0,
            "straggler_factor must be >= 1"
        );
    }
}

impl MemoHash for DagParams {
    fn memo_hash(&self, key: &mut MemoKey) {
        *key = key
            .push_u32(self.tasks)
            .push_u32(self.layers)
            .push_u32(self.fan_in)
            .push_f64(self.task_cv)
            .push_f64(self.straggler_frac)
            .push_f64(self.straggler_factor)
            .push_u32(self.slots_per_core);
    }
}

/// One task in a generated graph.
#[derive(Debug, Clone)]
struct Task {
    service: SimDuration,
    deps: Vec<u32>,
    straggler: bool,
}

/// A generated, ready-to-schedule task graph.
#[derive(Debug, Clone)]
pub struct TaskGraph {
    tasks: Vec<Task>,
}

impl TaskGraph {
    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the graph has no tasks (never, for validated params).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of straggling tasks.
    pub fn stragglers(&self) -> u32 {
        self.tasks.iter().filter(|t| t.straggler).count() as u32
    }

    /// Length of the longest service-weighted dependency chain — the
    /// makespan lower bound no amount of parallelism beats.
    pub fn critical_path(&self) -> SimDuration {
        // Tasks are topologically ordered by construction (deps always
        // point to earlier indices), so one forward pass suffices.
        let mut finish = vec![SimDuration::ZERO; self.tasks.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            let ready = t
                .deps
                .iter()
                .map(|&d| finish[d as usize])
                .max()
                .unwrap_or(SimDuration::ZERO);
            finish[i] = SimDuration::from_nanos(ready.as_nanos() + t.service.as_nanos());
        }
        finish.into_iter().max().unwrap_or(SimDuration::ZERO)
    }
}

/// Generates a layered task graph: `params.tasks` tasks spread over
/// `params.layers` layers (widest first), each task sized
/// `mean_task * LogNormal(cv)` — times the straggler factor for the
/// seeded straggler tail — and depending on `fan_in` tasks of the
/// previous layer.
///
/// Pure function of its arguments: the same params, mean and seed
/// always yield the same graph.
///
/// # Panics
/// Panics if params are invalid or `mean_task` is zero.
pub fn generate(params: &DagParams, mean_task: SimDuration, seed: u64) -> TaskGraph {
    params.validate();
    assert!(!mean_task.is_zero(), "mean task service must be positive");
    let mut size_rng = SimRng::stream(seed, 0x00DA_6001);
    let mut dep_rng = SimRng::stream(seed, 0x00DA_6002);
    let mut straggle_rng = SimRng::stream(seed, 0x00DA_6003);

    // Front-loaded layer widths: layer l gets a share proportional to
    // (layers - l), so a 4-layer job splits 4:3:2:1 — map-heavy, with
    // narrowing reduce/merge stages behind it.
    let l = params.layers as u64;
    let weight_sum = l * (l + 1) / 2;
    let mut widths: Vec<u32> = (0..params.layers)
        .map(|i| ((u64::from(params.tasks) * (l - u64::from(i))) / weight_sum).max(1) as u32)
        .collect();
    let assigned: u32 = widths.iter().sum();
    // Rounding remainder lands on the widest layer.
    widths[0] = widths[0] + params.tasks - assigned.min(params.tasks);

    let sizer = LogNormal::from_mean_cv(1.0, params.task_cv.max(1e-9)).expect("validated cv");
    let mut tasks: Vec<Task> = Vec::with_capacity(params.tasks as usize);
    let mut prev_layer: Vec<u32> = Vec::new();
    for &width in &widths {
        let mut this_layer = Vec::with_capacity(width as usize);
        for _ in 0..width {
            let id = tasks.len() as u32;
            let scale = sizer.sample(&mut size_rng);
            let straggler = straggle_rng.chance(params.straggler_frac);
            let factor = if straggler {
                params.straggler_factor
            } else {
                1.0
            };
            let service = SimDuration::from_secs_f64(mean_task.as_secs_f64() * scale * factor);
            let fan = (params.fan_in as usize).min(prev_layer.len());
            let mut deps = Vec::with_capacity(fan);
            for _ in 0..fan {
                let dep = prev_layer[dep_rng.index(prev_layer.len())];
                if !deps.contains(&dep) {
                    deps.push(dep);
                }
            }
            tasks.push(Task {
                service,
                deps,
                straggler,
            });
            this_layer.push(id);
        }
        prev_layer = this_layer;
    }
    TaskGraph { tasks }
}

/// Result of executing a task graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DagStats {
    /// Wall time from first dispatch to last completion, seconds.
    pub makespan_secs: f64,
    /// Service-weighted critical path, seconds.
    pub critical_path_secs: f64,
    /// Tasks executed.
    pub tasks: u32,
    /// Straggling tasks among them.
    pub stragglers: u32,
    /// Event-queue occupancy of the scheduling run (exact-class).
    pub queue: QueueObs,
}

impl DagStats {
    /// The batch metric: reciprocal makespan, directly comparable with
    /// the mapred workloads' `1/s` values.
    pub fn perf(&self) -> f64 {
        1.0 / self.makespan_secs
    }
}

/// Executes `graph` on `slots` parallel task slots with deterministic
/// list scheduling: tasks become ready when all dependencies finish and
/// are dispatched in task-id order from a FIFO ready queue.
///
/// # Panics
/// Panics if `slots` is zero or the graph is empty.
pub fn execute(graph: &TaskGraph, slots: u32) -> DagStats {
    assert!(slots > 0, "need at least one task slot");
    assert!(!graph.is_empty(), "graph has no tasks");
    let n = graph.tasks.len();
    let mut pending_deps: Vec<u32> = graph.tasks.iter().map(|t| t.deps.len() as u32).collect();
    // Dependents are derivable from deps; invert once so completion is
    // O(out-degree).
    let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, t) in graph.tasks.iter().enumerate() {
        for &d in &t.deps {
            dependents[d as usize].push(i as u32);
        }
    }
    let mut ready: VecDeque<u32> = (0..n as u32)
        .filter(|&i| pending_deps[i as usize] == 0)
        .collect();

    let mut events: EventQueue<u32> = EventQueue::new();
    let mut free_slots = slots;
    let mut done = 0usize;
    let mut makespan = SimTime::ZERO;

    macro_rules! dispatch {
        ($now:expr) => {
            while free_slots > 0 {
                let Some(task) = ready.pop_front() else { break };
                free_slots -= 1;
                events.schedule($now + graph.tasks[task as usize].service, task);
            }
        };
    }

    dispatch!(SimTime::ZERO);
    while let Some((now, task)) = events.pop() {
        done += 1;
        free_slots += 1;
        makespan = now;
        for &dep in &dependents[task as usize] {
            pending_deps[dep as usize] -= 1;
            if pending_deps[dep as usize] == 0 {
                ready.push_back(dep);
            }
        }
        dispatch!(now);
    }
    assert_eq!(done, n, "scheduler drained the graph");

    DagStats {
        makespan_secs: makespan.as_secs_f64(),
        critical_path_secs: graph.critical_path().as_secs_f64(),
        tasks: n as u32,
        stragglers: graph.stragglers(),
        queue: events.obs_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> DagParams {
        DagParams {
            tasks: 64,
            layers: 4,
            fan_in: 2,
            task_cv: 0.4,
            straggler_frac: 0.1,
            straggler_factor: 5.0,
            slots_per_core: 4,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = quick_params();
        let mean = SimDuration::from_millis(200);
        let a = generate(&p, mean, 42);
        let b = generate(&p, mean, 42);
        let c = generate(&p, mean, 43);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
        assert_eq!(a.len(), 64);
    }

    #[test]
    fn execution_is_deterministic_and_respects_bounds() {
        let p = quick_params();
        let g = generate(&p, SimDuration::from_millis(200), 7);
        let a = execute(&g, 16);
        let b = execute(&g, 16);
        assert_eq!(a, b);
        // Makespan is bounded below by the critical path and by
        // work-conservation (total work / slots).
        assert!(a.makespan_secs >= a.critical_path_secs - 1e-9);
        let total_work: f64 = (0..g.len()).map(|i| g.tasks[i].service.as_secs_f64()).sum();
        assert!(a.makespan_secs >= total_work / 16.0 - 1e-9);
        assert_eq!(a.tasks, 64);
    }

    #[test]
    fn more_slots_never_hurt() {
        let p = quick_params();
        let g = generate(&p, SimDuration::from_millis(200), 7);
        let narrow = execute(&g, 4);
        let wide = execute(&g, 64);
        assert!(wide.makespan_secs <= narrow.makespan_secs + 1e-9);
        assert!(wide.perf() >= narrow.perf());
    }

    #[test]
    fn stragglers_stretch_the_makespan() {
        let mut p = quick_params();
        p.straggler_frac = 0.0;
        let clean = execute(&generate(&p, SimDuration::from_millis(200), 7), 16);
        p.straggler_frac = 0.15;
        let straggly = execute(&generate(&p, SimDuration::from_millis(200), 7), 16);
        assert_eq!(clean.stragglers, 0);
        assert!(straggly.stragglers > 0);
        assert!(straggly.makespan_secs > clean.makespan_secs);
    }

    #[test]
    fn single_layer_matches_mapred_shape() {
        // layers = 1, fan_in irrelevant: an embarrassingly parallel
        // batch, the mapred special case.
        let p = DagParams {
            tasks: 32,
            layers: 1,
            fan_in: 3,
            task_cv: 0.0,
            straggler_frac: 0.0,
            straggler_factor: 1.0,
            slots_per_core: 4,
        };
        let g = generate(&p, SimDuration::from_secs(1), 1);
        assert!((0..g.len()).all(|i| g.tasks[i].deps.is_empty()));
        let stats = execute(&g, 8);
        // 32 equal 1 s tasks on 8 slots: exactly 4 waves.
        assert!((stats.makespan_secs - 4.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "layers")]
    fn rejects_more_layers_than_tasks() {
        let mut p = quick_params();
        p.layers = 100;
        p.validate();
    }
}
