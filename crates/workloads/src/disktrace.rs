//! Synthetic disk block-access traces for the flash-cache study.
//!
//! Section 3.5 replays each benchmark's disk request stream against a
//! flash disk cache. The synthetic streams here follow each benchmark's
//! description: Zipf-popular reads over the dataset (search index terms,
//! video files, mailboxes), with per-workload read/write mixes and
//! request sizes.

use std::sync::Arc;

use wcs_simcore::dist::Zipf;
use wcs_simcore::memo::{MemoHash, MemoKey};
use wcs_simcore::SimRng;

use crate::spec::WorkloadId;

/// One disk request at 4 KiB-block granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockAccess {
    /// Starting 4 KiB block number.
    pub block: u64,
    /// Number of consecutive 4 KiB blocks.
    pub blocks: u32,
    /// Whether this is a write.
    pub write: bool,
}

impl BlockAccess {
    /// Bytes moved by this request.
    pub fn bytes(&self) -> u64 {
        self.blocks as u64 * 4096
    }
}

/// Parameters of a workload's synthetic disk stream.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiskTraceParams {
    /// Dataset size in 4 KiB blocks.
    pub dataset_blocks: u64,
    /// Zipf skew of block-extent popularity.
    pub zipf_s: f64,
    /// Fraction of requests that are writes.
    pub write_fraction: f64,
    /// Request size in 4 KiB blocks.
    pub request_blocks: u32,
}

impl DiskTraceParams {
    /// Validates the parameters.
    ///
    /// # Panics
    /// Panics on nonsensical values.
    pub fn validate(&self) {
        assert!(self.dataset_blocks > 0, "dataset must be positive");
        assert!(self.zipf_s.is_finite() && self.zipf_s >= 0.0);
        assert!((0.0..=1.0).contains(&self.write_fraction));
        assert!(self.request_blocks > 0, "request size must be positive");
    }
}

impl MemoHash for DiskTraceParams {
    fn memo_hash(&self, key: &mut MemoKey) {
        *key = key
            .push_u64(self.dataset_blocks)
            .push_f64(self.zipf_s)
            .push_f64(self.write_fraction)
            .push_u32(self.request_blocks);
    }
}

/// Per-workload disk stream parameters, following Table 1's dataset
/// descriptions (20 GB websearch dataset, 7 GB of mail, large media
/// library, 5 GB Hadoop corpus).
pub fn params_for(id: WorkloadId) -> DiskTraceParams {
    match id {
        WorkloadId::Websearch => DiskTraceParams {
            dataset_blocks: 5_000_000, // 20 GB dataset
            zipf_s: 0.95,              // Zipf keyword -> posting-list locality
            write_fraction: 0.02,
            request_blocks: 16, // 64 KiB posting-list chunks
        },
        WorkloadId::Webmail => DiskTraceParams {
            dataset_blocks: 1_800_000, // ~7 GB of mail
            zipf_s: 0.80,              // active users' mailboxes
            write_fraction: 0.30,      // deliveries, flags, sends
            request_blocks: 8,         // 32 KiB messages
        },
        WorkloadId::Ytube => DiskTraceParams {
            dataset_blocks: 10_000_000, // large media library
            zipf_s: 0.90,               // Zipf video popularity [Gill et al.]
            write_fraction: 0.01,
            request_blocks: 64, // 256 KiB streaming reads
        },
        WorkloadId::MapredWc => DiskTraceParams {
            dataset_blocks: 1_300_000, // 5 GB corpus
            zipf_s: 0.10,              // near-sequential scan: little reuse
            write_fraction: 0.05,
            request_blocks: 256, // 1 MiB HDFS-style reads
        },
        WorkloadId::MapredWr => DiskTraceParams {
            dataset_blocks: 1_300_000,
            zipf_s: 0.10,
            write_fraction: 0.90, // file-write job
            request_blocks: 256,
        },
    }
}

/// Deterministic generator of [`BlockAccess`]es for one workload.
///
/// # Example
/// ```
/// use wcs_workloads::{disktrace, WorkloadId};
/// let mut gen = disktrace::DiskTraceGen::new(disktrace::params_for(WorkloadId::Ytube), 1);
/// let req = gen.next_access();
/// assert_eq!(req.blocks, 64);
/// ```
#[derive(Debug)]
pub struct DiskTraceGen {
    params: DiskTraceParams,
    zipf: Zipf,
    extents: u64,
    rng: SimRng,
}

impl DiskTraceGen {
    /// Creates a generator.
    ///
    /// # Panics
    /// Panics if the parameters are invalid.
    pub fn new(params: DiskTraceParams, seed: u64) -> Self {
        params.validate();
        // Popularity operates on aligned extents of `request_blocks`.
        let extents = (params.dataset_blocks / params.request_blocks as u64).max(1);
        let zipf = Zipf::new(extents.min(2_000_000) as usize, params.zipf_s)
            .expect("validated parameters");
        DiskTraceGen {
            params,
            zipf,
            extents,
            rng: SimRng::seed_from(seed),
        }
    }

    /// The parameters this generator uses.
    pub fn params(&self) -> &DiskTraceParams {
        &self.params
    }

    /// Draws the next disk request.
    pub fn next_access(&mut self) -> BlockAccess {
        let rank = self.zipf.sample_rank(&mut self.rng) as u64;
        let extent = rank
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x1234_5678_9ABC_DEF1)
            % self.extents;
        BlockAccess {
            block: extent * self.params.request_blocks as u64,
            blocks: self.params.request_blocks,
            write: self.rng.chance(self.params.write_fraction),
        }
    }

    /// Generates `n` requests as a vector.
    pub fn take_vec(&mut self, n: usize) -> Vec<BlockAccess> {
        (0..n).map(|_| self.next_access()).collect()
    }
}

/// Materializes the first `n` requests of the `(params, seed)` stream
/// into a shared buffer.
///
/// Sweeps replay the same disk stream against many storage
/// configurations; a materialized trace is generated once and shared
/// across those points (disk traces are short — 120k requests is ~2 MB —
/// so plain structs need no packing). Element `i` equals the generator's
/// `i`-th [`DiskTraceGen::next_access`], so buffer replay is
/// bit-identical to generator replay.
///
/// # Panics
/// Panics if the parameters are invalid.
pub fn materialize(params: DiskTraceParams, seed: u64, n: usize) -> Arc<[BlockAccess]> {
    DiskTraceGen::new(params, seed).take_vec(n).into()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_stay_in_dataset() {
        let p = params_for(WorkloadId::Webmail);
        let mut g = DiskTraceGen::new(p, 2);
        for _ in 0..10_000 {
            let a = g.next_access();
            assert!(a.block + a.blocks as u64 <= p.dataset_blocks);
        }
    }

    #[test]
    fn bytes_match_blocks() {
        let a = BlockAccess {
            block: 0,
            blocks: 16,
            write: false,
        };
        assert_eq!(a.bytes(), 65536);
    }

    #[test]
    fn mapred_wr_is_write_heavy() {
        let mut g = DiskTraceGen::new(params_for(WorkloadId::MapredWr), 5);
        let n = 20_000;
        let writes = (0..n).filter(|_| g.next_access().write).count();
        assert!(writes as f64 / n as f64 > 0.85);
    }

    #[test]
    fn popular_extents_repeat_for_ytube() {
        let mut g = DiskTraceGen::new(params_for(WorkloadId::Ytube), 7);
        let trace = g.take_vec(30_000);
        let distinct: std::collections::HashSet<u64> = trace.iter().map(|a| a.block).collect();
        assert!(distinct.len() < trace.len() * 9 / 10);
    }

    #[test]
    fn deterministic() {
        let mut a = DiskTraceGen::new(params_for(WorkloadId::Websearch), 9);
        let mut b = DiskTraceGen::new(params_for(WorkloadId::Websearch), 9);
        for _ in 0..50 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn all_workloads_have_params() {
        for id in WorkloadId::ALL {
            params_for(id).validate();
        }
    }

    #[test]
    fn materialized_buffer_matches_generator() {
        let p = params_for(WorkloadId::Ytube);
        let buf = materialize(p, 17, 2_000);
        let mut gen = DiskTraceGen::new(p, 17);
        assert_eq!(buf.len(), 2_000);
        for (i, a) in buf.iter().enumerate() {
            assert_eq!(*a, gen.next_access(), "request {i}");
        }
    }
}
