//! The calibrated benchmark suite.
//!
//! Demand constants were calibrated once against the paper's published
//! relative-performance grid (Figure 2(c)) with physically plausible
//! transfer sizes held fixed, and are frozen here; see DESIGN.md §5 and
//! EXPERIMENTS.md for the calibration residuals. They are *effective*
//! demands: I/O-compute overlap achieved by the real stacks is folded
//! into the exposed per-request demand.

use wcs_simcore::SimDuration;
use wcs_simserver::QosSpec;

use crate::spec::{DemandParams, Metric, Workload, WorkloadId};

/// Returns the workload with the given id.
///
/// # Example
/// ```
/// use wcs_workloads::{suite, WorkloadId};
/// let w = suite::workload(WorkloadId::Websearch);
/// assert_eq!(w.id, WorkloadId::Websearch);
/// ```
pub fn workload(id: WorkloadId) -> Workload {
    match id {
        WorkloadId::Websearch => websearch(),
        WorkloadId::Webmail => webmail(),
        WorkloadId::Ytube => ytube(),
        WorkloadId::MapredWc => mapred_wc(),
        WorkloadId::MapredWr => mapred_wr(),
    }
}

/// All five workloads in the paper's order.
pub fn all() -> Vec<Workload> {
    WorkloadId::ALL.iter().map(|&id| workload(id)).collect()
}

fn websearch() -> Workload {
    Workload {
        id: WorkloadId::Websearch,
        emphasizes: "the role of unstructured data",
        description: "Nutch-0.9 on Tomcat 6 + Apache2; 1.3 GB index over 1.3M \
                      documents, 25% of index terms cached; Zipf keyword \
                      popularity. QoS: >95% of queries under 0.5 s.",
        demand: DemandParams {
            cpu_ghz_s: 0.029903,
            sigma: 0.13,
            cache_sensitivity: 0.0,
            cache_ws_mib: 0.099,
            io_per_req: 0.00962,
            io_bytes: 65536.0,
            net_bytes: 20480.0,
            mem_gib_s: 0.007298,
            cv: 0.7,
        },
        metric: Metric::ThroughputQos(QosSpec::new(95.0, SimDuration::from_millis(500))),
    }
}

fn webmail() -> Workload {
    Workload {
        id: WorkloadId::Webmail,
        emphasizes: "interactive internet services",
        description: "SquirrelMail v1.4.9 + Apache2/PHP4, Courier-IMAP and \
                      Exim; 1000 virtual users, 7 GB of mail; LoadSim \
                      heavy-user action mix. QoS: >95% of requests under 0.8 s.",
        demand: DemandParams {
            cpu_ghz_s: 0.0570968,
            sigma: 0.0,
            cache_sensitivity: 0.0398,
            cache_ws_mib: 21.929,
            io_per_req: 0.00006,
            io_bytes: 32768.0,
            net_bytes: 40960.0,
            mem_gib_s: 8e-7,
            cv: 0.7,
        },
        metric: Metric::ThroughputQos(QosSpec::new(95.0, SimDuration::from_millis(800))),
    }
}

fn ytube() -> Workload {
    Workload {
        id: WorkloadId::Ytube,
        emphasizes: "the use of rich media",
        description: "Modified SPECweb2005 Support with YouTube edge-server \
                      traffic characteristics; Zipf video popularity; \
                      streaming QoS per chunk.",
        demand: DemandParams {
            cpu_ghz_s: 0.0131977,
            sigma: 0.0753,
            cache_sensitivity: 0.6961,
            cache_ws_mib: 5.82,
            io_per_req: 2.2,
            io_bytes: 262144.0,
            net_bytes: 714938.0,
            mem_gib_s: 0.2075795,
            cv: 0.9,
        },
        metric: Metric::ThroughputQos(QosSpec::new(95.0, SimDuration::from_millis(1000))),
    }
}

fn mapred_wc() -> Workload {
    Workload {
        id: WorkloadId::MapredWc,
        emphasizes: "web as a platform (word count)",
        description: "Hadoop v0.14 word count over a 5 GB corpus, 4 task \
                      slots per core, 1.5 GB Java heap. Metric: execution \
                      time of a 256-task job.",
        demand: DemandParams {
            cpu_ghz_s: 0.001621,
            sigma: 0.82,
            cache_sensitivity: 0.0528,
            cache_ws_mib: 0.878,
            io_per_req: 0.00089,
            io_bytes: 1048576.0,
            net_bytes: 1024.0,
            mem_gib_s: 0.001198,
            cv: 0.5,
        },
        metric: Metric::Batch {
            tasks: 256,
            slots_per_core: 4,
        },
    }
}

fn mapred_wr() -> Workload {
    Workload {
        id: WorkloadId::MapredWr,
        emphasizes: "web as a platform (distributed write)",
        description: "Hadoop v0.14 distributed file write of randomly \
                      generated words, 4 task slots per core. Metric: \
                      execution time of a 256-task job.",
        demand: DemandParams {
            cpu_ghz_s: 0.000459,
            sigma: 1.42,
            cache_sensitivity: 0.2235,
            cache_ws_mib: 0.114,
            io_per_req: 0.0179,
            io_bytes: 1048576.0,
            net_bytes: 10240.0,
            mem_gib_s: 0.000295,
            cv: 0.5,
        },
        metric: Metric::Batch {
            tasks: 256,
            slots_per_core: 4,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_validate() {
        for w in all() {
            w.demand.validate();
        }
    }

    #[test]
    fn suite_has_five_members() {
        let ws = all();
        assert_eq!(ws.len(), 5);
        let ids: Vec<_> = ws.iter().map(|w| w.id).collect();
        assert_eq!(ids, WorkloadId::ALL);
    }

    #[test]
    fn qos_bounds_match_table1() {
        let Metric::ThroughputQos(q) = workload(WorkloadId::Websearch).metric else {
            panic!("websearch is a throughput workload");
        };
        assert_eq!(q.bound, SimDuration::from_millis(500));
        let Metric::ThroughputQos(q) = workload(WorkloadId::Webmail).metric else {
            panic!("webmail is a throughput workload");
        };
        assert_eq!(q.bound, SimDuration::from_millis(800));
    }

    #[test]
    fn mapreduce_uses_four_slots_per_core() {
        for id in [WorkloadId::MapredWc, WorkloadId::MapredWr] {
            let Metric::Batch { slots_per_core, .. } = workload(id).metric else {
                panic!("{id} is a batch workload");
            };
            assert_eq!(slots_per_core, 4);
        }
    }

    #[test]
    fn io_heavy_vs_cpu_heavy_profiles() {
        // ytube moves the most network bytes; webmail burns the most CPU
        // per request.
        let ws = all();
        let ytube = &ws[2];
        assert!(ws
            .iter()
            .all(|w| w.demand.net_bytes <= ytube.demand.net_bytes));
        let webmail = &ws[1];
        assert!(ws
            .iter()
            .all(|w| w.demand.cpu_ghz_s <= webmail.demand.cpu_ghz_s));
    }
}
