//! Measuring a workload's performance metric on a platform.

use std::fmt;

use wcs_platforms::Platform;
use wcs_simcore::event::QueueObs;
use wcs_simserver::driver::SearchConfig;
use wcs_simserver::{find_max_throughput, run_batch, Resource, ServerSim};

use crate::service::PlatformDemand;
use crate::spec::{Metric, Workload};

/// Measurement effort configuration.
#[derive(Debug, Clone, Copy)]
pub struct MeasureConfig {
    /// Warmup requests per throughput probe.
    pub warmup: u64,
    /// Measured requests per throughput probe.
    pub measured: u64,
    /// Client-count cap for the adaptive driver.
    pub max_clients: u32,
    /// Base RNG seed.
    pub seed: u64,
}

impl MeasureConfig {
    /// Full-accuracy configuration for reported results.
    pub fn default_accuracy() -> Self {
        MeasureConfig {
            warmup: 500,
            measured: 4000,
            max_clients: 4096,
            seed: 0x5EED,
        }
    }

    /// Reduced-effort configuration for tests and examples.
    pub fn quick() -> Self {
        MeasureConfig {
            warmup: 200,
            measured: 1200,
            max_clients: 1024,
            seed: 0x5EED,
        }
    }
}

impl Default for MeasureConfig {
    fn default() -> Self {
        Self::default_accuracy()
    }
}

impl wcs_simcore::memo::MemoHash for MeasureConfig {
    fn memo_hash(&self, key: &mut wcs_simcore::memo::MemoKey) {
        *key = key
            .push_u64(self.warmup)
            .push_u64(self.measured)
            .push_u32(self.max_clients)
            .push_u64(self.seed);
    }
}

/// A measured performance value.
#[derive(Debug, Clone)]
pub struct PerfResult {
    /// The metric value: requests/second, or 1/makespan-seconds for
    /// batch jobs. Bigger is better in both cases.
    pub value: f64,
    /// Unit label ("RPS" or "1/s").
    pub unit: &'static str,
    /// The busiest resource at the measured operating point.
    pub bottleneck: Resource,
    /// Event-queue occupancy summed over every simulation run the
    /// measurement performed (all throughput probes, or the batch run).
    /// A pure function of the measurement inputs — safe to record as
    /// exact-class observability.
    pub queue: QueueObs,
}

impl fmt::Display for PerfResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} {} (bottleneck: {})",
            self.value, self.unit, self.bottleneck
        )
    }
}

/// Error measuring performance: the workload's QoS is infeasible on this
/// platform.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureError {
    /// Which workload failed.
    pub workload: &'static str,
    /// Explanation.
    pub reason: String,
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot measure {}: {}", self.workload, self.reason)
    }
}

impl std::error::Error for MeasureError {}

/// Measures `workload` on `platform` with the platform's stock disk and
/// memory.
///
/// # Errors
/// Returns [`MeasureError`] when the QoS bound cannot be met even by a
/// single client.
pub fn measure_perf(
    workload: &Workload,
    platform: &Platform,
    config: &MeasureConfig,
) -> Result<PerfResult, MeasureError> {
    let demand = PlatformDemand::new(workload, platform);
    measure_perf_with_demand(workload, &demand, config)
}

/// Measures `workload` with an explicitly prepared (possibly perturbed)
/// demand — the entry point used by the memory-blade and flash-cache
/// studies.
///
/// # Errors
/// Returns [`MeasureError`] when the QoS bound cannot be met even by a
/// single client.
pub fn measure_perf_with_demand(
    workload: &Workload,
    demand: &PlatformDemand,
    config: &MeasureConfig,
) -> Result<PerfResult, MeasureError> {
    let spec = demand.server_spec();
    match workload.metric {
        Metric::ThroughputQos(qos) => {
            let sim = ServerSim::new(spec);
            let search = SearchConfig {
                warmup: config.warmup,
                measured: config.measured,
                max_clients: config.max_clients,
                seed: config.seed,
            };
            let mut stream = 0u64;
            let result = find_max_throughput(
                &sim,
                &mut || {
                    stream += 1;
                    Box::new(demand.source(stream))
                },
                qos,
                search,
            )
            .map_err(|e| MeasureError {
                workload: workload.id.label(),
                reason: e.to_string(),
            })?;
            Ok(PerfResult {
                value: result.rps,
                unit: "RPS",
                bottleneck: result.bottleneck,
                queue: result.queue,
            })
        }
        Metric::Batch {
            tasks,
            slots_per_core,
        } => {
            let job = demand.tasks(tasks);
            let result = run_batch(spec, job, slots_per_core * spec.cores);
            let (bottleneck, _) = {
                let mut best = (Resource::Cpu, result.utilization[0]);
                for r in Resource::ALL {
                    if result.utilization[r.index()] > best.1 {
                        best = (r, result.utilization[r.index()]);
                    }
                }
                best
            };
            Ok(PerfResult {
                value: result.perf(),
                unit: "1/s",
                bottleneck,
                queue: result.queue,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;
    use crate::WorkloadId;
    use wcs_platforms::{catalog, PlatformId};

    fn perf(w: WorkloadId, p: PlatformId) -> f64 {
        measure_perf(
            &suite::workload(w),
            &catalog::platform(p),
            &MeasureConfig::quick(),
        )
        .unwrap()
        .value
    }

    #[test]
    fn srvr1_beats_emb2_everywhere() {
        for id in WorkloadId::ALL {
            let big = perf(id, PlatformId::Srvr1);
            let small = perf(id, PlatformId::Emb2);
            assert!(big > small, "{id}: {big} vs {small}");
        }
    }

    #[test]
    fn webmail_is_cpu_sensitive() {
        // Figure 2(c): webmail degrades the most on small platforms.
        let r_mail = perf(WorkloadId::Webmail, PlatformId::Emb1)
            / perf(WorkloadId::Webmail, PlatformId::Srvr1);
        let r_tube =
            perf(WorkloadId::Ytube, PlatformId::Emb1) / perf(WorkloadId::Ytube, PlatformId::Srvr1);
        assert!(r_mail < r_tube, "webmail {r_mail} vs ytube {r_tube}");
    }

    #[test]
    fn ytube_is_insensitive_to_cores() {
        // Figure 2(c): ytube barely degrades from srvr1 to srvr2.
        let r =
            perf(WorkloadId::Ytube, PlatformId::Srvr2) / perf(WorkloadId::Ytube, PlatformId::Srvr1);
        assert!(r > 0.85, "ytube srvr2/srvr1 {r}");
    }

    #[test]
    fn batch_metric_is_reciprocal_seconds() {
        let res = measure_perf(
            &suite::workload(WorkloadId::MapredWc),
            &catalog::platform(PlatformId::Desk),
            &MeasureConfig::quick(),
        )
        .unwrap();
        assert_eq!(res.unit, "1/s");
        assert!(res.value > 0.0);
    }

    #[test]
    fn display_mentions_bottleneck() {
        let res = measure_perf(
            &suite::workload(WorkloadId::MapredWc),
            &catalog::platform(PlatformId::Desk),
            &MeasureConfig::quick(),
        )
        .unwrap();
        assert!(res.to_string().contains("bottleneck"));
    }
}
