//! The warehouse-computing benchmark suite (Table 1 of the paper).
//!
//! Five workloads model the paper's four services:
//!
//! | workload    | emphasizes                  | metric          |
//! |-------------|-----------------------------|-----------------|
//! | `websearch` | unstructured data (Nutch)   | RPS w/ QoS      |
//! | `webmail`   | interactive web2.0 services | RPS w/ QoS      |
//! | `ytube`     | rich media streaming        | RPS w/ QoS      |
//! | `mapred-wc` | web as a platform (Hadoop)  | execution time  |
//! | `mapred-wr` | web as a platform (Hadoop)  | execution time  |
//!
//! Each workload is a **demand model**: per-request CPU GHz-seconds,
//! exposed disk IOs and bytes, network bytes, a memory-capacity admission
//! demand, a cache working set with a sensitivity exponent, and a
//! software-scalability factor. [`service::PlatformDemand`] turns a
//! demand model plus a platform into the stage service times the
//! simulator consumes; [`perf::measure_perf`] produces the workload's
//! performance metric on a platform.
//!
//! The demand constants are *calibrated*: the paper's own performance
//! numbers come from full-system simulation of the real software stacks,
//! which we cannot run. The constants in [`suite`] were fitted once
//! against the published relative-performance grid of Figure 2(c) and
//! are frozen thereafter; every downstream experiment (memory blade,
//! flash cache, unified designs) consumes them unchanged. They are
//! *effective* demands: overlap achieved by the real stack (e.g. Hadoop's
//! I/O-compute overlap) is folded into the exposed per-request demand.
//!
//! The crate also generates the memory page traces ([`memtrace`]) and
//! disk block traces ([`disktrace`]) that the memory-blade and
//! flash-cache studies replay.
//!
//! Beyond the closed paper suite, the workload layer is **open**: the
//! [`registry`] resolves interned [`registry::WorkloadKey`] names to
//! registered workloads (the five paper benchmarks are built-in
//! registrations, joined by the [`faas`] and [`dag`] families), and a
//! [`scenario::ScenarioSpec`] pairs a workload with a
//! [`scenario::TrafficPack`] arrival process — steady, diurnal,
//! flash-crowd, or failover-surge.
//!
//! # Example
//! ```
//! use wcs_platforms::{catalog, PlatformId};
//! use wcs_workloads::{suite, WorkloadId, perf::{measure_perf, MeasureConfig}};
//!
//! let wl = suite::workload(WorkloadId::MapredWc);
//! let cfg = MeasureConfig::quick();
//! let perf = measure_perf(&wl, &catalog::platform(PlatformId::Emb1), &cfg).unwrap();
//! assert!(perf.value > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod calib;
pub mod dag;
pub mod disktrace;
pub mod diurnal;
pub mod faas;
pub mod media;
pub mod memtrace;
pub mod mix;
pub mod perf;
pub mod queries;
pub mod registry;
pub mod scenario;
pub mod service;
pub mod sessions;
mod spec;
pub mod suite;
pub mod tracefile;

pub use registry::WorkloadKey;
pub use scenario::{ScenarioSpec, TrafficPack};
pub use spec::{DemandParams, Metric, Workload, WorkloadId};
