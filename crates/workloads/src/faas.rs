//! FaaS (serverless) workload family: cold starts versus keep-alive
//! memory.
//!
//! A FaaS fleet keeps "warm" function snapshots resident so invocations
//! can skip initialization. Memory is the budget: every resident
//! snapshot costs DRAM, and whatever does not fit pays a cold start —
//! extra CPU burned restoring the sandbox before the request proper
//! runs. This couples the workload directly to the paper's memory-blade
//! argument: disaggregated capacity raises the warm pool, which lowers
//! the cold-start rate, which buys back throughput. The model here is
//! intentionally first-order — Zipf invocation popularity over a
//! function population, snapshots cached greedily by popularity — which
//! is the same level of fidelity as the rest of the demand suite.

use wcs_simcore::memo::{MemoHash, MemoKey};

/// Parameters of a FaaS tenant mix.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaasParams {
    /// Distinct functions in the tenant population.
    pub functions: u32,
    /// Zipf exponent of invocation popularity (production traces skew
    /// hard: a few functions dominate invocations).
    pub zipf_alpha: f64,
    /// Resident warm-snapshot size per function, MiB.
    pub snapshot_mib: f64,
    /// Extra CPU per cold invocation, GHz-seconds (sandbox restore +
    /// runtime init), added on top of the warm per-request CPU demand.
    pub cold_start_cpu_ghz_s: f64,
    /// Local DRAM dedicated to the warm pool when no memory blade is
    /// attached, GiB.
    pub keepalive_local_gib: f64,
}

impl FaasParams {
    /// A production-flavoured default: 4096 functions, strong skew,
    /// 96 MiB snapshots, a cold start costing ~4x the warm CPU demand,
    /// 1 GiB of local keep-alive budget.
    pub fn paper_default() -> Self {
        FaasParams {
            functions: 4096,
            zipf_alpha: 1.1,
            snapshot_mib: 96.0,
            cold_start_cpu_ghz_s: 0.08,
            keepalive_local_gib: 1.0,
        }
    }

    /// Validates the parameters.
    ///
    /// # Panics
    /// Panics if any field is non-positive or non-finite (`zipf_alpha`
    /// may be zero: uniform popularity).
    pub fn validate(&self) {
        assert!(self.functions > 0, "need at least one function");
        assert!(
            self.zipf_alpha.is_finite() && self.zipf_alpha >= 0.0,
            "zipf_alpha must be finite and >= 0"
        );
        for (name, v) in [
            ("snapshot_mib", self.snapshot_mib),
            ("cold_start_cpu_ghz_s", self.cold_start_cpu_ghz_s),
            ("keepalive_local_gib", self.keepalive_local_gib),
        ] {
            assert!(v.is_finite() && v > 0.0, "{name} must be positive");
        }
    }
}

impl MemoHash for FaasParams {
    fn memo_hash(&self, key: &mut MemoKey) {
        *key = key
            .push_u32(self.functions)
            .push_f64(self.zipf_alpha)
            .push_f64(self.snapshot_mib)
            .push_f64(self.cold_start_cpu_ghz_s)
            .push_f64(self.keepalive_local_gib);
    }
}

/// Warm-pool statistics for a given pool capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmPool {
    /// Functions whose snapshots fit in the pool (most popular first).
    pub resident_functions: u32,
    /// Fraction of invocations hitting a resident snapshot.
    pub warm_fraction: f64,
}

impl WarmPool {
    /// Fraction of invocations paying a cold start.
    pub fn cold_fraction(&self) -> f64 {
        1.0 - self.warm_fraction
    }
}

/// Computes warm-pool statistics when `pool_gib` GiB hold the most
/// popular snapshots: the warm fraction is the Zipf mass of the resident
/// prefix.
///
/// # Panics
/// Panics if the parameters are invalid or `pool_gib` is negative or
/// non-finite.
pub fn warm_pool(params: &FaasParams, pool_gib: f64) -> WarmPool {
    params.validate();
    assert!(
        pool_gib.is_finite() && pool_gib >= 0.0,
        "pool capacity must be finite and >= 0"
    );
    let fit = (pool_gib * 1024.0 / params.snapshot_mib).floor();
    let resident = (fit.max(0.0) as u64).min(u64::from(params.functions)) as u32;
    let mut prefix = 0.0;
    let mut total = 0.0;
    for rank in 1..=params.functions {
        let mass = 1.0 / f64::from(rank).powf(params.zipf_alpha);
        total += mass;
        if rank <= resident {
            prefix += mass;
        }
    }
    WarmPool {
        resident_functions: resident,
        warm_fraction: prefix / total,
    }
}

/// The CPU inflation factor a given cold fraction imposes on a warm
/// per-request demand of `warm_cpu_ghz_s`: the fleet-average invocation
/// costs `warm + cold_fraction * cold_start` CPU.
///
/// # Panics
/// Panics if `warm_cpu_ghz_s` is not positive or `cold_fraction` is
/// outside `[0, 1]`.
pub fn cold_inflation(params: &FaasParams, warm_cpu_ghz_s: f64, cold_fraction: f64) -> f64 {
    assert!(
        warm_cpu_ghz_s.is_finite() && warm_cpu_ghz_s > 0.0,
        "warm CPU demand must be positive"
    );
    assert!(
        (0.0..=1.0).contains(&cold_fraction),
        "cold fraction in [0, 1]"
    );
    1.0 + cold_fraction * params.cold_start_cpu_ghz_s / warm_cpu_ghz_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_pool_means_warmer_fleet() {
        let p = FaasParams::paper_default();
        let small = warm_pool(&p, 1.0);
        let big = warm_pool(&p, 16.0);
        assert!(big.resident_functions > small.resident_functions);
        assert!(big.warm_fraction > small.warm_fraction);
        assert!(small.warm_fraction > 0.0);
    }

    #[test]
    fn zipf_skew_front_loads_the_pool() {
        // With alpha 1.1 over 4096 functions, the ~10 most popular
        // already carry a disproportionate share of invocations.
        let p = FaasParams::paper_default();
        let one_gib = warm_pool(&p, 1.0);
        let share_of_functions = f64::from(one_gib.resident_functions) / f64::from(p.functions);
        assert!(one_gib.warm_fraction > 10.0 * share_of_functions);
    }

    #[test]
    fn pool_saturates_at_full_population() {
        let p = FaasParams::paper_default();
        let all = warm_pool(&p, 100_000.0);
        assert_eq!(all.resident_functions, p.functions);
        assert!((all.warm_fraction - 1.0).abs() < 1e-12);
        assert!(all.cold_fraction().abs() < 1e-12);
    }

    #[test]
    fn empty_pool_is_fully_cold() {
        let p = FaasParams::paper_default();
        let none = warm_pool(&p, 0.0);
        assert_eq!(none.resident_functions, 0);
        assert_eq!(none.warm_fraction, 0.0);
    }

    #[test]
    fn inflation_scales_with_cold_fraction() {
        let p = FaasParams::paper_default();
        assert_eq!(cold_inflation(&p, 0.02, 0.0), 1.0);
        let half = cold_inflation(&p, 0.02, 0.5);
        let full = cold_inflation(&p, 0.02, 1.0);
        assert!(half > 1.0 && full > half);
        assert!((full - (1.0 + p.cold_start_cpu_ghz_s / 0.02)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "snapshot_mib")]
    fn rejects_zero_snapshot() {
        let mut p = FaasParams::paper_default();
        p.snapshot_mib = 0.0;
        p.validate();
    }
}
