//! Scaling a workload's demand model onto a concrete platform.

use wcs_platforms::storage::DiskModel;
use wcs_platforms::Platform;
use wcs_simcore::dist::{Distribution, LogNormal};
use wcs_simcore::{SimDuration, SimRng};
use wcs_simserver::{RequestSource, Resource, ServerSpec, Stage};

use crate::spec::Workload;

/// A workload's demand model scaled to one platform: the mean service
/// time each request needs at each station, plus hooks for the memory-
/// blade and flash-cache studies to perturb them.
///
/// # Example
/// ```
/// use wcs_platforms::{catalog, PlatformId};
/// use wcs_workloads::{suite, WorkloadId, service::PlatformDemand};
/// let wl = suite::workload(WorkloadId::Websearch);
/// let d = PlatformDemand::new(&wl, &catalog::platform(PlatformId::Srvr1));
/// assert!(d.cpu_secs() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct PlatformDemand {
    cores: u32,
    cpu_secs: f64,
    mem_secs: f64,
    disk_secs: f64,
    net_secs: f64,
    cv: f64,
}

// Implemented here because the fields are private: every one of them
// feeds the service-time model, so every one of them is in the key.
impl wcs_simcore::memo::MemoHash for PlatformDemand {
    fn memo_hash(&self, key: &mut wcs_simcore::memo::MemoKey) {
        *key = key
            .push_u32(self.cores)
            .push_f64(self.cpu_secs)
            .push_f64(self.mem_secs)
            .push_f64(self.disk_secs)
            .push_f64(self.net_secs)
            .push_f64(self.cv);
    }
}

impl PlatformDemand {
    /// Scales `workload` onto `platform` using the platform's own disk
    /// and memory capacity.
    pub fn new(workload: &Workload, platform: &Platform) -> Self {
        Self::with_overrides(
            workload,
            platform,
            &platform.disk,
            platform.memory.capacity_gib,
        )
    }

    /// Scales `workload` onto `platform` with a substituted disk model
    /// and/or effective memory capacity (used by the flash-cache and
    /// memory-blade studies).
    ///
    /// # Panics
    /// Panics unless `mem_gib` is positive and finite.
    pub fn with_overrides(
        workload: &Workload,
        platform: &Platform,
        disk: &DiskModel,
        mem_gib: f64,
    ) -> Self {
        assert!(
            mem_gib.is_finite() && mem_gib > 0.0,
            "memory must be positive"
        );
        workload.demand.validate();
        let d = &workload.demand;
        let cpu = &platform.cpu;

        let cores = cpu.total_cores();
        // Cache inflation: CPU work grows when the per-request working
        // set exceeds the last-level cache.
        let l2_mib = cpu.l2_mib();
        let cache_factor = if d.cache_ws_mib > l2_mib {
            1.0 + d.cache_sensitivity * (d.cache_ws_mib / l2_mib).log2()
        } else {
            1.0
        };
        // Software-scalability inflation (the paper's Amdahl caveat).
        let scaling = 1.0 + d.sigma * (cores as f64 - 1.0);
        let cpu_secs = d.cpu_ghz_s * cache_factor * scaling / cpu.core_capability();

        let mem_secs = d.mem_gib_s / mem_gib;
        let disk_secs = d.io_per_req * disk.access_secs(d.io_bytes);
        let net_secs = if d.net_bytes > 0.0 {
            platform.nic.transfer_secs(d.net_bytes)
        } else {
            0.0
        };
        PlatformDemand {
            cores,
            cpu_secs,
            mem_secs,
            disk_secs,
            net_secs,
            cv: d.cv,
        }
    }

    /// Mean CPU service per request, seconds.
    pub fn cpu_secs(&self) -> f64 {
        self.cpu_secs
    }

    /// Mean memory-admission service per request, seconds.
    pub fn mem_secs(&self) -> f64 {
        self.mem_secs
    }

    /// Mean disk service per request, seconds.
    pub fn disk_secs(&self) -> f64 {
        self.disk_secs
    }

    /// Mean network service per request, seconds.
    pub fn net_secs(&self) -> f64 {
        self.net_secs
    }

    /// Multiplies CPU service by `factor` (memory-blade remote-miss
    /// slowdown).
    ///
    /// # Panics
    /// Panics unless `factor >= 1` and finite.
    pub fn inflate_cpu(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor >= 1.0, "slowdown factor >= 1");
        self.cpu_secs *= factor;
    }

    /// Replaces the mean disk service per request (flash-cache study:
    /// the cache simulator computes the effective per-request time).
    ///
    /// # Panics
    /// Panics if `secs` is negative or non-finite.
    pub fn set_disk_secs(&mut self, secs: f64) {
        assert!(secs.is_finite() && secs >= 0.0, "disk service >= 0");
        self.disk_secs = secs;
    }

    /// Sum of mean service times: the single-client latency floor.
    pub fn single_client_latency_secs(&self) -> f64 {
        self.cpu_secs + self.mem_secs + self.disk_secs + self.net_secs
    }

    /// The [`ServerSpec`] for the platform this demand was scaled to.
    pub fn server_spec(&self) -> ServerSpec {
        ServerSpec::new(self.cores)
    }

    /// Builds a stochastic request source sampling around the mean
    /// services with the workload's coefficient of variation.
    ///
    /// Stage order is memory admission, CPU, disk, network; stages with
    /// (near-)zero mean demand are omitted.
    pub fn source(&self, seed_stream: u64) -> DemandSource {
        DemandSource::new(self.clone(), seed_stream)
    }

    /// Builds the `n` deterministic task stage-lists of a batch job (all
    /// tasks identical at the mean demands; variability averages out over
    /// hundreds of tasks).
    pub fn tasks(&self, n: u32) -> Vec<Vec<Stage>> {
        (0..n).map(|_| self.mean_stages()).collect()
    }

    fn mean_stages(&self) -> Vec<Stage> {
        let mut stages = Vec::with_capacity(4);
        for (resource, secs) in [
            (Resource::Memory, self.mem_secs),
            (Resource::Cpu, self.cpu_secs),
            (Resource::Disk, self.disk_secs),
            (Resource::Net, self.net_secs),
        ] {
            if secs > 1e-12 {
                stages.push(Stage::new(resource, SimDuration::from_secs_f64(secs)));
            }
        }
        stages
    }
}

/// A [`RequestSource`] sampling log-normally around a [`PlatformDemand`]'s
/// mean services.
#[derive(Debug)]
pub struct DemandSource {
    demand: PlatformDemand,
    jitter: Option<LogNormal>,
    _seed_stream: u64,
}

impl DemandSource {
    fn new(demand: PlatformDemand, seed_stream: u64) -> Self {
        let jitter = if demand.cv > 0.0 {
            Some(LogNormal::from_mean_cv(1.0, demand.cv).expect("valid cv"))
        } else {
            None
        };
        DemandSource {
            demand,
            jitter,
            _seed_stream: seed_stream,
        }
    }

    fn scale(&self, rng: &mut SimRng) -> f64 {
        match &self.jitter {
            Some(j) => j.sample(rng),
            None => 1.0,
        }
    }
}

impl RequestSource for DemandSource {
    fn next_request(&mut self, rng: &mut SimRng) -> Vec<Stage> {
        // One size factor per request: a big request is big at every
        // station (a large mail has more bytes to read, hash, and send).
        let f = self.scale(rng);
        let d = &self.demand;
        let mut stages = Vec::with_capacity(4);
        for (resource, secs) in [
            (Resource::Memory, d.mem_secs),
            (Resource::Cpu, d.cpu_secs),
            (Resource::Disk, d.disk_secs),
            (Resource::Net, d.net_secs),
        ] {
            let scaled = secs * f;
            if scaled > 1e-12 {
                stages.push(Stage::new(resource, SimDuration::from_secs_f64(scaled)));
            }
        }
        stages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;
    use crate::WorkloadId;
    use wcs_platforms::{catalog, PlatformId};

    fn demand(w: WorkloadId, p: PlatformId) -> PlatformDemand {
        PlatformDemand::new(&suite::workload(w), &catalog::platform(p))
    }

    #[test]
    fn faster_cores_mean_less_cpu_time() {
        let fast = demand(WorkloadId::Websearch, PlatformId::Srvr2);
        let slow = demand(WorkloadId::Websearch, PlatformId::Emb1);
        assert!(fast.cpu_secs() < slow.cpu_secs());
    }

    #[test]
    fn in_order_core_pays_ipc_penalty() {
        // emb2 at 0.6 GHz in-order should be much slower per request than
        // emb1 at 1.2 GHz OoO — more than the 2x frequency alone.
        let e1 = demand(WorkloadId::Webmail, PlatformId::Emb1);
        let e2 = demand(WorkloadId::Webmail, PlatformId::Emb2);
        assert!(e2.cpu_secs() > 3.0 * e1.cpu_secs());
    }

    #[test]
    fn cache_inflation_kicks_in_below_working_set() {
        // webmail's working set (~22 MiB) exceeds every L2, so smaller
        // caches inflate CPU time beyond pure frequency scaling.
        let desk = demand(WorkloadId::Webmail, PlatformId::Desk); // 2 MiB L2
        let srvr2 = demand(WorkloadId::Webmail, PlatformId::Srvr2); // 8 MiB L2
        let freq_ratio = 2.6 / 2.2;
        assert!(desk.cpu_secs() > srvr2.cpu_secs() * freq_ratio * 1.01);
    }

    #[test]
    fn sigma_penalizes_many_cores() {
        // mapred-wr has strong sigma; srvr1's 8 cores pay more per task
        // than srvr2's 4 at the same frequency.
        let s1 = demand(WorkloadId::MapredWr, PlatformId::Srvr1);
        let s2 = demand(WorkloadId::MapredWr, PlatformId::Srvr2);
        assert!(s1.cpu_secs() > s2.cpu_secs());
    }

    #[test]
    fn net_scales_with_nic() {
        let s1 = demand(WorkloadId::Ytube, PlatformId::Srvr1); // 10 GbE
        let s2 = demand(WorkloadId::Ytube, PlatformId::Srvr2); // 1 GbE
        assert!(s2.net_secs() > 5.0 * s1.net_secs());
    }

    #[test]
    fn overrides_change_disk_and_memory() {
        let wl = suite::workload(WorkloadId::Ytube);
        let p = catalog::platform(PlatformId::Emb1);
        let base = PlatformDemand::new(&wl, &p);
        let laptop = PlatformDemand::with_overrides(&wl, &p, &DiskModel::laptop_remote(), 4.0);
        assert!(laptop.disk_secs() > base.disk_secs());
        let less_mem = PlatformDemand::with_overrides(&wl, &p, &p.disk, 1.0);
        assert!((less_mem.mem_secs() - base.mem_secs() * 4.0).abs() < 1e-12);
    }

    #[test]
    fn inflate_and_override_hooks() {
        let mut d = demand(WorkloadId::Websearch, PlatformId::Emb1);
        let before = d.cpu_secs();
        d.inflate_cpu(1.047);
        assert!((d.cpu_secs() / before - 1.047).abs() < 1e-12);
        d.set_disk_secs(0.010);
        assert_eq!(d.disk_secs(), 0.010);
    }

    #[test]
    fn source_samples_vary_but_average_out() {
        let d = demand(WorkloadId::Websearch, PlatformId::Srvr2);
        let mut src = d.source(0);
        let mut rng = SimRng::seed_from(5);
        let mut total = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let stages = src.next_request(&mut rng);
            total += stages.iter().map(|s| s.service.as_secs_f64()).sum::<f64>();
        }
        let mean = total / n as f64;
        let expect = d.single_client_latency_secs();
        assert!((mean - expect).abs() / expect < 0.05, "{mean} vs {expect}");
    }

    #[test]
    fn tasks_are_deterministic_and_sized() {
        let d = demand(WorkloadId::MapredWc, PlatformId::Desk);
        let tasks = d.tasks(16);
        assert_eq!(tasks.len(), 16);
        assert_eq!(tasks[0], tasks[15]);
        assert!(!tasks[0].is_empty());
    }

    #[test]
    #[should_panic(expected = "slowdown factor")]
    fn inflate_rejects_speedup() {
        let mut d = demand(WorkloadId::Websearch, PlatformId::Desk);
        d.inflate_cpu(0.9);
    }
}
