//! The open workload registry.
//!
//! The paper's suite is a closed five-variant enum; every new scenario
//! used to be a breaking change rippling through exhaustive matches in
//! `core`, `bench`, and `tco`. The registry inverts that: workloads are
//! looked up by [`WorkloadKey`] — an interned name — and the five paper
//! benchmarks become built-in registrations alongside the FaaS and DAG
//! families. New families register at startup without touching any
//! downstream crate; [`crate::WorkloadId`] remains only as the
//! calibration anchor inside [`crate::Workload`] and as a convenience
//! for code that still speaks the paper's closed suite (see DESIGN.md
//! §13 for the deprecation policy).
//!
//! Everything here is deterministic: the map is ordered by name, so
//! [`names`] and any iteration order are stable across runs, threads,
//! and platforms.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

use wcs_simcore::intern::intern;
use wcs_simcore::memo::{MemoHash, MemoKey};

use crate::dag::DagParams;
use crate::faas::FaasParams;
use crate::spec::{Workload, WorkloadId};
use crate::suite;

/// An interned workload name: the open-world replacement for
/// [`WorkloadId`]. Keys are cheap to copy and compare; equality and
/// ordering are by name content, so behaviour never depends on
/// interning order.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadKey(&'static str);

impl WorkloadKey {
    /// Interns `name` into a key. Does not check registration — use
    /// [`resolve`] (or [`contains`]) for that.
    pub fn new(name: &str) -> Self {
        WorkloadKey(intern(name))
    }

    /// The workload name.
    pub fn name(&self) -> &'static str {
        self.0
    }
}

impl PartialOrd for WorkloadKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WorkloadKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(other.0)
    }
}

impl fmt::Debug for WorkloadKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WorkloadKey({:?})", self.0)
    }
}

impl fmt::Display for WorkloadKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl From<WorkloadId> for WorkloadKey {
    fn from(id: WorkloadId) -> Self {
        WorkloadKey(intern(id.label()))
    }
}

impl MemoHash for WorkloadKey {
    fn memo_hash(&self, key: &mut MemoKey) {
        *key = key.push_str(self.0);
    }
}

/// Which simulation family executes a registered workload.
#[derive(Debug, Clone, PartialEq)]
pub enum Family {
    /// One of the paper's five calibrated benchmarks, executed exactly
    /// as before the registry existed.
    Paper(WorkloadId),
    /// Serverless functions with cold-start/keep-alive semantics
    /// ([`crate::faas`]).
    Faas(FaasParams),
    /// DAG analytics with stragglers ([`crate::dag`]).
    Dag(DagParams),
}

/// A registry entry: the key, the demand/metric description, and the
/// family that executes it.
#[derive(Debug, Clone, PartialEq)]
pub struct RegisteredWorkload {
    /// The name this entry resolves under.
    pub key: WorkloadKey,
    /// Demand model and metric. For non-paper families, `workload.id`
    /// is the paper benchmark the demand calibration anchors to.
    pub workload: Workload,
    /// Execution family.
    pub family: Family,
}

static REGISTRY: OnceLock<Mutex<BTreeMap<WorkloadKey, RegisteredWorkload>>> = OnceLock::new();

fn with_registry<R>(f: impl FnOnce(&mut BTreeMap<WorkloadKey, RegisteredWorkload>) -> R) -> R {
    let lock = REGISTRY.get_or_init(|| {
        let mut map = BTreeMap::new();
        for entry in builtins() {
            map.insert(entry.key, entry);
        }
        Mutex::new(map)
    });
    f(&mut lock.lock().expect("workload registry poisoned"))
}

/// The built-in registrations: the five paper benchmarks plus the
/// default FaaS and DAG instances.
fn builtins() -> Vec<RegisteredWorkload> {
    let mut entries: Vec<RegisteredWorkload> = WorkloadId::ALL
        .iter()
        .map(|&id| RegisteredWorkload {
            key: WorkloadKey::from(id),
            workload: suite::workload(id),
            family: Family::Paper(id),
        })
        .collect();
    entries.push(RegisteredWorkload {
        key: WorkloadKey::new("faas"),
        workload: faas_workload(),
        family: Family::Faas(FaasParams::paper_default()),
    });
    entries.push(RegisteredWorkload {
        key: WorkloadKey::new("dag-analytics"),
        workload: dag_workload(),
        family: Family::Dag(DagParams::paper_default()),
    });
    entries
}

/// The built-in FaaS workload description. Demand sits between webmail
/// (CPU-bound scripting) and websearch (small responses): short warm
/// invocations, tight QoS, negligible per-request disk.
fn faas_workload() -> Workload {
    use wcs_simcore::SimDuration;
    use wcs_simserver::QosSpec;

    Workload {
        // Anchored to websearch: interactive, QoS-bound, small I/O.
        id: WorkloadId::Websearch,
        emphasizes: "serverless cold starts vs keep-alive memory",
        description: "FaaS tenant mix: 4096 functions under Zipf(1.1) \
                      invocation popularity, 96 MiB warm snapshots kept \
                      resident in local DRAM and (when attached) on the \
                      memory blade; cold invocations pay a sandbox-restore \
                      CPU penalty. QoS: >95% of invocations under 0.3 s.",
        demand: crate::spec::DemandParams {
            cpu_ghz_s: 0.018,
            sigma: 0.05,
            cache_sensitivity: 0.02,
            cache_ws_mib: 4.0,
            io_per_req: 0.0002,
            io_bytes: 16384.0,
            net_bytes: 8192.0,
            mem_gib_s: 0.004,
            cv: 0.8,
        },
        metric: crate::spec::Metric::ThroughputQos(QosSpec::new(
            95.0,
            SimDuration::from_millis(300),
        )),
    }
}

/// The built-in DAG analytics workload description: mapred-wc's per-task
/// demands driving a 4-layer, straggler-prone graph.
fn dag_workload() -> Workload {
    Workload {
        // Anchored to mapred-wc: the batch family it generalizes.
        id: WorkloadId::MapredWc,
        emphasizes: "multi-stage analytics DAGs with stragglers",
        description: "Layered analytics job: 256 tasks over 4 stages \
                      (widest first), lognormal task sizes, 5% stragglers \
                      at 6x, cross-stage fan-in of 3. Metric: reciprocal \
                      makespan under slot-pool list scheduling.",
        demand: suite::workload(WorkloadId::MapredWc).demand,
        metric: crate::spec::Metric::Batch {
            tasks: 256,
            slots_per_core: 4,
        },
    }
}

/// Error registering a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct RegisterError {
    /// The name that collided.
    pub name: &'static str,
}

impl fmt::Display for RegisterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "workload {:?} is already registered", self.name)
    }
}

impl std::error::Error for RegisterError {}

/// Registers a workload under `name`.
///
/// # Errors
/// Fails if the name is already taken (built-ins included): first
/// registration wins, so results never depend on registration races.
///
/// # Panics
/// Panics if the workload's demand parameters are invalid.
pub fn register(
    name: &str,
    workload: Workload,
    family: Family,
) -> Result<WorkloadKey, RegisterError> {
    workload.demand.validate();
    let key = WorkloadKey::new(name);
    with_registry(|map| {
        if map.contains_key(&key) {
            return Err(RegisterError { name: key.name() });
        }
        map.insert(
            key,
            RegisteredWorkload {
                key,
                workload,
                family,
            },
        );
        Ok(key)
    })
}

/// Looks up a registered workload by key.
pub fn resolve(key: WorkloadKey) -> Option<RegisteredWorkload> {
    with_registry(|map| map.get(&key).cloned())
}

/// Looks up a registered workload by name.
pub fn resolve_name(name: &str) -> Option<RegisteredWorkload> {
    resolve(WorkloadKey::new(name))
}

/// True when `name` is registered.
pub fn contains(name: &str) -> bool {
    with_registry(|map| map.contains_key(&WorkloadKey::new(name)))
}

/// All registered names, sorted (deterministic).
pub fn names() -> Vec<&'static str> {
    with_registry(|map| map.keys().map(|k| k.name()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_cover_paper_suite_and_new_families() {
        for id in WorkloadId::ALL {
            let entry = resolve_name(id.label()).expect("paper workload registered");
            assert_eq!(entry.family, Family::Paper(id));
            assert_eq!(entry.workload, suite::workload(id));
        }
        assert!(matches!(
            resolve_name("faas").unwrap().family,
            Family::Faas(_)
        ));
        assert!(matches!(
            resolve_name("dag-analytics").unwrap().family,
            Family::Dag(_)
        ));
    }

    #[test]
    fn names_are_sorted_and_contain_builtins() {
        let names = names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        for want in [
            "websearch",
            "webmail",
            "ytube",
            "mapred-wc",
            "mapred-wr",
            "faas",
            "dag-analytics",
        ] {
            assert!(names.contains(&want), "{want} missing from {names:?}");
        }
    }

    #[test]
    fn register_rejects_collisions_and_accepts_new_names() {
        let err = register(
            "websearch",
            suite::workload(WorkloadId::Websearch),
            Family::Paper(WorkloadId::Websearch),
        )
        .unwrap_err();
        assert!(err.to_string().contains("websearch"));

        let key = register(
            "test-registry-custom",
            suite::workload(WorkloadId::Webmail),
            Family::Paper(WorkloadId::Webmail),
        )
        .expect("fresh name registers");
        assert!(contains("test-registry-custom"));
        let entry = resolve(key).unwrap();
        assert_eq!(entry.workload.id, WorkloadId::Webmail);
        // Second registration of the same name loses.
        assert!(register(
            "test-registry-custom",
            suite::workload(WorkloadId::Ytube),
            Family::Paper(WorkloadId::Ytube),
        )
        .is_err());
    }

    #[test]
    fn keys_compare_by_content() {
        let a = WorkloadKey::new("alpha");
        let b = WorkloadKey::new(&String::from("alpha"));
        let c = WorkloadKey::new("beta");
        assert_eq!(a, b);
        assert!(a < c);
        assert_eq!(a.to_string(), "alpha");
        assert_eq!(WorkloadKey::from(WorkloadId::MapredWc).name(), "mapred-wc");
    }

    #[test]
    fn key_memo_hash_matches_workload_id_label() {
        // A WorkloadKey and the WorkloadId it wraps produce the same
        // memo key, so registry-path lookups share cache entries with
        // enum-path lookups.
        let by_id = MemoKey::new("t").push(&WorkloadId::Ytube).finish();
        let by_key = MemoKey::new("t")
            .push(&WorkloadKey::from(WorkloadId::Ytube))
            .finish();
        assert_eq!(by_id, by_key);
    }

    #[test]
    fn new_family_workloads_validate() {
        faas_workload().demand.validate();
        dag_workload().demand.validate();
    }
}
