//! Synthetic memory page-access traces for the memory-blade study.
//!
//! The paper gathers page traces from full-system simulation of each
//! benchmark and replays them through a two-level memory simulator
//! (Section 3.4). We cannot run the real stacks, so each workload gets a
//! parameterized synthetic trace: Zipf-popular pages over a fixed
//! footprint, with a per-workload access rate per second of CPU work.
//! The two-level simulator in `wcs-memshare` only consumes the trace's
//! page-level reuse distribution, which these parameters control
//! directly.
//!
//! The `zipf_s` skew and footprint were chosen so the two-level miss
//! rates land in the regime of Figure 4(b); the access-rate constant
//! `accesses_per_cpu_sec` is calibrated per workload so the resulting
//! slowdown matches the published table at the paper's PCIe latency.

use wcs_simcore::dist::Zipf;
use wcs_simcore::SimRng;

use crate::spec::WorkloadId;

/// One page-granularity memory touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PageAccess {
    /// Page number (4 KiB granularity).
    pub page: u64,
    /// Whether the touch dirties the page.
    pub write: bool,
}

/// Parameters of a workload's synthetic page trace.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemTraceParams {
    /// Distinct 4 KiB pages the workload touches (its footprint).
    pub footprint_pages: u64,
    /// Zipf skew of page popularity (0 = uniform).
    pub zipf_s: f64,
    /// Fraction of touches that are writes.
    pub write_fraction: f64,
    /// Page-granularity touches per second of CPU work — the rate that
    /// converts a miss ratio into a slowdown.
    pub accesses_per_cpu_sec: f64,
}

impl MemTraceParams {
    /// Validates the parameters.
    ///
    /// # Panics
    /// Panics on nonsensical values.
    pub fn validate(&self) {
        assert!(self.footprint_pages > 0, "footprint must be positive");
        assert!(self.zipf_s.is_finite() && self.zipf_s >= 0.0);
        assert!((0.0..=1.0).contains(&self.write_fraction));
        assert!(self.accesses_per_cpu_sec.is_finite() && self.accesses_per_cpu_sec > 0.0);
    }
}

/// The per-workload trace parameters.
///
/// Footprints reflect the benchmark descriptions: `websearch` touches its
/// 1.3 GB index plus query state; `ytube` streams through large media
/// files; `webmail` works over a modest per-session state; the Hadoop
/// jobs stream through task input splits. The access-rate constants are
/// calibration outputs (see module docs).
pub fn params_for(id: WorkloadId) -> MemTraceParams {
    match id {
        WorkloadId::Websearch => MemTraceParams {
            footprint_pages: 480_000, // ~1.9 GiB: index + heap
            zipf_s: 0.65,
            write_fraction: 0.10,
            accesses_per_cpu_sec: 28_000.0,
        },
        WorkloadId::Webmail => MemTraceParams {
            footprint_pages: 400_000,
            zipf_s: 1.05, // strong per-user session locality
            write_fraction: 0.25,
            accesses_per_cpu_sec: 1_500.0,
        },
        WorkloadId::Ytube => MemTraceParams {
            footprint_pages: 500_000, // streams through media files
            zipf_s: 0.70,             // Zipf video popularity
            write_fraction: 0.02,
            accesses_per_cpu_sec: 8_000.0,
        },
        WorkloadId::MapredWc => MemTraceParams {
            footprint_pages: 450_000,
            zipf_s: 0.90,
            write_fraction: 0.20,
            accesses_per_cpu_sec: 5_000.0,
        },
        WorkloadId::MapredWr => MemTraceParams {
            footprint_pages: 450_000,
            zipf_s: 0.90,
            write_fraction: 0.60, // write-dominated
            accesses_per_cpu_sec: 5_000.0,
        },
    }
}

/// A deterministic generator of [`PageAccess`]es for one workload.
///
/// # Example
/// ```
/// use wcs_workloads::{memtrace, WorkloadId};
/// let mut gen = memtrace::MemTraceGen::new(memtrace::params_for(WorkloadId::Websearch), 1);
/// let a = gen.next_access();
/// assert!(a.page < 480_000);
/// ```
#[derive(Debug)]
pub struct MemTraceGen {
    params: MemTraceParams,
    zipf: Zipf,
    rng: SimRng,
}

impl MemTraceGen {
    /// Creates a generator.
    ///
    /// # Panics
    /// Panics if the parameters are invalid.
    pub fn new(params: MemTraceParams, seed: u64) -> Self {
        params.validate();
        let zipf = Zipf::new(params.footprint_pages as usize, params.zipf_s)
            .expect("validated parameters");
        MemTraceGen {
            params,
            zipf,
            rng: SimRng::seed_from(seed),
        }
    }

    /// The parameters this generator uses.
    pub fn params(&self) -> &MemTraceParams {
        &self.params
    }

    /// Draws the next page touch.
    pub fn next_access(&mut self) -> PageAccess {
        let rank = self.zipf.sample_rank(&mut self.rng) as u64;
        // Scramble ranks into page numbers so popular pages are scattered
        // across the address space (multiplicative hashing, full period
        // because the multiplier is odd).
        let page = rank
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x2545_F491_4F6C_DD1D)
            % self.params.footprint_pages;
        let write = self.rng.chance(self.params.write_fraction);
        PageAccess { page, write }
    }

    /// Generates `n` accesses as a vector.
    pub fn take_vec(&mut self, n: usize) -> Vec<PageAccess> {
        (0..n).map(|_| self.next_access()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_stay_in_footprint() {
        let mut g = MemTraceGen::new(params_for(WorkloadId::Webmail), 3);
        for _ in 0..10_000 {
            let a = g.next_access();
            assert!(a.page < 400_000);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = MemTraceGen::new(params_for(WorkloadId::Websearch), 7);
        let mut b = MemTraceGen::new(params_for(WorkloadId::Websearch), 7);
        for _ in 0..100 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn write_fraction_roughly_respected() {
        let mut g = MemTraceGen::new(params_for(WorkloadId::MapredWr), 11);
        let n = 20_000;
        let writes = (0..n).filter(|_| g.next_access().write).count();
        let frac = writes as f64 / n as f64;
        assert!((frac - 0.6).abs() < 0.02, "write fraction {frac}");
    }

    #[test]
    fn popular_pages_repeat() {
        // With Zipf skew, a short trace must contain repeated pages.
        let mut g = MemTraceGen::new(params_for(WorkloadId::Webmail), 13);
        let trace = g.take_vec(50_000);
        let distinct: std::collections::HashSet<u64> = trace.iter().map(|a| a.page).collect();
        assert!(distinct.len() < trace.len());
    }

    #[test]
    fn all_workloads_have_params() {
        for id in WorkloadId::ALL {
            params_for(id).validate();
        }
    }

    #[test]
    #[should_panic(expected = "footprint")]
    fn rejects_zero_footprint() {
        MemTraceParams {
            footprint_pages: 0,
            zipf_s: 1.0,
            write_fraction: 0.1,
            accesses_per_cpu_sec: 1.0,
        }
        .validate();
    }
}
