//! Synthetic memory page-access traces for the memory-blade study.
//!
//! The paper gathers page traces from full-system simulation of each
//! benchmark and replays them through a two-level memory simulator
//! (Section 3.4). We cannot run the real stacks, so each workload gets a
//! parameterized synthetic trace: Zipf-popular pages over a fixed
//! footprint, with a per-workload access rate per second of CPU work.
//! The two-level simulator in `wcs-memshare` only consumes the trace's
//! page-level reuse distribution, which these parameters control
//! directly.
//!
//! The `zipf_s` skew and footprint were chosen so the two-level miss
//! rates land in the regime of Figure 4(b); the access-rate constant
//! `accesses_per_cpu_sec` is calibrated per workload so the resulting
//! slowdown matches the published table at the paper's PCIe latency.

use wcs_simcore::dist::Zipf;
use wcs_simcore::memo::{MemoHash, MemoKey};
use wcs_simcore::{SimRng, ThreadPool};

use crate::spec::WorkloadId;

/// Accesses drawn per RNG substream: generation restarts from
/// `SimRng::stream(seed, i)` at every `i * GEN_CHUNK` boundary, making
/// access `i` a pure function of `(params, seed, i / GEN_CHUNK)`-chunk
/// state. Chunks can therefore be materialized independently — in any
/// order, on any number of threads — and always reproduce the
/// sequential stream bit for bit. A multiple of 64 so each chunk owns
/// whole words of the write bitset.
pub const GEN_CHUNK: usize = 1 << 16;

/// One page-granularity memory touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PageAccess {
    /// Page number (4 KiB granularity).
    pub page: u64,
    /// Whether the touch dirties the page.
    pub write: bool,
}

/// Parameters of a workload's synthetic page trace.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemTraceParams {
    /// Distinct 4 KiB pages the workload touches (its footprint).
    pub footprint_pages: u64,
    /// Zipf skew of page popularity (0 = uniform).
    pub zipf_s: f64,
    /// Fraction of touches that are writes.
    pub write_fraction: f64,
    /// Page-granularity touches per second of CPU work — the rate that
    /// converts a miss ratio into a slowdown.
    pub accesses_per_cpu_sec: f64,
}

impl MemTraceParams {
    /// Validates the parameters.
    ///
    /// # Panics
    /// Panics on nonsensical values.
    pub fn validate(&self) {
        assert!(self.footprint_pages > 0, "footprint must be positive");
        assert!(self.zipf_s.is_finite() && self.zipf_s >= 0.0);
        assert!((0.0..=1.0).contains(&self.write_fraction));
        assert!(self.accesses_per_cpu_sec.is_finite() && self.accesses_per_cpu_sec > 0.0);
    }
}

impl MemoHash for MemTraceParams {
    fn memo_hash(&self, key: &mut MemoKey) {
        *key = key
            .push_u64(self.footprint_pages)
            .push_f64(self.zipf_s)
            .push_f64(self.write_fraction)
            .push_f64(self.accesses_per_cpu_sec);
    }
}

/// The per-workload trace parameters.
///
/// Footprints reflect the benchmark descriptions: `websearch` touches its
/// 1.3 GB index plus query state; `ytube` streams through large media
/// files; `webmail` works over a modest per-session state; the Hadoop
/// jobs stream through task input splits. The access-rate constants are
/// calibration outputs (see module docs).
pub fn params_for(id: WorkloadId) -> MemTraceParams {
    match id {
        WorkloadId::Websearch => MemTraceParams {
            footprint_pages: 480_000, // ~1.9 GiB: index + heap
            zipf_s: 0.65,
            write_fraction: 0.10,
            accesses_per_cpu_sec: 28_000.0,
        },
        WorkloadId::Webmail => MemTraceParams {
            footprint_pages: 400_000,
            zipf_s: 1.05, // strong per-user session locality
            write_fraction: 0.25,
            accesses_per_cpu_sec: 1_500.0,
        },
        WorkloadId::Ytube => MemTraceParams {
            footprint_pages: 500_000, // streams through media files
            zipf_s: 0.70,             // Zipf video popularity
            write_fraction: 0.02,
            accesses_per_cpu_sec: 8_000.0,
        },
        WorkloadId::MapredWc => MemTraceParams {
            footprint_pages: 450_000,
            zipf_s: 0.90,
            write_fraction: 0.20,
            accesses_per_cpu_sec: 5_000.0,
        },
        WorkloadId::MapredWr => MemTraceParams {
            footprint_pages: 450_000,
            zipf_s: 0.90,
            write_fraction: 0.60, // write-dominated
            accesses_per_cpu_sec: 5_000.0,
        },
    }
}

/// A deterministic generator of [`PageAccess`]es for one workload.
///
/// # Example
/// ```
/// use wcs_workloads::{memtrace, WorkloadId};
/// let mut gen = memtrace::MemTraceGen::new(memtrace::params_for(WorkloadId::Websearch), 1);
/// let a = gen.next_access();
/// assert!(a.page < 480_000);
/// ```
#[derive(Debug)]
pub struct MemTraceGen {
    params: MemTraceParams,
    zipf: Zipf,
    rng: SimRng,
    seed: u64,
    pos: u64,
}

impl MemTraceGen {
    /// Creates a generator.
    ///
    /// # Panics
    /// Panics if the parameters are invalid.
    pub fn new(params: MemTraceParams, seed: u64) -> Self {
        params.validate();
        let zipf = Zipf::new(params.footprint_pages as usize, params.zipf_s)
            .expect("validated parameters");
        MemTraceGen {
            params,
            zipf,
            rng: SimRng::stream(seed, 0),
            seed,
            pos: 0,
        }
    }

    /// The parameters this generator uses.
    pub fn params(&self) -> &MemTraceParams {
        &self.params
    }

    /// Draws the next page touch.
    ///
    /// The generator reseeds from `SimRng::stream(seed, chunk)` at every
    /// [`GEN_CHUNK`] boundary so the sequential stream matches what
    /// independent per-chunk generation produces (see
    /// [`MemTraceBuf::generate_par`]).
    #[inline]
    pub fn next_access(&mut self) -> PageAccess {
        if self.pos != 0 && self.pos.is_multiple_of(GEN_CHUNK as u64) {
            self.rng = SimRng::stream(self.seed, self.pos / GEN_CHUNK as u64);
        }
        self.pos += 1;
        chunk_access(&self.zipf, &mut self.rng, &self.params)
    }

    /// Generates `n` accesses as a vector.
    pub fn take_vec(&mut self, n: usize) -> Vec<PageAccess> {
        (0..n).map(|_| self.next_access()).collect()
    }
}

/// One draw of the shared access recipe: Zipf rank, rank-scramble, write
/// coin. Factored out so the sequential generator and the per-chunk
/// parallel materializer execute the identical sampling code.
#[inline]
fn chunk_access(zipf: &Zipf, rng: &mut SimRng, params: &MemTraceParams) -> PageAccess {
    let rank = zipf.sample_rank(rng) as u64;
    // Scramble ranks into page numbers so popular pages are scattered
    // across the address space (multiplicative hashing, full period
    // because the multiplier is odd).
    let page = rank
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0x2545_F491_4F6C_DD1D)
        % params.footprint_pages;
    let write = rng.chance(params.write_fraction);
    PageAccess { page, write }
}

/// A materialized memory trace in compact, shareable form.
///
/// Sweeps replay the same `(params, seed)` trace through many cache
/// configurations; materializing it once and sharing the buffer (behind
/// an `Arc`) removes the per-point generator cost. Storage is
/// struct-of-arrays and packed — `u32` page numbers (footprints are a
/// few hundred thousand pages, far below `u32::MAX`) plus a write
/// bitset — so a 4-million-access trace costs ~16.5 MB instead of the
/// 64 MB a `Vec<PageAccess>` would.
///
/// [`MemTraceBuf::get`] returns exactly what the generator's `i`-th
/// [`MemTraceGen::next_access`] call returned, so replaying from the
/// buffer is bit-identical to replaying from the generator.
#[derive(Debug, Clone)]
pub struct MemTraceBuf {
    pages: Box<[u32]>,
    writes: Box<[u64]>,
}

impl MemTraceBuf {
    /// Materializes the first `n` accesses of the `(params, seed)`
    /// trace.
    ///
    /// # Panics
    /// Panics if the parameters are invalid or the footprint does not
    /// fit the compact `u32` page representation.
    pub fn generate(params: MemTraceParams, seed: u64, n: usize) -> Self {
        Self::generate_par(params, seed, n, &ThreadPool::serial())
    }

    /// [`generate`](Self::generate) with the per-[`GEN_CHUNK`] substreams
    /// materialized on `pool`'s threads.
    ///
    /// Bit-identical to the sequential path for every pool size: chunk
    /// `i` draws from `SimRng::stream(seed, i)` exactly as the
    /// sequential generator does when it crosses the `i * GEN_CHUNK`
    /// boundary, and chunks are stitched back together in index order.
    ///
    /// # Panics
    /// Panics if the parameters are invalid or the footprint does not
    /// fit the compact `u32` page representation.
    pub fn generate_par(params: MemTraceParams, seed: u64, n: usize, pool: &ThreadPool) -> Self {
        params.validate();
        assert!(
            params.footprint_pages <= u64::from(u32::MAX),
            "footprint too large for compact trace pages"
        );
        let zipf = Zipf::new(params.footprint_pages as usize, params.zipf_s)
            .expect("validated parameters");
        let chunks: Vec<usize> = (0..n.div_ceil(GEN_CHUNK)).collect();
        let parts = pool.par_map(&chunks, |_, &chunk| {
            let start = chunk * GEN_CHUNK;
            let len = (n - start).min(GEN_CHUNK);
            let mut rng = SimRng::stream(seed, chunk as u64);
            let mut pages = Vec::with_capacity(len);
            // GEN_CHUNK is a multiple of 64, so every chunk owns whole
            // words of the write bitset and concatenation is exact.
            let mut writes = vec![0u64; len.div_ceil(64)];
            for i in 0..len {
                let a = chunk_access(&zipf, &mut rng, &params);
                pages.push(a.page as u32);
                if a.write {
                    writes[i >> 6] |= 1u64 << (i & 63);
                }
            }
            (pages, writes)
        });
        let mut pages = Vec::with_capacity(n);
        let mut writes = Vec::with_capacity(n.div_ceil(64));
        for (p, w) in parts {
            pages.extend_from_slice(&p);
            writes.extend_from_slice(&w);
        }
        MemTraceBuf {
            pages: pages.into_boxed_slice(),
            writes: writes.into_boxed_slice(),
        }
    }

    /// Number of accesses stored.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// The `i`-th access.
    #[inline]
    pub fn get(&self, i: usize) -> PageAccess {
        PageAccess {
            page: u64::from(self.pages[i]),
            write: (self.writes[i >> 6] >> (i & 63)) & 1 == 1,
        }
    }

    /// Decodes accesses `[start, start + out.len())` into `out`, the
    /// chunked-replay entry point: callers decode a cache-sized chunk
    /// into scratch and run the same SoA kernel the generator path uses.
    ///
    /// # Panics
    /// Panics if the range runs past the end of the trace.
    pub fn fill_chunk(&self, start: usize, out: &mut [PageAccess]) {
        for (j, slot) in out.iter_mut().enumerate() {
            *slot = self.get(start + j);
        }
    }

    /// Decodes accesses `[start, start + pages.len())` straight into SoA
    /// scratch — packed `u32` page numbers plus one write byte (0/1) per
    /// access — the staging step of the vectorized replay kernels, which
    /// never materialize `PageAccess` structs.
    ///
    /// # Panics
    /// Panics if the two slices disagree in length or the range runs
    /// past the end of the trace.
    pub fn fill_chunk_soa(&self, start: usize, pages: &mut [u32], writes: &mut [u8]) {
        assert_eq!(pages.len(), writes.len(), "SoA scratch length mismatch");
        pages.copy_from_slice(&self.pages[start..start + pages.len()]);
        for (j, w) in writes.iter_mut().enumerate() {
            let i = start + j;
            *w = ((self.writes[i >> 6] >> (i & 63)) & 1) as u8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_stay_in_footprint() {
        let mut g = MemTraceGen::new(params_for(WorkloadId::Webmail), 3);
        for _ in 0..10_000 {
            let a = g.next_access();
            assert!(a.page < 400_000);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = MemTraceGen::new(params_for(WorkloadId::Websearch), 7);
        let mut b = MemTraceGen::new(params_for(WorkloadId::Websearch), 7);
        for _ in 0..100 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn write_fraction_roughly_respected() {
        let mut g = MemTraceGen::new(params_for(WorkloadId::MapredWr), 11);
        let n = 20_000;
        let writes = (0..n).filter(|_| g.next_access().write).count();
        let frac = writes as f64 / n as f64;
        assert!((frac - 0.6).abs() < 0.02, "write fraction {frac}");
    }

    #[test]
    fn popular_pages_repeat() {
        // With Zipf skew, a short trace must contain repeated pages.
        let mut g = MemTraceGen::new(params_for(WorkloadId::Webmail), 13);
        let trace = g.take_vec(50_000);
        let distinct: std::collections::HashSet<u64> = trace.iter().map(|a| a.page).collect();
        assert!(distinct.len() < trace.len());
    }

    #[test]
    fn all_workloads_have_params() {
        for id in WorkloadId::ALL {
            params_for(id).validate();
        }
    }

    #[test]
    fn materialized_buffer_matches_generator() {
        let params = params_for(WorkloadId::Websearch);
        let buf = MemTraceBuf::generate(params, 21, 5_000);
        let mut gen = MemTraceGen::new(params, 21);
        assert_eq!(buf.len(), 5_000);
        for i in 0..buf.len() {
            assert_eq!(buf.get(i), gen.next_access(), "access {i}");
        }
    }

    #[test]
    fn fill_chunk_decodes_ranges() {
        let params = params_for(WorkloadId::Webmail);
        let buf = MemTraceBuf::generate(params, 4, 1_000);
        let mut scratch = vec![
            PageAccess {
                page: 0,
                write: false
            };
            130
        ];
        buf.fill_chunk(500, &mut scratch);
        for (j, a) in scratch.iter().enumerate() {
            assert_eq!(*a, buf.get(500 + j));
        }
    }

    #[test]
    fn parallel_generation_is_bit_identical_to_sequential() {
        let params = params_for(WorkloadId::Ytube);
        // Cover: sub-chunk, exact multiple, ragged multi-chunk.
        for n in [1_000usize, 2 * GEN_CHUNK, 2 * GEN_CHUNK + 777] {
            let seq = MemTraceBuf::generate(params, 31, n);
            let pool = wcs_simcore::ThreadPool::new(3).unwrap();
            let par = MemTraceBuf::generate_par(params, 31, n, &pool);
            assert_eq!(seq.len(), par.len(), "n={n}");
            for i in 0..n {
                assert_eq!(seq.get(i), par.get(i), "n={n} access {i}");
            }
        }
    }

    #[test]
    fn generator_reseeds_at_chunk_boundaries() {
        // Accesses at and after a chunk boundary must be reproducible by
        // a fresh generator-free stream — the contract generate_par
        // relies on.
        let params = params_for(WorkloadId::Webmail);
        let mut gen = MemTraceGen::new(params, 77);
        let mut all = Vec::new();
        for _ in 0..GEN_CHUNK + 50 {
            all.push(gen.next_access());
        }
        let zipf = Zipf::new(params.footprint_pages as usize, params.zipf_s).unwrap();
        let mut rng = SimRng::stream(77, 1);
        for (j, want) in all[GEN_CHUNK..].iter().enumerate() {
            assert_eq!(chunk_access(&zipf, &mut rng, &params), *want, "offset {j}");
        }
    }

    #[test]
    fn soa_chunk_decode_matches_get() {
        let params = params_for(WorkloadId::MapredWc);
        let buf = MemTraceBuf::generate(params, 9, 2_000);
        let mut pages = [0u32; 300];
        let mut writes = [0u8; 300];
        buf.fill_chunk_soa(700, &mut pages, &mut writes);
        for j in 0..300 {
            let a = buf.get(700 + j);
            assert_eq!(u64::from(pages[j]), a.page, "access {j}");
            assert_eq!(writes[j] != 0, a.write, "access {j}");
        }
    }

    #[test]
    #[should_panic(expected = "footprint")]
    fn rejects_zero_footprint() {
        MemTraceParams {
            footprint_pages: 0,
            zipf_s: 1.0,
            write_fraction: 0.1,
            accesses_per_cpu_sec: 1.0,
        }
        .validate();
    }
}
