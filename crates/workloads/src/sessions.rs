//! Session modelling for the interactive services.
//!
//! The paper's `webmail` clients "interact with the servers in sessions,
//! each consisting of a sequence of actions (e.g., login, read email and
//! attachments, reply/forward/delete/move, compose and send)", with the
//! action mix modelled after MS Exchange LoadSim's heavy-usage profile.
//! This module provides that structure: an action alphabet with relative
//! demand weights and a session generator producing action sequences
//! whose *mean* demand equals the calibrated per-request demand (so the
//! Figure 2(c) calibration is preserved while the request stream gains
//! realistic heterogeneity).

use wcs_simcore::dist::Empirical;
use wcs_simcore::SimRng;
use wcs_simserver::{RequestSource, Stage};

use crate::service::PlatformDemand;

/// One user action within a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MailAction {
    /// Authenticate and load the mailbox index.
    Login,
    /// Read a message body.
    Read,
    /// Download an attachment (heavy network + disk).
    ReadAttachment,
    /// Reply / forward (read + compose + send).
    Reply,
    /// Compose and send a new message.
    Compose,
    /// Delete / move / flag (metadata only).
    Manage,
    /// Log out.
    Logout,
}

impl MailAction {
    /// Demand multiplier relative to the calibrated mean request: how
    /// much heavier or lighter this action is.
    pub fn demand_multiplier(self) -> f64 {
        match self {
            MailAction::Login => 1.4,
            MailAction::Read => 0.8,
            MailAction::ReadAttachment => 3.0,
            MailAction::Reply => 1.6,
            MailAction::Compose => 1.2,
            MailAction::Manage => 0.3,
            MailAction::Logout => 0.2,
        }
    }
}

/// The LoadSim-style heavy-user action mix: `(action, weight)` pairs for
/// the body of a session (login/logout bracket it).
const HEAVY_USER_MIX: [(MailAction, f64); 5] = [
    (MailAction::Read, 45.0),
    (MailAction::ReadAttachment, 10.0),
    (MailAction::Reply, 12.0),
    (MailAction::Compose, 13.0),
    (MailAction::Manage, 20.0),
];

/// A generator of webmail sessions: action sequences with per-action
/// demand multipliers, normalized so the long-run mean multiplier is 1.
///
/// # Example
/// ```
/// use wcs_workloads::sessions::SessionGen;
/// use wcs_simcore::SimRng;
/// let mut gen = SessionGen::heavy_user(8);
/// let session = gen.next_session(&mut SimRng::seed_from(1));
/// assert!(session.len() >= 3); // login + body + logout
/// ```
#[derive(Debug)]
pub struct SessionGen {
    body_mix: Empirical,
    body_actions: Vec<MailAction>,
    mean_body_len: usize,
    normalizer: f64,
}

impl SessionGen {
    /// The heavy-usage profile with the given mean session body length.
    ///
    /// # Panics
    /// Panics if `mean_body_len` is zero.
    pub fn heavy_user(mean_body_len: usize) -> Self {
        assert!(mean_body_len > 0, "sessions need a body");
        let points: Vec<(f64, f64)> = HEAVY_USER_MIX
            .iter()
            .enumerate()
            .map(|(i, &(_, w))| (i as f64, w))
            .collect();
        let body_mix = Empirical::new(&points).expect("static mix is valid");
        let body_actions: Vec<MailAction> = HEAVY_USER_MIX.iter().map(|&(a, _)| a).collect();

        // Long-run mean multiplier of a session, for normalization.
        let total_w: f64 = HEAVY_USER_MIX.iter().map(|&(_, w)| w).sum();
        let mean_body_mult: f64 = HEAVY_USER_MIX
            .iter()
            .map(|&(a, w)| a.demand_multiplier() * w / total_w)
            .sum();
        let n = mean_body_len as f64;
        let mean_mult = (MailAction::Login.demand_multiplier()
            + MailAction::Logout.demand_multiplier()
            + n * mean_body_mult)
            / (n + 2.0);
        SessionGen {
            body_mix,
            body_actions,
            mean_body_len,
            normalizer: 1.0 / mean_mult,
        }
    }

    /// Generates the action sequence of one session (geometric body
    /// length with the configured mean, bracketed by login/logout).
    pub fn next_session(&mut self, rng: &mut SimRng) -> Vec<MailAction> {
        let mut actions = vec![MailAction::Login];
        let p_stop = 1.0 / self.mean_body_len as f64;
        loop {
            let idx = self.body_mix.sample_index(rng);
            actions.push(self.body_actions[idx]);
            if rng.chance(p_stop) {
                break;
            }
        }
        actions.push(MailAction::Logout);
        actions
    }

    /// The demand multiplier for an action, normalized so the long-run
    /// session mean is 1.0.
    pub fn normalized_multiplier(&self, action: MailAction) -> f64 {
        action.demand_multiplier() * self.normalizer
    }
}

/// A [`RequestSource`] that walks webmail sessions: each request is the
/// next action of the current session, its stages scaled by the action's
/// normalized multiplier.
#[derive(Debug)]
pub struct SessionSource {
    demand: PlatformDemand,
    gen: SessionGen,
    pending: Vec<MailAction>,
}

impl SessionSource {
    /// Creates a session-structured source over the given scaled demand.
    pub fn new(demand: PlatformDemand, mean_body_len: usize) -> Self {
        SessionSource {
            demand,
            gen: SessionGen::heavy_user(mean_body_len),
            pending: Vec::new(),
        }
    }
}

impl RequestSource for SessionSource {
    fn next_request(&mut self, rng: &mut SimRng) -> Vec<Stage> {
        if self.pending.is_empty() {
            self.pending = self.gen.next_session(rng);
            self.pending.reverse(); // pop from the back in order
        }
        let action = self.pending.pop().expect("session is non-empty");
        let mult = self.gen.normalized_multiplier(action);
        let d = &self.demand;
        let mut stages = Vec::with_capacity(4);
        for (resource, secs) in [
            (wcs_simserver::Resource::Memory, d.mem_secs()),
            (wcs_simserver::Resource::Cpu, d.cpu_secs()),
            (wcs_simserver::Resource::Disk, d.disk_secs()),
            (wcs_simserver::Resource::Net, d.net_secs()),
        ] {
            let scaled = secs * mult;
            if scaled > 1e-12 {
                stages.push(Stage::new(
                    resource,
                    wcs_simcore::SimDuration::from_secs_f64(scaled),
                ));
            }
        }
        stages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{suite, WorkloadId};
    use wcs_platforms::{catalog, PlatformId};

    #[test]
    fn sessions_bracketed_by_login_logout() {
        let mut gen = SessionGen::heavy_user(6);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..100 {
            let s = gen.next_session(&mut rng);
            assert_eq!(*s.first().unwrap(), MailAction::Login);
            assert_eq!(*s.last().unwrap(), MailAction::Logout);
            assert!(s.len() >= 3);
        }
    }

    #[test]
    fn session_length_mean_tracks_config() {
        let mut gen = SessionGen::heavy_user(10);
        let mut rng = SimRng::seed_from(5);
        let n = 3000;
        let total: usize = (0..n).map(|_| gen.next_session(&mut rng).len() - 2).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 10.0).abs() < 1.0, "mean body length {mean}");
    }

    #[test]
    fn normalized_multiplier_mean_is_one() {
        // Generate many sessions and check the average multiplier.
        let mut gen = SessionGen::heavy_user(8);
        let mut rng = SimRng::seed_from(7);
        let mut total = 0.0;
        let mut count = 0usize;
        for _ in 0..2000 {
            for a in gen.next_session(&mut rng) {
                total += gen.normalized_multiplier(a);
                count += 1;
            }
        }
        let mean = total / count as f64;
        assert!((mean - 1.0).abs() < 0.03, "mean multiplier {mean}");
    }

    #[test]
    fn session_source_preserves_mean_demand() {
        let wl = suite::workload(WorkloadId::Webmail);
        let p = catalog::platform(PlatformId::Desk);
        let demand = PlatformDemand::new(&wl, &p);
        let expect = demand.single_client_latency_secs();
        let mut src = SessionSource::new(demand, 8);
        let mut rng = SimRng::seed_from(11);
        let n = 20_000;
        let mut total = 0.0;
        for _ in 0..n {
            total += src
                .next_request(&mut rng)
                .iter()
                .map(|s| s.service.as_secs_f64())
                .sum::<f64>();
        }
        let mean = total / n as f64;
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "session mean {mean} vs calibrated {expect}"
        );
    }

    #[test]
    fn attachments_are_heaviest() {
        for a in [
            MailAction::Login,
            MailAction::Read,
            MailAction::Reply,
            MailAction::Compose,
            MailAction::Manage,
            MailAction::Logout,
        ] {
            assert!(MailAction::ReadAttachment.demand_multiplier() > a.demand_multiplier());
        }
    }
}
