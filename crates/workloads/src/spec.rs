//! Workload identity and demand parameterization.

use std::fmt;

use wcs_simserver::QosSpec;

/// The five benchmarks of the suite.
///
/// **Deprecation note:** `WorkloadId` is the *closed* paper suite. New
/// code should address workloads by [`crate::registry::WorkloadKey`]
/// through the open registry ([`crate::registry`]) — the enum survives
/// as the calibration anchor inside [`Workload`] and as a convenience
/// for the five built-ins (`WorkloadKey::from(id)` bridges the two; see
/// DESIGN.md §13 for the removal timeline). It is not attributed
/// `#[deprecated]` only because the workspace denies warnings and the
/// calibrated suite itself still legitimately speaks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum WorkloadId {
    /// Nutch-style unstructured-data search.
    Websearch,
    /// SquirrelMail-style interactive mail.
    Webmail,
    /// YouTube-style rich-media serving.
    Ytube,
    /// Hadoop word count (5 GB corpus).
    MapredWc,
    /// Hadoop distributed file write.
    MapredWr,
}

impl WorkloadId {
    /// All workloads, in the paper's order.
    pub const ALL: [WorkloadId; 5] = [
        WorkloadId::Websearch,
        WorkloadId::Webmail,
        WorkloadId::Ytube,
        WorkloadId::MapredWc,
        WorkloadId::MapredWr,
    ];

    /// The paper's label for the workload.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadId::Websearch => "websearch",
            WorkloadId::Webmail => "webmail",
            WorkloadId::Ytube => "ytube",
            WorkloadId::MapredWc => "mapred-wc",
            WorkloadId::MapredWr => "mapred-wr",
        }
    }
}

impl fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl wcs_simcore::memo::MemoHash for WorkloadId {
    fn memo_hash(&self, key: &mut wcs_simcore::memo::MemoKey) {
        *key = key.push_str(self.label());
    }
}

/// Per-request (or per-task) resource demands, expressed in platform-
/// independent units and scaled to a concrete platform by
/// [`crate::service::PlatformDemand`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DemandParams {
    /// CPU work per request in GHz-seconds on a wide out-of-order core
    /// with a fully fitting cache.
    pub cpu_ghz_s: f64,
    /// Software-scalability factor: per-request CPU work inflates by
    /// `1 + sigma * (cores - 1)` (synchronization, data-structure
    /// contention — the paper's Amdahl caveat).
    pub sigma: f64,
    /// Cache sensitivity exponent: CPU work inflates by
    /// `1 + s * log2(ws / l2)` when the working set exceeds the L2.
    pub cache_sensitivity: f64,
    /// Per-core cache working set in MiB.
    pub cache_ws_mib: f64,
    /// Exposed (non-overlapped) disk IOs per request.
    pub io_per_req: f64,
    /// Bytes per disk IO.
    pub io_bytes: f64,
    /// Network bytes per request.
    pub net_bytes: f64,
    /// Memory-capacity admission demand: GiB-seconds per request (a 4 GiB
    /// server serves `4 / mem_gib_s` requests/second through this path).
    pub mem_gib_s: f64,
    /// Coefficient of variation of sampled stage service times.
    pub cv: f64,
}

impl DemandParams {
    /// Validates the parameters.
    ///
    /// # Panics
    /// Panics if any field is negative/non-finite or `cpu_ghz_s` is zero.
    pub fn validate(&self) {
        assert!(
            self.cpu_ghz_s.is_finite() && self.cpu_ghz_s > 0.0,
            "cpu_ghz_s must be positive"
        );
        for (name, v) in [
            ("sigma", self.sigma),
            ("cache_sensitivity", self.cache_sensitivity),
            ("cache_ws_mib", self.cache_ws_mib),
            ("io_per_req", self.io_per_req),
            ("io_bytes", self.io_bytes),
            ("net_bytes", self.net_bytes),
            ("mem_gib_s", self.mem_gib_s),
            ("cv", self.cv),
        ] {
            assert!(v.is_finite() && v >= 0.0, "{name} must be finite and >= 0");
        }
    }
}

/// How a workload's performance is measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Metric {
    /// Sustained requests/second under a QoS bound, found by the adaptive
    /// client driver (websearch, webmail, ytube).
    ThroughputQos(QosSpec),
    /// Reciprocal of the makespan of a fixed batch of tasks (mapreduce).
    Batch {
        /// Number of tasks in the job.
        tasks: u32,
        /// Task slots per CPU core (Hadoop default in the paper: 4).
        slots_per_core: u32,
    },
}

/// A fully described benchmark: identity, prose, demand model, metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Which benchmark this is.
    pub id: WorkloadId,
    /// One-line description (Table 1's "emphasizes" column).
    pub emphasizes: &'static str,
    /// Longer description of the modelled stack.
    pub description: &'static str,
    /// The demand model.
    pub demand: DemandParams,
    /// The performance metric.
    pub metric: Metric,
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.id, self.emphasizes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(WorkloadId::Websearch.label(), "websearch");
        assert_eq!(WorkloadId::MapredWr.to_string(), "mapred-wr");
        assert_eq!(WorkloadId::ALL.len(), 5);
    }

    #[test]
    #[should_panic(expected = "cpu_ghz_s")]
    fn validate_rejects_zero_cpu() {
        DemandParams {
            cpu_ghz_s: 0.0,
            sigma: 0.0,
            cache_sensitivity: 0.0,
            cache_ws_mib: 1.0,
            io_per_req: 0.0,
            io_bytes: 0.0,
            net_bytes: 0.0,
            mem_gib_s: 0.0,
            cv: 0.5,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn validate_rejects_negative_sigma() {
        DemandParams {
            cpu_ghz_s: 0.1,
            sigma: -0.1,
            cache_sensitivity: 0.0,
            cache_ws_mib: 1.0,
            io_per_req: 0.0,
            io_bytes: 0.0,
            net_bytes: 0.0,
            mem_gib_s: 0.0,
            cv: 0.5,
        }
        .validate();
    }
}
