//! Search query modelling for `websearch`.
//!
//! Table 1 / Section 2.1: "the keywords in the queries are based on a
//! Zipf distribution of the frequency of indexed words, and the number
//! of keywords is based on observed real-world query patterns [Xie &
//! O'Hallaron]", with "25% of index terms cached in memory".
//!
//! This module provides that query structure: a keyword-count
//! distribution matching the published search-engine measurements (most
//! queries have 1-3 terms), Zipf term popularity over the 1.3 M-document
//! index vocabulary, and a per-query demand multiplier derived from how
//! many of the query's posting lists are cache-resident.

use wcs_simcore::dist::{Empirical, Zipf};
use wcs_simcore::SimRng;

/// A generated search query.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Query {
    /// The term ranks (1 = most popular indexed word).
    pub term_ranks: Vec<u32>,
    /// How many of the terms' posting lists were memory-resident.
    pub cached_terms: u32,
}

impl Query {
    /// Number of terms.
    pub fn len(&self) -> usize {
        self.term_ranks.len()
    }

    /// True for the (never generated) empty query.
    pub fn is_empty(&self) -> bool {
        self.term_ranks.is_empty()
    }

    /// Fraction of terms that missed the in-memory index cache and need
    /// disk posting-list reads.
    pub fn disk_fraction(&self) -> f64 {
        1.0 - self.cached_terms as f64 / self.term_ranks.len() as f64
    }
}

/// Generator of websearch queries.
///
/// # Example
/// ```
/// use wcs_workloads::queries::QueryGen;
/// use wcs_simcore::SimRng;
/// let mut gen = QueryGen::paper_default();
/// let q = gen.next_query(&mut SimRng::seed_from(1));
/// assert!((1..=6).contains(&q.len()));
/// ```
#[derive(Debug)]
pub struct QueryGen {
    term_popularity: Zipf,
    keyword_count: Empirical,
    cached_fraction: f64,
}

impl QueryGen {
    /// The paper's configuration: Zipf term popularity over a 200k-word
    /// vocabulary, the Xie & O'Hallaron keyword-count mix (1-6 terms,
    /// mean ~2.4), and 25% of index terms cached.
    pub fn paper_default() -> Self {
        QueryGen::new(200_000, 1.0, 0.25)
    }

    /// Creates a generator over `vocab` indexed words with Zipf skew `s`
    /// and the given cached-term fraction.
    ///
    /// # Panics
    /// Panics if `vocab` is zero or `cached_fraction` outside `[0, 1]`.
    pub fn new(vocab: usize, s: f64, cached_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&cached_fraction),
            "cache fraction in [0,1]"
        );
        let term_popularity = Zipf::new(vocab, s).expect("validated vocabulary");
        // Keyword-count distribution after web query-log studies:
        // 1 term 25%, 2 terms 33%, 3 terms 22%, 4 terms 12%, 5 terms 5%,
        // 6 terms 3%.
        let keyword_count = Empirical::new(&[
            (1.0, 25.0),
            (2.0, 33.0),
            (3.0, 22.0),
            (4.0, 12.0),
            (5.0, 5.0),
            (6.0, 3.0),
        ])
        .expect("static mix is valid");
        QueryGen {
            term_popularity,
            keyword_count,
            cached_fraction,
        }
    }

    /// Generates the next query. Popular terms are more likely to be
    /// cached: term ranks in the top `cached_fraction` of the vocabulary
    /// hit memory (the paper caches the hottest 25% of index terms).
    pub fn next_query(&mut self, rng: &mut SimRng) -> Query {
        use wcs_simcore::dist::Distribution;
        let n = self.keyword_count.sample(rng) as usize;
        let cutoff = (self.term_popularity.len() as f64 * self.cached_fraction) as u32;
        let mut term_ranks = Vec::with_capacity(n);
        let mut cached = 0;
        for _ in 0..n {
            let rank = self.term_popularity.sample_rank(rng) as u32;
            if rank <= cutoff {
                cached += 1;
            }
            term_ranks.push(rank);
        }
        Query {
            term_ranks,
            cached_terms: cached,
        }
    }

    /// Long-run mean number of terms per query.
    pub fn mean_terms(&self) -> f64 {
        use wcs_simcore::dist::Distribution;
        self.keyword_count.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_sizes_match_mix() {
        let mut gen = QueryGen::paper_default();
        let mut rng = SimRng::seed_from(3);
        let n = 20_000;
        let mut total = 0usize;
        let mut ones = 0usize;
        for _ in 0..n {
            let q = gen.next_query(&mut rng);
            assert!((1..=6).contains(&q.len()));
            total += q.len();
            if q.len() == 1 {
                ones += 1;
            }
        }
        let mean = total as f64 / n as f64;
        assert!((mean - gen.mean_terms()).abs() < 0.05, "mean terms {mean}");
        let f1 = ones as f64 / n as f64;
        assert!((f1 - 0.25).abs() < 0.02, "single-term fraction {f1}");
    }

    #[test]
    fn zipf_makes_most_lookups_cached() {
        // With Zipf(1.0) popularity and the hottest 25% of terms cached,
        // well over half of term lookups hit memory — the design point
        // that lets the paper cache only 25% of the index.
        let mut gen = QueryGen::paper_default();
        let mut rng = SimRng::seed_from(5);
        let mut cached = 0u64;
        let mut terms = 0u64;
        for _ in 0..20_000 {
            let q = gen.next_query(&mut rng);
            cached += u64::from(q.cached_terms);
            terms += q.len() as u64;
        }
        let hit = cached as f64 / terms as f64;
        assert!(hit > 0.6, "cached-term fraction {hit}");
    }

    #[test]
    fn disk_fraction_complements_cache() {
        let q = Query {
            term_ranks: vec![1, 2, 100_000],
            cached_terms: 2,
        };
        assert!((q.disk_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn no_caching_means_all_disk() {
        let mut gen = QueryGen::new(50_000, 1.0, 0.0);
        let mut rng = SimRng::seed_from(7);
        for _ in 0..100 {
            let q = gen.next_query(&mut rng);
            assert_eq!(q.cached_terms, 0);
            assert!((q.disk_fraction() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "cache fraction")]
    fn rejects_bad_cache_fraction() {
        QueryGen::new(100, 1.0, 1.5);
    }
}
