//! Rich-media modelling for `ytube`.
//!
//! Section 2.1: the benchmark is "a heavily modified SPECweb2005 Support
//! workload driven with YouTube traffic characteristics observed in edge
//! servers by [Gill et al.]", with pages, files, and download sizes
//! modified "to reflect the distributions seen in [Gill et al.]" and
//! Zipf usage patterns.
//!
//! This module provides the video catalog and session structure: Zipf
//! video popularity, a log-normal video-size distribution with a heavy
//! tail (Gill et al. report a ~10 MB mean with large variance), and
//! streaming sessions that fetch a video in chunks with early abandonment
//! (most viewers do not finish a video).

use wcs_simcore::dist::{Distribution, LogNormal, Zipf};
use wcs_simcore::SimRng;

/// A video-catalog model.
#[derive(Debug)]
pub struct VideoCatalog {
    popularity: Zipf,
    sizes_mb: Vec<f32>,
}

impl VideoCatalog {
    /// The Gill et al.-style catalog: `n` videos, Zipf(0.9) popularity,
    /// log-normal sizes with mean `mean_mb` and cv 1.5.
    ///
    /// # Panics
    /// Panics if `n` is zero or `mean_mb` is not positive.
    pub fn new(n: usize, zipf_s: f64, mean_mb: f64, seed: u64) -> Self {
        assert!(n > 0, "catalog needs videos");
        assert!(mean_mb.is_finite() && mean_mb > 0.0);
        let popularity = Zipf::new(n, zipf_s).expect("validated parameters");
        let size_dist = LogNormal::from_mean_cv(mean_mb, 1.5).expect("valid cv");
        let mut rng = SimRng::seed_from(seed);
        let sizes_mb = (0..n).map(|_| size_dist.sample(&mut rng) as f32).collect();
        VideoCatalog {
            popularity,
            sizes_mb,
        }
    }

    /// A catalog matching the paper's edge-server study: 100k videos,
    /// Zipf(0.9), ~10 MB mean size.
    pub fn edge_server_2007() -> Self {
        VideoCatalog::new(100_000, 0.9, 10.0, 0x71BE)
    }

    /// Number of videos.
    pub fn len(&self) -> usize {
        self.sizes_mb.len()
    }

    /// True for an empty catalog (never constructed).
    pub fn is_empty(&self) -> bool {
        self.sizes_mb.is_empty()
    }

    /// Picks a video by popularity; returns `(video id, size in MB)`.
    pub fn sample_video(&self, rng: &mut SimRng) -> (usize, f64) {
        let id = self.popularity.sample_rank(rng) - 1;
        (id, f64::from(self.sizes_mb[id]))
    }

    /// Mean video size over the catalog, MB.
    pub fn mean_size_mb(&self) -> f64 {
        self.sizes_mb.iter().map(|&s| f64::from(s)).sum::<f64>() / self.len() as f64
    }
}

/// One viewing session: a video streamed in fixed-size chunks, possibly
/// abandoned early.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ViewSession {
    /// Which video.
    pub video: usize,
    /// Total video size, MB.
    pub video_mb: f64,
    /// How much the viewer actually watched, MB.
    pub streamed_mb: f64,
    /// Number of chunk requests issued.
    pub chunks: u32,
}

/// Streaming-session generator over a catalog.
#[derive(Debug)]
pub struct SessionStream<'a> {
    catalog: &'a VideoCatalog,
    chunk_mb: f64,
    completion_mean: f64,
}

impl<'a> SessionStream<'a> {
    /// Sessions that stream `chunk_mb` chunks and watch a Beta-ish
    /// fraction of the video with the given mean completion (Gill et al.
    /// observed most sessions abandon early; ~0.6 mean completion).
    ///
    /// # Panics
    /// Panics unless `chunk_mb > 0` and `completion_mean` in `(0, 1]`.
    pub fn new(catalog: &'a VideoCatalog, chunk_mb: f64, completion_mean: f64) -> Self {
        assert!(
            chunk_mb.is_finite() && chunk_mb > 0.0,
            "chunk size must be positive"
        );
        assert!(
            completion_mean > 0.0 && completion_mean <= 1.0,
            "completion in (0, 1]"
        );
        SessionStream {
            catalog,
            chunk_mb,
            completion_mean,
        }
    }

    /// Generates one viewing session.
    pub fn next_session(&self, rng: &mut SimRng) -> ViewSession {
        let (video, video_mb) = self.catalog.sample_video(rng);
        // Completion fraction: mixture of finishers and early quitters
        // with the configured mean.
        let p_finish = (2.0 * self.completion_mean - 1.0).clamp(0.05, 0.95);
        let fraction = if rng.chance(p_finish) {
            1.0
        } else {
            let residual_mean =
                ((self.completion_mean - p_finish) / (1.0 - p_finish)).clamp(0.05, 1.0);
            (rng.uniform() * 2.0 * residual_mean).min(1.0)
        };
        let streamed_mb = video_mb * fraction;
        let chunks = (streamed_mb / self.chunk_mb).ceil().max(1.0) as u32;
        ViewSession {
            video,
            video_mb,
            streamed_mb,
            chunks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_sizes_have_configured_mean() {
        let c = VideoCatalog::new(50_000, 0.9, 10.0, 3);
        let m = c.mean_size_mb();
        assert!((m - 10.0).abs() < 0.6, "mean size {m} MB");
    }

    #[test]
    fn popular_videos_dominate_sessions() {
        let c = VideoCatalog::edge_server_2007();
        let mut rng = SimRng::seed_from(5);
        let mut top_hits = 0;
        let n = 20_000;
        for _ in 0..n {
            let (id, _) = c.sample_video(&mut rng);
            if id < c.len() / 100 {
                top_hits += 1;
            }
        }
        // Top 1% of a Zipf(0.9) catalog draws a large share of views.
        let share = top_hits as f64 / n as f64;
        assert!(share > 0.15, "top-1% share {share}");
    }

    #[test]
    fn sessions_stream_at_most_the_video() {
        let c = VideoCatalog::edge_server_2007();
        let s = SessionStream::new(&c, 0.7, 0.6);
        let mut rng = SimRng::seed_from(7);
        for _ in 0..2000 {
            let v = s.next_session(&mut rng);
            assert!(v.streamed_mb <= v.video_mb + 1e-9);
            assert!(v.chunks >= 1);
            let max_chunks = (v.streamed_mb / 0.7).ceil() as u32;
            assert!(v.chunks <= max_chunks.max(1));
        }
    }

    #[test]
    fn mean_completion_tracks_config() {
        let c = VideoCatalog::edge_server_2007();
        let s = SessionStream::new(&c, 0.7, 0.6);
        let mut rng = SimRng::seed_from(9);
        let n = 30_000;
        let mut total = 0.0;
        for _ in 0..n {
            let v = s.next_session(&mut rng);
            total += v.streamed_mb / v.video_mb;
        }
        let mean = total / n as f64;
        assert!((mean - 0.6).abs() < 0.08, "mean completion {mean}");
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn rejects_zero_chunk() {
        let c = VideoCatalog::new(10, 0.9, 1.0, 1);
        SessionStream::new(&c, 0.0, 0.5);
    }
}
