//! Plain-text trace interchange: export and import the synthetic memory
//! and disk traces so external tools (or future sessions with real
//! traces) can drive the simulators.
//!
//! Format, one record per line:
//!
//! ```text
//! # wcs-memtrace v1
//! R 12345        <- read of page 12345
//! W 678          <- write of page 678
//! ```
//!
//! ```text
//! # wcs-disktrace v1
//! R 4096 16      <- read of 16 blocks starting at block 4096
//! W 0 256        <- write of 256 blocks starting at block 0
//! ```

use std::io::{self, BufRead, Write};

use crate::disktrace::BlockAccess;
use crate::memtrace::PageAccess;

const MEM_HEADER: &str = "# wcs-memtrace v1";
const DISK_HEADER: &str = "# wcs-disktrace v1";

/// Error reading a trace file.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not in the expected format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        what: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Parse { line, what } => {
                write!(f, "trace parse error at line {line}: {what}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Writes a memory trace.
///
/// # Errors
/// Propagates I/O failures from the writer.
pub fn write_memtrace<W: Write>(mut w: W, trace: &[PageAccess]) -> Result<(), TraceError> {
    writeln!(w, "{MEM_HEADER}")?;
    for a in trace {
        writeln!(w, "{} {}", if a.write { 'W' } else { 'R' }, a.page)?;
    }
    Ok(())
}

/// Reads a memory trace.
///
/// # Errors
/// Fails on I/O errors, a missing header, or malformed records.
pub fn read_memtrace<R: BufRead>(r: R) -> Result<Vec<PageAccess>, TraceError> {
    let mut lines = r.lines();
    let header = lines.next().transpose()?.unwrap_or_default();
    if header.trim() != MEM_HEADER {
        return Err(TraceError::Parse {
            line: 1,
            what: format!("expected header {MEM_HEADER:?}, found {header:?}"),
        });
    }
    let mut out = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let op = parts.next().unwrap_or("");
        let write = match op {
            "R" => false,
            "W" => true,
            other => {
                return Err(TraceError::Parse {
                    line: i + 2,
                    what: format!("unknown op {other:?}"),
                })
            }
        };
        let page = parts
            .next()
            .and_then(|p| p.parse::<u64>().ok())
            .ok_or_else(|| TraceError::Parse {
                line: i + 2,
                what: "missing or invalid page number".into(),
            })?;
        out.push(PageAccess { page, write });
    }
    Ok(out)
}

/// Writes a disk trace.
///
/// # Errors
/// Propagates I/O failures from the writer.
pub fn write_disktrace<W: Write>(mut w: W, trace: &[BlockAccess]) -> Result<(), TraceError> {
    writeln!(w, "{DISK_HEADER}")?;
    for a in trace {
        writeln!(
            w,
            "{} {} {}",
            if a.write { 'W' } else { 'R' },
            a.block,
            a.blocks
        )?;
    }
    Ok(())
}

/// Reads a disk trace.
///
/// # Errors
/// Fails on I/O errors, a missing header, or malformed records.
pub fn read_disktrace<R: BufRead>(r: R) -> Result<Vec<BlockAccess>, TraceError> {
    let mut lines = r.lines();
    let header = lines.next().transpose()?.unwrap_or_default();
    if header.trim() != DISK_HEADER {
        return Err(TraceError::Parse {
            line: 1,
            what: format!("expected header {DISK_HEADER:?}, found {header:?}"),
        });
    }
    let mut out = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let op = parts.next().unwrap_or("");
        let write = match op {
            "R" => false,
            "W" => true,
            other => {
                return Err(TraceError::Parse {
                    line: i + 2,
                    what: format!("unknown op {other:?}"),
                })
            }
        };
        let block = parts.next().and_then(|p| p.parse::<u64>().ok());
        let blocks = parts.next().and_then(|p| p.parse::<u32>().ok());
        match (block, blocks) {
            (Some(block), Some(blocks)) if blocks > 0 => out.push(BlockAccess {
                block,
                blocks,
                write,
            }),
            _ => {
                return Err(TraceError::Parse {
                    line: i + 2,
                    what: "expected `<op> <block> <blocks>`".into(),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disktrace::{params_for as disk_params, DiskTraceGen};
    use crate::memtrace::{params_for as mem_params, MemTraceGen};
    use crate::WorkloadId;

    #[test]
    fn memtrace_round_trips() {
        let mut gen = MemTraceGen::new(mem_params(WorkloadId::Websearch), 5);
        let trace = gen.take_vec(5_000);
        let mut buf = Vec::new();
        write_memtrace(&mut buf, &trace).unwrap();
        let back = read_memtrace(buf.as_slice()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn disktrace_round_trips() {
        let mut gen = DiskTraceGen::new(disk_params(WorkloadId::Ytube), 7);
        let trace = gen.take_vec(3_000);
        let mut buf = Vec::new();
        write_disktrace(&mut buf, &trace).unwrap();
        let back = read_disktrace(buf.as_slice()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn rejects_wrong_header() {
        let err = read_memtrace("# wrong\nR 1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("header"));
        let err = read_disktrace("# wcs-memtrace v1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn rejects_malformed_records() {
        let err = read_memtrace("# wcs-memtrace v1\nX 5\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown op"));
        let err = read_memtrace("# wcs-memtrace v1\nR notanumber\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"));
        let err = read_disktrace("# wcs-disktrace v1\nR 5\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# wcs-memtrace v1\n\n# a comment\nR 7\nW 9\n";
        let trace = read_memtrace(text.as_bytes()).unwrap();
        assert_eq!(trace.len(), 2);
        assert!(!trace[0].write);
        assert!(trace[1].write);
    }
}
