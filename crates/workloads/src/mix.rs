//! Heterogeneous workload mixes.
//!
//! A real warehouse fleet serves all of its services at once; the
//! paper's HMean row aggregates equally across the suite. A
//! [`WorkloadMix`] generalizes that: weighted service shares, weighted
//! aggregation of per-workload performance (weighted harmonic mean, the
//! consistent aggregate for rate metrics), and fleet partitioning —
//! how many of `n` servers each service needs under the mix.

use std::collections::BTreeMap;

use crate::WorkloadId;

/// A weighted mix over the benchmark suite.
///
/// # Example
/// ```
/// use wcs_workloads::{mix::WorkloadMix, WorkloadId};
/// let mix = WorkloadMix::uniform();
/// assert!((mix.weight(WorkloadId::Ytube) - 0.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMix {
    weights: BTreeMap<WorkloadId, f64>,
}

impl WorkloadMix {
    /// Equal weights across the suite (the paper's HMean).
    pub fn uniform() -> Self {
        let w = 1.0 / WorkloadId::ALL.len() as f64;
        WorkloadMix {
            weights: WorkloadId::ALL.iter().map(|&id| (id, w)).collect(),
        }
    }

    /// A search-heavy portal mix: mostly websearch with supporting
    /// services.
    pub fn search_portal() -> Self {
        WorkloadMix::new(&[
            (WorkloadId::Websearch, 0.55),
            (WorkloadId::Webmail, 0.15),
            (WorkloadId::Ytube, 0.10),
            (WorkloadId::MapredWc, 0.12),
            (WorkloadId::MapredWr, 0.08),
        ])
    }

    /// A media-heavy mix (video front and center).
    pub fn media_site() -> Self {
        WorkloadMix::new(&[
            (WorkloadId::Websearch, 0.10),
            (WorkloadId::Webmail, 0.05),
            (WorkloadId::Ytube, 0.65),
            (WorkloadId::MapredWc, 0.10),
            (WorkloadId::MapredWr, 0.10),
        ])
    }

    /// Creates a mix from `(workload, weight)` pairs; weights are
    /// normalized.
    ///
    /// # Panics
    /// Panics if the list is empty, a weight is non-positive, or a
    /// workload repeats.
    pub fn new(entries: &[(WorkloadId, f64)]) -> Self {
        assert!(!entries.is_empty(), "mix needs entries");
        let mut weights = BTreeMap::new();
        let mut total = 0.0;
        for &(id, w) in entries {
            assert!(w.is_finite() && w > 0.0, "weights must be positive");
            assert!(
                weights.insert(id, w).is_none(),
                "workload {id} repeated in mix"
            );
            total += w;
        }
        for w in weights.values_mut() {
            *w /= total;
        }
        WorkloadMix { weights }
    }

    /// The normalized weight of a workload (0 when absent).
    pub fn weight(&self, id: WorkloadId) -> f64 {
        self.weights.get(&id).copied().unwrap_or(0.0)
    }

    /// Workloads present in the mix.
    pub fn members(&self) -> impl Iterator<Item = (WorkloadId, f64)> + '_ {
        self.weights.iter().map(|(&id, &w)| (id, w))
    }

    /// Weighted harmonic mean of per-workload rates: the consistent
    /// fleet-level aggregate ("what rate does a proportionally shared
    /// server deliver"). Returns `None` if any member's rate is missing
    /// or non-positive.
    pub fn aggregate_perf(&self, perf: &BTreeMap<WorkloadId, f64>) -> Option<f64> {
        let mut acc = 0.0;
        for (id, w) in self.members() {
            let &p = perf.get(&id)?;
            if !(p.is_finite() && p > 0.0) {
                return None;
            }
            acc += w / p;
        }
        Some(1.0 / acc)
    }

    /// Splits a fleet of `servers` so each service's share of capacity
    /// matches its weight; returns per-workload server counts (rounded,
    /// sum preserved).
    ///
    /// # Panics
    /// Panics if `servers` is zero.
    pub fn partition_fleet(&self, servers: u32) -> BTreeMap<WorkloadId, u32> {
        assert!(servers > 0, "fleet needs servers");
        let mut out = BTreeMap::new();
        let mut remaining = servers;
        let members: Vec<(WorkloadId, f64)> = self.members().collect();
        for (i, (id, w)) in members.iter().enumerate() {
            let n = if i + 1 == members.len() {
                remaining
            } else {
                // Rounding may overshoot; never hand out more than is
                // left.
                (((servers as f64) * w).round() as u32).min(remaining)
            };
            remaining -= n;
            out.insert(*id, n);
        }
        out
    }
}

impl Default for WorkloadMix {
    fn default() -> Self {
        Self::uniform()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perf_map(vals: [f64; 5]) -> BTreeMap<WorkloadId, f64> {
        WorkloadId::ALL.iter().copied().zip(vals).collect()
    }

    #[test]
    fn uniform_matches_plain_hmean() {
        let mix = WorkloadMix::uniform();
        let perf = perf_map([1.0, 2.0, 4.0, 4.0, 4.0]);
        let got = mix.aggregate_perf(&perf).unwrap();
        let hmean = 5.0 / (1.0 + 0.5 + 0.25 + 0.25 + 0.25);
        assert!((got - hmean).abs() < 1e-12);
    }

    #[test]
    fn weights_normalize() {
        let mix = WorkloadMix::new(&[(WorkloadId::Websearch, 3.0), (WorkloadId::Ytube, 1.0)]);
        assert!((mix.weight(WorkloadId::Websearch) - 0.75).abs() < 1e-12);
        assert_eq!(mix.weight(WorkloadId::Webmail), 0.0);
    }

    #[test]
    fn heavier_weight_pulls_aggregate_toward_member() {
        let perf = perf_map([10.0, 1.0, 1.0, 1.0, 1.0]);
        let uniform = WorkloadMix::uniform().aggregate_perf(&perf).unwrap();
        let searchy = WorkloadMix::search_portal().aggregate_perf(&perf).unwrap();
        assert!(searchy > uniform, "{searchy} vs {uniform}");
    }

    #[test]
    fn fleet_partition_sums() {
        for servers in [7u32, 40, 1000] {
            let parts = WorkloadMix::media_site().partition_fleet(servers);
            let total: u32 = parts.values().sum();
            assert_eq!(total, servers);
        }
        let parts = WorkloadMix::media_site().partition_fleet(100);
        assert!(parts[&WorkloadId::Ytube] >= 60);
    }

    #[test]
    fn missing_member_is_none() {
        let mut perf = perf_map([1.0; 5]);
        perf.remove(&WorkloadId::Ytube);
        assert!(WorkloadMix::uniform().aggregate_perf(&perf).is_none());
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn rejects_duplicates() {
        WorkloadMix::new(&[(WorkloadId::Ytube, 1.0), (WorkloadId::Ytube, 2.0)]);
    }
}
