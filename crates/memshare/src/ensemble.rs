//! End-to-end ensemble simulation: several servers sharing one memory
//! blade, with allocation enforcement, per-server two-level caching, and
//! link contention — the pieces of Section 3.4 operating together.

use wcs_simcore::{ConfigError, ThreadPool};
use wcs_workloads::memtrace::{params_for, MemTraceGen};
use wcs_workloads::WorkloadId;

use crate::contention::SharedLink;
use crate::directory::{BladeDirectory, ServerId};
use crate::link::RemoteLink;
use crate::policy::PolicyKind;
use crate::slowdown::BASELINE_2GIB_PAGES;
use crate::twolevel::TwoLevelSim;

/// Configuration of one server attached to the blade.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Which workload's trace this server replays.
    pub workload: WorkloadId,
    /// Local memory as a fraction of the 2 GiB trace baseline.
    pub local_fraction: f64,
    /// Blade allocation in pages.
    pub blade_pages: u64,
}

impl ServerConfig {
    /// The paper's operating point for a workload: 25% local, the rest
    /// of the 2 GiB baseline on the blade.
    pub fn paper_default(workload: WorkloadId) -> Self {
        ServerConfig {
            workload,
            local_fraction: 0.25,
            blade_pages: (BASELINE_2GIB_PAGES as f64 * 0.75) as u64,
        }
    }
}

/// Per-server outcome of an ensemble run.
#[derive(Debug, Clone, Copy)]
pub struct ServerOutcome {
    /// The server.
    pub server: ServerId,
    /// Its workload.
    pub workload: WorkloadId,
    /// Steady-state miss ratio to the blade.
    pub miss_ratio: f64,
    /// Remote faults per second of CPU work.
    pub faults_per_cpu_sec: f64,
    /// Slowdown including link contention.
    pub slowdown: f64,
    /// Blade pages the server ended up holding.
    pub blade_pages_used: u64,
}

/// Result of an ensemble run.
#[derive(Debug, Clone)]
pub struct EnsembleOutcome {
    /// Per-server outcomes.
    pub servers: Vec<ServerOutcome>,
    /// Utilization of the shared PCIe link.
    pub link_utilization: f64,
    /// Mean queueing delay the link added per fault, seconds.
    pub link_queueing_secs: f64,
}

impl EnsembleOutcome {
    /// The worst per-server slowdown.
    pub fn worst_slowdown(&self) -> f64 {
        self.servers.iter().map(|s| s.slowdown).fold(0.0, f64::max)
    }
}

/// Simulates `configs` servers sharing one blade over `link`.
///
/// Each server replays its workload's synthetic trace through its own
/// two-level hierarchy; its faults map pages through the blade directory
/// (allocation-enforced); the aggregate fault rate loads the shared link
/// whose queueing delay feeds back into every server's slowdown.
///
/// # Errors
/// Rejects an empty `configs` and any server whose `local_fraction` is
/// outside `(0, 1]`.
pub fn run_ensemble(
    configs: &[ServerConfig],
    link: RemoteLink,
    policy: PolicyKind,
    accesses_per_server: u64,
    seed: u64,
) -> Result<EnsembleOutcome, ConfigError> {
    run_ensemble_pooled(
        configs,
        link,
        policy,
        accesses_per_server,
        seed,
        ThreadPool::serial(),
    )
}

/// [`run_ensemble`] with the per-server trace replays fanned out over
/// `pool`.
///
/// Each server's replay is seeded purely from `(seed, server index)`, so
/// the outcome is bit-identical at any thread count — `pool` only decides
/// wall-clock time. The shared blade directory is exercised serially
/// after the replays (its page maps are order-dependent shared state).
///
/// # Errors
/// Same contract as [`run_ensemble`].
pub fn run_ensemble_pooled(
    configs: &[ServerConfig],
    link: RemoteLink,
    policy: PolicyKind,
    accesses_per_server: u64,
    seed: u64,
    pool: ThreadPool,
) -> Result<EnsembleOutcome, ConfigError> {
    if configs.is_empty() {
        return Err(ConfigError::Empty {
            what: "ensemble server configs",
        });
    }
    for c in configs {
        ConfigError::check_f64(
            "local_fraction",
            c.local_fraction,
            "must be in (0, 1]",
            c.local_fraction > 0.0 && c.local_fraction <= 1.0,
        )?;
    }
    let total_blade: u64 = configs.iter().map(|c| c.blade_pages).sum();
    let mut directory = BladeDirectory::new(total_blade);
    for (i, c) in configs.iter().enumerate() {
        directory
            .register(ServerId(i as u32), c.blade_pages)
            .expect("blade sized for all allocations");
    }

    // Phase 1: replay every server's trace in parallel. Each replay is
    // private state seeded from (seed, i), so the fan-out cannot change
    // any miss ratio.
    let replays = pool.par_map(configs, |i, c| {
        let params = params_for(c.workload);
        let local_pages = ((BASELINE_2GIB_PAGES as f64) * c.local_fraction) as usize;
        // Trace pages lie in [0, footprint), so the store can index them
        // densely — bit-identical to the hashed store, just faster.
        let mut sim = TwoLevelSim::with_page_universe(
            local_pages.max(1),
            policy,
            seed ^ (i as u64) << 8,
            params.footprint_pages,
        );
        let mut gen = MemTraceGen::new(params, seed ^ 0xD15C ^ i as u64);

        // Fill, then measure.
        let fill = accesses_per_server / 2;
        let _ = sim.run(&mut gen, fill);
        let stats = sim.run(&mut gen, accesses_per_server - fill);
        (stats.miss_ratio(), params.accesses_per_cpu_sec)
    });

    // Map a sample of each server's blade-resident pages through the
    // shared directory — serially, since the directory's map/unmap order
    // is shared state. (Mapping every miss would just thrash map/unmap;
    // the blade holds the page *set*, which is bounded by the
    // allocation.)
    let mut outcomes = Vec::with_capacity(configs.len());
    let mut fault_rates = Vec::with_capacity(configs.len());
    for (i, c) in configs.iter().enumerate() {
        let server = ServerId(i as u32);
        let (miss_ratio, accesses_per_cpu_sec) = replays[i];
        let sample = c.blade_pages.min(10_000);
        for v in 0..sample {
            directory
                .map_page(server, v)
                .expect("within the registered allocation");
        }
        let faults_per_cpu_sec = accesses_per_cpu_sec * miss_ratio;
        fault_rates.push(faults_per_cpu_sec);
        outcomes.push(ServerOutcome {
            server,
            workload: c.workload,
            miss_ratio,
            faults_per_cpu_sec,
            slowdown: 0.0, // filled below with contention
            blade_pages_used: directory.used_pages(server),
        });
    }

    // Phase 2: link contention from the aggregate fault rate.
    let mean_rate = fault_rates.iter().sum::<f64>() / fault_rates.len() as f64;
    let shared = SharedLink::new(link, configs.len() as u32);
    let effective = shared.effective_link(mean_rate);
    let utilization = shared.utilization(mean_rate);
    let queueing = shared.queueing_delay_secs(mean_rate);
    for o in &mut outcomes {
        o.slowdown = o.faults_per_cpu_sec * effective.fault_latency_secs();
    }

    Ok(EnsembleOutcome {
        servers: outcomes,
        link_utilization: utilization,
        link_queueing_secs: queueing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn homogeneous(n: usize, wl: WorkloadId) -> Vec<ServerConfig> {
        vec![ServerConfig::paper_default(wl); n]
    }

    #[test]
    fn small_ensemble_matches_isolated_slowdowns() {
        // With 4 servers the link is lightly loaded; per-server slowdown
        // should be close to the isolated Figure 4(b) estimate.
        let out = run_ensemble(
            &homogeneous(4, WorkloadId::Websearch),
            RemoteLink::pcie_x4(),
            PolicyKind::Random,
            1_500_000,
            7,
        )
        .unwrap();
        assert!(out.link_utilization < 0.5, "util {}", out.link_utilization);
        for s in &out.servers {
            assert!(
                (0.03..0.08).contains(&s.slowdown),
                "{}: slowdown {}",
                s.workload,
                s.slowdown
            );
        }
    }

    #[test]
    fn larger_ensembles_pay_contention() {
        let small = run_ensemble(
            &homogeneous(2, WorkloadId::Websearch),
            RemoteLink::pcie_x4(),
            PolicyKind::Random,
            800_000,
            3,
        )
        .unwrap();
        let big = run_ensemble(
            &homogeneous(12, WorkloadId::Websearch),
            RemoteLink::pcie_x4(),
            PolicyKind::Random,
            800_000,
            3,
        )
        .unwrap();
        assert!(big.link_utilization > small.link_utilization);
        assert!(big.worst_slowdown() >= small.worst_slowdown());
    }

    #[test]
    fn mixed_ensemble_isolates_light_workloads() {
        // webmail's tiny fault rate must stay nearly unaffected even
        // sharing a blade with websearch.
        let configs = vec![
            ServerConfig::paper_default(WorkloadId::Websearch),
            ServerConfig::paper_default(WorkloadId::Webmail),
            ServerConfig::paper_default(WorkloadId::Ytube),
            ServerConfig::paper_default(WorkloadId::MapredWc),
        ];
        let out = run_ensemble(
            &configs,
            RemoteLink::pcie_x4(),
            PolicyKind::Random,
            1_000_000,
            11,
        )
        .unwrap();
        let webmail = out
            .servers
            .iter()
            .find(|s| s.workload == WorkloadId::Webmail)
            .unwrap();
        assert!(
            webmail.slowdown < 0.01,
            "webmail slowdown {}",
            webmail.slowdown
        );
        // Every server stayed within its allocation.
        for s in &out.servers {
            assert!(s.blade_pages_used <= configs[0].blade_pages);
        }
    }

    #[test]
    fn cbf_helps_ensembles_too() {
        let pcie = run_ensemble(
            &homogeneous(6, WorkloadId::Websearch),
            RemoteLink::pcie_x4(),
            PolicyKind::Random,
            600_000,
            5,
        )
        .unwrap();
        let cbf = run_ensemble(
            &homogeneous(6, WorkloadId::Websearch),
            RemoteLink::pcie_x4_cbf(),
            PolicyKind::Random,
            600_000,
            5,
        )
        .unwrap();
        assert!(cbf.worst_slowdown() < pcie.worst_slowdown());
        // But the link occupancy is the same — CBF does not shrink page
        // transfers.
        assert!((cbf.link_utilization - pcie.link_utilization).abs() < 1e-9);
    }

    #[test]
    fn rejects_empty_ensemble() {
        assert!(run_ensemble(&[], RemoteLink::pcie_x4(), PolicyKind::Random, 10, 1).is_err());
    }

    #[test]
    fn pooled_run_is_bit_identical_to_serial() {
        let mut configs = homogeneous(6, WorkloadId::Websearch);
        configs.push(ServerConfig::paper_default(WorkloadId::Webmail));
        let serial =
            run_ensemble(&configs, RemoteLink::pcie_x4(), PolicyKind::Lru, 200_000, 9).unwrap();
        for threads in [2, 8] {
            let pooled = run_ensemble_pooled(
                &configs,
                RemoteLink::pcie_x4(),
                PolicyKind::Lru,
                200_000,
                9,
                ThreadPool::new(threads).unwrap(),
            )
            .unwrap();
            assert_eq!(
                format!("{serial:?}"),
                format!("{pooled:?}"),
                "{threads} threads drifted from serial"
            );
        }
    }
}
