//! Content-based page sharing across blades (Section 3.4's "other
//! optimizations": "content-based page sharing across blades [VMware
//! ESX]").
//!
//! Servers in an ensemble run near-identical software stacks, so many
//! blade-resident pages are byte-identical across servers. The blade
//! controller can hash page contents and keep one physical copy per
//! distinct content, copy-on-write. This module models the dedup scan
//! over simulated page contents and reports the ensemble-level capacity
//! saving.

use wcs_simcore::table::OpenMap;
use wcs_simcore::SimRng;

/// A synthetic model of one server's blade-resident page *contents*:
/// each page is summarized by a content hash. Pages fall into three
/// classes — shared OS/runtime images (identical across servers),
/// common zero pages, and private data.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ContentProfile {
    /// Fraction of pages holding OS / runtime / application images that
    /// are identical on every server running the same stack.
    pub common_image_fraction: f64,
    /// Fraction of zero (never-touched or freed) pages.
    pub zero_fraction: f64,
    /// Number of distinct common-image pages in the stack.
    pub image_pages: u64,
}

impl ContentProfile {
    /// A typical warehouse node: ~30% common images, ~10% zero pages
    /// (in the range VMware reported for homogeneous consolidation).
    pub fn homogeneous_stack() -> Self {
        ContentProfile {
            common_image_fraction: 0.30,
            zero_fraction: 0.10,
            image_pages: 40_000,
        }
    }

    /// Validates the profile.
    ///
    /// # Panics
    /// Panics if the fractions are out of range or overlap past 1.0.
    pub fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.common_image_fraction));
        assert!((0.0..=1.0).contains(&self.zero_fraction));
        assert!(
            self.common_image_fraction + self.zero_fraction <= 1.0,
            "fractions overlap"
        );
        assert!(self.image_pages > 0);
    }

    /// Generates the content-hash for one page of one server.
    fn page_content(&self, rng: &mut SimRng, server: u32, page: u64) -> u64 {
        let u = rng.uniform();
        if u < self.zero_fraction {
            0 // the zero page
        } else if u < self.zero_fraction + self.common_image_fraction {
            // A page of the shared image: same hash on every server.
            1 + (page % self.image_pages)
        } else {
            // Private data: unique per (server, page).
            (u64::from(server) << 40) | (page & 0xFF_FFFF_FFFF) | (1 << 63)
        }
    }
}

/// Result of a dedup scan across an ensemble's blade pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DedupResult {
    /// Logical pages stored before sharing.
    pub logical_pages: u64,
    /// Physical pages needed after sharing.
    pub physical_pages: u64,
}

impl DedupResult {
    /// Fraction of blade capacity saved.
    pub fn saving(&self) -> f64 {
        if self.logical_pages == 0 {
            0.0
        } else {
            1.0 - self.physical_pages as f64 / self.logical_pages as f64
        }
    }
}

/// Scans `servers` x `pages_per_server` simulated blade pages and
/// deduplicates identical content (one physical copy per distinct hash).
///
/// # Panics
/// Panics if the profile is invalid or either count is zero.
pub fn dedup_scan(
    profile: &ContentProfile,
    servers: u32,
    pages_per_server: u64,
    seed: u64,
) -> DedupResult {
    profile.validate();
    assert!(servers > 0 && pages_per_server > 0, "need pages to scan");
    let mut rng = SimRng::seed_from(seed);
    let mut distinct: OpenMap<u64, u64> = OpenMap::new();
    for server in 0..servers {
        for page in 0..pages_per_server {
            let content = profile.page_content(&mut rng, server, page);
            match distinct.get_mut(&content) {
                Some(copies) => *copies += 1,
                None => {
                    distinct.insert(content, 1);
                }
            }
        }
    }
    DedupResult {
        logical_pages: u64::from(servers) * pages_per_server,
        physical_pages: distinct.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharing_grows_with_ensemble_size() {
        let p = ContentProfile::homogeneous_stack();
        let one = dedup_scan(&p, 1, 50_000, 1);
        let sixteen = dedup_scan(&p, 16, 50_000, 1);
        assert!(
            sixteen.saving() > one.saving() + 0.1,
            "1 server {:.3} vs 16 servers {:.3}",
            one.saving(),
            sixteen.saving()
        );
    }

    #[test]
    fn saving_in_plausible_range_for_homogeneous_stack() {
        let p = ContentProfile::homogeneous_stack();
        let r = dedup_scan(&p, 16, 50_000, 2);
        // Zero pages + shared images across 16 servers: expect roughly
        // the zero+image fraction to collapse.
        assert!(
            (0.25..=0.55).contains(&r.saving()),
            "saving {:.3}",
            r.saving()
        );
    }

    #[test]
    fn no_common_content_no_saving() {
        let p = ContentProfile {
            common_image_fraction: 0.0,
            zero_fraction: 0.0,
            image_pages: 1,
        };
        let r = dedup_scan(&p, 4, 10_000, 3);
        assert_eq!(r.physical_pages, r.logical_pages);
        assert_eq!(r.saving(), 0.0);
    }

    #[test]
    fn deterministic() {
        let p = ContentProfile::homogeneous_stack();
        let a = dedup_scan(&p, 4, 10_000, 7);
        let b = dedup_scan(&p, 4, 10_000, 7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn rejects_overlapping_fractions() {
        ContentProfile {
            common_image_fraction: 0.8,
            zero_fraction: 0.4,
            image_pages: 10,
        }
        .validate();
    }
}
