//! Static and dynamic capacity provisioning (Figure 4(c)).
//!
//! Both schemes keep 25% of the baseline memory local:
//!
//! * **static partitioning** keeps the same total DRAM as the baseline,
//!   with the remaining 75% on the blade;
//! * **dynamic provisioning** exploits ensemble-level statistical
//!   multiplexing: 20% of blades run on local memory alone, so the total
//!   system memory is only 85% of baseline (25% local + 60% remote).
//!
//! The paper assumes a uniform 2% slowdown for both schemes when
//! computing Figure 4(c).

use wcs_platforms::{BomItem, Component, Platform};

use crate::blade::BladeModel;

/// A memory-provisioning scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Provisioning {
    /// Scheme name.
    pub name: &'static str,
    /// Local memory as a fraction of baseline capacity.
    pub local_fraction: f64,
    /// Remote (blade) memory as a fraction of baseline capacity.
    pub remote_fraction: f64,
    /// Assumed uniform slowdown (the paper uses 0.02).
    pub assumed_slowdown: f64,
}

impl Provisioning {
    /// Static partitioning: 25% local + 75% remote = 100% of baseline.
    pub fn static_partitioning() -> Self {
        Provisioning {
            name: "static",
            local_fraction: 0.25,
            remote_fraction: 0.75,
            assumed_slowdown: 0.02,
        }
    }

    /// Dynamic provisioning: 25% local + 60% remote = 85% of baseline.
    pub fn dynamic_provisioning() -> Self {
        Provisioning {
            name: "dynamic",
            local_fraction: 0.25,
            remote_fraction: 0.60,
            assumed_slowdown: 0.02,
        }
    }

    /// Applies the scheme to a platform: shrinks the local memory line
    /// and adds a memory-blade line (remote devices + controller share).
    /// Returns the modified platform; its performance should be scaled by
    /// `1 / (1 + assumed_slowdown)`.
    pub fn apply(&self, platform: &Platform, blade: &BladeModel) -> Platform {
        let mem_cost = platform.component_cost(Component::Memory);
        let mem_power = platform.component_power(Component::Memory);
        let local = BomItem::new(
            Component::Memory,
            mem_cost * self.local_fraction,
            mem_power * self.local_fraction,
        );
        let remote = BomItem::new(
            Component::MemoryBlade,
            blade.remote_memory_cost_usd(mem_cost, self.remote_fraction)
                + blade.controller_cost_usd,
            blade.remote_memory_power_w(mem_power, self.remote_fraction) + blade.controller_power_w,
        );
        let mut p = platform.with_component(local).with_component(remote);
        p.name = format!("{}+memblade-{}", platform.name, self.name);
        // The effective memory capacity visible to software is unchanged
        // (local + blade allocation), so `p.memory` keeps its capacity.
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcs_platforms::{catalog, PlatformId};
    use wcs_tco::{Efficiency, TcoModel};

    fn fig4c(scheme: Provisioning) -> (f64, f64, f64) {
        // Relative Perf/Inf-$, Perf/W, Perf/TCO-$ vs the emb1 baseline.
        let base_platform = catalog::platform(PlatformId::Emb1);
        let modified = scheme.apply(&base_platform, &BladeModel::paper_default());
        let model = TcoModel::paper_default();
        let base = Efficiency::new(1.0, model.server_tco(&base_platform));
        let new = Efficiency::new(
            1.0 / (1.0 + scheme.assumed_slowdown),
            model.server_tco(&modified),
        );
        let rel = new.relative_to(&base);
        (rel.perf_per_inf, rel.perf_per_watt, rel.perf_per_tco)
    }

    /// Figure 4(c), static row: Perf/Inf-$ 102%, Perf/W 116%,
    /// Perf/TCO-$ 108%.
    #[test]
    fn figure4c_static() {
        let (inf, watt, tco) = fig4c(Provisioning::static_partitioning());
        assert!((inf - 1.02).abs() < 0.03, "Perf/Inf-$ {inf}");
        assert!((watt - 1.16).abs() < 0.05, "Perf/W {watt}");
        assert!((tco - 1.08).abs() < 0.04, "Perf/TCO-$ {tco}");
    }

    /// Figure 4(c), dynamic row: Perf/Inf-$ 106%, Perf/W 116%,
    /// Perf/TCO-$ 111%.
    #[test]
    fn figure4c_dynamic() {
        let (inf, watt, tco) = fig4c(Provisioning::dynamic_provisioning());
        assert!((inf - 1.06).abs() < 0.03, "Perf/Inf-$ {inf}");
        assert!((watt - 1.16).abs() < 0.05, "Perf/W {watt}");
        assert!((tco - 1.11).abs() < 0.04, "Perf/TCO-$ {tco}");
    }

    #[test]
    fn dynamic_cheaper_than_static() {
        let blade = BladeModel::paper_default();
        let p = catalog::platform(PlatformId::Emb1);
        let s = Provisioning::static_partitioning().apply(&p, &blade);
        let d = Provisioning::dynamic_provisioning().apply(&p, &blade);
        assert!(d.hardware_cost_usd() < s.hardware_cost_usd());
        assert!(s.hardware_cost_usd() < p.hardware_cost_usd());
    }

    #[test]
    fn memory_power_drops_substantially() {
        let blade = BladeModel::paper_default();
        let p = catalog::platform(PlatformId::Emb1);
        let s = Provisioning::static_partitioning().apply(&p, &blade);
        let before = p.component_power(Component::Memory);
        let after =
            s.component_power(Component::Memory) + s.component_power(Component::MemoryBlade);
        assert!(after < before * 0.5, "{after} vs {before}");
    }

    #[test]
    fn names_are_tagged() {
        let blade = BladeModel::paper_default();
        let p = catalog::platform(PlatformId::Emb1);
        assert!(Provisioning::static_partitioning()
            .apply(&p, &blade)
            .name
            .contains("static"));
    }
}
