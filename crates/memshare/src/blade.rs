//! Memory-blade cost and power model.

use wcs_platforms::MemoryTech;

/// Cost/power constants for the shared memory blade (Section 3.4's cost
/// evaluation).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BladeModel {
    /// Remote DRAM price relative to the server's local devices: the
    /// blade uses slower devices at the commodity sweet spot, "24%
    /// cheaper" [DRAMeXchange].
    pub remote_price_factor: f64,
    /// Per-server share of the blade's PCIe controller cost (x4 lane),
    /// dollars.
    pub controller_cost_usd: f64,
    /// Per-server share of the controller power, watts.
    pub controller_power_w: f64,
    /// Fraction of active power the blade DRAM draws in active
    /// power-down mode (kept there except during page transfers).
    pub powerdown_fraction: f64,
}

impl BladeModel {
    /// The paper's constants: 24% cheaper devices, $10 and 1.45 W per
    /// server for the controller share, DDR2 active power-down (>90%
    /// power reduction).
    pub fn paper_default() -> Self {
        BladeModel {
            remote_price_factor: 0.76,
            controller_cost_usd: 10.0,
            controller_power_w: 1.45,
            powerdown_fraction: MemoryTech::Ddr2.powerdown_fraction(),
        }
    }

    /// Cost of providing `fraction_of_baseline` of a server's memory
    /// remotely, given the server's baseline (all-local) memory cost.
    ///
    /// # Panics
    /// Panics if either argument is negative or non-finite.
    pub fn remote_memory_cost_usd(&self, baseline_mem_cost: f64, fraction_of_baseline: f64) -> f64 {
        assert!(baseline_mem_cost.is_finite() && baseline_mem_cost >= 0.0);
        assert!(fraction_of_baseline.is_finite() && fraction_of_baseline >= 0.0);
        baseline_mem_cost * fraction_of_baseline * self.remote_price_factor
    }

    /// Power of that remote fraction (in power-down almost all the time).
    pub fn remote_memory_power_w(&self, baseline_mem_power: f64, fraction_of_baseline: f64) -> f64 {
        assert!(baseline_mem_power.is_finite() && baseline_mem_power >= 0.0);
        assert!(fraction_of_baseline.is_finite() && fraction_of_baseline >= 0.0);
        baseline_mem_power * fraction_of_baseline * self.powerdown_fraction
    }
}

impl Default for BladeModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let b = BladeModel::paper_default();
        assert_eq!(b.controller_cost_usd, 10.0);
        assert!((b.controller_power_w - 1.45).abs() < 1e-12);
        assert!((b.remote_price_factor - 0.76).abs() < 1e-12);
        assert!(b.powerdown_fraction < 0.10, "paper: >90% power reduction");
    }

    #[test]
    fn remote_costs_scale() {
        let b = BladeModel::paper_default();
        // 75% of a $130 memory config on the blade: 130*0.75*0.76.
        let c = b.remote_memory_cost_usd(130.0, 0.75);
        assert!((c - 74.1).abs() < 1e-9);
        let p = b.remote_memory_power_w(12.0, 0.75);
        assert!(p < 1.0, "power-down keeps blade DRAM under 1 W ({p})");
    }

    #[test]
    #[should_panic]
    fn rejects_negative_cost() {
        BladeModel::paper_default().remote_memory_cost_usd(-1.0, 0.5);
    }
}
