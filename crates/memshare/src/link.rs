//! PCIe link and fault-latency model.

use wcs_simcore::ConfigError;

/// Latency model for a remote-page fault: a light-weight trap plus the
/// time until the faulting access can resume.
///
/// The paper derives 4 us for a 4 KiB page over a PCIe 2.0 x4 link
/// (2 x 1 GB/s per direction, plus DRAM and bus-transfer latencies), and
/// 0.75 us with the critical-block-first optimization, where execution
/// resumes as soon as the needed 64-byte block arrives.
///
/// # Example
/// ```
/// use wcs_memshare::link::RemoteLink;
/// let pcie = RemoteLink::pcie_x4();
/// let cbf = RemoteLink::pcie_x4_cbf();
/// assert!(cbf.fault_latency_secs() < pcie.fault_latency_secs());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RemoteLink {
    /// Descriptive name.
    pub name: &'static str,
    /// Time until the faulting access resumes, microseconds.
    pub resume_us: f64,
    /// Light-weight trap-handler overhead (TLB miss, victim selection,
    /// DMA setup), microseconds.
    pub trap_us: f64,
}

impl RemoteLink {
    /// Whole-page transfer over PCIe 2.0 x4: 4 us to move 4 KiB.
    pub fn pcie_x4() -> Self {
        RemoteLink {
            name: "PCIe x4 (4 us)",
            resume_us: 4.0,
            trap_us: 0.36,
        }
    }

    /// Critical-block-first on the same link: resume after 0.75 us.
    pub fn pcie_x4_cbf() -> Self {
        RemoteLink {
            name: "CBF (0.75 us)",
            resume_us: 0.75,
            trap_us: 0.36,
        }
    }

    /// A custom link.
    ///
    /// # Errors
    /// Rejects a negative or non-finite latency.
    pub fn custom(name: &'static str, resume_us: f64, trap_us: f64) -> Result<Self, ConfigError> {
        ConfigError::check_f64("resume_us", resume_us, "must be >= 0", resume_us >= 0.0)?;
        ConfigError::check_f64("trap_us", trap_us, "must be >= 0", trap_us >= 0.0)?;
        Ok(RemoteLink {
            name,
            resume_us,
            trap_us,
        })
    }

    /// Total stall per remote fault, in seconds.
    pub fn fault_latency_secs(&self) -> f64 {
        (self.resume_us + self.trap_us) * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_latency_points() {
        assert!((RemoteLink::pcie_x4().resume_us - 4.0).abs() < 1e-12);
        assert!((RemoteLink::pcie_x4_cbf().resume_us - 0.75).abs() < 1e-12);
    }

    #[test]
    fn cbf_ratio_matches_figure4b() {
        // Figure 4(b): websearch slows 4.7% on PCIe x4 and 1.2% with CBF
        // — a 3.9x ratio. Slowdowns are proportional to fault latency, so
        // the latency ratio must land there too.
        let ratio = RemoteLink::pcie_x4().fault_latency_secs()
            / RemoteLink::pcie_x4_cbf().fault_latency_secs();
        assert!((3.6..=4.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn custom_rejects_negative() {
        assert!(RemoteLink::custom("bad", -1.0, 0.0).is_err());
        assert!(RemoteLink::custom("bad", 1.0, f64::NAN).is_err());
        assert!(RemoteLink::custom("ok", 1.0, 0.0).is_ok());
    }
}
