//! Graceful degradation when the memory blade or its PCIe link fails.
//!
//! Section 4 of the paper raises the reliability question for
//! ensemble-level sharing: a server that has given up local DRAM
//! capacity depends on the blade for part of its working set. This
//! module prices the fallback: while the blade (or the link to it) is
//! down, remote pages must come from **local disk swap** instead — the
//! same fault stream, re-costed at millisecond instead of microsecond
//! latency. Combined with a [`FaultProcess`] for the blade, that yields
//! an availability-weighted expected slowdown, i.e. what the ensemble
//! loses by sharing memory once failures are priced in.

use wcs_simcore::faults::{downtime, FaultProcess};
use wcs_simcore::{ConfigError, SimDuration, SimRng};
use wcs_workloads::WorkloadId;

use crate::link::RemoteLink;
use crate::slowdown::{estimate_slowdown, SlowdownConfig, SlowdownResult};

/// The degraded-mode "link": a remote fault serviced by local disk swap
/// while the blade is unreachable. ~4 ms for the page read (seek +
/// rotation + transfer on a laptop-class disk) plus a heavier trap
/// (full page-fault path into the block layer, not the light-weight
/// blade trap).
pub fn disk_swap_link() -> RemoteLink {
    RemoteLink::custom("disk swap (4 ms)", 4000.0, 10.0)
        .expect("constant latencies are non-negative")
}

/// Blade-outage assessment for one workload: the normal (blade-up)
/// slowdown, the degraded (blade-down, disk-swap) slowdown, and the
/// blade availability that mixes them.
#[derive(Debug, Clone, Copy)]
pub struct DegradedOutcome {
    /// Slowdown with the blade up (the Figure 4(b) estimate).
    pub normal: SlowdownResult,
    /// Slowdown while the blade is down and remote pages come from disk
    /// swap.
    pub degraded: SlowdownResult,
    /// Fraction of time the blade is up, in `[0, 1]`.
    pub availability: f64,
    /// Number of blade failures over the assessed horizon.
    pub failures: usize,
}

impl DegradedOutcome {
    /// Expected slowdown: availability-weighted mix of the two modes.
    pub fn effective_slowdown(&self) -> f64 {
        availability_weighted(
            self.normal.slowdown,
            self.degraded.slowdown,
            self.availability,
        )
        .expect("availability sampled in [0, 1]")
    }

    /// How much worse a blade-down second is than a blade-up second
    /// (degraded over normal slowdown; `inf`-free because both share
    /// the same fault rate).
    pub fn degradation_factor(&self) -> f64 {
        if self.normal.slowdown == 0.0 {
            1.0
        } else {
            self.degraded.slowdown / self.normal.slowdown
        }
    }
}

/// Mixes a normal and a degraded metric by availability `a`:
/// `a * normal + (1 - a) * degraded`.
///
/// # Errors
/// Rejects an `availability` outside `[0, 1]`.
pub fn availability_weighted(
    normal: f64,
    degraded: f64,
    availability: f64,
) -> Result<f64, ConfigError> {
    ConfigError::check_f64(
        "availability",
        availability,
        "must be in [0, 1]",
        (0.0..=1.0).contains(&availability),
    )?;
    Ok(availability * normal + (1.0 - availability) * degraded)
}

/// Re-costs an already-measured slowdown for blade-down operation over
/// `fallback` (by default [`disk_swap_link`]): the miss stream is a
/// property of the workload and the local memory size, so only the
/// per-fault latency changes.
pub fn degrade_to(normal: &SlowdownResult, fallback: &RemoteLink) -> SlowdownResult {
    normal.with_link(fallback)
}

/// Assesses `workload` under blade failures: measures the normal
/// slowdown once, prices the degraded mode over [`disk_swap_link`], and
/// samples `blade` over `horizon` (seeded by `seed`) for availability.
///
/// Same seed in, same assessment out; a fail-free `blade` process
/// reproduces the plain [`estimate_slowdown`] result exactly with
/// availability 1.
///
/// # Errors
/// Rejects an invalid slowdown `config` (see [`estimate_slowdown`]) or
/// a non-positive `horizon`.
pub fn assess_blade_outages(
    workload: WorkloadId,
    config: &SlowdownConfig,
    blade: &FaultProcess,
    horizon: SimDuration,
    seed: u64,
) -> Result<DegradedOutcome, ConfigError> {
    if horizon.is_zero() {
        return Err(ConfigError::OutOfRange {
            param: "horizon",
            requirement: "must be positive",
            got: 0.0,
        });
    }
    let normal = estimate_slowdown(workload, config)?;
    let degraded = degrade_to(&normal, &disk_swap_link());
    let mut rng = SimRng::seed_from(seed);
    let windows = blade.windows(horizon, &mut rng);
    let down = downtime(&windows, horizon);
    let availability = 1.0 - down.as_secs_f64() / horizon.as_secs_f64();
    Ok(DegradedOutcome {
        normal,
        degraded,
        availability,
        failures: windows.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimDuration {
        SimDuration::from_secs_f64(s)
    }

    fn quick_cfg() -> SlowdownConfig {
        SlowdownConfig {
            fill: 200_000,
            measured: 200_000,
            ..SlowdownConfig::paper_default()
        }
    }

    #[test]
    fn disk_swap_is_three_orders_slower_than_pcie() {
        let ratio =
            disk_swap_link().fault_latency_secs() / RemoteLink::pcie_x4().fault_latency_secs();
        assert!((500.0..2000.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn degraded_mode_dwarfs_normal_slowdown() {
        let normal = estimate_slowdown(WorkloadId::Websearch, &quick_cfg()).unwrap();
        let degraded = degrade_to(&normal, &disk_swap_link());
        // Same fault stream...
        assert_eq!(degraded.faults_per_cpu_sec, normal.faults_per_cpu_sec);
        // ...but each fault now costs milliseconds: a few-percent
        // slowdown becomes a many-fold one.
        assert!(
            degraded.slowdown > 100.0 * normal.slowdown,
            "degraded {} vs normal {}",
            degraded.slowdown,
            normal.slowdown
        );
    }

    #[test]
    fn fail_free_blade_reproduces_plain_estimate() {
        let out = assess_blade_outages(
            WorkloadId::Ytube,
            &quick_cfg(),
            &FaultProcess::never(),
            secs(3600.0),
            42,
        )
        .unwrap();
        let plain = estimate_slowdown(WorkloadId::Ytube, &quick_cfg()).unwrap();
        assert_eq!(out.availability, 1.0);
        assert_eq!(out.failures, 0);
        // Bit-for-bit: the weighted mix collapses to the normal term.
        assert_eq!(out.effective_slowdown(), plain.slowdown);
    }

    #[test]
    fn outages_push_effective_slowdown_toward_disk_swap() {
        let p = FaultProcess::exponential(secs(1000.0), secs(100.0)).unwrap();
        let out = assess_blade_outages(WorkloadId::Websearch, &quick_cfg(), &p, secs(100_000.0), 9)
            .unwrap();
        assert!(out.availability < 1.0);
        assert!(out.failures > 0);
        let eff = out.effective_slowdown();
        assert!(
            eff > out.normal.slowdown,
            "effective {eff} must exceed normal"
        );
        assert!(
            eff < out.degraded.slowdown,
            "effective {eff} below full-degraded"
        );
    }

    #[test]
    fn assessment_is_deterministic_per_seed() {
        let p = FaultProcess::exponential(secs(500.0), secs(50.0)).unwrap();
        let a =
            assess_blade_outages(WorkloadId::Webmail, &quick_cfg(), &p, secs(50_000.0), 7).unwrap();
        let b =
            assess_blade_outages(WorkloadId::Webmail, &quick_cfg(), &p, secs(50_000.0), 7).unwrap();
        assert_eq!(a.availability, b.availability);
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.effective_slowdown(), b.effective_slowdown());
    }

    #[test]
    fn weighted_mix_validates_availability() {
        assert!(availability_weighted(0.05, 40.0, 1.5).is_err());
        assert!(availability_weighted(0.05, 40.0, -0.1).is_err());
        let half = availability_weighted(0.0, 10.0, 0.5).unwrap();
        assert!((half - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_horizon_rejected() {
        let r = assess_blade_outages(
            WorkloadId::Webmail,
            &quick_cfg(),
            &FaultProcess::never(),
            SimDuration::ZERO,
            1,
        );
        assert!(r.is_err());
    }
}
