//! The memory-blade controller's allocation directory.
//!
//! Section 3.4: "a hardware controller on the memory blade handles the
//! blade's management, sending pages to and receiving pages from the
//! processor blades, while enforcing the per-server memory allocation to
//! provide security and fault isolation." This module is that
//! enforcement layer: per-server capacity allocations, ownership checks
//! on every page access, and whole-server revocation (fault isolation —
//! a dead server's pages are reclaimed without touching anyone else's).

use std::fmt;

use wcs_simcore::table::{FastKey, OpenMap};

/// Identifies a server blade attached to the memory blade.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ServerId(pub u32);

impl FastKey for ServerId {
    fn fast_hash(&self) -> u64 {
        self.0.fast_hash()
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server{}", self.0)
    }
}

/// Errors the blade controller reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BladeError {
    /// The server has no allocation on this blade.
    UnknownServer(ServerId),
    /// The server tried to exceed its allocation.
    AllocationExceeded {
        /// Who overflowed.
        server: ServerId,
        /// Its allocation limit in pages.
        limit: u64,
    },
    /// The blade itself is out of physical pages.
    BladeFull,
    /// A server touched a page it does not own — an isolation violation.
    IsolationViolation {
        /// The offender.
        server: ServerId,
        /// The page it reached for.
        page: u64,
    },
    /// A server registered twice or an allocation overflows the blade.
    BadRegistration(String),
}

impl fmt::Display for BladeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BladeError::UnknownServer(s) => write!(f, "{s} has no allocation"),
            BladeError::AllocationExceeded { server, limit } => {
                write!(f, "{server} exceeded its {limit}-page allocation")
            }
            BladeError::BladeFull => f.write_str("memory blade has no free pages"),
            BladeError::IsolationViolation { server, page } => {
                write!(f, "{server} touched page {page} it does not own")
            }
            BladeError::BadRegistration(why) => write!(f, "bad registration: {why}"),
        }
    }
}

impl std::error::Error for BladeError {}

struct Allocation {
    limit_pages: u64,
    used_pages: u64,
}

/// The blade's page directory: who owns what, with hard per-server
/// limits.
///
/// # Example
/// ```
/// use wcs_memshare::directory::{BladeDirectory, ServerId};
/// let mut dir = BladeDirectory::new(1000);
/// dir.register(ServerId(0), 600).unwrap();
/// let page = dir.map_page(ServerId(0), 0xABC).unwrap();
/// assert!(dir.check_access(ServerId(0), page).is_ok());
/// ```
pub struct BladeDirectory {
    capacity_pages: u64,
    allocated_pages: u64,
    servers: OpenMap<ServerId, Allocation>,
    // blade physical page -> (owner, server-virtual page)
    owner_of: OpenMap<u64, (ServerId, u64)>,
    // (owner id, server-virtual page) -> blade physical page. Keyed on
    // the raw id so the tuple gets the shared `(u32, u64)` fast hash;
    // OpenMap's deterministic iteration makes revocation (and therefore
    // free-page recycling order) reproducible across runs.
    mapping: OpenMap<(u32, u64), u64>,
    next_phys: u64,
    free: Vec<u64>,
}

impl BladeDirectory {
    /// Creates a blade with `capacity_pages` physical pages.
    ///
    /// # Panics
    /// Panics if the capacity is zero.
    pub fn new(capacity_pages: u64) -> Self {
        assert!(capacity_pages > 0, "blade needs capacity");
        BladeDirectory {
            capacity_pages,
            allocated_pages: 0,
            servers: OpenMap::new(),
            owner_of: OpenMap::new(),
            mapping: OpenMap::new(),
            next_phys: 0,
            free: Vec::new(),
        }
    }

    /// Registers a server with a hard allocation limit.
    ///
    /// # Errors
    /// Fails if the server is already registered or the sum of
    /// allocations would exceed the blade (no overcommit in the paper's
    /// static scheme; use [`register_overcommitted`]
    /// (Self::register_overcommitted) for the dynamic scheme).
    pub fn register(&mut self, server: ServerId, limit_pages: u64) -> Result<(), BladeError> {
        if self.servers.contains_key(&server) {
            return Err(BladeError::BadRegistration(format!(
                "{server} already registered"
            )));
        }
        if self.allocated_pages + limit_pages > self.capacity_pages {
            return Err(BladeError::BadRegistration(format!(
                "allocating {limit_pages} pages would exceed blade capacity"
            )));
        }
        self.allocated_pages += limit_pages;
        self.servers.insert(
            server,
            Allocation {
                limit_pages,
                used_pages: 0,
            },
        );
        Ok(())
    }

    /// Registers a server without reserving its full limit up front —
    /// the dynamic-provisioning mode, where the ensemble statistically
    /// multiplexes the blade. Physical exhaustion then surfaces as
    /// [`BladeError::BladeFull`] at map time.
    ///
    /// # Errors
    /// Fails only on double registration.
    pub fn register_overcommitted(
        &mut self,
        server: ServerId,
        limit_pages: u64,
    ) -> Result<(), BladeError> {
        if self.servers.contains_key(&server) {
            return Err(BladeError::BadRegistration(format!(
                "{server} already registered"
            )));
        }
        self.servers.insert(
            server,
            Allocation {
                limit_pages,
                used_pages: 0,
            },
        );
        Ok(())
    }

    /// Maps a server-virtual page onto a blade physical page, returning
    /// the physical page number.
    ///
    /// # Errors
    /// Fails when the server is unknown, over its limit, or the blade is
    /// physically full.
    pub fn map_page(&mut self, server: ServerId, virt_page: u64) -> Result<u64, BladeError> {
        if let Some(&phys) = self.mapping.get(&(server.0, virt_page)) {
            return Ok(phys); // idempotent re-map
        }
        let alloc = self
            .servers
            .get_mut(&server)
            .ok_or(BladeError::UnknownServer(server))?;
        if alloc.used_pages >= alloc.limit_pages {
            return Err(BladeError::AllocationExceeded {
                server,
                limit: alloc.limit_pages,
            });
        }
        let phys = match self.free.pop() {
            Some(p) => p,
            None => {
                if self.next_phys >= self.capacity_pages {
                    return Err(BladeError::BladeFull);
                }
                let p = self.next_phys;
                self.next_phys += 1;
                p
            }
        };
        alloc.used_pages += 1;
        self.owner_of.insert(phys, (server, virt_page));
        self.mapping.insert((server.0, virt_page), phys);
        Ok(phys)
    }

    /// Verifies that `server` owns blade page `phys` — the check the
    /// controller performs on every DMA.
    ///
    /// # Errors
    /// Fails with [`BladeError::IsolationViolation`] on foreign pages.
    pub fn check_access(&self, server: ServerId, phys: u64) -> Result<(), BladeError> {
        match self.owner_of.get(&phys) {
            Some((owner, _)) if *owner == server => Ok(()),
            _ => Err(BladeError::IsolationViolation { server, page: phys }),
        }
    }

    /// Unmaps one page (the exclusive hierarchy swaps it back to the
    /// server).
    ///
    /// # Errors
    /// Fails if the mapping does not exist.
    pub fn unmap_page(&mut self, server: ServerId, virt_page: u64) -> Result<(), BladeError> {
        let phys =
            self.mapping
                .remove(&(server.0, virt_page))
                .ok_or(BladeError::IsolationViolation {
                    server,
                    page: virt_page,
                })?;
        self.owner_of.remove(&phys);
        self.free.push(phys);
        if let Some(alloc) = self.servers.get_mut(&server) {
            alloc.used_pages -= 1;
        }
        Ok(())
    }

    /// Revokes a server entirely (fault isolation): all its pages are
    /// reclaimed; nobody else is affected. Returns how many pages were
    /// freed.
    pub fn revoke(&mut self, server: ServerId) -> u64 {
        let Some(alloc) = self.servers.remove(&server) else {
            return 0;
        };
        self.allocated_pages = self.allocated_pages.saturating_sub(alloc.limit_pages);
        let doomed: Vec<(u32, u64)> = self
            .mapping
            .keys()
            .filter(|(s, _)| *s == server.0)
            .copied()
            .collect();
        let mut freed = 0;
        for key in doomed {
            if let Some(phys) = self.mapping.remove(&key) {
                self.owner_of.remove(&phys);
                self.free.push(phys);
                freed += 1;
            }
        }
        freed
    }

    /// Pages currently mapped for `server`.
    pub fn used_pages(&self, server: ServerId) -> u64 {
        self.servers.get(&server).map_or(0, |a| a.used_pages)
    }

    /// Physical pages still unmapped.
    pub fn free_pages(&self) -> u64 {
        self.capacity_pages - self.owner_of.len() as u64
    }
}

impl fmt::Debug for BladeDirectory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BladeDirectory")
            .field("capacity_pages", &self.capacity_pages)
            .field("servers", &self.servers.len())
            .field("mapped", &self.owner_of.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_limits_enforced() {
        let mut dir = BladeDirectory::new(100);
        dir.register(ServerId(1), 2).unwrap();
        dir.map_page(ServerId(1), 10).unwrap();
        dir.map_page(ServerId(1), 11).unwrap();
        let err = dir.map_page(ServerId(1), 12).unwrap_err();
        assert!(matches!(err, BladeError::AllocationExceeded { .. }));
    }

    #[test]
    fn isolation_between_servers() {
        let mut dir = BladeDirectory::new(100);
        dir.register(ServerId(1), 10).unwrap();
        dir.register(ServerId(2), 10).unwrap();
        let p1 = dir.map_page(ServerId(1), 0).unwrap();
        assert!(dir.check_access(ServerId(1), p1).is_ok());
        let err = dir.check_access(ServerId(2), p1).unwrap_err();
        assert!(matches!(err, BladeError::IsolationViolation { .. }));
    }

    #[test]
    fn no_overcommit_in_static_mode() {
        let mut dir = BladeDirectory::new(100);
        dir.register(ServerId(1), 60).unwrap();
        let err = dir.register(ServerId(2), 60).unwrap_err();
        assert!(matches!(err, BladeError::BadRegistration(_)));
    }

    #[test]
    fn dynamic_mode_overcommits_until_physically_full() {
        let mut dir = BladeDirectory::new(10);
        dir.register_overcommitted(ServerId(1), 8).unwrap();
        dir.register_overcommitted(ServerId(2), 8).unwrap();
        for v in 0..8 {
            dir.map_page(ServerId(1), v).unwrap();
        }
        dir.map_page(ServerId(2), 0).unwrap();
        dir.map_page(ServerId(2), 1).unwrap();
        let err = dir.map_page(ServerId(2), 2).unwrap_err();
        assert_eq!(err, BladeError::BladeFull);
    }

    #[test]
    fn unmap_recycles_pages() {
        let mut dir = BladeDirectory::new(2);
        dir.register(ServerId(1), 2).unwrap();
        let p = dir.map_page(ServerId(1), 0).unwrap();
        dir.map_page(ServerId(1), 1).unwrap();
        assert_eq!(dir.free_pages(), 0);
        dir.unmap_page(ServerId(1), 0).unwrap();
        assert_eq!(dir.free_pages(), 1);
        let p2 = dir.map_page(ServerId(1), 7).unwrap();
        assert_eq!(p, p2, "freed physical page is reused");
    }

    #[test]
    fn revoke_isolates_faults() {
        let mut dir = BladeDirectory::new(100);
        dir.register(ServerId(1), 10).unwrap();
        dir.register(ServerId(2), 10).unwrap();
        for v in 0..5 {
            dir.map_page(ServerId(1), v).unwrap();
            dir.map_page(ServerId(2), v).unwrap();
        }
        let freed = dir.revoke(ServerId(1));
        assert_eq!(freed, 5);
        // Server 2 is untouched.
        assert_eq!(dir.used_pages(ServerId(2)), 5);
        for v in 0..5 {
            let phys = dir.map_page(ServerId(2), v).unwrap();
            assert!(dir.check_access(ServerId(2), phys).is_ok());
        }
        // Server 1 is gone.
        assert!(matches!(
            dir.map_page(ServerId(1), 0),
            Err(BladeError::UnknownServer(_))
        ));
    }

    #[test]
    fn remap_is_idempotent() {
        let mut dir = BladeDirectory::new(10);
        dir.register(ServerId(3), 4).unwrap();
        let a = dir.map_page(ServerId(3), 42).unwrap();
        let b = dir.map_page(ServerId(3), 42).unwrap();
        assert_eq!(a, b);
        assert_eq!(dir.used_pages(ServerId(3)), 1);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = BladeError::IsolationViolation {
            server: ServerId(7),
            page: 99,
        };
        assert!(e.to_string().contains("server7"));
        assert!(e.to_string().contains("99"));
    }
}
