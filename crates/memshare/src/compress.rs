//! Memory compression on the blade (Section 3.4's "other optimizations":
//! "memory compression [IBM MXT]").
//!
//! Compressing remote pages multiplies the blade's effective capacity at
//! the cost of (de)compression latency on every transfer. Because blade
//! accesses are page-granularity and already cost microseconds over
//! PCIe, hardware compression's ~0.2-0.5 us is a small relative tax —
//! which is why the paper flags it as a natural follow-on.

use crate::link::RemoteLink;

/// A compression engine model on the memory blade.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CompressionModel {
    /// Achieved compression ratio (stored bytes = raw / ratio). MXT
    /// reported ~2x on server workloads.
    pub ratio: f64,
    /// Added latency per page transfer for (de)compression, microseconds.
    pub latency_us: f64,
}

impl CompressionModel {
    /// IBM MXT-class hardware compression: 2x ratio, ~0.3 us per 4 KiB
    /// page at memory-system speeds.
    pub fn mxt_class() -> Self {
        CompressionModel {
            ratio: 2.0,
            latency_us: 0.3,
        }
    }

    /// Creates a model.
    ///
    /// # Panics
    /// Panics unless `ratio >= 1` and `latency_us >= 0`, both finite.
    pub fn new(ratio: f64, latency_us: f64) -> Self {
        assert!(ratio.is_finite() && ratio >= 1.0, "ratio must be >= 1");
        assert!(latency_us.is_finite() && latency_us >= 0.0);
        CompressionModel { ratio, latency_us }
    }

    /// Effective blade capacity multiplier.
    pub fn capacity_multiplier(&self) -> f64 {
        self.ratio
    }

    /// The remote link with compression latency folded in.
    pub fn compressed_link(&self, base: RemoteLink) -> RemoteLink {
        RemoteLink::custom(
            "compressed blade",
            base.resume_us + self.latency_us,
            base.trap_us,
        )
        .expect("validated latencies stay non-negative")
    }

    /// Blade DRAM cost to back `fraction_of_baseline` of a server's
    /// memory, relative to the uncompressed blade: compression divides
    /// the devices needed.
    pub fn remote_cost_factor(&self) -> f64 {
        1.0 / self.ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mxt_doubles_capacity() {
        let c = CompressionModel::mxt_class();
        assert!((c.capacity_multiplier() - 2.0).abs() < 1e-12);
        assert!((c.remote_cost_factor() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn compression_latency_is_small_relative_to_pcie() {
        let c = CompressionModel::mxt_class();
        let base = RemoteLink::pcie_x4();
        let compressed = c.compressed_link(base);
        let overhead = compressed.fault_latency_secs() / base.fault_latency_secs() - 1.0;
        assert!(overhead < 0.10, "compression adds {overhead:.2} of latency");
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn rejects_expansion() {
        CompressionModel::new(0.5, 0.1);
    }
}
