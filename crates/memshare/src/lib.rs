//! Ensemble memory sharing: the PCIe-attached memory blade (Section 3.4).
//!
//! Multiple server blades connect to a shared memory blade over PCIe.
//! Each server keeps a small local memory; the blade provides a remote
//! pool accessed at page (4 KiB) granularity. A touch to a remote page
//! traps (TLB miss), the OS picks a local victim, and a DMA swap brings
//! the remote page in — an exclusive two-level hierarchy. The
//! critical-block-first (CBF) optimization resumes the faulting access as
//! soon as the needed cache block arrives instead of waiting for the
//! whole page.
//!
//! This crate contains:
//!
//! * [`policy`] — replacement policies over the local page store (LRU,
//!   random, clock),
//! * [`twolevel`] — the trace-driven two-level memory simulator,
//! * [`link`] — the PCIe/CBF latency model (4 us per 4 KiB page on PCIe
//!   2.0 x4; 0.75 us with CBF, plus a light-weight trap overhead),
//! * [`slowdown`] — converting miss rates into workload slowdowns
//!   (Figure 4(b)),
//! * [`provisioning`] — the static and dynamic capacity-provisioning
//!   cost/power schemes (Figure 4(c)).
//!
//! # Example
//! ```
//! use wcs_memshare::{twolevel::TwoLevelSim, policy::PolicyKind, link::RemoteLink};
//! use wcs_workloads::{memtrace, WorkloadId};
//!
//! let mut gen = memtrace::MemTraceGen::new(memtrace::params_for(WorkloadId::Webmail), 1);
//! let mut sim = TwoLevelSim::new(10_000, PolicyKind::Random, 42);
//! let stats = sim.run(&mut gen, 200_000);
//! assert!(stats.miss_ratio() > 0.0);
//! let _lat = RemoteLink::pcie_x4().fault_latency_secs();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blade;
pub mod compress;
pub mod contention;
pub mod degraded;
pub mod directory;
pub mod ensemble;
pub mod hybrid;
pub mod link;
pub mod overflow;
pub mod pageshare;
pub mod policy;
pub mod provisioning;
pub mod slowdown;
pub mod twolevel;
pub mod victim;
