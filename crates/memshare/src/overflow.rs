//! Blade overflow under dynamic provisioning.
//!
//! The dynamic scheme provisions only 85% of the ensemble's peak memory
//! (Section 3.4), betting that per-server peaks do not coincide. When
//! the bet loses — aggregate demand exceeds the blade — something must
//! give: the blade swaps its coldest pages to disk, and faults to those
//! pages pay disk latency instead of PCIe latency. This module
//! quantifies that risk: the probability of overflow for a given demand
//! distribution and the expected fault-latency inflation when it
//! happens.

use wcs_simcore::SimRng;

use crate::link::RemoteLink;

/// Demand model for one server's memory use: a truncated-normal fraction
/// of its peak.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DemandModel {
    /// Mean demand as a fraction of the server's peak.
    pub mean: f64,
    /// Standard deviation of the fraction.
    pub std_dev: f64,
}

impl DemandModel {
    /// The sizing study's default: servers average 65% of peak with 15%
    /// spread (consistent with the ensemble-overprovisioning studies the
    /// paper cites [Ranganathan et al.]).
    pub fn typical() -> Self {
        DemandModel {
            mean: 0.65,
            std_dev: 0.15,
        }
    }

    /// Validates the model.
    ///
    /// # Panics
    /// Panics on out-of-range parameters.
    pub fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.mean), "mean fraction in [0,1]");
        assert!(self.std_dev >= 0.0 && self.std_dev.is_finite());
    }

    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Box-Muller normal, truncated to [0, 1].
        let u1 = (1.0 - rng.uniform()).max(f64::MIN_POSITIVE);
        let u2 = rng.uniform();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mean + self.std_dev * z).clamp(0.0, 1.0)
    }
}

/// Result of the overflow risk analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OverflowRisk {
    /// Fraction of sampled epochs in which aggregate demand exceeded the
    /// provisioned capacity.
    pub overflow_probability: f64,
    /// Mean fraction of remote pages displaced to disk, over overflowing
    /// epochs (0 when none overflow).
    pub displaced_fraction: f64,
    /// Expected fault latency across epochs, seconds (PCIe for resident
    /// pages, disk for displaced ones).
    pub expected_fault_secs: f64,
}

/// Disk swap latency for a 4 KiB page on the SAN laptop disk (~15 ms
/// access dominates).
pub const DISK_SWAP_SECS: f64 = 15.2e-3;

/// Monte-Carlo estimate of the overflow risk for `servers` sharing a
/// blade provisioned at `provisioned_fraction` of their aggregate peak.
///
/// # Panics
/// Panics on zero servers/epochs or a non-positive provisioned fraction.
pub fn overflow_risk(
    demand: DemandModel,
    servers: u32,
    provisioned_fraction: f64,
    link: RemoteLink,
    epochs: u32,
    seed: u64,
) -> OverflowRisk {
    demand.validate();
    assert!(servers > 0, "need servers");
    assert!(epochs > 0, "need epochs");
    assert!(
        provisioned_fraction.is_finite() && provisioned_fraction > 0.0,
        "provisioned fraction must be positive"
    );
    let mut rng = SimRng::seed_from(seed);
    let capacity = provisioned_fraction * servers as f64;
    let mut overflows = 0u32;
    let mut displaced_sum = 0.0;
    let mut latency_sum = 0.0;
    for _ in 0..epochs {
        let total: f64 = (0..servers).map(|_| demand.sample(&mut rng)).sum();
        let displaced = ((total - capacity) / total).max(0.0);
        if displaced > 0.0 {
            overflows += 1;
            displaced_sum += displaced;
        }
        latency_sum += (1.0 - displaced) * link.fault_latency_secs() + displaced * DISK_SWAP_SECS;
    }
    OverflowRisk {
        overflow_probability: f64::from(overflows) / f64::from(epochs),
        displaced_fraction: if overflows > 0 {
            displaced_sum / f64::from(overflows)
        } else {
            0.0
        },
        expected_fault_secs: latency_sum / f64::from(epochs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_provisioning_never_overflows() {
        let r = overflow_risk(
            DemandModel::typical(),
            16,
            1.0,
            RemoteLink::pcie_x4(),
            20_000,
            1,
        );
        assert_eq!(r.overflow_probability, 0.0);
        assert_eq!(r.displaced_fraction, 0.0);
        assert!((r.expected_fault_secs - RemoteLink::pcie_x4().fault_latency_secs()).abs() < 1e-12);
    }

    #[test]
    fn papers_85_percent_is_safe_at_ensemble_scale() {
        // 16 servers at 65% +/- 15% mean demand against 85% provisioning:
        // the central limit keeps aggregate demand far from the cap.
        let r = overflow_risk(
            DemandModel::typical(),
            16,
            0.85,
            RemoteLink::pcie_x4(),
            50_000,
            2,
        );
        assert!(
            r.overflow_probability < 0.01,
            "p {}",
            r.overflow_probability
        );
        // Expected fault latency stays within 25% of pure PCIe.
        assert!(r.expected_fault_secs < RemoteLink::pcie_x4().fault_latency_secs() * 1.25);
    }

    #[test]
    fn small_ensembles_are_riskier() {
        let small = overflow_risk(
            DemandModel::typical(),
            2,
            0.85,
            RemoteLink::pcie_x4(),
            50_000,
            3,
        );
        let large = overflow_risk(
            DemandModel::typical(),
            32,
            0.85,
            RemoteLink::pcie_x4(),
            50_000,
            3,
        );
        assert!(
            small.overflow_probability > large.overflow_probability,
            "{} vs {}",
            small.overflow_probability,
            large.overflow_probability
        );
    }

    #[test]
    fn underprovisioning_blows_up_latency() {
        let r = overflow_risk(
            DemandModel::typical(),
            16,
            0.5, // well under the 65% mean demand
            RemoteLink::pcie_x4(),
            20_000,
            5,
        );
        assert!(r.overflow_probability > 0.99);
        // Disk swaps dominate: expected latency is orders above PCIe.
        assert!(r.expected_fault_secs > 100.0 * RemoteLink::pcie_x4().fault_latency_secs());
    }

    #[test]
    #[should_panic(expected = "provisioned fraction")]
    fn rejects_zero_provisioning() {
        overflow_risk(DemandModel::typical(), 4, 0.0, RemoteLink::pcie_x4(), 10, 1);
    }
}
