//! PCIe link contention on a shared memory blade.
//!
//! The paper's trace-driven methodology "cannot account for the
//! second-order impact of PCIe link contention"; this module closes that
//! gap with an M/D/1 queueing model of a blade link shared by several
//! servers: page transfers are (nearly) deterministic 4 us jobs, and the
//! aggregate fault rate of the attached servers offers load to the link.

use crate::link::RemoteLink;

/// A shared blade link serving page-transfer requests from `servers`
/// attached servers.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SharedLink {
    /// The per-transfer latency model.
    pub link: RemoteLink,
    /// Number of servers sharing the blade.
    pub servers: u32,
}

impl SharedLink {
    /// Creates a shared link.
    ///
    /// # Panics
    /// Panics if `servers` is zero.
    pub fn new(link: RemoteLink, servers: u32) -> Self {
        assert!(servers > 0, "a blade serves at least one server");
        SharedLink { link, servers }
    }

    /// Link utilization when every attached server faults at
    /// `faults_per_sec`.
    ///
    /// The link is busy for the page-transfer time of each fault (the
    /// trap overhead is on the server, not the link). Note that the CBF
    /// optimization does *not* reduce link occupancy — the whole page
    /// still transfers — so CBF helps latency but not contention.
    pub fn utilization(&self, faults_per_sec: f64) -> f64 {
        assert!(faults_per_sec >= 0.0 && faults_per_sec.is_finite());
        // Whole-page transfer time occupies the link regardless of CBF.
        let transfer_secs = RemoteLink::pcie_x4().resume_us * 1e-6;
        self.servers as f64 * faults_per_sec * transfer_secs
    }

    /// Mean queueing delay added to each fault by contention (M/D/1
    /// waiting time: `rho * s / (2 (1 - rho))`), in seconds.
    ///
    /// Returns infinity when the offered load saturates the link.
    pub fn queueing_delay_secs(&self, faults_per_sec: f64) -> f64 {
        let rho = self.utilization(faults_per_sec);
        if rho >= 1.0 {
            return f64::INFINITY;
        }
        let s = RemoteLink::pcie_x4().resume_us * 1e-6;
        rho * s / (2.0 * (1.0 - rho))
    }

    /// The effective per-fault latency including contention, as a new
    /// [`RemoteLink`] usable by the slowdown pipeline.
    pub fn effective_link(&self, faults_per_sec: f64) -> RemoteLink {
        let delay_us = self.queueing_delay_secs(faults_per_sec) * 1e6;
        assert!(
            delay_us.is_finite(),
            "link saturated: reduce servers per blade or local miss rate"
        );
        RemoteLink::custom(
            "shared blade link",
            self.link.resume_us + delay_us,
            self.link.trap_us,
        )
        .expect("finite queueing delay checked above")
    }

    /// The largest per-server fault rate the link can absorb while
    /// keeping utilization at or below `target_rho`.
    ///
    /// # Panics
    /// Panics unless `target_rho` is in `(0, 1)`.
    pub fn max_fault_rate(&self, target_rho: f64) -> f64 {
        assert!(target_rho > 0.0 && target_rho < 1.0, "rho in (0,1)");
        let s = RemoteLink::pcie_x4().resume_us * 1e-6;
        target_rho / (self.servers as f64 * s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_load_no_delay() {
        let l = SharedLink::new(RemoteLink::pcie_x4(), 8);
        assert_eq!(l.queueing_delay_secs(0.0), 0.0);
        assert_eq!(l.utilization(0.0), 0.0);
    }

    #[test]
    fn delay_grows_with_servers_and_rate() {
        let few = SharedLink::new(RemoteLink::pcie_x4(), 4);
        let many = SharedLink::new(RemoteLink::pcie_x4(), 16);
        let rate = 5_000.0;
        assert!(many.queueing_delay_secs(rate) > few.queueing_delay_secs(rate));
        assert!(few.queueing_delay_secs(2.0 * rate) > few.queueing_delay_secs(rate));
    }

    #[test]
    fn saturation_is_flagged() {
        let l = SharedLink::new(RemoteLink::pcie_x4(), 16);
        // 16 servers x 20k faults/s x 4 us = 1.28 > 1.
        assert!(l.utilization(20_000.0) > 1.0);
        assert!(l.queueing_delay_secs(20_000.0).is_infinite());
    }

    #[test]
    fn papers_operating_point_is_uncongested() {
        // Figure 4(b)'s worst case: websearch at ~12k faults per CPU
        // second with 25% local memory. Even 8 servers per blade leaves
        // the link under 40% utilized, which supports the paper's claim
        // that contention is second-order.
        let l = SharedLink::new(RemoteLink::pcie_x4(), 8);
        let rho = l.utilization(12_000.0);
        assert!(rho < 0.45, "rho {rho}");
        let eff = l.effective_link(12_000.0);
        // Contention adds only ~1 us of queueing here.
        assert!(eff.resume_us - RemoteLink::pcie_x4().resume_us < 2.0);
    }

    #[test]
    fn cbf_does_not_reduce_link_occupancy() {
        let pcie = SharedLink::new(RemoteLink::pcie_x4(), 8);
        let cbf = SharedLink::new(RemoteLink::pcie_x4_cbf(), 8);
        assert_eq!(pcie.utilization(5_000.0), cbf.utilization(5_000.0));
    }

    #[test]
    fn max_fault_rate_inverts_utilization() {
        let l = SharedLink::new(RemoteLink::pcie_x4(), 8);
        let rate = l.max_fault_rate(0.5);
        assert!((l.utilization(rate) - 0.5).abs() < 1e-12);
    }
}
