//! DRAM/flash hybrid memory organization on the blade.
//!
//! The last of Section 3.4's "other optimizations": back part of the
//! blade's capacity with flash instead of DRAM. Cold remote pages move
//! to flash (cheap, slow); warm remote pages stay in blade DRAM. The
//! module models the three-level hierarchy's average fault cost and the
//! blade's cost/power as a function of the DRAM/flash split.

use wcs_platforms::storage::FlashModel;

use crate::link::RemoteLink;

/// A hybrid blade configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HybridBlade {
    /// Fraction of blade capacity kept in DRAM (the warm tier).
    pub dram_fraction: f64,
    /// Fraction of remote faults served by the DRAM tier. With skewed
    /// reuse this exceeds `dram_fraction` substantially (the blade
    /// migrates warm pages up).
    pub dram_hit_fraction: f64,
    /// The PCIe link.
    pub link: RemoteLink,
    /// Flash read latency for a 4 KiB page, microseconds.
    pub flash_page_read_us: f64,
}

impl HybridBlade {
    /// A hybrid blade from the Table 3(a) flash technology: a 4 KiB read
    /// costs the 20 us setup plus ~82 us of transfer at 50 MB/s.
    ///
    /// # Panics
    /// Panics unless both fractions are in `[0, 1]` and the hit fraction
    /// is at least the capacity fraction (migration cannot do worse than
    /// random placement).
    pub fn new(dram_fraction: f64, dram_hit_fraction: f64, link: RemoteLink) -> Self {
        assert!((0.0..=1.0).contains(&dram_fraction), "fraction in [0,1]");
        assert!(
            (0.0..=1.0).contains(&dram_hit_fraction),
            "hit fraction in [0,1]"
        );
        assert!(
            dram_hit_fraction >= dram_fraction - 1e-12,
            "warm-page migration cannot underperform random placement"
        );
        let flash = FlashModel::table3();
        HybridBlade {
            dram_fraction,
            dram_hit_fraction,
            link,
            flash_page_read_us: flash.read_secs(4096.0) * 1e6,
        }
    }

    /// Mean fault latency across DRAM and flash hits, seconds.
    pub fn mean_fault_secs(&self) -> f64 {
        let dram = self.link.fault_latency_secs();
        // A flash-tier fault first reads the page from flash on the
        // blade, then transfers it; the flash read dominates.
        let flash = self.link.fault_latency_secs() + self.flash_page_read_us * 1e-6;
        self.dram_hit_fraction * dram + (1.0 - self.dram_hit_fraction) * flash
    }

    /// Blade capacity cost relative to an all-DRAM blade, using the
    /// paper's $/GB ratio (flash at $14/GB vs remote DRAM at roughly
    /// $66/GB for the 2008 commodity sweet spot).
    pub fn relative_capacity_cost(&self) -> f64 {
        const FLASH_PER_DRAM_COST: f64 = 14.0 / 66.0;
        self.dram_fraction + (1.0 - self.dram_fraction) * FLASH_PER_DRAM_COST
    }

    /// Blade power relative to an all-DRAM blade in power-down (flash
    /// idles at effectively zero; DRAM in active power-down still
    /// refreshes).
    pub fn relative_power(&self) -> f64 {
        const FLASH_PER_DRAM_POWER: f64 = 0.1;
        self.dram_fraction + (1.0 - self.dram_fraction) * FLASH_PER_DRAM_POWER
    }

    /// The slowdown multiplier vs an all-DRAM blade for a workload whose
    /// all-DRAM slowdown is `dram_slowdown` (e.g. Figure 4(b)'s 4.7%):
    /// scales with the mean fault latency.
    pub fn slowdown_scale(&self) -> f64 {
        self.mean_fault_secs() / self.link.fault_latency_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_dram_is_the_identity() {
        let b = HybridBlade::new(1.0, 1.0, RemoteLink::pcie_x4());
        assert!((b.mean_fault_secs() - RemoteLink::pcie_x4().fault_latency_secs()).abs() < 1e-12);
        assert!((b.relative_capacity_cost() - 1.0).abs() < 1e-12);
        assert!((b.slowdown_scale() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn half_dram_with_skewed_reuse_is_cheap_and_not_much_slower() {
        // Warm-page migration turns 50% DRAM capacity into ~90% of hits.
        let b = HybridBlade::new(0.5, 0.9, RemoteLink::pcie_x4());
        assert!(b.relative_capacity_cost() < 0.65);
        assert!(b.relative_power() < 0.6);
        // Mean fault cost grows, but far less than the flash/DRAM
        // latency ratio.
        let scale = b.slowdown_scale();
        assert!((1.5..=4.5).contains(&scale), "scale {scale}");
    }

    #[test]
    fn all_flash_blade_is_cheapest_but_slow() {
        let b = HybridBlade::new(0.0, 0.0, RemoteLink::pcie_x4());
        assert!(b.relative_capacity_cost() < 0.25);
        // ~102 us flash read vs 4.36 us DRAM fault: ~24x the latency.
        assert!(b.slowdown_scale() > 15.0, "scale {}", b.slowdown_scale());
    }

    #[test]
    fn websearch_stays_viable_at_half_dram() {
        // Figure 4(b): websearch suffers 4.7% with an all-DRAM blade.
        // With 50% DRAM and 90% warm hits, the slowdown stays near 1.5x
        // that — i.e. ~10%, which a 35%-cheaper blade may well buy.
        let b = HybridBlade::new(0.5, 0.9, RemoteLink::pcie_x4());
        let slowdown = 0.047 * b.slowdown_scale();
        assert!(slowdown < 0.17, "hybrid websearch slowdown {slowdown}");
    }

    #[test]
    #[should_panic(expected = "migration")]
    fn rejects_worse_than_random_placement() {
        HybridBlade::new(0.5, 0.2, RemoteLink::pcie_x4());
    }
}
