//! Trace-driven two-level memory simulator.
//!
//! The replay loop is chunked: accesses are staged into small
//! struct-of-arrays scratch lanes (packed `u32` pages plus write bytes,
//! from the live generator or decoded straight out of a materialized
//! [`MemTraceBuf`]) and consumed by one shared epoch-batch kernel: a
//! monomorphic-per-policy touch pass that records an outcome-code
//! bitmask byte per access ([`crate::policy::PageStore::touch_pass`]),
//! then a branch-free [`wcs_simcore::simd`] fold that pops the code
//! bits into counters. The generator path and the shared-buffer path
//! execute byte-identical simulation code and differ only in where the
//! chunk comes from.

use wcs_simcore::{simd, ThreadPool};
use wcs_workloads::memtrace::{MemTraceBuf, MemTraceGen};

use crate::policy::{PageStore, PolicyKind};

/// Accesses staged per chunk: big enough to amortize the loop switch,
/// small enough that the SoA lanes (16 KiB of pages, 4 KiB of write
/// bytes, 4 KiB of codes) stay in L1/L2 alongside the store's hot
/// columns.
const CHUNK: usize = 4096;

/// Accesses per parallel staging range of [`TwoLevelSim::par_replay`]:
/// 64 epoch chunks, so one pool task decodes enough lanes (1 MiB of
/// pages + 256 KiB of writes) to amortize its scheduling cost.
const PAR_RANGE: usize = 64 * CHUNK;

/// Fixed-size SoA staging lanes for one replay epoch.
#[derive(Debug)]
struct EpochLanes {
    pages: [u32; CHUNK],
    writes: [u8; CHUNK],
    codes: [u8; CHUNK],
}

impl EpochLanes {
    fn new() -> Box<Self> {
        Box::new(EpochLanes {
            pages: [0; CHUNK],
            writes: [0; CHUNK],
            codes: [0; CHUNK],
        })
    }
}

/// Miss statistics from a trace replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MissStats {
    /// Page touches replayed.
    pub accesses: u64,
    /// Touches that faulted to the remote blade.
    pub misses: u64,
    /// Dirty victims written back during swaps.
    pub writebacks: u64,
}

impl MissStats {
    /// Fraction of touches that faulted.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Component-wise sum — the chunk-merge operation of checkpointed
    /// replay. All counters are integers, so merging per-chunk results
    /// in chunk order is exact for every chunk count.
    #[must_use]
    pub fn merged(&self, other: &MissStats) -> MissStats {
        MissStats {
            accesses: self.accesses + other.accesses,
            misses: self.misses + other.misses,
            writebacks: self.writebacks + other.writebacks,
        }
    }
}

/// The two-level (local + remote-blade) memory simulator.
///
/// Models the paper's exclusive hierarchy: pages live either in local
/// memory or on the blade; a fault swaps the touched page with a local
/// victim (dirty victims cost a writeback DMA). Cold misses while local
/// memory is still filling are not charged — the paper measures steady
/// state.
///
/// # Example
/// ```
/// use wcs_memshare::twolevel::TwoLevelSim;
/// use wcs_memshare::policy::PolicyKind;
/// use wcs_workloads::{memtrace, WorkloadId};
/// let mut gen = memtrace::MemTraceGen::new(memtrace::params_for(WorkloadId::Ytube), 3);
/// let mut sim = TwoLevelSim::new(50_000, PolicyKind::Lru, 9);
/// let stats = sim.run(&mut gen, 100_000);
/// assert!(stats.accesses == 100_000);
/// ```
#[derive(Debug)]
pub struct TwoLevelSim {
    local: PageStore,
    warm: bool,
}

impl TwoLevelSim {
    /// Creates a simulator with `local_pages` of first-level memory.
    ///
    /// # Panics
    /// Panics if `local_pages` is zero.
    pub fn new(local_pages: usize, policy: PolicyKind, seed: u64) -> Self {
        TwoLevelSim {
            local: PageStore::new(local_pages, policy, seed),
            warm: false,
        }
    }

    /// Creates a simulator whose trace pages are known to lie in
    /// `[0, universe)` — the usual case when replaying a synthetic trace
    /// of known footprint — so the store can use a dense direct-index
    /// key map instead of hashing. Statistics are bit-identical to
    /// [`new`](Self::new); only lookups get cheaper.
    ///
    /// # Panics
    /// Panics if `local_pages` or `universe` is zero.
    pub fn with_page_universe(
        local_pages: usize,
        policy: PolicyKind,
        seed: u64,
        universe: u64,
    ) -> Self {
        TwoLevelSim {
            local: PageStore::with_universe(local_pages, policy, seed, universe),
            warm: false,
        }
    }

    /// The shared replay kernel: the monomorphic touch pass walks the
    /// store (pointer-heavy, unpredictable) and records one outcome-code
    /// bitmask byte per access, then the branch-free
    /// [`simd::fold_mask_counts`] pass pops the code bits into the
    /// counters. Keeping the accumulation out of the touch loop lets
    /// the compiler vectorize it and keeps the counters out of the
    /// store's cache-miss shadow.
    fn replay_epoch_batch(
        &mut self,
        pages: &[u32],
        writes: &[u8],
        codes: &mut [u8],
        stats: &mut MissStats,
    ) {
        debug_assert!(pages.len() <= CHUNK);
        debug_assert!(pages.len() == writes.len() && writes.len() == codes.len());
        self.local.touch_pass(pages, writes, codes);
        stats.accesses += pages.len() as u64;
        let counts = simd::fold_mask_counts(codes);
        let (misses, writebacks) = (counts[0], counts[1]);
        self.warm |= misses > 0;
        stats.misses += misses;
        stats.writebacks += writebacks;
    }

    /// Replays `n` touches from the generator, returning steady-state
    /// statistics (the fill phase is replayed but not charged).
    pub fn run(&mut self, gen: &mut MemTraceGen, n: u64) -> MissStats {
        let mut stats = MissStats::default();
        let mut lanes = EpochLanes::new();
        let mut left = n;
        while left > 0 {
            let take = (left as usize).min(CHUNK);
            for j in 0..take {
                let a = gen.next_access();
                debug_assert!(a.page <= u64::from(u32::MAX));
                lanes.pages[j] = a.page as u32;
                lanes.writes[j] = u8::from(a.write);
            }
            self.replay_epoch_batch(
                &lanes.pages[..take],
                &lanes.writes[..take],
                &mut lanes.codes[..take],
                &mut stats,
            );
            left -= take as u64;
        }
        stats
    }

    /// Replays accesses `[start, start + n)` of a materialized trace.
    ///
    /// Bit-identical to [`run`](Self::run) over the same accesses: the
    /// buffer stores exactly what the generator would produce, and both
    /// paths feed the same epoch-batch kernel — the buffer path just
    /// decodes its SoA lanes directly, with no intermediate
    /// `PageAccess` structs.
    ///
    /// Also the checkpointed chunk primitive: calling `run_buf` over
    /// any partition of a range, accumulating the returned integer
    /// counters, yields exactly the totals of one whole-range call —
    /// the simulator itself carries the cache state from chunk to
    /// chunk.
    ///
    /// # Panics
    /// Panics if the range runs past the end of the buffer.
    pub fn run_buf(&mut self, buf: &MemTraceBuf, start: usize, n: u64) -> MissStats {
        let mut stats = MissStats::default();
        let mut lanes = EpochLanes::new();
        let mut at = start;
        let end = start + n as usize;
        while at < end {
            let take = (end - at).min(CHUNK);
            buf.fill_chunk_soa(at, &mut lanes.pages[..take], &mut lanes.writes[..take]);
            self.replay_epoch_batch(
                &lanes.pages[..take],
                &lanes.writes[..take],
                &mut lanes.codes[..take],
                &mut stats,
            );
            at += take;
        }
        stats
    }

    /// [`run_buf`](Self::run_buf) with lane staging fanned out over
    /// `pool`.
    ///
    /// The range splits into deterministic [`PAR_RANGE`]-sized chunk
    /// ranges whose SoA lanes (packed pages + write bytes) decode in
    /// parallel — pure per-range work with no simulator state. The
    /// cache then consumes the staged lanes strictly in chunk order:
    /// the simulator's own state at each chunk boundary is the
    /// checkpoint the next chunk resumes from, and the per-chunk
    /// integer counters merge exactly ([`MissStats::merged`]). The
    /// result is bit-identical to [`run_buf`](Self::run_buf) at every
    /// pool size.
    ///
    /// # Panics
    /// Panics if the range runs past the end of the buffer.
    pub fn par_replay(
        &mut self,
        buf: &MemTraceBuf,
        start: usize,
        n: u64,
        pool: &ThreadPool,
    ) -> MissStats {
        let end = start + n as usize;
        let ranges: Vec<(usize, usize)> = (start..end)
            .step_by(PAR_RANGE)
            .map(|at| (at, (end - at).min(PAR_RANGE)))
            .collect();
        let staged = pool.par_map(&ranges, |_, &(at, len)| {
            let mut pages = vec![0u32; len];
            let mut writes = vec![0u8; len];
            buf.fill_chunk_soa(at, &mut pages, &mut writes);
            (pages, writes)
        });
        let mut codes = vec![0u8; CHUNK];
        let mut stats = MissStats::default();
        for (pages, writes) in &staged {
            let mut range_stats = MissStats::default();
            for (p, w) in pages.chunks(CHUNK).zip(writes.chunks(CHUNK)) {
                self.replay_epoch_batch(p, w, &mut codes[..p.len()], &mut range_stats);
            }
            stats = stats.merged(&range_stats);
        }
        stats
    }

    /// Convenience: replay `fill` accesses to warm up, then measure over
    /// `measured` accesses.
    pub fn run_steady(&mut self, gen: &mut MemTraceGen, fill: u64, measured: u64) -> MissStats {
        let _ = self.run(gen, fill);
        self.run(gen, measured)
    }

    /// [`run_steady`](Self::run_steady) over a materialized trace, which
    /// must hold at least `fill + measured` accesses.
    pub fn run_steady_buf(&mut self, buf: &MemTraceBuf, fill: u64, measured: u64) -> MissStats {
        let _ = self.run_buf(buf, 0, fill);
        self.run_buf(buf, fill as usize, measured)
    }

    /// Local capacity in pages.
    pub fn local_pages(&self) -> usize {
        self.local.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcs_workloads::memtrace::{params_for, MemTraceParams};
    use wcs_workloads::WorkloadId;

    fn small_params() -> MemTraceParams {
        MemTraceParams {
            footprint_pages: 10_000,
            zipf_s: 0.8,
            write_fraction: 0.3,
            accesses_per_cpu_sec: 1e5,
        }
    }

    #[test]
    fn bigger_local_memory_misses_less() {
        let p = small_params();
        let mut small = TwoLevelSim::new(1_000, PolicyKind::Random, 1);
        let mut large = TwoLevelSim::new(5_000, PolicyKind::Random, 1);
        let mut g1 = MemTraceGen::new(p, 7);
        let mut g2 = MemTraceGen::new(p, 7);
        let s = small.run_steady(&mut g1, 50_000, 200_000);
        let l = large.run_steady(&mut g2, 50_000, 200_000);
        assert!(
            s.miss_ratio() > l.miss_ratio() * 1.5,
            "{} vs {}",
            s.miss_ratio(),
            l.miss_ratio()
        );
    }

    #[test]
    fn lru_beats_random_on_skewed_traces() {
        let p = MemTraceParams {
            zipf_s: 1.1,
            ..small_params()
        };
        let mut lru = TwoLevelSim::new(2_000, PolicyKind::Lru, 1);
        let mut rnd = TwoLevelSim::new(2_000, PolicyKind::Random, 1);
        let l = lru.run_steady(&mut MemTraceGen::new(p, 3), 50_000, 200_000);
        let r = rnd.run_steady(&mut MemTraceGen::new(p, 3), 50_000, 200_000);
        assert!(
            l.miss_ratio() <= r.miss_ratio() * 1.05,
            "{} vs {}",
            l.miss_ratio(),
            r.miss_ratio()
        );
    }

    #[test]
    fn clock_lands_between_lru_and_random() {
        let p = MemTraceParams {
            zipf_s: 1.0,
            ..small_params()
        };
        let run = |kind| {
            let mut sim = TwoLevelSim::new(2_000, kind, 1);
            sim.run_steady(&mut MemTraceGen::new(p, 5), 50_000, 300_000)
                .miss_ratio()
        };
        let (lru, clock, rnd) = (
            run(PolicyKind::Lru),
            run(PolicyKind::Clock),
            run(PolicyKind::Random),
        );
        // "An implementable policy would have performance between these
        // points" — allow small statistical slack.
        assert!(clock >= lru * 0.95, "clock {clock} vs lru {lru}");
        assert!(clock <= rnd * 1.05, "clock {clock} vs random {rnd}");
    }

    #[test]
    fn writebacks_track_write_fraction() {
        let p = small_params();
        let mut sim = TwoLevelSim::new(1_000, PolicyKind::Random, 1);
        let stats = sim.run_steady(&mut MemTraceGen::new(p, 11), 50_000, 200_000);
        assert!(stats.writebacks > 0);
        assert!(stats.writebacks <= stats.misses);
        // Writeback fraction should be near the steady-state dirty
        // fraction, which exceeds the per-touch write fraction.
        let frac = stats.writebacks as f64 / stats.misses as f64;
        assert!(frac > 0.25, "writeback fraction {frac}");
    }

    #[test]
    fn no_misses_when_footprint_fits() {
        let p = MemTraceParams {
            footprint_pages: 500,
            ..small_params()
        };
        let mut sim = TwoLevelSim::new(1_000, PolicyKind::Lru, 1);
        let stats = sim.run_steady(&mut MemTraceGen::new(p, 13), 10_000, 50_000);
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn paper_workload_traces_run() {
        for id in WorkloadId::ALL {
            let mut sim = TwoLevelSim::new(131_072, PolicyKind::Random, 2);
            let stats = sim.run_steady(&mut MemTraceGen::new(params_for(id), 17), 200_000, 200_000);
            assert_eq!(stats.accesses, 200_000, "{id}");
        }
    }

    #[test]
    fn buffer_replay_is_bit_identical_to_generator_replay() {
        let p = small_params();
        for policy in [PolicyKind::Lru, PolicyKind::Random, PolicyKind::Clock] {
            let mut from_gen = TwoLevelSim::new(1_500, policy, 21);
            let gen_stats = from_gen.run_steady(&mut MemTraceGen::new(p, 23), 60_000, 140_000);

            let buf = MemTraceBuf::generate(p, 23, 200_000);
            let mut from_buf = TwoLevelSim::new(1_500, policy, 21);
            let buf_stats = from_buf.run_steady_buf(&buf, 60_000, 140_000);

            assert_eq!(gen_stats, buf_stats, "{policy:?}");
        }
    }

    #[test]
    fn soa_kernel_matches_scalar_touch_reference() {
        // Independent scalar re-implementation of the replay semantics,
        // driven access by access through the public touch API — the
        // reference the vectorized kernel is pinned to.
        use crate::policy::{PageStore, Touch};
        let p = small_params();
        for policy in [PolicyKind::Lru, PolicyKind::Random, PolicyKind::Clock] {
            let buf = MemTraceBuf::generate(p, 29, 120_000);
            let mut store = PageStore::new(1_200, policy, 31);
            let mut want = MissStats::default();
            for i in 0..buf.len() {
                let a = buf.get(i);
                want.accesses += 1;
                if let Touch::Miss {
                    evicted: Some((_, dirty)),
                } = store.touch(a.page, a.write)
                {
                    want.misses += 1;
                    want.writebacks += u64::from(dirty);
                }
            }
            let mut sim = TwoLevelSim::new(1_200, policy, 31);
            let got = sim.run_buf(&buf, 0, 120_000);
            assert_eq!(got, want, "{policy:?}");
        }
    }

    #[test]
    fn dense_universe_store_replays_identically() {
        let p = small_params();
        let buf = MemTraceBuf::generate(p, 37, 150_000);
        for policy in [PolicyKind::Lru, PolicyKind::Random, PolicyKind::Clock] {
            let mut open = TwoLevelSim::new(2_000, policy, 5);
            let mut dense = TwoLevelSim::with_page_universe(2_000, policy, 5, p.footprint_pages);
            assert_eq!(
                open.run_buf(&buf, 0, 150_000),
                dense.run_buf(&buf, 0, 150_000),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn par_replay_is_bit_identical_to_run_buf_at_every_pool_size() {
        let p = small_params();
        // Deliberately not a multiple of PAR_RANGE or CHUNK, with an
        // offset start, so both tails are exercised.
        let buf = MemTraceBuf::generate(p, 43, 700_001);
        for policy in [PolicyKind::Lru, PolicyKind::Random, PolicyKind::Clock] {
            let mut whole = TwoLevelSim::new(1_500, policy, 11);
            let want = whole.run_buf(&buf, 3, 700_001 - 3);
            for threads in [1usize, 2, 8] {
                let pool = ThreadPool::new(threads).unwrap();
                let mut sim = TwoLevelSim::new(1_500, policy, 11);
                let got = sim.par_replay(&buf, 3, 700_001 - 3, &pool);
                assert_eq!(got, want, "{policy:?} threads={threads}");
            }
        }
    }

    #[test]
    fn chunked_replay_is_invariant_to_chunk_count() {
        let p = small_params();
        let buf = MemTraceBuf::generate(p, 41, 130_000);
        let mut whole = TwoLevelSim::new(1_500, PolicyKind::Random, 11);
        let want = whole.run_buf(&buf, 0, 130_000);
        for chunks in [1usize, 2, 7, 64] {
            let mut sim = TwoLevelSim::new(1_500, PolicyKind::Random, 11);
            let per = 130_000usize.div_ceil(chunks);
            let mut merged = MissStats::default();
            let mut at = 0usize;
            while at < 130_000 {
                let take = (130_000 - at).min(per);
                merged = merged.merged(&sim.run_buf(&buf, at, take as u64));
                at += take;
            }
            assert_eq!(merged, want, "chunks={chunks}");
        }
    }
}
