//! Trace-driven two-level memory simulator.
//!
//! The replay loop is chunked: accesses are staged into a small scratch
//! buffer (from the live generator or from a materialized
//! [`MemTraceBuf`]) and consumed by one shared epoch-batch kernel, so
//! the generator path and the shared-buffer path execute byte-identical
//! simulation code and differ only in where the chunk comes from.

use wcs_workloads::memtrace::{MemTraceBuf, MemTraceGen, PageAccess};

use crate::policy::{PageStore, PolicyKind, Touch};

/// Accesses staged per chunk: big enough to amortize the loop switch,
/// small enough to stay in L1/L2 alongside the store's hot columns.
const CHUNK: usize = 4096;

/// Miss statistics from a trace replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MissStats {
    /// Page touches replayed.
    pub accesses: u64,
    /// Touches that faulted to the remote blade.
    pub misses: u64,
    /// Dirty victims written back during swaps.
    pub writebacks: u64,
}

impl MissStats {
    /// Fraction of touches that faulted.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// The two-level (local + remote-blade) memory simulator.
///
/// Models the paper's exclusive hierarchy: pages live either in local
/// memory or on the blade; a fault swaps the touched page with a local
/// victim (dirty victims cost a writeback DMA). Cold misses while local
/// memory is still filling are not charged — the paper measures steady
/// state.
///
/// # Example
/// ```
/// use wcs_memshare::twolevel::TwoLevelSim;
/// use wcs_memshare::policy::PolicyKind;
/// use wcs_workloads::{memtrace, WorkloadId};
/// let mut gen = memtrace::MemTraceGen::new(memtrace::params_for(WorkloadId::Ytube), 3);
/// let mut sim = TwoLevelSim::new(50_000, PolicyKind::Lru, 9);
/// let stats = sim.run(&mut gen, 100_000);
/// assert!(stats.accesses == 100_000);
/// ```
#[derive(Debug)]
pub struct TwoLevelSim {
    local: PageStore,
    warm: bool,
}

impl TwoLevelSim {
    /// Creates a simulator with `local_pages` of first-level memory.
    ///
    /// # Panics
    /// Panics if `local_pages` is zero.
    pub fn new(local_pages: usize, policy: PolicyKind, seed: u64) -> Self {
        TwoLevelSim {
            local: PageStore::new(local_pages, policy, seed),
            warm: false,
        }
    }

    /// The shared replay kernel, split into two phases per staged epoch:
    /// the touch loop walks the store (pointer-heavy, unpredictable) and
    /// records one outcome code per access, then a branch-free
    /// `chunks_exact` pass folds the codes into the counters. Keeping
    /// the accumulation out of the touch loop lets the compiler unroll
    /// and vectorize it, and keeps the counters out of the store's
    /// cache-miss shadow.
    ///
    /// Codes: 0 = hit or uncharged cold fill, 1 = clean miss, 2 = dirty
    /// miss (miss + writeback).
    fn replay_epoch_batch(&mut self, chunk: &[PageAccess], stats: &mut MissStats) {
        debug_assert!(chunk.len() <= CHUNK);
        let mut codes = [0u8; CHUNK];
        for (a, code) in chunk.iter().zip(codes.iter_mut()) {
            *code = match self.local.touch(a.page, a.write) {
                Touch::Hit | Touch::Miss { evicted: None } => 0,
                Touch::Miss {
                    evicted: Some((_, dirty)),
                } => 1 + dirty as u8,
            };
        }
        stats.accesses += chunk.len() as u64;
        let (mut misses, mut writebacks) = (0u64, 0u64);
        let mut lanes = codes[..chunk.len()].chunks_exact(8);
        for lane in lanes.by_ref() {
            let (mut m, mut w) = (0u64, 0u64);
            for &c in lane {
                m += u64::from(c != 0);
                w += u64::from(c == 2);
            }
            misses += m;
            writebacks += w;
        }
        for &c in lanes.remainder() {
            misses += u64::from(c != 0);
            writebacks += u64::from(c == 2);
        }
        self.warm |= misses > 0;
        stats.misses += misses;
        stats.writebacks += writebacks;
    }

    /// Replays `n` touches from the generator, returning steady-state
    /// statistics (the fill phase is replayed but not charged).
    pub fn run(&mut self, gen: &mut MemTraceGen, n: u64) -> MissStats {
        let mut stats = MissStats::default();
        let mut scratch = [PageAccess {
            page: 0,
            write: false,
        }; CHUNK];
        let mut left = n;
        while left > 0 {
            let take = (left as usize).min(CHUNK);
            for slot in &mut scratch[..take] {
                *slot = gen.next_access();
            }
            self.replay_epoch_batch(&scratch[..take], &mut stats);
            left -= take as u64;
        }
        stats
    }

    /// Replays accesses `[start, start + n)` of a materialized trace.
    ///
    /// Bit-identical to [`run`](Self::run) over the same accesses: the
    /// buffer stores exactly what the generator would produce, and both
    /// paths feed the same epoch-batch kernel.
    ///
    /// # Panics
    /// Panics if the range runs past the end of the buffer.
    pub fn run_buf(&mut self, buf: &MemTraceBuf, start: usize, n: u64) -> MissStats {
        let mut stats = MissStats::default();
        let mut scratch = [PageAccess {
            page: 0,
            write: false,
        }; CHUNK];
        let mut at = start;
        let end = start + n as usize;
        while at < end {
            let take = (end - at).min(CHUNK);
            buf.fill_chunk(at, &mut scratch[..take]);
            self.replay_epoch_batch(&scratch[..take], &mut stats);
            at += take;
        }
        stats
    }

    /// Convenience: replay `fill` accesses to warm up, then measure over
    /// `measured` accesses.
    pub fn run_steady(&mut self, gen: &mut MemTraceGen, fill: u64, measured: u64) -> MissStats {
        let _ = self.run(gen, fill);
        self.run(gen, measured)
    }

    /// [`run_steady`](Self::run_steady) over a materialized trace, which
    /// must hold at least `fill + measured` accesses.
    pub fn run_steady_buf(&mut self, buf: &MemTraceBuf, fill: u64, measured: u64) -> MissStats {
        let _ = self.run_buf(buf, 0, fill);
        self.run_buf(buf, fill as usize, measured)
    }

    /// Local capacity in pages.
    pub fn local_pages(&self) -> usize {
        self.local.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcs_workloads::memtrace::{params_for, MemTraceParams};
    use wcs_workloads::WorkloadId;

    fn small_params() -> MemTraceParams {
        MemTraceParams {
            footprint_pages: 10_000,
            zipf_s: 0.8,
            write_fraction: 0.3,
            accesses_per_cpu_sec: 1e5,
        }
    }

    #[test]
    fn bigger_local_memory_misses_less() {
        let p = small_params();
        let mut small = TwoLevelSim::new(1_000, PolicyKind::Random, 1);
        let mut large = TwoLevelSim::new(5_000, PolicyKind::Random, 1);
        let mut g1 = MemTraceGen::new(p, 7);
        let mut g2 = MemTraceGen::new(p, 7);
        let s = small.run_steady(&mut g1, 50_000, 200_000);
        let l = large.run_steady(&mut g2, 50_000, 200_000);
        assert!(
            s.miss_ratio() > l.miss_ratio() * 1.5,
            "{} vs {}",
            s.miss_ratio(),
            l.miss_ratio()
        );
    }

    #[test]
    fn lru_beats_random_on_skewed_traces() {
        let p = MemTraceParams {
            zipf_s: 1.1,
            ..small_params()
        };
        let mut lru = TwoLevelSim::new(2_000, PolicyKind::Lru, 1);
        let mut rnd = TwoLevelSim::new(2_000, PolicyKind::Random, 1);
        let l = lru.run_steady(&mut MemTraceGen::new(p, 3), 50_000, 200_000);
        let r = rnd.run_steady(&mut MemTraceGen::new(p, 3), 50_000, 200_000);
        assert!(
            l.miss_ratio() <= r.miss_ratio() * 1.05,
            "{} vs {}",
            l.miss_ratio(),
            r.miss_ratio()
        );
    }

    #[test]
    fn clock_lands_between_lru_and_random() {
        let p = MemTraceParams {
            zipf_s: 1.0,
            ..small_params()
        };
        let run = |kind| {
            let mut sim = TwoLevelSim::new(2_000, kind, 1);
            sim.run_steady(&mut MemTraceGen::new(p, 5), 50_000, 300_000)
                .miss_ratio()
        };
        let (lru, clock, rnd) = (
            run(PolicyKind::Lru),
            run(PolicyKind::Clock),
            run(PolicyKind::Random),
        );
        // "An implementable policy would have performance between these
        // points" — allow small statistical slack.
        assert!(clock >= lru * 0.95, "clock {clock} vs lru {lru}");
        assert!(clock <= rnd * 1.05, "clock {clock} vs random {rnd}");
    }

    #[test]
    fn writebacks_track_write_fraction() {
        let p = small_params();
        let mut sim = TwoLevelSim::new(1_000, PolicyKind::Random, 1);
        let stats = sim.run_steady(&mut MemTraceGen::new(p, 11), 50_000, 200_000);
        assert!(stats.writebacks > 0);
        assert!(stats.writebacks <= stats.misses);
        // Writeback fraction should be near the steady-state dirty
        // fraction, which exceeds the per-touch write fraction.
        let frac = stats.writebacks as f64 / stats.misses as f64;
        assert!(frac > 0.25, "writeback fraction {frac}");
    }

    #[test]
    fn no_misses_when_footprint_fits() {
        let p = MemTraceParams {
            footprint_pages: 500,
            ..small_params()
        };
        let mut sim = TwoLevelSim::new(1_000, PolicyKind::Lru, 1);
        let stats = sim.run_steady(&mut MemTraceGen::new(p, 13), 10_000, 50_000);
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn paper_workload_traces_run() {
        for id in WorkloadId::ALL {
            let mut sim = TwoLevelSim::new(131_072, PolicyKind::Random, 2);
            let stats = sim.run_steady(&mut MemTraceGen::new(params_for(id), 17), 200_000, 200_000);
            assert_eq!(stats.accesses, 200_000, "{id}");
        }
    }

    #[test]
    fn buffer_replay_is_bit_identical_to_generator_replay() {
        let p = small_params();
        for policy in [PolicyKind::Lru, PolicyKind::Random, PolicyKind::Clock] {
            let mut from_gen = TwoLevelSim::new(1_500, policy, 21);
            let gen_stats = from_gen.run_steady(&mut MemTraceGen::new(p, 23), 60_000, 140_000);

            let buf = MemTraceBuf::generate(p, 23, 200_000);
            let mut from_buf = TwoLevelSim::new(1_500, policy, 21);
            let buf_stats = from_buf.run_steady_buf(&buf, 60_000, 140_000);

            assert_eq!(gen_stats, buf_stats, "{policy:?}");
        }
    }
}
