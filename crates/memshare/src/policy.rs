//! Replacement policies for the local page store.
//!
//! The paper evaluates LRU and random replacement, "expecting that an
//! implementable policy would have performance between these points"; we
//! add clock (the usual implementable policy) to check that expectation.
//!
//! The slot bookkeeping (key map, dirty/ref bits, recency links, clock
//! hand) lives in the shared [`wcs_simcore::slotcache::SlotCache`]
//! kernel — the same machinery the flash cache index uses — so this
//! module only holds the *policy*: which victim mechanism each
//! [`PolicyKind`] invokes on a full-store miss.

use wcs_simcore::memo::{MemoHash, MemoKey};
use wcs_simcore::slotcache::SlotCache;
use wcs_simcore::SimRng;

/// Which replacement policy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PolicyKind {
    /// Least-recently-used (upper bound among the paper's pair).
    Lru,
    /// Random victim (lower bound among the paper's pair).
    Random,
    /// Clock / second-chance (implementable middle ground).
    Clock,
}

impl PolicyKind {
    /// Stable label (also the policy's memoization identity).
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Random => "random",
            PolicyKind::Clock => "clock",
        }
    }
}

impl MemoHash for PolicyKind {
    fn memo_hash(&self, key: &mut MemoKey) {
        *key = key.push_str(self.label());
    }
}

/// Result of touching a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Touch {
    /// The page was resident.
    Hit,
    /// The page was not resident; it has been installed, evicting the
    /// contained victim (None while the store is still filling).
    Miss {
        /// Evicted page and whether it was dirty, if the store was full.
        evicted: Option<(u64, bool)>,
    },
}

/// A fixed-capacity local page store with a pluggable replacement policy.
///
/// Tracks dirty bits so the two-level simulator can count victim
/// writebacks.
///
/// # Example
/// ```
/// use wcs_memshare::policy::{PageStore, PolicyKind, Touch};
/// let mut store = PageStore::new(2, PolicyKind::Lru, 1);
/// assert!(matches!(store.touch(1, false), Touch::Miss { evicted: None }));
/// assert!(matches!(store.touch(1, false), Touch::Hit));
/// ```
#[derive(Debug)]
pub struct PageStore {
    kind: PolicyKind,
    cache: SlotCache,
    rng: SimRng,
}

impl PageStore {
    /// Creates an empty store holding up to `capacity` pages.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, kind: PolicyKind, seed: u64) -> Self {
        PageStore {
            kind,
            // Only LRU consults the recency list; skipping its upkeep for
            // random/clock cannot change any outcome.
            cache: SlotCache::new(capacity, kind == PolicyKind::Lru),
            rng: SimRng::seed_from(seed),
        }
    }

    /// Creates a store whose page numbers are known to lie in
    /// `[0, universe)`, backing the key map with a dense direct-index
    /// table instead of a hash map. Behaviour is identical to
    /// [`new`](Self::new) — slot order, victim choice, and dirty
    /// tracking are all unchanged — only lookups get cheaper.
    ///
    /// # Panics
    /// Panics if `capacity` or `universe` is zero.
    pub fn with_universe(capacity: usize, kind: PolicyKind, seed: u64, universe: u64) -> Self {
        PageStore {
            kind,
            cache: SlotCache::with_dense_keys(capacity, kind == PolicyKind::Lru, universe),
            rng: SimRng::seed_from(seed),
        }
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Capacity in pages.
    pub fn capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// True if `page` is resident (no policy state update).
    pub fn contains(&self, page: u64) -> bool {
        self.cache.contains(page)
    }

    /// Touches `page`, marking it dirty when `write` is set. Returns
    /// whether it hit, and on a full-store miss which victim was evicted.
    pub fn touch(&mut self, page: u64, write: bool) -> Touch {
        if let Some(slot) = self.cache.lookup(page) {
            self.cache.touch_existing(slot, write);
            return Touch::Hit;
        }
        if !self.cache.is_full() {
            self.cache.insert(page, write);
            return Touch::Miss { evicted: None };
        }
        let victim = match self.kind {
            PolicyKind::Lru => self.cache.lru_victim(),
            PolicyKind::Random => self.rng.index(self.cache.len()) as u32,
            PolicyKind::Clock => self.cache.clock_victim(),
        };
        let evicted = self.cache.replace(victim, page, write);
        Touch::Miss {
            evicted: Some(evicted),
        }
    }

    /// The epoch touch pass of the vectorized replay kernel: touches
    /// every access of an SoA chunk (`pages[i]`, write iff
    /// `writes[i] != 0`) and records one outcome-code bitmask byte per
    /// access into `codes` — [`CODE_MISS`] for a charged (full-store)
    /// miss, `| `[`CODE_WRITEBACK`] when the victim was dirty. Hits and
    /// uncharged cold fills record 0.
    ///
    /// Bit-identical to calling [`touch`](Self::touch) per access: the
    /// policy dispatch is hoisted out of the loop (one monomorphic loop
    /// per [`PolicyKind`]), but slot operations and RNG draws happen in
    /// exactly the same order.
    ///
    /// # Panics
    /// Panics if the slice lengths disagree.
    pub fn touch_pass(&mut self, pages: &[u32], writes: &[u8], codes: &mut [u8]) {
        assert!(
            pages.len() == writes.len() && pages.len() == codes.len(),
            "SoA chunk length mismatch"
        );
        let (cache, rng) = (&mut self.cache, &mut self.rng);
        match self.kind {
            PolicyKind::Lru => touch_loop(cache, pages, writes, codes, |c| c.lru_victim()),
            PolicyKind::Random => {
                touch_loop(cache, pages, writes, codes, |c| rng.index(c.len()) as u32)
            }
            PolicyKind::Clock => touch_loop(cache, pages, writes, codes, |c| c.clock_victim()),
        }
    }
}

/// Outcome-code bit: the access faulted against a full store.
pub const CODE_MISS: u8 = 1;
/// Outcome-code bit: the evicted victim was dirty (writeback DMA).
pub const CODE_WRITEBACK: u8 = 2;

/// The shared inner loop of [`PageStore::touch_pass`], monomorphized per
/// victim selector so the per-access policy `match` disappears.
#[inline]
fn touch_loop(
    cache: &mut SlotCache,
    pages: &[u32],
    writes: &[u8],
    codes: &mut [u8],
    mut victim: impl FnMut(&mut SlotCache) -> u32,
) {
    for ((&page, &w), code) in pages.iter().zip(writes).zip(codes.iter_mut()) {
        let page = u64::from(page);
        let write = w != 0;
        *code = if let Some(slot) = cache.lookup(page) {
            cache.touch_existing(slot, write);
            0
        } else if !cache.is_full() {
            cache.insert(page, write);
            0
        } else {
            let v = victim(cache);
            let (_, dirty) = cache.replace(v, page, write);
            CODE_MISS | (u8::from(dirty) * CODE_WRITEBACK)
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut s = PageStore::new(2, PolicyKind::Lru, 0);
        s.touch(1, false);
        s.touch(2, false);
        s.touch(1, false); // 1 is now MRU
        let t = s.touch(3, false);
        assert_eq!(
            t,
            Touch::Miss {
                evicted: Some((2, false))
            }
        );
        assert!(s.contains(1) && s.contains(3) && !s.contains(2));
    }

    #[test]
    fn dirty_bit_propagates_to_eviction() {
        let mut s = PageStore::new(1, PolicyKind::Lru, 0);
        s.touch(7, true);
        let t = s.touch(8, false);
        assert_eq!(
            t,
            Touch::Miss {
                evicted: Some((7, true))
            }
        );
    }

    #[test]
    fn random_stays_within_capacity() {
        let mut s = PageStore::new(64, PolicyKind::Random, 5);
        for page in 0..10_000u64 {
            s.touch(page % 512, page % 3 == 0);
            assert!(s.len() <= 64);
        }
        assert_eq!(s.len(), 64);
    }

    #[test]
    fn clock_gives_second_chances() {
        let mut s = PageStore::new(3, PolicyKind::Clock, 0);
        s.touch(1, false);
        s.touch(2, false);
        s.touch(3, false);
        // Re-reference 1 so its ref bit is set; the next miss should
        // evict 2 or 3, never 1 (1 gets a second chance).
        s.touch(1, false);
        // Clear ref bits by forcing a sweep: all have ref=1, so the hand
        // clears 1 then evicts 2 (first with cleared bit after 1's
        // second chance). Either way, 1 must survive exactly this miss.
        s.touch(4, false);
        assert!(s.contains(4));
        assert!(s.len() == 3);
    }

    #[test]
    fn lru_inclusion_property() {
        // A larger LRU store hits whenever a smaller one does (stack
        // property) — checked empirically on a skewed stream.
        let mut small = PageStore::new(32, PolicyKind::Lru, 0);
        let mut large = PageStore::new(128, PolicyKind::Lru, 0);
        let mut rng = SimRng::seed_from(9);
        for _ in 0..20_000 {
            let page = (rng.uniform() * rng.uniform() * 4096.0) as u64;
            let small_hit = matches!(small.touch(page, false), Touch::Hit);
            let large_hit = matches!(large.touch(page, false), Touch::Hit);
            if small_hit {
                assert!(large_hit, "inclusion violated at page {page}");
            }
        }
    }

    #[test]
    fn touch_pass_matches_scalar_touch_for_every_policy_and_index() {
        // The vectorized epoch pass must reproduce, access by access,
        // what the scalar touch API reports — for all three policies and
        // for both key-index kinds.
        let universe = 600u64;
        let mut rng = SimRng::seed_from(0xACE5);
        let n = 8_000;
        let pages: Vec<u32> = (0..n)
            .map(|_| rng.index(universe as usize) as u32)
            .collect();
        let writes: Vec<u8> = (0..n).map(|_| u8::from(rng.chance(0.3))).collect();
        for kind in [PolicyKind::Lru, PolicyKind::Random, PolicyKind::Clock] {
            let stores = [
                PageStore::new(96, kind, 42),
                PageStore::with_universe(96, kind, 42, universe),
            ];
            for mut soa in stores {
                let mut scalar = PageStore::new(96, kind, 42);
                let mut want = vec![0u8; n];
                for (i, w) in want.iter_mut().enumerate() {
                    *w = match scalar.touch(u64::from(pages[i]), writes[i] != 0) {
                        Touch::Hit | Touch::Miss { evicted: None } => 0,
                        Touch::Miss {
                            evicted: Some((_, dirty)),
                        } => CODE_MISS | (u8::from(dirty) * CODE_WRITEBACK),
                    };
                }
                let mut got = vec![0u8; n];
                // Feed the pass in ragged chunks to cover resume points.
                let mut at = 0;
                for take in [1usize, 7, 512, 4096, n] {
                    let end = (at + take).min(n);
                    soa.touch_pass(&pages[at..end], &writes[at..end], &mut got[at..end]);
                    at = end;
                }
                soa.touch_pass(&pages[at..], &writes[at..], &mut got[at..]);
                assert_eq!(got, want, "{kind:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        PageStore::new(0, PolicyKind::Lru, 0);
    }
}
