//! Replacement policies for the local page store.
//!
//! The paper evaluates LRU and random replacement, "expecting that an
//! implementable policy would have performance between these points"; we
//! add clock (the usual implementable policy) to check that expectation.
//!
//! The slot bookkeeping (key map, dirty/ref bits, recency links, clock
//! hand) lives in the shared [`wcs_simcore::slotcache::SlotCache`]
//! kernel — the same machinery the flash cache index uses — so this
//! module only holds the *policy*: which victim mechanism each
//! [`PolicyKind`] invokes on a full-store miss.

use wcs_simcore::memo::{MemoHash, MemoKey};
use wcs_simcore::slotcache::SlotCache;
use wcs_simcore::SimRng;

/// Which replacement policy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PolicyKind {
    /// Least-recently-used (upper bound among the paper's pair).
    Lru,
    /// Random victim (lower bound among the paper's pair).
    Random,
    /// Clock / second-chance (implementable middle ground).
    Clock,
}

impl PolicyKind {
    /// Stable label (also the policy's memoization identity).
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Random => "random",
            PolicyKind::Clock => "clock",
        }
    }
}

impl MemoHash for PolicyKind {
    fn memo_hash(&self, key: &mut MemoKey) {
        *key = key.push_str(self.label());
    }
}

/// Result of touching a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Touch {
    /// The page was resident.
    Hit,
    /// The page was not resident; it has been installed, evicting the
    /// contained victim (None while the store is still filling).
    Miss {
        /// Evicted page and whether it was dirty, if the store was full.
        evicted: Option<(u64, bool)>,
    },
}

/// A fixed-capacity local page store with a pluggable replacement policy.
///
/// Tracks dirty bits so the two-level simulator can count victim
/// writebacks.
///
/// # Example
/// ```
/// use wcs_memshare::policy::{PageStore, PolicyKind, Touch};
/// let mut store = PageStore::new(2, PolicyKind::Lru, 1);
/// assert!(matches!(store.touch(1, false), Touch::Miss { evicted: None }));
/// assert!(matches!(store.touch(1, false), Touch::Hit));
/// ```
#[derive(Debug)]
pub struct PageStore {
    kind: PolicyKind,
    cache: SlotCache,
    rng: SimRng,
}

impl PageStore {
    /// Creates an empty store holding up to `capacity` pages.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, kind: PolicyKind, seed: u64) -> Self {
        PageStore {
            kind,
            // Only LRU consults the recency list; skipping its upkeep for
            // random/clock cannot change any outcome.
            cache: SlotCache::new(capacity, kind == PolicyKind::Lru),
            rng: SimRng::seed_from(seed),
        }
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Capacity in pages.
    pub fn capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// True if `page` is resident (no policy state update).
    pub fn contains(&self, page: u64) -> bool {
        self.cache.contains(page)
    }

    /// Touches `page`, marking it dirty when `write` is set. Returns
    /// whether it hit, and on a full-store miss which victim was evicted.
    pub fn touch(&mut self, page: u64, write: bool) -> Touch {
        if let Some(slot) = self.cache.lookup(page) {
            self.cache.touch_existing(slot, write);
            return Touch::Hit;
        }
        if !self.cache.is_full() {
            self.cache.insert(page, write);
            return Touch::Miss { evicted: None };
        }
        let victim = match self.kind {
            PolicyKind::Lru => self.cache.lru_victim(),
            PolicyKind::Random => self.rng.index(self.cache.len()) as u32,
            PolicyKind::Clock => self.cache.clock_victim(),
        };
        let evicted = self.cache.replace(victim, page, write);
        Touch::Miss {
            evicted: Some(evicted),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut s = PageStore::new(2, PolicyKind::Lru, 0);
        s.touch(1, false);
        s.touch(2, false);
        s.touch(1, false); // 1 is now MRU
        let t = s.touch(3, false);
        assert_eq!(
            t,
            Touch::Miss {
                evicted: Some((2, false))
            }
        );
        assert!(s.contains(1) && s.contains(3) && !s.contains(2));
    }

    #[test]
    fn dirty_bit_propagates_to_eviction() {
        let mut s = PageStore::new(1, PolicyKind::Lru, 0);
        s.touch(7, true);
        let t = s.touch(8, false);
        assert_eq!(
            t,
            Touch::Miss {
                evicted: Some((7, true))
            }
        );
    }

    #[test]
    fn random_stays_within_capacity() {
        let mut s = PageStore::new(64, PolicyKind::Random, 5);
        for page in 0..10_000u64 {
            s.touch(page % 512, page % 3 == 0);
            assert!(s.len() <= 64);
        }
        assert_eq!(s.len(), 64);
    }

    #[test]
    fn clock_gives_second_chances() {
        let mut s = PageStore::new(3, PolicyKind::Clock, 0);
        s.touch(1, false);
        s.touch(2, false);
        s.touch(3, false);
        // Re-reference 1 so its ref bit is set; the next miss should
        // evict 2 or 3, never 1 (1 gets a second chance).
        s.touch(1, false);
        // Clear ref bits by forcing a sweep: all have ref=1, so the hand
        // clears 1 then evicts 2 (first with cleared bit after 1's
        // second chance). Either way, 1 must survive exactly this miss.
        s.touch(4, false);
        assert!(s.contains(4));
        assert!(s.len() == 3);
    }

    #[test]
    fn lru_inclusion_property() {
        // A larger LRU store hits whenever a smaller one does (stack
        // property) — checked empirically on a skewed stream.
        let mut small = PageStore::new(32, PolicyKind::Lru, 0);
        let mut large = PageStore::new(128, PolicyKind::Lru, 0);
        let mut rng = SimRng::seed_from(9);
        for _ in 0..20_000 {
            let page = (rng.uniform() * rng.uniform() * 4096.0) as u64;
            let small_hit = matches!(small.touch(page, false), Touch::Hit);
            let large_hit = matches!(large.touch(page, false), Touch::Hit);
            if small_hit {
                assert!(large_hit, "inclusion violated at page {page}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        PageStore::new(0, PolicyKind::Lru, 0);
    }
}
