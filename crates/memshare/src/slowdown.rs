//! Converting two-level miss rates into workload slowdowns (Figure 4(b)).

use wcs_simcore::ConfigError;
use wcs_workloads::memtrace::{params_for, MemTraceGen};
use wcs_workloads::WorkloadId;

use crate::link::RemoteLink;
use crate::policy::PolicyKind;
use crate::twolevel::{MissStats, TwoLevelSim};

/// The paper's trace baseline in 4 KiB pages: 2 GiB of first-level
/// memory (it studied 4 GiB and 2 GiB and reports the conservative 2 GiB
/// numbers).
pub const BASELINE_2GIB_PAGES: usize = 524_288;

/// Configuration of a slowdown estimate.
#[derive(Debug, Clone, Copy)]
pub struct SlowdownConfig {
    /// Local memory as a fraction of the 2 GiB baseline (the paper
    /// studies 0.25 and 0.125).
    pub local_fraction: f64,
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Link / latency model.
    pub link: RemoteLink,
    /// Warmup accesses before measuring.
    pub fill: u64,
    /// Measured accesses.
    pub measured: u64,
    /// RNG seed.
    pub seed: u64,
}

impl SlowdownConfig {
    /// The paper's primary configuration: 25% local memory, random
    /// replacement, whole-page PCIe transfers.
    pub fn paper_default() -> Self {
        SlowdownConfig {
            local_fraction: 0.25,
            policy: PolicyKind::Random,
            link: RemoteLink::pcie_x4(),
            fill: 2_000_000,
            measured: 2_000_000,
            seed: 0xB1ADE,
        }
    }

    /// Same but with the critical-block-first optimization.
    pub fn paper_cbf() -> Self {
        SlowdownConfig {
            link: RemoteLink::pcie_x4_cbf(),
            ..Self::paper_default()
        }
    }
}

/// Result of a slowdown estimate for one workload.
#[derive(Debug, Clone, Copy)]
pub struct SlowdownResult {
    /// The measured two-level statistics.
    pub stats: MissStats,
    /// Remote faults per second of CPU work.
    pub faults_per_cpu_sec: f64,
    /// Fractional slowdown (0.047 = 4.7%).
    pub slowdown: f64,
}

impl SlowdownResult {
    /// The multiplicative factor to apply to CPU time (>= 1).
    pub fn cpu_inflation(&self) -> f64 {
        1.0 + self.slowdown
    }

    /// The same miss behaviour re-costed over a different link: slowdown
    /// is `faults_per_cpu_sec * fault_latency`, so swapping the link only
    /// rescales it. Used to price degraded modes (e.g. disk swap while
    /// the blade is down) without replaying the trace.
    pub fn with_link(&self, link: &RemoteLink) -> SlowdownResult {
        SlowdownResult {
            stats: self.stats,
            faults_per_cpu_sec: self.faults_per_cpu_sec,
            slowdown: self.faults_per_cpu_sec * link.fault_latency_secs(),
        }
    }
}

/// Estimates the slowdown `workload` suffers with a remote memory blade.
///
/// Replays the workload's synthetic page trace through the two-level
/// simulator with `local_fraction` of the 2 GiB baseline kept local, then
/// converts the steady-state miss ratio into time: each fault stalls the
/// CPU for the link's fault latency, and the workload touches pages at
/// its calibrated rate per second of CPU work.
///
/// # Errors
/// Rejects a `local_fraction` outside `(0, 1]`.
pub fn estimate_slowdown(
    workload: WorkloadId,
    config: &SlowdownConfig,
) -> Result<SlowdownResult, ConfigError> {
    ConfigError::check_f64(
        "local_fraction",
        config.local_fraction,
        "must be in (0, 1]",
        config.local_fraction > 0.0 && config.local_fraction <= 1.0,
    )?;
    let params = params_for(workload);
    let local_pages = ((BASELINE_2GIB_PAGES as f64) * config.local_fraction) as usize;
    let mut sim = TwoLevelSim::new(local_pages.max(1), config.policy, config.seed);
    let mut gen = MemTraceGen::new(params, config.seed ^ 0xD15C);
    let stats = sim.run_steady(&mut gen, config.fill, config.measured);
    let faults_per_cpu_sec = params.accesses_per_cpu_sec * stats.miss_ratio();
    let slowdown = faults_per_cpu_sec * config.link.fault_latency_secs();
    Ok(SlowdownResult {
        stats,
        faults_per_cpu_sec,
        slowdown,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_constant_is_2gib() {
        assert_eq!(BASELINE_2GIB_PAGES, 524_288);
    }

    /// Figure 4(b), PCIe x4 row: websearch 4.7%, webmail 0.2%,
    /// ytube 1.4%, mapred-wc 0.7%, mapred-wr 0.7%.
    #[test]
    fn figure4b_pcie_row() {
        let cfg = SlowdownConfig::paper_default();
        let targets = [
            (WorkloadId::Websearch, 0.047),
            (WorkloadId::Webmail, 0.002),
            (WorkloadId::Ytube, 0.014),
            (WorkloadId::MapredWc, 0.007),
            (WorkloadId::MapredWr, 0.007),
        ];
        for (id, target) in targets {
            let r = estimate_slowdown(id, &cfg).unwrap();
            assert!(
                (r.slowdown - target).abs() < target * 0.35 + 0.001,
                "{id}: slowdown {:.4} vs paper {target}",
                r.slowdown
            );
        }
    }

    /// Figure 4(b), CBF row: websearch 1.2%, ytube 0.4%.
    #[test]
    fn figure4b_cbf_row() {
        let cfg = SlowdownConfig::paper_cbf();
        let r = estimate_slowdown(WorkloadId::Websearch, &cfg).unwrap();
        assert!(
            (r.slowdown - 0.012).abs() < 0.005,
            "websearch CBF slowdown {:.4}",
            r.slowdown
        );
        let r = estimate_slowdown(WorkloadId::Ytube, &cfg).unwrap();
        assert!(
            (r.slowdown - 0.004).abs() < 0.003,
            "ytube CBF {:.4}",
            r.slowdown
        );
    }

    /// The paper: 12.5% local roughly doubles the websearch slowdown
    /// ("up to 5% for 25%, and 10% for 12.5%"). Our synthetic traces get
    /// most of the way there.
    #[test]
    fn halving_local_memory_increases_slowdown() {
        let base =
            estimate_slowdown(WorkloadId::Websearch, &SlowdownConfig::paper_default()).unwrap();
        let half = estimate_slowdown(
            WorkloadId::Websearch,
            &SlowdownConfig {
                local_fraction: 0.125,
                ..SlowdownConfig::paper_default()
            },
        )
        .unwrap();
        let ratio = half.slowdown / base.slowdown;
        assert!(ratio > 1.25, "12.5%-local should hurt more (ratio {ratio})");
    }

    /// "LRU results are nearly the same" as random (the paper).
    #[test]
    fn lru_close_to_random() {
        let rnd =
            estimate_slowdown(WorkloadId::Websearch, &SlowdownConfig::paper_default()).unwrap();
        let lru = estimate_slowdown(
            WorkloadId::Websearch,
            &SlowdownConfig {
                policy: PolicyKind::Lru,
                ..SlowdownConfig::paper_default()
            },
        )
        .unwrap();
        let rel = (lru.slowdown - rnd.slowdown).abs() / rnd.slowdown;
        assert!(rel < 0.35, "LRU vs random differ by {rel}");
    }

    #[test]
    fn cbf_cuts_slowdown_by_latency_ratio() {
        let pcie = estimate_slowdown(WorkloadId::Ytube, &SlowdownConfig::paper_default()).unwrap();
        let cbf = estimate_slowdown(WorkloadId::Ytube, &SlowdownConfig::paper_cbf()).unwrap();
        let ratio = pcie.slowdown / cbf.slowdown;
        assert!((3.0..=5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn rejects_bad_fraction() {
        let r = estimate_slowdown(
            WorkloadId::Webmail,
            &SlowdownConfig {
                local_fraction: 0.0,
                ..SlowdownConfig::paper_default()
            },
        );
        assert!(r.is_err());
    }
}
