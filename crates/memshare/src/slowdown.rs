//! Converting two-level miss rates into workload slowdowns (Figure 4(b)).

use std::sync::Arc;

use wcs_simcore::memo::{MemoCache, MemoKey, MemoStats};
use wcs_simcore::obs::Registry;
use wcs_simcore::{ConfigError, ThreadPool};
use wcs_workloads::memtrace::{params_for, MemTraceBuf, MemTraceGen, MemTraceParams};
use wcs_workloads::WorkloadId;

use crate::link::RemoteLink;
use crate::policy::PolicyKind;
use crate::twolevel::{MissStats, TwoLevelSim};

/// The paper's trace baseline in 4 KiB pages: 2 GiB of first-level
/// memory (it studied 4 GiB and 2 GiB and reports the conservative 2 GiB
/// numbers).
pub const BASELINE_2GIB_PAGES: usize = 524_288;

/// Configuration of a slowdown estimate.
#[derive(Debug, Clone, Copy)]
pub struct SlowdownConfig {
    /// Local memory as a fraction of the 2 GiB baseline (the paper
    /// studies 0.25 and 0.125).
    pub local_fraction: f64,
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Link / latency model.
    pub link: RemoteLink,
    /// Warmup accesses before measuring.
    pub fill: u64,
    /// Measured accesses.
    pub measured: u64,
    /// RNG seed.
    pub seed: u64,
}

impl SlowdownConfig {
    /// The paper's primary configuration: 25% local memory, random
    /// replacement, whole-page PCIe transfers.
    pub fn paper_default() -> Self {
        SlowdownConfig {
            local_fraction: 0.25,
            policy: PolicyKind::Random,
            link: RemoteLink::pcie_x4(),
            fill: 2_000_000,
            measured: 2_000_000,
            seed: 0xB1ADE,
        }
    }

    /// Same but with the critical-block-first optimization.
    pub fn paper_cbf() -> Self {
        SlowdownConfig {
            link: RemoteLink::pcie_x4_cbf(),
            ..Self::paper_default()
        }
    }
}

/// Result of a slowdown estimate for one workload.
#[derive(Debug, Clone, Copy)]
pub struct SlowdownResult {
    /// The measured two-level statistics.
    pub stats: MissStats,
    /// Remote faults per second of CPU work.
    pub faults_per_cpu_sec: f64,
    /// Fractional slowdown (0.047 = 4.7%).
    pub slowdown: f64,
}

impl SlowdownResult {
    /// The multiplicative factor to apply to CPU time (>= 1).
    pub fn cpu_inflation(&self) -> f64 {
        1.0 + self.slowdown
    }

    /// The same miss behaviour re-costed over a different link: slowdown
    /// is `faults_per_cpu_sec * fault_latency`, so swapping the link only
    /// rescales it. Used to price degraded modes (e.g. disk swap while
    /// the blade is down) without replaying the trace.
    pub fn with_link(&self, link: &RemoteLink) -> SlowdownResult {
        SlowdownResult {
            stats: self.stats,
            faults_per_cpu_sec: self.faults_per_cpu_sec,
            slowdown: self.faults_per_cpu_sec * link.fault_latency_secs(),
        }
    }
}

/// Memoization state for two-level trace replays.
///
/// Sweeps evaluate many design points whose memshare configurations
/// differ only in link or TCO parameters while sharing the expensive
/// part — the multi-million-access two-level replay. This cache keys
/// each replay by everything that determines its [`MissStats`] (trace
/// params + both seeds + store geometry + policy + access counts) and
/// *excludes* the link, whose latency is applied analytically afterward:
/// a PCIe point and a CBF point therefore share one replay.
///
/// Materialized traces are shared too, behind `Arc`s, in compact
/// [`MemTraceBuf`] form.
#[derive(Debug, Default)]
pub struct ReplayMemo {
    traces: MemoCache<Arc<MemTraceBuf>>,
    runs: MemoCache<MissStats>,
    obs: Registry,
}

impl ReplayMemo {
    /// An empty, enabled memo.
    pub fn new() -> Self {
        Self::with_enabled(true)
    }

    /// A memo in bypass mode: every estimate replays its trace from the
    /// live generator, exactly like the pre-memoization cold path.
    pub fn disabled() -> Self {
        Self::with_enabled(false)
    }

    /// A memo that caches iff `enabled`.
    pub fn with_enabled(enabled: bool) -> Self {
        ReplayMemo {
            traces: MemoCache::with_enabled(enabled),
            runs: MemoCache::with_enabled(enabled),
            obs: Registry::disabled(),
        }
    }

    /// Returns this memo with `memshare.*` metrics recorded into
    /// `registry`. Metrics are derived from the (cached) replay results,
    /// never from cache behaviour, so the reported values are identical
    /// with memoization on or off.
    #[must_use]
    pub fn with_obs(mut self, registry: Registry) -> Self {
        self.obs = registry;
        self
    }

    /// Whether this memo stores results.
    pub fn is_enabled(&self) -> bool {
        self.runs.is_enabled()
    }

    /// Combined hit/miss counters (trace materializations + replays).
    pub fn stats(&self) -> MemoStats {
        self.traces.stats().merged(&self.runs.stats())
    }

    /// The materialized `(params, seed)` trace of at least `n` accesses,
    /// shared across every caller that asks for the same one.
    pub fn trace(&self, params: MemTraceParams, seed: u64, n: usize) -> Arc<MemTraceBuf> {
        self.trace_par(params, seed, n, &ThreadPool::serial())
    }

    /// [`trace`](Self::trace) with a cache miss materialized on `pool`'s
    /// threads. The parallel generator is bit-identical to the
    /// sequential one for every pool size, so the memo key is shared
    /// with [`trace`](Self::trace).
    pub fn trace_par(
        &self,
        params: MemTraceParams,
        seed: u64,
        n: usize,
        pool: &ThreadPool,
    ) -> Arc<MemTraceBuf> {
        let key = MemoKey::new("memtrace-buf")
            .push(&params)
            .push_u64(seed)
            .push_usize(n)
            .finish();
        self.traces.get_or_compute(key, || {
            Arc::new(MemTraceBuf::generate_par(params, seed, n, pool))
        })
    }
}

/// Estimates the slowdown `workload` suffers with a remote memory blade.
///
/// Replays the workload's synthetic page trace through the two-level
/// simulator with `local_fraction` of the 2 GiB baseline kept local, then
/// converts the steady-state miss ratio into time: each fault stalls the
/// CPU for the link's fault latency, and the workload touches pages at
/// its calibrated rate per second of CPU work.
///
/// # Errors
/// Rejects a `local_fraction` outside `(0, 1]`.
pub fn estimate_slowdown(
    workload: WorkloadId,
    config: &SlowdownConfig,
) -> Result<SlowdownResult, ConfigError> {
    estimate_slowdown_with(workload, config, &ReplayMemo::disabled())
}

/// [`estimate_slowdown`] with replays (and materialized traces) shared
/// through `memo`.
///
/// Bit-identical to the unmemoized estimate: the replay is keyed by
/// every input that determines its statistics, the materialized buffer
/// reproduces the generator exactly, and the link latency — deliberately
/// *not* part of the key — only rescales the result analytically.
///
/// # Errors
/// Rejects a `local_fraction` outside `(0, 1]`.
pub fn estimate_slowdown_with(
    workload: WorkloadId,
    config: &SlowdownConfig,
    memo: &ReplayMemo,
) -> Result<SlowdownResult, ConfigError> {
    estimate_slowdown_pooled(workload, config, memo, &ThreadPool::serial())
}

/// [`estimate_slowdown_with`] with the trace materialization and the
/// replay's SoA lane staging fanned out on `pool`'s threads. The cache
/// touch loop itself stays sequential — the cache state threads access
/// to access — but it consumes pre-staged chunk ranges whose state
/// checkpoints merge in chunk order, so the result is bit-identical at
/// every pool size.
///
/// # Errors
/// Rejects a `local_fraction` outside `(0, 1]`.
pub fn estimate_slowdown_pooled(
    workload: WorkloadId,
    config: &SlowdownConfig,
    memo: &ReplayMemo,
    pool: &ThreadPool,
) -> Result<SlowdownResult, ConfigError> {
    ConfigError::check_f64(
        "local_fraction",
        config.local_fraction,
        "must be in (0, 1]",
        config.local_fraction > 0.0 && config.local_fraction <= 1.0,
    )?;
    let params = params_for(workload);
    let local_pages = ((BASELINE_2GIB_PAGES as f64) * config.local_fraction) as usize;
    let trace_seed = config.seed ^ 0xD15C;
    let key = MemoKey::new("twolevel-replay")
        .push(&params)
        .push_u64(trace_seed)
        .push_u64(config.seed)
        .push_usize(local_pages.max(1))
        .push(&config.policy)
        .push_u64(config.fill)
        .push_u64(config.measured)
        .finish();
    let stats = memo.runs.get_or_compute(key, || {
        // Trace pages are scrambled modulo the footprint, so the store
        // can index them densely.
        let mut sim = TwoLevelSim::with_page_universe(
            local_pages.max(1),
            config.policy,
            config.seed,
            params.footprint_pages,
        );
        if memo.is_enabled() {
            let total = (config.fill + config.measured) as usize;
            let buf = memo.trace_par(params, trace_seed, total, pool);
            let _ = sim.par_replay(&buf, 0, config.fill, pool);
            sim.par_replay(&buf, config.fill as usize, config.measured, pool)
        } else {
            // True cold path: stream straight from the generator, no
            // materialization.
            let mut gen = MemTraceGen::new(params, trace_seed);
            sim.run_steady(&mut gen, config.fill, config.measured)
        }
    });
    let faults_per_cpu_sec = params.accesses_per_cpu_sec * stats.miss_ratio();
    let slowdown = faults_per_cpu_sec * config.link.fault_latency_secs();
    // Observability: recorded from the returned (cached or recomputed)
    // statistics, so the series is bit-identical across threads and memo
    // modes. CBF savings are the remote-stall nanoseconds the configured
    // link avoids relative to whole-page PCIe x4 transfers.
    let obs = &memo.obs;
    obs.counter("memshare.replays").inc();
    obs.counter("memshare.accesses").add(stats.accesses);
    obs.counter("memshare.page_faults").add(stats.misses);
    obs.counter("memshare.writebacks").add(stats.writebacks);
    let whole_page = RemoteLink::pcie_x4().fault_latency_secs();
    let saved_secs = (whole_page - config.link.fault_latency_secs()).max(0.0);
    obs.counter("memshare.cbf_saved_ns")
        .add((stats.misses as f64 * saved_secs * 1e9).round() as u64);
    Ok(SlowdownResult {
        stats,
        faults_per_cpu_sec,
        slowdown,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_constant_is_2gib() {
        assert_eq!(BASELINE_2GIB_PAGES, 524_288);
    }

    /// Figure 4(b), PCIe x4 row: websearch 4.7%, webmail 0.2%,
    /// ytube 1.4%, mapred-wc 0.7%, mapred-wr 0.7%.
    #[test]
    fn figure4b_pcie_row() {
        let cfg = SlowdownConfig::paper_default();
        let targets = [
            (WorkloadId::Websearch, 0.047),
            (WorkloadId::Webmail, 0.002),
            (WorkloadId::Ytube, 0.014),
            (WorkloadId::MapredWc, 0.007),
            (WorkloadId::MapredWr, 0.007),
        ];
        for (id, target) in targets {
            let r = estimate_slowdown(id, &cfg).unwrap();
            assert!(
                (r.slowdown - target).abs() < target * 0.35 + 0.001,
                "{id}: slowdown {:.4} vs paper {target}",
                r.slowdown
            );
        }
    }

    /// Figure 4(b), CBF row: websearch 1.2%, ytube 0.4%.
    #[test]
    fn figure4b_cbf_row() {
        let cfg = SlowdownConfig::paper_cbf();
        let r = estimate_slowdown(WorkloadId::Websearch, &cfg).unwrap();
        assert!(
            (r.slowdown - 0.012).abs() < 0.005,
            "websearch CBF slowdown {:.4}",
            r.slowdown
        );
        let r = estimate_slowdown(WorkloadId::Ytube, &cfg).unwrap();
        assert!(
            (r.slowdown - 0.004).abs() < 0.003,
            "ytube CBF {:.4}",
            r.slowdown
        );
    }

    /// The paper: 12.5% local roughly doubles the websearch slowdown
    /// ("up to 5% for 25%, and 10% for 12.5%"). Our synthetic traces get
    /// most of the way there.
    #[test]
    fn halving_local_memory_increases_slowdown() {
        let base =
            estimate_slowdown(WorkloadId::Websearch, &SlowdownConfig::paper_default()).unwrap();
        let half = estimate_slowdown(
            WorkloadId::Websearch,
            &SlowdownConfig {
                local_fraction: 0.125,
                ..SlowdownConfig::paper_default()
            },
        )
        .unwrap();
        let ratio = half.slowdown / base.slowdown;
        assert!(ratio > 1.25, "12.5%-local should hurt more (ratio {ratio})");
    }

    /// "LRU results are nearly the same" as random (the paper).
    #[test]
    fn lru_close_to_random() {
        let rnd =
            estimate_slowdown(WorkloadId::Websearch, &SlowdownConfig::paper_default()).unwrap();
        let lru = estimate_slowdown(
            WorkloadId::Websearch,
            &SlowdownConfig {
                policy: PolicyKind::Lru,
                ..SlowdownConfig::paper_default()
            },
        )
        .unwrap();
        let rel = (lru.slowdown - rnd.slowdown).abs() / rnd.slowdown;
        assert!(rel < 0.35, "LRU vs random differ by {rel}");
    }

    #[test]
    fn cbf_cuts_slowdown_by_latency_ratio() {
        let pcie = estimate_slowdown(WorkloadId::Ytube, &SlowdownConfig::paper_default()).unwrap();
        let cbf = estimate_slowdown(WorkloadId::Ytube, &SlowdownConfig::paper_cbf()).unwrap();
        let ratio = pcie.slowdown / cbf.slowdown;
        assert!((3.0..=5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn memoized_estimate_is_bit_identical_and_shares_links() {
        // Use a reduced-effort config so the test stays fast.
        let quick = SlowdownConfig {
            fill: 150_000,
            measured: 150_000,
            ..SlowdownConfig::paper_default()
        };
        let memo = ReplayMemo::new();
        for id in [WorkloadId::Websearch, WorkloadId::Webmail] {
            let cold = estimate_slowdown(id, &quick).unwrap();
            let warm = estimate_slowdown_with(id, &quick, &memo).unwrap();
            assert_eq!(cold.stats, warm.stats, "{id}");
            assert_eq!(cold.slowdown.to_bits(), warm.slowdown.to_bits(), "{id}");
            // A CBF estimate differs only in link latency: it must hit
            // the same replay entry.
            let cbf_cfg = SlowdownConfig {
                link: RemoteLink::pcie_x4_cbf(),
                ..quick
            };
            let cbf = estimate_slowdown_with(id, &cbf_cfg, &memo).unwrap();
            assert_eq!(cbf.stats, warm.stats, "{id}: replay not shared");
            // CBF strictly helps whenever any fault occurred (webmail's
            // short trace may see none at all).
            assert!(
                cbf.slowdown <= warm.slowdown
                    && (warm.slowdown == 0.0 || cbf.slowdown < warm.slowdown),
                "{id}: CBF should be no slower ({} vs {})",
                cbf.slowdown,
                warm.slowdown
            );
        }
        let s = memo.stats();
        assert!(s.hits >= 2, "CBF rows should hit (stats {s:?})");
    }

    #[test]
    fn rejects_bad_fraction() {
        let r = estimate_slowdown(
            WorkloadId::Webmail,
            &SlowdownConfig {
                local_fraction: 0.0,
                ..SlowdownConfig::paper_default()
            },
        );
        assert!(r.is_err());
    }
}
