//! Victim-writeback decoupling via a free local page-frame pool.
//!
//! Section 3.4: "by keeping a small pool of free local page frames, the
//! critical-path page fetch can be decoupled from the victim page
//! writeback (and requisite TLB shootdown, on multicore blades)." This
//! module models that mechanism: with a free pool, a fault costs only
//! the fetch; the victim's writeback (and shootdown) happens off the
//! critical path, as long as the pool does not run dry. Without a pool,
//! every fault serializes fetch behind victim eviction.

use wcs_simcore::SimRng;

use crate::link::RemoteLink;

/// Cost model for the victim path.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VictimCosts {
    /// Victim page writeback DMA time, microseconds (page transfer on
    /// the same link).
    pub writeback_us: f64,
    /// TLB shootdown cost on a multicore blade, microseconds.
    pub shootdown_us: f64,
}

impl VictimCosts {
    /// Paper-consistent defaults: a 4 KiB writeback costs the same 4 us
    /// the fetch does; a multicore shootdown costs ~1 us (IPIs + waits).
    pub fn paper_default() -> Self {
        VictimCosts {
            writeback_us: 4.0,
            shootdown_us: 1.0,
        }
    }
}

/// Statistics from a free-pool simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PoolStats {
    /// Faults simulated.
    pub faults: u64,
    /// Faults that found a free frame (fetch-only critical path).
    pub decoupled: u64,
    /// Mean critical-path latency per fault, seconds.
    pub mean_fault_secs: f64,
}

impl PoolStats {
    /// Fraction of faults served off the decoupled fast path.
    pub fn decoupled_fraction(&self) -> f64 {
        if self.faults == 0 {
            0.0
        } else {
            self.decoupled as f64 / self.faults as f64
        }
    }
}

/// Simulates `faults` remote-page faults against a free pool of
/// `pool_frames` frames that a background reclaimer refills at
/// `reclaim_rate` frames per fault interval (relative rate: 1.0 means
/// reclaim keeps pace with faulting exactly).
///
/// A fault takes a frame from the pool when one is free (critical path =
/// fetch only) or stalls for the full evict+fetch sequence when the pool
/// is dry. Dirty victims add the writeback to the reclaimer's work, and
/// the shootdown cost lands on whichever path performs the eviction.
///
/// # Panics
/// Panics on a zero-frame pool, a non-positive reclaim rate, or a dirty
/// fraction outside `[0, 1]`.
pub fn simulate_pool(
    link: RemoteLink,
    costs: VictimCosts,
    pool_frames: u32,
    reclaim_rate: f64,
    dirty_fraction: f64,
    faults: u64,
    seed: u64,
) -> PoolStats {
    assert!(pool_frames > 0, "pool needs at least one frame");
    assert!(
        reclaim_rate.is_finite() && reclaim_rate > 0.0,
        "reclaim rate > 0"
    );
    assert!(
        (0.0..=1.0).contains(&dirty_fraction),
        "dirty fraction in [0,1]"
    );
    let mut rng = SimRng::seed_from(seed);
    let fetch = link.fault_latency_secs();
    let evict_extra = |dirty: bool| -> f64 {
        let wb = if dirty { costs.writeback_us } else { 0.0 };
        (wb + costs.shootdown_us) * 1e-6
    };

    let mut free = pool_frames as f64;
    let mut total_latency = 0.0;
    let mut decoupled = 0u64;
    for _ in 0..faults {
        // Background reclaim progress since the last fault.
        free = (free + reclaim_rate).min(pool_frames as f64);
        let dirty = rng.chance(dirty_fraction);
        if free >= 1.0 {
            free -= 1.0;
            decoupled += 1;
            total_latency += fetch;
        } else {
            // Pool dry: evict synchronously, then fetch.
            total_latency += fetch + evict_extra(dirty);
        }
    }
    PoolStats {
        faults,
        decoupled,
        mean_fault_secs: total_latency / faults as f64,
    }
}

/// The mean fault latency with no pool at all (always synchronous
/// eviction) — the comparison baseline.
pub fn no_pool_fault_secs(link: RemoteLink, costs: VictimCosts, dirty_fraction: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&dirty_fraction),
        "dirty fraction in [0,1]"
    );
    link.fault_latency_secs() + (dirty_fraction * costs.writeback_us + costs.shootdown_us) * 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_pool_decouples_everything() {
        let stats = simulate_pool(
            RemoteLink::pcie_x4(),
            VictimCosts::paper_default(),
            32,
            1.1, // reclaim keeps ahead
            0.4,
            50_000,
            1,
        );
        assert!(stats.decoupled_fraction() > 0.999);
        let fetch_only = RemoteLink::pcie_x4().fault_latency_secs();
        assert!((stats.mean_fault_secs - fetch_only).abs() < 1e-9);
    }

    #[test]
    fn starved_reclaimer_degrades_to_synchronous() {
        let stats = simulate_pool(
            RemoteLink::pcie_x4(),
            VictimCosts::paper_default(),
            8,
            0.5, // reclaim at half the fault rate
            0.4,
            50_000,
            2,
        );
        // Roughly half the faults stall.
        assert!(
            (0.4..0.6).contains(&stats.decoupled_fraction()),
            "decoupled {}",
            stats.decoupled_fraction()
        );
        let sync = no_pool_fault_secs(RemoteLink::pcie_x4(), VictimCosts::paper_default(), 0.4);
        let fetch = RemoteLink::pcie_x4().fault_latency_secs();
        assert!(stats.mean_fault_secs > fetch);
        assert!(stats.mean_fault_secs < sync);
    }

    #[test]
    fn pool_saves_meaningful_latency() {
        // The mechanism matters: the synchronous path is ~30%+ slower
        // than fetch-only for a typical dirty fraction.
        let sync = no_pool_fault_secs(RemoteLink::pcie_x4(), VictimCosts::paper_default(), 0.4);
        let fetch = RemoteLink::pcie_x4().fault_latency_secs();
        assert!(sync / fetch > 1.3, "ratio {}", sync / fetch);
    }

    #[test]
    fn cbf_benefits_compound_with_the_pool() {
        // CBF on the fetch plus a healthy pool: the full fast path.
        let stats = simulate_pool(
            RemoteLink::pcie_x4_cbf(),
            VictimCosts::paper_default(),
            32,
            1.2,
            0.4,
            20_000,
            3,
        );
        let slowest = no_pool_fault_secs(RemoteLink::pcie_x4(), VictimCosts::paper_default(), 0.4);
        assert!(
            slowest / stats.mean_fault_secs > 5.0,
            "fast path only {}x better",
            slowest / stats.mean_fault_secs
        );
    }

    #[test]
    #[should_panic(expected = "pool needs")]
    fn rejects_zero_pool() {
        simulate_pool(
            RemoteLink::pcie_x4(),
            VictimCosts::paper_default(),
            0,
            1.0,
            0.1,
            10,
            1,
        );
    }
}
