//! Enclosure designs, rack density, and the cooling solutions the
//! unified designs consume.

use crate::airflow::AirPath;

/// Physical geometry of a rack.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RackGeometry {
    /// Total rack units.
    pub total_u: u32,
    /// Rack units reserved for power distribution and top-of-rack
    /// switching.
    pub reserved_u: u32,
}

impl RackGeometry {
    /// A standard 42U rack with 2U reserved.
    pub fn standard_42u() -> Self {
        RackGeometry {
            total_u: 42,
            reserved_u: 2,
        }
    }

    /// Rack units available for compute enclosures.
    pub fn usable_u(&self) -> u32 {
        self.total_u.saturating_sub(self.reserved_u)
    }
}

impl Default for RackGeometry {
    fn default() -> Self {
        Self::standard_42u()
    }
}

/// One of the paper's enclosure/packaging design points.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnclosureDesign {
    /// Human-readable name.
    pub name: String,
    /// Height of one enclosure in rack units.
    pub enclosure_u: u32,
    /// Independently cooled systems per enclosure.
    pub systems_per_enclosure: u32,
    /// Power budget per system, watts.
    pub system_power_w: f64,
    /// The airflow path through one system.
    pub air_path: AirPath,
    /// Wire-to-air fan efficiency.
    pub fan_eta: f64,
}

impl EnclosureDesign {
    /// Conventional rack of 1U "pizza box" servers: one server per 1U,
    /// serial front-to-back airflow with pre-heat (the paper's baseline,
    /// 40 servers per rack).
    pub fn conventional_1u() -> Self {
        EnclosureDesign {
            name: "conventional 1U".into(),
            enclosure_u: 1,
            systems_per_enclosure: 1,
            system_power_w: 300.0,
            air_path: AirPath::new(0.7, 10.0, 12.0, 1.5, 0.6),
            fan_eta: 0.25,
        }
    }

    /// Dual-entry 5U enclosure with directed (vertical, parallel)
    /// airflow: 40 blades of 75 W each, inserted front and back onto a
    /// midplane (Figure 3(a)). Eight enclosures fill a 42U rack for 320
    /// systems.
    pub fn dual_entry() -> Self {
        EnclosureDesign {
            name: "dual-entry directed airflow".into(),
            enclosure_u: 5,
            systems_per_enclosure: 40,
            system_power_w: 75.0,
            air_path: AirPath::new(0.25, 12.0, 15.0, 1.0, 0.6),
            fan_eta: 0.25,
        }
    }

    /// Microblade carriers with aggregated heat removal (Figure 3(b)):
    /// four 25 W modules per carrier blade, heat piped to one shared
    /// sink; carriers live in a dual-entry enclosure. ~1250+ systems per
    /// rack.
    pub fn microblade() -> Self {
        EnclosureDesign {
            name: "microblade aggregated cooling".into(),
            enclosure_u: 5,
            systems_per_enclosure: 160, // 40 carriers x 4 modules
            system_power_w: 25.0,
            // The shared optimized sink gives a single short channel
            // with a lower component loss coefficient and no pre-heat.
            air_path: AirPath::new(0.20, 11.0, 15.0, 1.0, 0.3),
            fan_eta: 0.25,
        }
    }

    /// Cooling efficiency: heat watts removed per fan watt, at the
    /// design's per-system power budget.
    pub fn cooling_efficiency(&self) -> f64 {
        self.air_path.cooling_efficiency(self.fan_eta)
    }

    /// Fan power per system, watts.
    pub fn fan_power_per_system_w(&self) -> f64 {
        self.air_path.fan_power_w(self.system_power_w, self.fan_eta)
    }

    /// Systems per rack under the given geometry.
    pub fn systems_per_rack(&self, rack: &RackGeometry) -> u32 {
        (rack.usable_u() / self.enclosure_u) * self.systems_per_enclosure
    }

    /// Summarizes this design as a [`CoolingSolution`] relative to the
    /// conventional baseline.
    pub fn solution(&self, rack: &RackGeometry) -> CoolingSolution {
        let base = EnclosureDesign::conventional_1u();
        let gain = self.cooling_efficiency() / base.cooling_efficiency();
        CoolingSolution {
            name: self.name.clone(),
            efficiency_gain: gain,
            cooling_scale: 1.0 / gain,
            systems_per_rack: self.systems_per_rack(rack),
        }
    }
}

/// The cooling outputs the TCO pipeline consumes.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CoolingSolution {
    /// Design name.
    pub name: String,
    /// Cooling efficiency relative to the conventional baseline
    /// (2.0 = twice the heat removed per fan watt).
    pub efficiency_gain: f64,
    /// Scale factor to apply to the burdened cooling terms (L1, and with
    /// it K2·L1): the reciprocal of the efficiency gain.
    pub cooling_scale: f64,
    /// Achievable density, systems per rack.
    pub systems_per_rack: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_rack_holds_40() {
        let rack = RackGeometry::standard_42u();
        let conv = EnclosureDesign::conventional_1u();
        assert_eq!(conv.systems_per_rack(&rack), 40);
    }

    #[test]
    fn dual_entry_hits_320_per_rack() {
        let rack = RackGeometry::standard_42u();
        assert_eq!(EnclosureDesign::dual_entry().systems_per_rack(&rack), 320);
    }

    #[test]
    fn microblade_hits_1250_plus_per_rack() {
        let rack = RackGeometry::standard_42u();
        let n = EnclosureDesign::microblade().systems_per_rack(&rack);
        assert!(n >= 1250, "microblade density {n}");
    }

    #[test]
    fn dual_entry_doubles_cooling_efficiency() {
        let sol = EnclosureDesign::dual_entry().solution(&RackGeometry::standard_42u());
        assert!(
            (1.9..=3.5).contains(&sol.efficiency_gain),
            "dual-entry gain {} should be ~2x",
            sol.efficiency_gain
        );
    }

    #[test]
    fn microblade_quadruples_cooling_efficiency() {
        let sol = EnclosureDesign::microblade().solution(&RackGeometry::standard_42u());
        assert!(
            sol.efficiency_gain >= 3.5,
            "microblade gain {} should be ~4x",
            sol.efficiency_gain
        );
    }

    #[test]
    fn cooling_scale_is_reciprocal() {
        let sol = EnclosureDesign::dual_entry().solution(&RackGeometry::standard_42u());
        assert!((sol.cooling_scale * sol.efficiency_gain - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fan_power_reasonable() {
        // A 75 W blade should not need more than a few watts of fan.
        let w = EnclosureDesign::dual_entry().fan_power_per_system_w();
        assert!(w < 10.0, "fan {w} W");
        // And the 300 W pizza box needs much more in total.
        let conv = EnclosureDesign::conventional_1u().fan_power_per_system_w();
        assert!(conv > w);
    }
}
