//! Packaging and cooling models (Section 3.3 / Figure 3 of the paper).
//!
//! The paper proposes two packaging innovations and claims they improve
//! cooling efficiency by roughly 2x and 4x while enabling much denser
//! racks (320 and ~1250 systems per 42U rack):
//!
//! 1. **Dual-entry enclosures with directed airflow** — blades insert
//!    from front and back onto a midplane; cold air is ducted vertically
//!    through all blades *in parallel* (instead of serially front to
//!    back), shortening the flow length, removing pre-heat, and cutting
//!    pressure drop.
//! 2. **Board-level aggregated heat removal** — small 25 W "microblade"
//!    modules are interspersed with planar heat pipes (effective
//!    conductivity ~3x copper) that carry heat to one large, optimized
//!    heat sink instead of many small ones.
//!
//! This crate models both with first-order physics: a duct-flow pressure
//! model feeding a fan-power calculation ([`airflow`]), a thermal
//! resistance network for the heat path ([`thermal`]), and enclosure
//! geometry for rack density ([`enclosure`]). The paper omits its own
//! calculations "for space", so the published results (~50% cooling-
//! efficiency gain, 2x/4x, 320 and 1250 systems/rack) serve as the
//! validation targets for the model rather than as hard-coded answers.
//!
//! # Example
//! ```
//! use wcs_cooling::{EnclosureDesign, RackGeometry};
//!
//! let conv = EnclosureDesign::conventional_1u();
//! let dual = EnclosureDesign::dual_entry();
//! let rack = RackGeometry::standard_42u();
//! assert!(dual.cooling_efficiency() > 1.9 * conv.cooling_efficiency());
//! assert_eq!(dual.systems_per_rack(&rack), 320);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod airflow;
pub mod datacenter;
pub mod enclosure;
pub mod faults;
pub mod thermal;
pub mod transient;

pub use enclosure::{CoolingSolution, EnclosureDesign, RackGeometry};
pub use faults::{FanWall, ThrottleState};
