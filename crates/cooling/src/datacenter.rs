//! Datacenter-level roll-up: racks, power, and cooling load for a fleet.
//!
//! The paper's motivation is datacenter-scale ("the datacenter
//! infrastructure is often the largest capital and operating expense");
//! this module turns a packaging design plus a fleet size into floor
//! space and cooling load, including the CRAC (computer-room air
//! conditioner) electricity that the burdened-cost model's `L1` term
//! prices.

use crate::enclosure::{EnclosureDesign, RackGeometry};

/// A datacenter sizing result for one packaging design.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FleetFootprint {
    /// Number of racks.
    pub racks: u32,
    /// Total IT power (servers only), kW.
    pub it_kw: f64,
    /// Total fan power inside the enclosures, kW.
    pub fan_kw: f64,
    /// CRAC electricity to remove the IT + fan heat, kW.
    pub crac_kw: f64,
    /// Floor area at the given rack pitch, square meters.
    pub floor_m2: f64,
}

impl FleetFootprint {
    /// Power usage effectiveness of the mechanical side alone:
    /// (IT + fan + CRAC) / IT.
    pub fn mechanical_pue(&self) -> f64 {
        (self.it_kw + self.fan_kw + self.crac_kw) / self.it_kw
    }
}

/// Coefficient of performance of the cooling plant: watts of heat moved
/// per watt of CRAC electricity. Patel's chip-to-datacenter work uses
/// values around 1.2-1.5 for conventional raised-floor rooms.
pub const CRAC_COP: f64 = 1.25;

/// Floor area per rack including aisle share, square meters.
pub const RACK_PITCH_M2: f64 = 2.5;

/// Sizes the datacenter footprint for `servers` systems packaged with
/// `design`.
///
/// # Panics
/// Panics if `servers` is zero.
pub fn fleet_footprint(
    design: &EnclosureDesign,
    rack: &RackGeometry,
    servers: u32,
) -> FleetFootprint {
    assert!(servers > 0, "fleet needs at least one server");
    let per_rack = design.systems_per_rack(rack).max(1);
    let racks = servers.div_ceil(per_rack);
    let it_kw = servers as f64 * design.system_power_w / 1000.0;
    let fan_kw = servers as f64 * design.fan_power_per_system_w() / 1000.0;
    let crac_kw = (it_kw + fan_kw) / CRAC_COP;
    FleetFootprint {
        racks,
        it_kw,
        fan_kw,
        crac_kw,
        floor_m2: racks as f64 * RACK_PITCH_M2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denser_packaging_needs_fewer_racks() {
        let rack = RackGeometry::standard_42u();
        let conv = fleet_footprint(&EnclosureDesign::conventional_1u(), &rack, 10_000);
        let dual = fleet_footprint(&EnclosureDesign::dual_entry(), &rack, 10_000);
        let micro = fleet_footprint(&EnclosureDesign::microblade(), &rack, 10_000);
        assert!(dual.racks < conv.racks / 4);
        assert!(micro.racks < dual.racks);
        assert!(micro.floor_m2 < conv.floor_m2 / 10.0);
    }

    #[test]
    fn pue_improves_with_better_packaging() {
        let rack = RackGeometry::standard_42u();
        let conv = fleet_footprint(&EnclosureDesign::conventional_1u(), &rack, 1_000);
        let micro = fleet_footprint(&EnclosureDesign::microblade(), &rack, 1_000);
        assert!(micro.mechanical_pue() < conv.mechanical_pue());
        assert!(conv.mechanical_pue() > 1.5, "CRAC + fans are a real tax");
        assert!(conv.mechanical_pue() < 2.5, "but not absurd");
    }

    #[test]
    fn rack_count_rounds_up() {
        let rack = RackGeometry::standard_42u();
        let f = fleet_footprint(&EnclosureDesign::conventional_1u(), &rack, 41);
        assert_eq!(f.racks, 2);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn rejects_empty_fleet() {
        fleet_footprint(
            &EnclosureDesign::conventional_1u(),
            &RackGeometry::standard_42u(),
            0,
        );
    }
}
