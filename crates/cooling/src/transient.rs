//! Thermal transients and fan-speed control.
//!
//! The steady-state models in [`crate::thermal`] answer "how hot at this
//! power"; this module answers "how hot *when*": a lumped
//! resistance-capacitance thermal model integrated over time, with a
//! proportional fan controller trading fan power against temperature.
//! It backs the packaging claims with dynamics — e.g. that the
//! dual-entry design's lower thermal resistance also shortens thermal
//! transients, letting the fan controller run slower for the same cap.

/// A lumped RC thermal node: one component's junction over ambient.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ThermalNode {
    /// Junction-to-ambient thermal resistance at nominal airflow, K/W.
    pub r_nominal: f64,
    /// Thermal capacitance, J/K (die + spreader + sink mass).
    pub capacitance: f64,
}

impl ThermalNode {
    /// Creates a node.
    ///
    /// # Panics
    /// Panics if either parameter is non-positive or non-finite.
    pub fn new(r_nominal: f64, capacitance: f64) -> Self {
        assert!(r_nominal.is_finite() && r_nominal > 0.0);
        assert!(capacitance.is_finite() && capacitance > 0.0);
        ThermalNode {
            r_nominal,
            capacitance,
        }
    }

    /// The RC time constant at nominal airflow, seconds.
    pub fn time_constant_secs(&self) -> f64 {
        self.r_nominal * self.capacitance
    }
}

/// A proportional fan controller: fan speed rises linearly between the
/// target temperature and the critical temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FanController {
    /// Temperature (over ambient) below which the fan idles, K.
    pub target_rise_k: f64,
    /// Temperature rise at which the fan saturates, K.
    pub max_rise_k: f64,
    /// Fan speed floor (fraction of max), keeping some airflow always.
    pub min_speed: f64,
}

impl FanController {
    /// A typical controller: idle below 40 K rise, saturate at 60 K,
    /// 20% floor.
    pub fn typical() -> Self {
        FanController {
            target_rise_k: 40.0,
            max_rise_k: 60.0,
            min_speed: 0.2,
        }
    }

    /// Fan speed (fraction of max) commanded at the given temperature
    /// rise.
    pub fn speed(&self, rise_k: f64) -> f64 {
        if rise_k <= self.target_rise_k {
            self.min_speed
        } else if rise_k >= self.max_rise_k {
            1.0
        } else {
            let t = (rise_k - self.target_rise_k) / (self.max_rise_k - self.target_rise_k);
            self.min_speed + (1.0 - self.min_speed) * t
        }
    }
}

/// One step of a simulated transient.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TransientSample {
    /// Time, seconds.
    pub t_secs: f64,
    /// Junction rise over ambient, K.
    pub rise_k: f64,
    /// Fan speed fraction.
    pub fan_speed: f64,
}

/// Integrates the node's temperature under a power trace, with the fan
/// controller modulating the effective thermal resistance (faster air →
/// `R ∝ speed^-0.8`, the forced-convection law the steady model uses).
///
/// `power_w(t)` gives dissipation at time `t`; the integration uses a
/// forward-Euler step of `dt_secs` for `steps` steps.
///
/// # Panics
/// Panics on a non-positive step size or zero steps.
pub fn simulate_transient(
    node: ThermalNode,
    controller: FanController,
    power_w: impl Fn(f64) -> f64,
    dt_secs: f64,
    steps: u32,
) -> Vec<TransientSample> {
    assert!(
        dt_secs.is_finite() && dt_secs > 0.0,
        "step must be positive"
    );
    assert!(steps > 0, "need steps");
    let mut rise = 0.0f64;
    let mut out = Vec::with_capacity(steps as usize);
    for i in 0..steps {
        let t = i as f64 * dt_secs;
        let speed = controller.speed(rise);
        let r = node.r_nominal * speed.powf(-0.8);
        let p = power_w(t).max(0.0);
        // dT/dt = (P - T/R) / C
        let d_rise = (p - rise / r) / node.capacitance;
        rise += d_rise * dt_secs;
        out.push(TransientSample {
            t_secs: t,
            rise_k: rise,
            fan_speed: speed,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> ThermalNode {
        // R = 0.5 K/W at full airflow, C = 120 J/K: tau = 60 s.
        ThermalNode::new(0.5, 120.0)
    }

    #[test]
    fn steps_toward_steady_state() {
        // Constant 80 W with the fan saturated: steady rise = P * R.
        let hot_controller = FanController {
            target_rise_k: 0.0,
            max_rise_k: 0.1,
            min_speed: 0.2,
        };
        let trace = simulate_transient(node(), hot_controller, |_| 80.0, 0.5, 2000);
        let last = trace.last().unwrap();
        assert!(
            (last.rise_k - 40.0).abs() < 1.0,
            "steady rise {}",
            last.rise_k
        );
        assert!((last.fan_speed - 1.0).abs() < 1e-9);
    }

    #[test]
    fn temperature_rises_monotonically_under_step_power() {
        let trace = simulate_transient(node(), FanController::typical(), |_| 60.0, 0.5, 500);
        for w in trace.windows(2) {
            assert!(w[1].rise_k >= w[0].rise_k - 1e-9);
        }
        assert!(trace[0].rise_k < 1.0);
    }

    #[test]
    fn controller_holds_temperature_under_cap() {
        let trace = simulate_transient(node(), FanController::typical(), |_| 100.0, 0.5, 4000);
        let peak = trace.iter().map(|s| s.rise_k).fold(0.0, f64::max);
        // 100 W * 0.5 K/W = 50 K at full fan; the controller must keep
        // the rise at or below the saturation band.
        assert!(peak < 61.0, "peak rise {peak}");
    }

    #[test]
    fn cooler_node_lets_fan_idle() {
        // A low-power module under the same controller: fan stays at the
        // floor.
        let trace = simulate_transient(node(), FanController::typical(), |_| 25.0, 0.5, 3000);
        let last = trace.last().unwrap();
        assert!(last.fan_speed <= 0.35, "fan {}", last.fan_speed);
    }

    #[test]
    fn load_step_produces_transient_then_settles() {
        // 20 W for 10 minutes, then 80 W.
        let trace = simulate_transient(
            node(),
            FanController::typical(),
            |t| if t < 600.0 { 20.0 } else { 80.0 },
            0.5,
            4000,
        );
        let before = trace[1150].rise_k; // ~575 s
        let after = trace.last().unwrap().rise_k;
        assert!(after > before + 10.0, "step visible: {before} -> {after}");
    }

    #[test]
    fn time_constant() {
        assert!((node().time_constant_secs() - 60.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn rejects_zero_step() {
        simulate_transient(node(), FanController::typical(), |_| 1.0, 0.0, 10);
    }
}
