//! Fan failures and thermal throttling.
//!
//! The paper's dense enclosures (Section 3.2) aggregate many systems
//! behind a shared fan wall, so a fan failure no longer takes out one
//! pizza box — it shaves airflow off the whole enclosure. This module
//! maps a fan failure to the graceful response: removable heat scales
//! with the remaining airflow (`Q = rho * c_p * dT * V_dot`), so the
//! enclosure throttles its systems' power — and with it performance —
//! down to what the surviving fans can cool, instead of tripping a
//! thermal shutdown.

use wcs_simcore::faults::{downtime, FaultProcess};
use wcs_simcore::obs::Registry;
use wcs_simcore::{ConfigError, SimDuration, SimRng};

use crate::enclosure::EnclosureDesign;

/// The fan wall of one enclosure: `fans` identical fans sized so that
/// `fans - redundant` of them move the design airflow (N+R sizing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FanWall {
    /// Installed fans.
    pub fans: u32,
    /// Redundant fans: failures absorbed with no airflow loss.
    pub redundant: u32,
}

impl FanWall {
    /// An `n + r` fan wall.
    ///
    /// # Errors
    /// Rejects zero installed fans and redundancy that leaves no
    /// load-bearing fan.
    pub fn new(fans: u32, redundant: u32) -> Result<Self, ConfigError> {
        if fans == 0 {
            return Err(ConfigError::ZeroCount { param: "fans" });
        }
        if redundant >= fans {
            return Err(ConfigError::OutOfRange {
                param: "redundant",
                requirement: "must leave at least one load-bearing fan",
                got: redundant as f64,
            });
        }
        Ok(FanWall { fans, redundant })
    }

    /// The paper's dual-entry enclosure point: a shared wall of 6 fans
    /// sized N+1.
    pub fn n_plus_one() -> Self {
        FanWall {
            fans: 6,
            redundant: 1,
        }
    }

    /// Fraction of the design airflow available with `working` fans
    /// healthy, in `[0, 1]`. Redundant capacity absorbs the first
    /// failures for free.
    pub fn flow_fraction(&self, working: u32) -> f64 {
        let needed = (self.fans - self.redundant) as f64;
        (working.min(self.fans) as f64 / needed).min(1.0)
    }
}

/// What an enclosure does about a given number of failed fans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottleState {
    /// Fans still spinning.
    pub working_fans: u32,
    /// Fraction of design airflow (and thus removable heat) available.
    pub flow_fraction: f64,
    /// Power each system may draw, watts (airflow-limited).
    pub power_cap_w: f64,
    /// Sustainable performance as a fraction of nominal, in `[0, 1]`.
    pub perf_fraction: f64,
}

/// Throttle response of `design` with `failed` fans out of `wall`.
///
/// Removable heat scales with airflow, so the per-system power cap is
/// `flow_fraction * system_power_w`. Performance scales with the
/// *dynamic* share of that power: below the idle floor (`idle_fraction`
/// of nominal power) the slot must power off entirely.
///
/// # Errors
/// Rejects an `idle_fraction` outside `[0, 1)`.
pub fn throttle(
    design: &EnclosureDesign,
    wall: &FanWall,
    failed: u32,
    idle_fraction: f64,
) -> Result<ThrottleState, ConfigError> {
    ConfigError::check_f64(
        "idle_fraction",
        idle_fraction,
        "must be in [0, 1)",
        (0.0..1.0).contains(&idle_fraction),
    )?;
    let working = wall.fans.saturating_sub(failed);
    let flow = wall.flow_fraction(working);
    let power_cap_w = flow * design.system_power_w;
    // perf = (power - idle) / (nominal - idle), clamped: a slot whose
    // cap falls below idle power cannot run at all.
    let perf_fraction = ((flow - idle_fraction) / (1.0 - idle_fraction)).clamp(0.0, 1.0);
    Ok(ThrottleState {
        working_fans: working,
        flow_fraction: flow,
        power_cap_w,
        perf_fraction,
    })
}

/// [`throttle`] with `cooling.*` metrics recorded into `registry`:
/// every throttled state (perf below nominal) counts as a throttle
/// event, and the sustained-performance fraction lands in a histogram.
/// The recorded values derive only from the returned state, so they are
/// bit-identical across thread counts.
///
/// # Errors
/// Rejects an `idle_fraction` outside `[0, 1)`.
pub fn throttle_obs(
    design: &EnclosureDesign,
    wall: &FanWall,
    failed: u32,
    idle_fraction: f64,
    registry: &Registry,
) -> Result<ThrottleState, ConfigError> {
    let state = throttle(design, wall, failed, idle_fraction)?;
    registry
        .counter("cooling.fan_failures")
        .add(u64::from(failed));
    if state.perf_fraction < 1.0 {
        registry.counter("cooling.throttle_events").inc();
    }
    registry
        .histogram("cooling.perf_fraction_pct")
        .record((state.perf_fraction * 100.0).round() as u64);
    state.export_power_cap(registry);
    Ok(state)
}

impl ThrottleState {
    fn export_power_cap(&self, registry: &Registry) {
        registry
            .histogram("cooling.power_cap_w")
            .record(self.power_cap_w.round().max(0.0) as u64);
    }
}

/// Expected enclosure performance (fraction of nominal) under a
/// one-fan-at-a-time failure/repair process sampled over `horizon`:
/// full speed while all fans spin, the single-failure throttle while
/// one is down. Deterministic per `seed`; a fail-free process returns
/// exactly 1.
///
/// # Errors
/// Rejects a zero `horizon` or an invalid `idle_fraction`.
pub fn expected_perf_under_fan_faults(
    design: &EnclosureDesign,
    wall: &FanWall,
    fan: &FaultProcess,
    horizon: SimDuration,
    idle_fraction: f64,
    seed: u64,
) -> Result<f64, ConfigError> {
    if horizon.is_zero() {
        return Err(ConfigError::OutOfRange {
            param: "horizon",
            requirement: "must be positive",
            got: 0.0,
        });
    }
    expected_perf_under_fan_faults_obs(
        design,
        wall,
        fan,
        horizon,
        idle_fraction,
        seed,
        &Registry::disabled(),
    )
}

/// [`expected_perf_under_fan_faults`] with `cooling.*` metrics recorded
/// into `registry`: the number of sampled fan-outage windows and the
/// degraded-mode dwell fraction. Both derive from the seeded fault
/// process, so the values are bit-identical for identical inputs.
///
/// # Errors
/// Rejects a zero `horizon` or an invalid `idle_fraction`.
#[allow(clippy::too_many_arguments)]
pub fn expected_perf_under_fan_faults_obs(
    design: &EnclosureDesign,
    wall: &FanWall,
    fan: &FaultProcess,
    horizon: SimDuration,
    idle_fraction: f64,
    seed: u64,
    registry: &Registry,
) -> Result<f64, ConfigError> {
    if horizon.is_zero() {
        return Err(ConfigError::OutOfRange {
            param: "horizon",
            requirement: "must be positive",
            got: 0.0,
        });
    }
    let degraded = throttle(design, wall, 1, idle_fraction)?.perf_fraction;
    let mut rng = SimRng::seed_from(seed);
    let windows = fan.windows(horizon, &mut rng);
    registry
        .counter("cooling.fan_fault_windows")
        .add(windows.len() as u64);
    let down_frac = downtime(&windows, horizon).as_secs_f64() / horizon.as_secs_f64();
    registry
        .histogram("cooling.degraded_dwell_pct")
        .record((down_frac * 100.0).round() as u64);
    Ok((1.0 - down_frac) + down_frac * degraded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimDuration {
        SimDuration::from_secs_f64(s)
    }

    #[test]
    fn redundant_fan_failure_costs_nothing() {
        let wall = FanWall::n_plus_one();
        let t = throttle(&EnclosureDesign::dual_entry(), &wall, 1, 0.3).unwrap();
        assert_eq!(t.working_fans, 5);
        assert_eq!(t.flow_fraction, 1.0);
        assert_eq!(t.perf_fraction, 1.0);
    }

    #[test]
    fn second_failure_throttles_proportionally() {
        let wall = FanWall::n_plus_one(); // 6 fans, 5 load-bearing
        let design = EnclosureDesign::dual_entry();
        let t = throttle(&design, &wall, 2, 0.3).unwrap();
        assert!((t.flow_fraction - 4.0 / 5.0).abs() < 1e-12);
        assert!((t.power_cap_w - 0.8 * design.system_power_w).abs() < 1e-9);
        // 80% power with a 30% idle floor -> (0.8-0.3)/0.7 ~ 71% perf.
        assert!((t.perf_fraction - 0.5 / 0.7).abs() < 1e-12);
    }

    #[test]
    fn losing_every_fan_powers_slots_off() {
        let wall = FanWall::new(4, 0).unwrap();
        let t = throttle(&EnclosureDesign::microblade(), &wall, 4, 0.25).unwrap();
        assert_eq!(t.working_fans, 0);
        assert_eq!(t.perf_fraction, 0.0);
        assert_eq!(t.power_cap_w, 0.0);
    }

    #[test]
    fn throttle_is_graceful_not_a_cliff() {
        // Perf falls monotonically with failures, never below zero.
        let wall = FanWall::new(6, 1).unwrap();
        let design = EnclosureDesign::dual_entry();
        let mut last = f64::INFINITY;
        for failed in 0..=6 {
            let t = throttle(&design, &wall, failed, 0.3).unwrap();
            assert!(t.perf_fraction <= last + 1e-12);
            assert!((0.0..=1.0).contains(&t.perf_fraction));
            last = t.perf_fraction;
        }
    }

    #[test]
    fn fail_free_process_keeps_full_speed() {
        let p = expected_perf_under_fan_faults(
            &EnclosureDesign::dual_entry(),
            &FanWall::n_plus_one(),
            &FaultProcess::never(),
            secs(1_000_000.0),
            0.3,
            11,
        )
        .unwrap();
        assert_eq!(p, 1.0);
    }

    #[test]
    fn fan_faults_shave_expected_perf_deterministically() {
        let proc = FaultProcess::exponential(secs(50_000.0), secs(3600.0)).unwrap();
        let run = |seed| {
            expected_perf_under_fan_faults(
                &EnclosureDesign::dual_entry(),
                &FanWall::new(6, 0).unwrap(),
                &proc,
                secs(5_000_000.0),
                0.3,
                seed,
            )
            .unwrap()
        };
        let a = run(3);
        assert!(a < 1.0, "expected perf {a} must dip below nominal");
        assert!(a > 0.8, "one fan of six failing occasionally is mild: {a}");
        assert_eq!(a, run(3), "same seed, same answer");
    }

    #[test]
    fn bad_walls_rejected() {
        assert!(FanWall::new(0, 0).is_err());
        assert!(FanWall::new(4, 4).is_err());
        assert!(FanWall::new(4, 3).is_ok());
    }

    #[test]
    fn bad_idle_fraction_rejected() {
        let wall = FanWall::n_plus_one();
        assert!(throttle(&EnclosureDesign::dual_entry(), &wall, 0, 1.0).is_err());
        assert!(throttle(&EnclosureDesign::dual_entry(), &wall, 0, -0.1).is_err());
    }
}
