//! Duct airflow and fan-power model.
//!
//! First-order physics: air absorbs heat according to `Q = m_dot * c_p *
//! dT`; pushing that air through the chassis costs `P_fan = dP * V_dot /
//! eta`. The pressure drop has a duct-friction part growing with flow
//! length and a fixed component part (heat-sink fins, grills, filters),
//! both quadratic in air velocity:
//!
//! ```text
//! dP = (C_L * L + C_comp) * v^2
//! ```
//!
//! Serial front-to-back airflow additionally pre-heats downstream
//! components, forcing more air per watt (the `preheat_factor`); the
//! dual-entry design's parallel paths eliminate that.

/// Density of air at ~35 C inlet, kg/m^3.
pub const AIR_DENSITY: f64 = 1.15;
/// Specific heat of air, J/(kg K).
pub const AIR_CP: f64 = 1006.0;
/// Duct friction coefficient, Pa / (m * (m/s)^2). Calibrated so a
/// conventional 1U server at ~300 W needs a realistic ~15-40 W of fan
/// power.
pub const DUCT_FRICTION: f64 = 1.0;

/// A forced-air cooling path through a chassis.
///
/// # Example
/// ```
/// use wcs_cooling::airflow::AirPath;
/// let path = AirPath::new(0.7, 10.0, 12.0, 1.5, 0.6);
/// let fan_w = path.fan_power_w(300.0, 0.25);
/// assert!((5.0..60.0).contains(&fan_w));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AirPath {
    /// Flow length through heat-producing sections, in meters.
    pub flow_length_m: f64,
    /// Design air velocity through the channel, m/s. Denser packaging
    /// needs faster air through narrower channels.
    pub velocity_ms: f64,
    /// Usable air temperature rise in kelvin (inlet to exhaust).
    pub usable_dt_k: f64,
    /// Pre-heat factor: 1.0 = fully parallel (no pre-heat); serial
    /// designs need proportionally more flow because downstream parts see
    /// hotter air.
    pub preheat_factor: f64,
    /// Fixed component loss coefficient (heat sinks, grills, filters),
    /// Pa / (m/s)^2. A single shared optimized heat sink has a lower
    /// coefficient than many small ones.
    pub component_drop: f64,
}

impl AirPath {
    /// Creates an air path.
    ///
    /// # Panics
    /// Panics if any parameter is non-positive or non-finite.
    pub fn new(
        flow_length_m: f64,
        velocity_ms: f64,
        usable_dt_k: f64,
        preheat_factor: f64,
        component_drop: f64,
    ) -> Self {
        for v in [
            flow_length_m,
            velocity_ms,
            usable_dt_k,
            preheat_factor,
            component_drop,
        ] {
            assert!(v.is_finite() && v > 0.0, "air path parameters must be > 0");
        }
        AirPath {
            flow_length_m,
            velocity_ms,
            usable_dt_k,
            preheat_factor,
            component_drop,
        }
    }

    /// Volumetric airflow (m^3/s) required to remove `heat_w` watts.
    ///
    /// # Panics
    /// Panics if `heat_w` is negative or non-finite.
    pub fn required_flow_m3s(&self, heat_w: f64) -> f64 {
        assert!(heat_w.is_finite() && heat_w >= 0.0);
        self.preheat_factor * heat_w / (AIR_DENSITY * AIR_CP * self.usable_dt_k)
    }

    /// Pressure drop (Pa) at the design velocity.
    pub fn pressure_drop_pa(&self) -> f64 {
        (DUCT_FRICTION * self.flow_length_m + self.component_drop)
            * self.velocity_ms
            * self.velocity_ms
    }

    /// Fan electrical power (W) to remove `heat_w` with fan efficiency
    /// `eta` (wire-to-air, typically 0.2-0.3).
    ///
    /// # Panics
    /// Panics unless `eta` is in `(0, 1]`.
    pub fn fan_power_w(&self, heat_w: f64, eta: f64) -> f64 {
        assert!(eta > 0.0 && eta <= 1.0, "fan efficiency in (0,1]");
        self.pressure_drop_pa() * self.required_flow_m3s(heat_w) / eta
    }

    /// Cooling efficiency: watts of heat removed per watt of fan power.
    /// Independent of `heat_w` in this model, so it takes only `eta`.
    pub fn cooling_efficiency(&self, eta: f64) -> f64 {
        let fan_per_watt = self.fan_power_w(1.0, eta);
        1.0 / fan_per_watt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conventional() -> AirPath {
        // 1U pizza box: ~0.7 m front-to-back, serial path with pre-heat,
        // many small heat sinks.
        AirPath::new(0.7, 10.0, 12.0, 1.5, 0.6)
    }

    fn directed() -> AirPath {
        // Dual-entry vertical path: ~0.25 m, fully parallel, faster air
        // through narrower blade channels.
        AirPath::new(0.25, 12.0, 15.0, 1.0, 0.6)
    }

    #[test]
    fn fan_power_in_realistic_range() {
        let fan = conventional().fan_power_w(300.0, 0.25);
        assert!((5.0..60.0).contains(&fan), "fan {fan} W");
    }

    #[test]
    fn directed_airflow_roughly_doubles_efficiency() {
        let gain = directed().cooling_efficiency(0.25) / conventional().cooling_efficiency(0.25);
        assert!((1.7..=2.6).contains(&gain), "gain {gain} should be ~2x");
    }

    #[test]
    fn flow_scales_with_heat_and_preheat() {
        let p = conventional();
        assert!((p.required_flow_m3s(200.0) - 2.0 * p.required_flow_m3s(100.0)).abs() < 1e-12);
        let parallel = AirPath::new(0.7, 10.0, 12.0, 1.0, 0.6);
        assert!(p.required_flow_m3s(100.0) > parallel.required_flow_m3s(100.0));
    }

    #[test]
    fn pressure_quadratic_in_velocity() {
        let slow = AirPath::new(0.5, 5.0, 12.0, 1.0, 0.5);
        let fast = AirPath::new(0.5, 10.0, 12.0, 1.0, 0.5);
        assert!((fast.pressure_drop_pa() / slow.pressure_drop_pa() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn shorter_path_lower_drop() {
        let long = AirPath::new(0.7, 10.0, 12.0, 1.0, 0.6);
        let short = AirPath::new(0.25, 10.0, 12.0, 1.0, 0.6);
        assert!(short.pressure_drop_pa() < long.pressure_drop_pa());
    }

    #[test]
    #[should_panic(expected = "must be > 0")]
    fn rejects_bad_params() {
        AirPath::new(0.0, 10.0, 12.0, 1.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "fan efficiency")]
    fn rejects_bad_eta() {
        conventional().fan_power_w(100.0, 0.0);
    }
}
