//! Thermal resistance networks: conduction paths, heat pipes, heat sinks.
//!
//! The aggregated-cooling design (Figure 3(b)) moves heat from several
//! small modules through planar heat pipes into one large heat sink. Its
//! benefit comes from two places: heat pipes conduct ~3x better than the
//! copper spreaders they replace, and one big heat sink has more fin area
//! and a better flow channel than many small ones.

/// Thermal conductivity of copper, W/(m K).
pub const COPPER_K: f64 = 400.0;
/// Effective conductivity of a planar heat pipe: 3x copper (paper's
/// figure).
pub const HEATPIPE_K: f64 = 3.0 * COPPER_K;

/// A one-dimensional conduction element (spreader plate or heat pipe).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Conductor {
    /// Thermal conductivity, W/(m K).
    pub k: f64,
    /// Path length, m.
    pub length_m: f64,
    /// Cross-sectional area, m^2.
    pub area_m2: f64,
}

impl Conductor {
    /// Creates a conductor.
    ///
    /// # Panics
    /// Panics if any parameter is non-positive or non-finite.
    pub fn new(k: f64, length_m: f64, area_m2: f64) -> Self {
        for v in [k, length_m, area_m2] {
            assert!(v.is_finite() && v > 0.0, "conductor parameters must be > 0");
        }
        Conductor {
            k,
            length_m,
            area_m2,
        }
    }

    /// A copper spreader of the given geometry.
    pub fn copper(length_m: f64, area_m2: f64) -> Self {
        Conductor::new(COPPER_K, length_m, area_m2)
    }

    /// A planar heat pipe of the same geometry (3x copper conductivity).
    pub fn heat_pipe(length_m: f64, area_m2: f64) -> Self {
        Conductor::new(HEATPIPE_K, length_m, area_m2)
    }

    /// Thermal resistance, K/W.
    pub fn resistance(&self) -> f64 {
        self.length_m / (self.k * self.area_m2)
    }
}

/// A finned heat sink cooled by forced air.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HeatSink {
    /// Base thermal resistance at the reference airflow, K/W.
    pub r_base: f64,
    /// Reference airflow, m^3/s.
    pub ref_flow_m3s: f64,
}

impl HeatSink {
    /// Creates a heat sink.
    ///
    /// # Panics
    /// Panics if either parameter is non-positive or non-finite.
    pub fn new(r_base: f64, ref_flow_m3s: f64) -> Self {
        assert!(r_base.is_finite() && r_base > 0.0);
        assert!(ref_flow_m3s.is_finite() && ref_flow_m3s > 0.0);
        HeatSink {
            r_base,
            ref_flow_m3s,
        }
    }

    /// Thermal resistance at airflow `flow` (K/W): convection improves
    /// roughly with `flow^0.8` (turbulent forced convection).
    pub fn resistance_at(&self, flow_m3s: f64) -> f64 {
        assert!(flow_m3s.is_finite() && flow_m3s > 0.0);
        self.r_base * (self.ref_flow_m3s / flow_m3s).powf(0.8)
    }
}

/// A series thermal path from a device junction to ambient air.
///
/// # Example
/// ```
/// use wcs_cooling::thermal::{Conductor, HeatSink, ThermalPath};
/// let path = ThermalPath::new(vec![Conductor::heat_pipe(0.1, 2e-4)], HeatSink::new(0.5, 0.01));
/// let t = path.junction_temp_c(25.0, 35.0, 0.01);
/// assert!(t < 85.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ThermalPath {
    conductors: Vec<Conductor>,
    sink: HeatSink,
}

impl ThermalPath {
    /// Creates a path from conduction elements in series ending at a heat
    /// sink.
    pub fn new(conductors: Vec<Conductor>, sink: HeatSink) -> Self {
        ThermalPath { conductors, sink }
    }

    /// Total junction-to-ambient resistance at the given airflow, K/W.
    pub fn total_resistance(&self, flow_m3s: f64) -> f64 {
        self.conductors
            .iter()
            .map(Conductor::resistance)
            .sum::<f64>()
            + self.sink.resistance_at(flow_m3s)
    }

    /// Steady-state junction temperature (deg C) for `heat_w` dissipated
    /// into `ambient_c` air at airflow `flow_m3s`.
    pub fn junction_temp_c(&self, heat_w: f64, ambient_c: f64, flow_m3s: f64) -> f64 {
        assert!(heat_w.is_finite() && heat_w >= 0.0);
        ambient_c + heat_w * self.total_resistance(flow_m3s)
    }
}

/// Combines `n` identical parallel resistances (e.g. several heat pipes
/// feeding the same sink), K/W.
///
/// # Panics
/// Panics if `n` is zero or `r_each` is non-positive.
pub fn parallel_resistance(r_each: f64, n: u32) -> f64 {
    assert!(n > 0, "need at least one parallel element");
    assert!(r_each.is_finite() && r_each > 0.0);
    r_each / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heat_pipe_is_three_times_copper() {
        let cu = Conductor::copper(0.1, 1e-4);
        let hp = Conductor::heat_pipe(0.1, 1e-4);
        assert!((cu.resistance() / hp.resistance() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn sink_improves_with_flow() {
        let s = HeatSink::new(0.5, 0.01);
        assert!(s.resistance_at(0.02) < s.resistance_at(0.01));
        assert!((s.resistance_at(0.01) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn junction_temp_rises_with_heat() {
        let path = ThermalPath::new(
            vec![Conductor::copper(0.05, 5e-5)],
            HeatSink::new(0.8, 0.01),
        );
        let t10 = path.junction_temp_c(10.0, 35.0, 0.01);
        let t25 = path.junction_temp_c(25.0, 35.0, 0.01);
        assert!(t25 > t10);
        assert!(t10 > 35.0);
    }

    #[test]
    fn aggregated_path_cools_25w_module() {
        // A microblade module: heat pipe to a shared sink (big sink, so
        // low resistance and generous reference airflow).
        let path = ThermalPath::new(
            vec![Conductor::heat_pipe(0.12, 2.4e-4)],
            HeatSink::new(0.35, 0.02),
        );
        let t = path.junction_temp_c(25.0, 35.0, 0.02);
        assert!(t < 85.0, "junction {t} C must stay under spec");
    }

    #[test]
    fn copper_only_path_runs_hotter() {
        let sink = HeatSink::new(0.35, 0.02);
        let hp = ThermalPath::new(vec![Conductor::heat_pipe(0.12, 2.4e-4)], sink);
        let cu = ThermalPath::new(vec![Conductor::copper(0.12, 2.4e-4)], sink);
        assert!(cu.junction_temp_c(25.0, 35.0, 0.02) > hp.junction_temp_c(25.0, 35.0, 0.02) + 10.0);
    }

    #[test]
    fn parallel_reduces_resistance() {
        assert!((parallel_resistance(1.0, 4) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn parallel_rejects_zero() {
        parallel_resistance(1.0, 0);
    }
}
