//! Memoization for the storage study: shared disk traces, cached
//! replays, and cached performance measurements.
//!
//! Sweeps over storage configurations re-replay the same workload block
//! streams against many disk/flash combinations. Every cached value here
//! is a pure function of its [`MemoKey`]: traces are keyed by
//! `(params, seed, n)`, replays additionally by the disk and flash
//! models, and performance points by the full demand vector plus the
//! measurement config — so a warm lookup is byte-identical to a cold
//! recompute by construction.

use std::sync::Arc;

use wcs_platforms::storage::{DiskModel, FlashModel};
use wcs_simcore::memo::{MemoCache, MemoKey, MemoStats};
use wcs_simcore::obs::Registry;
use wcs_workloads::disktrace::{self, BlockAccess, DiskTraceGen, DiskTraceParams};
use wcs_workloads::perf::MeasureConfig;
use wcs_workloads::service::PlatformDemand;
use wcs_workloads::WorkloadId;

use crate::system::{StorageStats, StorageSystem};

/// Caches for the disk study: materialized block traces, storage-replay
/// statistics, and measured performance points.
#[derive(Debug)]
pub struct StorageMemo {
    traces: MemoCache<Arc<[BlockAccess]>>,
    replays: MemoCache<Arc<StorageStats>>,
    perf: MemoCache<f64>,
    obs: Registry,
}

impl StorageMemo {
    /// An enabled memo.
    pub fn new() -> Self {
        Self::with_enabled(true)
    }

    /// A disabled memo: every request recomputes from the live
    /// generator, exactly as the unmemoized code path would.
    pub fn disabled() -> Self {
        Self::with_enabled(false)
    }

    /// A memo with caching switched on or off.
    pub fn with_enabled(enabled: bool) -> Self {
        StorageMemo {
            traces: MemoCache::with_enabled(enabled),
            replays: MemoCache::with_enabled(enabled),
            perf: MemoCache::with_enabled(enabled),
            obs: Registry::disabled(),
        }
    }

    /// Returns this memo with `flashcache.*` metrics recorded into
    /// `registry`. Metrics are derived from the (cached) replay results,
    /// never from cache behaviour, so the reported values are identical
    /// with memoization on or off.
    #[must_use]
    pub fn with_obs(mut self, registry: Registry) -> Self {
        self.obs = registry;
        self
    }

    /// Whether lookups hit the caches.
    pub fn is_enabled(&self) -> bool {
        self.replays.is_enabled()
    }

    /// Hit/miss counters merged across all three caches.
    pub fn stats(&self) -> MemoStats {
        self.traces
            .stats()
            .merged(&self.replays.stats())
            .merged(&self.perf.stats())
    }

    /// The materialized trace for `(params, seed)`, shared across every
    /// storage configuration that replays the same stream.
    pub fn trace(&self, params: DiskTraceParams, seed: u64, n: usize) -> Arc<[BlockAccess]> {
        let key = MemoKey::new("disktrace-buf")
            .push(&params)
            .push_u64(seed)
            .push_usize(n);
        self.traces
            .get_or_compute(key.finish(), || disktrace::materialize(params, seed, n))
    }

    /// Replays `n` requests of the `(params, seed)` stream against a
    /// fresh disk (+ optional flash) system, cached on the full
    /// configuration.
    ///
    /// When the memo is enabled the trace is materialized once (via
    /// [`trace`](Self::trace)) and replayed through the slice kernel;
    /// when disabled the requests stream straight from the generator —
    /// the two paths are bit-identical.
    pub fn replay(
        &self,
        disk: &DiskModel,
        flash: Option<&FlashModel>,
        params: DiskTraceParams,
        seed: u64,
        n: u64,
    ) -> Arc<StorageStats> {
        let mut key = MemoKey::new("storage-replay").push(disk);
        key = match flash {
            Some(f) => key.push_bool(true).push(f),
            None => key.push_bool(false),
        };
        key = key.push(&params).push_u64(seed).push_u64(n);
        let stats = self.replays.get_or_compute(key.finish(), || {
            let mut sys = match flash {
                Some(f) => StorageSystem::with_flash(disk.clone(), f.clone()),
                None => StorageSystem::disk_only(disk.clone()),
            };
            let stats = if self.is_enabled() {
                let trace = self.trace(params, seed, n as usize);
                sys.replay_trace(params.request_blocks, &trace)
            } else {
                sys.replay(&mut DiskTraceGen::new(params, seed), n)
            };
            Arc::new(stats)
        });
        // Recorded from the returned (cached or recomputed) statistics,
        // so the series is bit-identical across threads and memo modes.
        self.obs.counter("flashcache.replays").inc();
        self.obs.counter("flashcache.requests").add(stats.requests);
        self.obs
            .counter("flashcache.flash_hits")
            .add(stats.flash_hits);
        self.obs
            .counter("flashcache.background_bytes")
            .add(stats.background_bytes);
        self.obs
            .counter("flashcache.ftl_bytes_programmed")
            .add(stats.wear.bytes_programmed);
        self.obs
            .counter("flashcache.ftl_erases")
            .add(stats.wear.erases);
        self.obs
            .histogram("flashcache.hit_ratio_pct")
            .record((stats.hit_ratio() * 100.0).round() as u64);
        stats
    }

    /// A cached performance point, keyed on the workload, the full
    /// platform demand vector, and the measurement config. `compute`
    /// runs on a miss and must be a pure function of the key.
    pub fn perf(
        &self,
        id: WorkloadId,
        demand: &PlatformDemand,
        cfg: &MeasureConfig,
        compute: impl FnOnce() -> f64,
    ) -> f64 {
        let key = MemoKey::new("storage-perf")
            .push(&id)
            .push(demand)
            .push(cfg);
        self.perf.get_or_compute(key.finish(), compute)
    }
}

impl Default for StorageMemo {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcs_workloads::disktrace::params_for;

    #[test]
    fn memoized_replay_matches_streaming_replay() {
        let cold = StorageMemo::disabled();
        let warm = StorageMemo::new();
        let disk = DiskModel::laptop_remote();
        let flash = FlashModel::table3();
        let params = params_for(WorkloadId::Ytube);

        let a = cold.replay(&disk, Some(&flash), params, 11, 30_000);
        let b = warm.replay(&disk, Some(&flash), params, 11, 30_000);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));

        // Second warm call hits the cache and returns the same Arc.
        let c = warm.replay(&disk, Some(&flash), params, 11, 30_000);
        assert!(Arc::ptr_eq(&b, &c));
        assert_eq!(warm.stats().hits, 1);
        // The disabled memo never caches.
        let d = cold.replay(&disk, Some(&flash), params, 11, 30_000);
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!(cold.stats().hits, 0);
    }

    #[test]
    fn trace_is_shared_across_configurations() {
        let memo = StorageMemo::new();
        let params = params_for(WorkloadId::Webmail);
        let _ = memo.replay(&DiskModel::desktop(), None, params, 3, 10_000);
        let _ = memo.replay(
            &DiskModel::laptop_remote(),
            Some(&FlashModel::table3()),
            params,
            3,
            10_000,
        );
        // Second replay misses (different config) but its trace hits.
        assert_eq!(memo.stats().hits, 1);
    }

    #[test]
    fn perf_cache_returns_first_computation() {
        let memo = StorageMemo::new();
        let wl = wcs_workloads::suite::workload(WorkloadId::Websearch);
        let platform = wcs_platforms::catalog::platform(wcs_platforms::PlatformId::Emb1);
        let demand = PlatformDemand::new(&wl, &platform);
        let cfg = MeasureConfig::quick();
        let a = memo.perf(WorkloadId::Websearch, &demand, &cfg, || 42.0);
        let b = memo.perf(WorkloadId::Websearch, &demand, &cfg, || 99.0);
        assert_eq!(a, 42.0);
        assert_eq!(b, 42.0);
    }
}
