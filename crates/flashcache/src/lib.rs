//! Flash-based disk caching with low-power disks (Section 3.5 / Table 3).
//!
//! The paper replaces each server's local desktop disk with a low-power
//! laptop disk on a basic SATA SAN, and recovers the lost performance
//! with a 1 GB NAND flash disk cache on the server board (following Kgil
//! and Mudge's FlashCache design): recently accessed pages are kept in
//! flash, looked up through a software hash table on every page-cache
//! miss.
//!
//! This crate implements:
//!
//! * [`cache`] — the flash cache itself: extent-granularity entries,
//!   clock eviction, write-back behaviour, and wear (program/erase)
//!   accounting against the paper's 100k-cycle endurance limit,
//! * [`system`] — the storage system model: disk + optional flash,
//!   replaying a workload's block trace to an effective per-IO service
//!   time,
//! * [`study`] — the Table 3(b) experiment: local desktop disk vs remote
//!   laptop disk vs remote laptop + flash vs cheaper laptop-2 + flash,
//!   measured on the `emb1` platform.
//!
//! # Example
//! ```
//! use wcs_flashcache::system::StorageSystem;
//! use wcs_platforms::storage::{DiskModel, FlashModel};
//! use wcs_workloads::{disktrace, WorkloadId};
//!
//! let mut sys = StorageSystem::with_flash(DiskModel::laptop_remote(), FlashModel::table3());
//! let mut gen = disktrace::DiskTraceGen::new(disktrace::params_for(WorkloadId::Ytube), 1);
//! let stats = sys.replay(&mut gen, 50_000);
//! assert!(stats.hit_ratio() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod ftl;
pub mod memo;
pub mod study;
pub mod system;
