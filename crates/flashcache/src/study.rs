//! The Table 3(b) experiment: disk alternatives on the `emb1` platform.

use wcs_platforms::storage::{DiskModel, FlashModel};
use wcs_platforms::{catalog, BomItem, Component, Platform, PlatformId};
use wcs_simcore::stats::harmonic_mean;
use wcs_tco::{Efficiency, TcoModel};
use wcs_workloads::disktrace::params_for;
use wcs_workloads::perf::{measure_perf_with_demand, MeasureConfig};
use wcs_workloads::service::PlatformDemand;
use wcs_workloads::{suite, Metric, WorkloadId};

use crate::memo::StorageMemo;

/// A storage configuration under study (Table 3's columns).
///
/// Named `DiskScenario` before the scenario API redesign; the old name
/// survives as a deprecated alias for one release.
#[derive(Debug, Clone)]
pub struct StorageScenario {
    /// Row label as in Table 3(b).
    pub name: &'static str,
    /// The disk model.
    pub disk: DiskModel,
    /// Flash cache, if present.
    pub flash: Option<FlashModel>,
}

impl StorageScenario {
    /// The baseline: local desktop-class disk.
    pub fn desktop_local() -> Self {
        StorageScenario {
            name: "Local Desktop (baseline)",
            disk: DiskModel::desktop(),
            flash: None,
        }
    }

    /// Remote laptop disk over the SAN.
    pub fn laptop_remote() -> Self {
        StorageScenario {
            name: "Remote Laptop",
            disk: DiskModel::laptop_remote(),
            flash: None,
        }
    }

    /// Remote laptop disk plus the 1 GB flash cache.
    pub fn laptop_flash() -> Self {
        StorageScenario {
            name: "Remote Laptop + Flash",
            disk: DiskModel::laptop_remote(),
            flash: Some(FlashModel::table3()),
        }
    }

    /// The cheaper laptop-2 disk plus flash.
    pub fn laptop2_flash() -> Self {
        StorageScenario {
            name: "Remote Laptop-2 + Flash",
            disk: DiskModel::laptop2_remote(),
            flash: Some(FlashModel::table3()),
        }
    }

    /// All four scenarios, baseline first.
    pub fn all() -> Vec<StorageScenario> {
        vec![
            Self::desktop_local(),
            Self::laptop_remote(),
            Self::laptop_flash(),
            Self::laptop2_flash(),
        ]
    }

    /// Applies this scenario's storage BOM to a platform.
    pub fn apply_bom(&self, platform: &Platform) -> Platform {
        let mut p = platform.with_component(BomItem::new(
            Component::Disk,
            self.disk.price_usd,
            self.disk.power_w,
        ));
        if let Some(flash) = &self.flash {
            p = p.with_component(BomItem::new(
                Component::Flash,
                flash.price_usd,
                flash.power_w,
            ));
        }
        p.name = format!("{}+{}", platform.name, self.name);
        p
    }
}

/// Deprecated pre-redesign name for [`StorageScenario`]. "Scenario" now
/// means a workload/traffic pairing repo-wide (see `wcs-core`'s
/// `scenario` module); this alias exists for one release so downstream
/// code keeps compiling while it migrates.
#[deprecated(note = "renamed to `StorageScenario`")]
pub type DiskScenario = StorageScenario;

/// One row of Table 3(b): a scenario's efficiency relative to the
/// desktop baseline, harmonically aggregated across the suite.
#[derive(Debug, Clone)]
pub struct DiskStudyRow {
    /// Scenario label.
    pub name: &'static str,
    /// Relative performance (HMean across workloads).
    pub perf: f64,
    /// Relative Perf/Inf-$.
    pub perf_per_inf: f64,
    /// Relative Perf/W.
    pub perf_per_watt: f64,
    /// Relative Perf/TCO-$.
    pub perf_per_tco: f64,
}

/// Measures the performance of every workload on `platform` under a disk
/// scenario: replays the workload's block trace to get the effective
/// per-IO service time, then runs the performance simulation with the
/// substituted disk stage.
pub fn scenario_perf(
    scenario: &StorageScenario,
    platform: &Platform,
    cfg: &MeasureConfig,
) -> Vec<(WorkloadId, f64)> {
    scenario_perf_with(scenario, platform, cfg, &StorageMemo::disabled())
}

/// [`scenario_perf`] with a shared [`StorageMemo`]: block traces are
/// materialized once per workload and replays / performance points are
/// cached across scenarios and repeated studies.
pub fn scenario_perf_with(
    scenario: &StorageScenario,
    platform: &Platform,
    cfg: &MeasureConfig,
    memo: &StorageMemo,
) -> Vec<(WorkloadId, f64)> {
    let mut out = Vec::new();
    for id in WorkloadId::ALL {
        let wl = suite::workload(id);
        let stats = memo.replay(
            &scenario.disk,
            scenario.flash.as_ref(),
            params_for(id),
            cfg.seed ^ 0xD15C,
            120_000,
        );
        let mut demand = PlatformDemand::with_overrides(
            &wl,
            platform,
            &scenario.disk,
            platform.memory.capacity_gib,
        );
        demand.set_disk_secs(wl.demand.io_per_req * stats.mean_service_secs());
        let perf = memo.perf(id, &demand, cfg, || {
            measure_perf_with_demand(&wl, &demand, cfg)
                .map(|r| r.value)
                .unwrap_or(f64::NAN)
        });
        out.push((id, perf));
    }
    out
}

/// Runs the full Table 3(b) study on `emb1` and returns the three
/// non-baseline rows (plus the baseline row at 100%).
pub fn run_disk_study(cfg: &MeasureConfig) -> Vec<DiskStudyRow> {
    run_disk_study_with(cfg, &StorageMemo::disabled())
}

/// [`run_disk_study`] with a shared [`StorageMemo`].
pub fn run_disk_study_with(cfg: &MeasureConfig, memo: &StorageMemo) -> Vec<DiskStudyRow> {
    let platform = catalog::platform(PlatformId::Emb1);
    let model = TcoModel::paper_default();
    let scenarios = StorageScenario::all();

    let baseline = &scenarios[0];
    let base_perf = scenario_perf_with(baseline, &platform, cfg, memo);
    let base_bom = baseline.apply_bom(&platform);
    let base_tco = model.server_tco(&base_bom);

    let mut rows = Vec::new();
    for (i, scenario) in scenarios.iter().enumerate() {
        // The baseline's per-workload numbers are already in hand; don't
        // measure them twice.
        let perfs = if i == 0 {
            base_perf.clone()
        } else {
            scenario_perf_with(scenario, &platform, cfg, memo)
        };
        let rel: Vec<f64> = perfs
            .iter()
            .zip(&base_perf)
            .map(|((_, p), (_, b))| p / b)
            .collect();
        let perf_h = harmonic_mean(&rel).unwrap_or(f64::NAN);
        let tco = model.server_tco(&scenario.apply_bom(&platform));
        // Efficiency ratios: relative perf times the cost/power ratios.
        let base_eff = Efficiency::new(1.0, base_tco.clone());
        let eff = Efficiency::new(perf_h, tco);
        let r = eff.relative_to(&base_eff);
        rows.push(DiskStudyRow {
            name: scenario.name,
            perf: perf_h,
            perf_per_inf: r.perf_per_inf,
            perf_per_watt: r.perf_per_watt,
            perf_per_tco: r.perf_per_tco,
        });
    }
    rows
}

/// Sanity helper for batch workloads: true when the workload is one of
/// the mapreduce jobs.
pub fn is_batch(id: WorkloadId) -> bool {
    matches!(suite::workload(id).metric, Metric::Batch { .. })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_cover_table3a() {
        let all = StorageScenario::all();
        assert_eq!(all.len(), 4);
        assert_eq!(all[1].disk.price_usd, 80.0);
        assert_eq!(all[3].disk.price_usd, 40.0);
        assert!(all[2].flash.as_ref().unwrap().price_usd == 14.0);
    }

    #[test]
    fn bom_swap_changes_cost_and_power() {
        let p = catalog::platform(PlatformId::Emb1);
        let swapped = StorageScenario::laptop_flash().apply_bom(&p);
        assert_eq!(swapped.component_cost(Component::Disk), 80.0);
        assert_eq!(swapped.component_cost(Component::Flash), 14.0);
        assert!((swapped.max_power_w() - (52.0 - 10.0 + 2.0 + 0.5)).abs() < 1e-9);
    }

    /// Table 3(b)'s qualitative shape: the remote laptop disk alone is
    /// not beneficial on Perf/TCO-$; adding flash makes it beneficial;
    /// the cheaper laptop-2 is best.
    #[test]
    fn table3b_ordering() {
        let rows = run_disk_study(&MeasureConfig::quick());
        assert_eq!(rows.len(), 4);
        let laptop = &rows[1];
        let flash = &rows[2];
        let flash2 = &rows[3];
        assert!(
            laptop.perf_per_tco < flash.perf_per_tco,
            "flash must beat bare laptop: {} vs {}",
            laptop.perf_per_tco,
            flash.perf_per_tco
        );
        assert!(
            flash.perf_per_tco <= flash2.perf_per_tco + 1e-9,
            "laptop-2 must be best: {} vs {}",
            flash.perf_per_tco,
            flash2.perf_per_tco
        );
        assert!(flash2.perf_per_tco > 1.0, "laptop-2+flash beats baseline");
        // Flash recovers performance lost to the slow remote disk.
        assert!(flash.perf > laptop.perf);
        // Perf/W improves in all flash scenarios (paper: 109%).
        assert!(flash.perf_per_watt > 1.0);
    }

    /// Memoized and unmemoized studies must render byte-identically, and
    /// a warm rerun must be answered from the cache.
    #[test]
    fn memoized_study_is_bit_identical() {
        let cfg = MeasureConfig::quick();
        let cold = run_disk_study(&cfg);
        let memo = StorageMemo::new();
        let first = run_disk_study_with(&cfg, &memo);
        assert_eq!(format!("{cold:?}"), format!("{first:?}"));
        let warm = run_disk_study_with(&cfg, &memo);
        assert_eq!(format!("{cold:?}"), format!("{warm:?}"));
        let stats = memo.stats();
        assert!(
            stats.hits > stats.misses,
            "warm rerun should hit: {stats:?}"
        );
    }
}
