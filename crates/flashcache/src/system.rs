//! The storage system: a disk, optionally fronted by a flash cache.
//!
//! The replay loop is chunked: requests are staged into a small scratch
//! buffer (from the live generator or from a materialized trace slice)
//! and consumed by one shared epoch-batch kernel, so both paths execute
//! byte-identical simulation code and differ only in where the chunk
//! comes from. The kernel itself is a SoA lane pass: a probe loop
//! records one outcome-code bitmask byte per request, integer counters
//! fold branch-free via [`wcs_simcore::simd`], service times come from
//! a per-code table (every request of a trace moves the same number of
//! blocks, so each code has one service time), and the f64 service sum
//! accumulates through the fixed-order per-epoch reduction tree of
//! [`simd::block_sums_f64`] — bit-identical for every chunking of the
//! trace that splits at epoch boundaries.

use wcs_platforms::storage::{DiskModel, FlashModel};
use wcs_simcore::simd;
use wcs_simcore::stats::{Histogram, PreparedSample};
use wcs_workloads::disktrace::{BlockAccess, DiskTraceGen};

use crate::cache::{FlashCacheIndex, WearStats};

/// Requests staged per chunk of the replay loop — one f64 accumulation
/// block ([`simd::F64_BLOCK`]), so chunked replays that split at epoch
/// boundaries reproduce the unsplit block-sum sequence exactly.
const CHUNK: usize = simd::F64_BLOCK;

/// Outcome-code bit: the request was served from flash.
const CODE_HIT: u8 = 1;
/// Outcome-code bit: a write absorbed by flash (write-back traffic).
const CODE_ABSORBED: u8 = 2;

/// Statistics from replaying a block trace.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StorageStats {
    /// Requests replayed.
    pub requests: u64,
    /// Requests served from flash.
    pub flash_hits: u64,
    /// Total foreground (latency-critical) service time, seconds.
    pub total_service_secs: f64,
    /// Bytes flushed to disk in the background (write-back traffic).
    pub background_bytes: u64,
    /// Flash wear counters.
    pub wear: WearStats,
    /// Per-request foreground service-time distribution.
    pub latency: Histogram,
}

impl StorageStats {
    /// Fraction of requests served from flash.
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.flash_hits as f64 / self.requests as f64
        }
    }

    /// Mean foreground service time per request, seconds.
    pub fn mean_service_secs(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_service_secs / self.requests as f64
        }
    }

    /// The p-th percentile of per-request service time, seconds.
    /// Flash-cached systems are strongly bimodal (flash hits vs disk
    /// misses), so the tail tells more than the mean.
    pub fn service_percentile(&self, p: f64) -> Option<f64> {
        self.latency.percentile(p)
    }
}

/// A disk with an optional flash cache in front of it.
///
/// Service accounting follows the FlashCache design the paper adopts:
///
/// * read hit — served at flash read speed;
/// * read miss — full disk access; the flash insert is off the critical
///   path (counted as wear, not latency);
/// * write with flash — absorbed at flash write speed (write-back); the
///   eventual disk flush is background traffic;
/// * any access without flash — full disk access.
#[derive(Debug)]
pub struct StorageSystem {
    disk: DiskModel,
    flash: Option<(FlashModel, FlashCacheIndex)>,
    flash_failed: bool,
}

impl StorageSystem {
    /// A bare disk.
    pub fn disk_only(disk: DiskModel) -> Self {
        StorageSystem {
            disk,
            flash: None,
            flash_failed: false,
        }
    }

    /// A disk fronted by a flash cache sized from the flash device's
    /// capacity.
    pub fn with_flash(disk: DiskModel, flash: FlashModel) -> Self {
        let index = FlashCacheIndex::new(1); // resized on first replay
        StorageSystem {
            disk,
            flash: Some((flash, index)),
            flash_failed: false,
        }
    }

    /// The underlying disk model.
    pub fn disk(&self) -> &DiskModel {
        &self.disk
    }

    /// Fails the flash device: until [`repair_flash`] the system
    /// degrades gracefully to the bare disk — every access is served at
    /// disk latency, nothing is cached, and no wear accrues. A no-op on
    /// a disk-only system.
    ///
    /// [`repair_flash`]: StorageSystem::repair_flash
    pub fn fail_flash(&mut self) {
        self.flash_failed = true;
    }

    /// Replaces the failed flash device. The replacement arrives cold:
    /// the cache index is cleared and must re-warm.
    pub fn repair_flash(&mut self) {
        self.flash_failed = false;
        if let Some((_, index)) = &mut self.flash {
            let capacity = index.capacity();
            let extent = index.extent_bytes();
            *index = FlashCacheIndex::new(capacity.max(1));
            index.set_extent_bytes(extent);
        }
    }

    /// True when a flash cache is present and currently working.
    pub fn flash_available(&self) -> bool {
        self.flash.is_some() && !self.flash_failed
    }

    /// Sizes the flash cache (if present and still cold) for the
    /// workload's request extent.
    fn size_flash(&mut self, extent_bytes: u64) {
        if let Some((flash, index)) = &mut self.flash {
            let capacity_extents =
                ((flash.capacity_gb * 1e9) as u64 / extent_bytes).max(1) as usize;
            if index.is_empty() {
                *index = FlashCacheIndex::new(capacity_extents);
                index.set_extent_bytes(extent_bytes);
            }
        }
    }

    /// Builds the per-code service-time table for requests of
    /// `request_blocks` blocks. Codes index it directly: every request
    /// of a homogeneous trace moves the same byte count, so each
    /// outcome class has exactly one service time (and one pre-bucketed
    /// histogram sample). The degraded row covers the no-flash /
    /// failed-flash path, where every code is 0.
    fn svc_table(&self, request_blocks: u32) -> SvcTable {
        let bytes = u64::from(request_blocks) * 4096;
        let fbytes = bytes as f64;
        let disk = self.disk.access_secs(fbytes);
        let svc = match &self.flash {
            Some((flash, _)) => [
                disk,                    // read miss
                flash.read_secs(fbytes), // read hit
                flash.write_secs(fbytes),
                flash.write_secs(fbytes),
            ],
            None => [disk; 4],
        };
        SvcTable {
            blocks: request_blocks,
            bytes,
            svc,
            prepared: svc.map(Histogram::prepare),
            degraded: disk,
            degraded_prepared: Histogram::prepare(disk),
        }
    }

    /// The shared replay kernel, split into lane passes per staged
    /// epoch.
    ///
    /// The probe pass walks the cache index (the unpredictable part)
    /// and records one outcome-code bitmask byte per request; the
    /// flash-state dispatch is hoisted out of the loop — it cannot
    /// change mid-chunk. Integer counters then fold branch-free
    /// ([`simd::fold_mask_counts`]); the service-time lane is a
    /// per-code table gather whose epoch sum joins the fixed-order
    /// block-sum sequence (`svc_sums`), reduced once at the end of the
    /// replay; and the histogram replays pre-bucketed samples in the
    /// original request order, so every statistic stays bit-identical
    /// to a one-pass scalar loop.
    ///
    /// Requests whose size differs from the table's (hand-built traces
    /// only) fall back to computing the same service formulas per
    /// request — identical bits for the sizes that do match.
    fn replay_epoch_batch(
        &mut self,
        chunk: &[BlockAccess],
        table: &SvcTable,
        stats: &mut StorageStats,
        svc_sums: &mut Vec<f64>,
    ) {
        debug_assert!(chunk.len() <= CHUNK);
        let mut codes = [0u8; CHUNK];
        let staged = chunk.len();
        let degraded = match (&mut self.flash, self.flash_failed) {
            // A failed flash device degrades to the bare-disk path:
            // full disk latency, no caching, no wear. Codes stay 0.
            (None, _) | (Some(_), true) => true,
            (Some((_, index)), false) => {
                for (req, code) in chunk.iter().zip(codes.iter_mut()) {
                    let hit = index.access(req.block, req.write);
                    // Write-back: absorbed by flash either way.
                    *code = u8::from(hit) * CODE_HIT + u8::from(req.write) * CODE_ABSORBED;
                }
                false
            }
        };
        stats.requests += staged as u64;
        let counts = simd::fold_mask_counts(&codes[..staged]);
        stats.flash_hits += counts[0];
        let homogeneous = chunk.iter().all(|r| r.blocks == table.blocks);
        if homogeneous {
            stats.background_bytes += counts[1] * table.bytes;
        } else {
            for (req, &c) in chunk.iter().zip(&codes[..staged]) {
                stats.background_bytes += u64::from(c & CODE_ABSORBED != 0) * req.bytes();
            }
        }
        // Service-time lane: a branch-free table gather in the common
        // homogeneous case, the same formulas per request otherwise.
        let mut svc = [0.0f64; CHUNK];
        match (homogeneous, degraded) {
            (true, false) => {
                for (&c, s) in codes[..staged].iter().zip(svc.iter_mut()) {
                    *s = table.svc[usize::from(c)];
                }
                for &c in &codes[..staged] {
                    stats
                        .latency
                        .record_prepared(table.prepared[usize::from(c)]);
                }
            }
            (true, true) => {
                svc[..staged].fill(table.degraded);
                for _ in 0..staged {
                    stats.latency.record_prepared(table.degraded_prepared);
                }
            }
            (false, _) => {
                for ((req, &c), s) in chunk.iter().zip(&codes[..staged]).zip(svc.iter_mut()) {
                    let bytes = req.bytes() as f64;
                    *s = if degraded || c == 0 {
                        self.disk.access_secs(bytes)
                    } else {
                        let (flash, _) = self.flash.as_ref().expect("probed above");
                        if c & CODE_ABSORBED != 0 {
                            flash.write_secs(bytes)
                        } else {
                            flash.read_secs(bytes)
                        }
                    };
                }
                for &s in &svc[..staged] {
                    stats.latency.record(s);
                }
            }
        }
        simd::block_sums_f64(&svc[..staged], svc_sums);
    }

    /// Copies the cache's wear counters into the replay's statistics.
    fn finish_wear(&self, stats: &mut StorageStats) {
        if let (Some((_, index)), false) = (&self.flash, self.flash_failed) {
            stats.wear = index.wear();
        }
    }

    /// Replays `n` requests from the generator, returning service
    /// statistics. The flash cache (if any) is sized for the generator's
    /// request extent before the replay.
    pub fn replay(&mut self, gen: &mut DiskTraceGen, n: u64) -> StorageStats {
        let mut session = self.begin_replay(gen.params().request_blocks);
        let mut scratch = [BlockAccess {
            block: 0,
            blocks: 0,
            write: false,
        }; CHUNK];
        let mut left = n;
        while left > 0 {
            let take = (left as usize).min(CHUNK);
            for slot in &mut scratch[..take] {
                *slot = gen.next_access();
            }
            self.replay_chunk(&mut session, &scratch[..take]);
            left -= take as u64;
        }
        self.finish_replay(session)
    }

    /// Replays a materialized trace whose requests use extents of
    /// `request_blocks` 4 KiB blocks.
    ///
    /// Bit-identical to [`replay`](Self::replay) over the same requests:
    /// the buffer stores exactly what the generator would produce, and
    /// both paths feed the same epoch-batch kernel.
    pub fn replay_trace(&mut self, request_blocks: u32, trace: &[BlockAccess]) -> StorageStats {
        let mut session = self.begin_replay(request_blocks);
        self.replay_chunk(&mut session, trace);
        self.finish_replay(session)
    }

    /// Opens a resumable replay of requests sized `request_blocks`
    /// blocks, sizing the flash cache (if cold) for that extent.
    ///
    /// Feed trace ranges with [`replay_chunk`](Self::replay_chunk) and
    /// close with [`finish_replay`](Self::finish_replay). Splitting a
    /// trace across any number of chunks whose boundaries fall on
    /// [`REPLAY_CHUNK_ALIGN`] multiples yields statistics bit-identical
    /// to one whole-trace call: the cache state threads chunk to chunk
    /// inside the system, integer counters merge exactly, and the f64
    /// service total is reduced once, at finish, from the per-epoch
    /// block-sum sequence — which aligned splits reproduce exactly.
    pub fn begin_replay(&mut self, request_blocks: u32) -> ReplaySession {
        self.size_flash(u64::from(request_blocks) * 4096);
        ReplaySession {
            table: self.svc_table(request_blocks),
            stats: StorageStats::default(),
            svc_sums: Vec::new(),
            mid_epoch: false,
        }
    }

    /// Replays one trace range of an open session.
    ///
    /// # Panics
    /// Panics if a previous chunk of this session ended off an epoch
    /// boundary (only the final chunk may be ragged — see
    /// [`begin_replay`](Self::begin_replay)).
    pub fn replay_chunk(&mut self, session: &mut ReplaySession, chunk: &[BlockAccess]) {
        assert!(
            !session.mid_epoch,
            "replay_chunk after a ragged (non-multiple-of-{REPLAY_CHUNK_ALIGN}) chunk"
        );
        session.mid_epoch = !chunk.len().is_multiple_of(CHUNK);
        for epoch in chunk.chunks(CHUNK) {
            self.replay_epoch_batch(
                epoch,
                &session.table,
                &mut session.stats,
                &mut session.svc_sums,
            );
        }
    }

    /// Closes a session: reduces the service-time block sums with one
    /// fixed-shape tree and snapshots the wear counters.
    pub fn finish_replay(&mut self, session: ReplaySession) -> StorageStats {
        let ReplaySession {
            mut stats,
            svc_sums,
            ..
        } = session;
        stats.total_service_secs = simd::reduce_block_sums(&svc_sums);
        self.finish_wear(&mut stats);
        stats
    }
}

/// Chunk boundaries a split replay must fall on to stay bit-identical
/// to an unsplit one (one f64 accumulation block, [`simd::F64_BLOCK`]).
pub const REPLAY_CHUNK_ALIGN: usize = CHUNK;

/// An open resumable replay: cache state lives in the
/// [`StorageSystem`]; the session carries the statistics under
/// construction and the fixed-order f64 block-sum sequence.
#[derive(Debug)]
pub struct ReplaySession {
    table: SvcTable,
    stats: StorageStats,
    svc_sums: Vec<f64>,
    mid_epoch: bool,
}

/// Per-code service times for homogeneous (fixed-size) requests — the
/// gather table of the replay kernel's service lane.
#[derive(Debug)]
struct SvcTable {
    blocks: u32,
    bytes: u64,
    svc: [f64; 4],
    prepared: [PreparedSample; 4],
    degraded: f64,
    degraded_prepared: PreparedSample,
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcs_workloads::disktrace::params_for;
    use wcs_workloads::WorkloadId;

    fn gen(id: WorkloadId, seed: u64) -> DiskTraceGen {
        DiskTraceGen::new(params_for(id), seed)
    }

    #[test]
    fn disk_only_service_matches_model() {
        let mut sys = StorageSystem::disk_only(DiskModel::desktop());
        let mut g = gen(WorkloadId::Webmail, 1);
        let stats = sys.replay(&mut g, 1000);
        let expected = DiskModel::desktop().access_secs(32768.0);
        assert!((stats.mean_service_secs() - expected).abs() < 1e-9);
        assert_eq!(stats.flash_hits, 0);
    }

    #[test]
    fn flash_cuts_mean_service_for_popular_reads() {
        let mut bare = StorageSystem::disk_only(DiskModel::laptop_remote());
        let mut cached =
            StorageSystem::with_flash(DiskModel::laptop_remote(), FlashModel::table3());
        let a = bare.replay(&mut gen(WorkloadId::Ytube, 2), 60_000);
        let b = cached.replay(&mut gen(WorkloadId::Ytube, 2), 60_000);
        assert!(b.hit_ratio() > 0.3, "hit ratio {}", b.hit_ratio());
        assert!(
            b.mean_service_secs() < a.mean_service_secs() * 0.7,
            "{} vs {}",
            b.mean_service_secs(),
            a.mean_service_secs()
        );
    }

    #[test]
    fn writes_absorbed_by_flash() {
        let mut cached =
            StorageSystem::with_flash(DiskModel::laptop_remote(), FlashModel::table3());
        let stats = cached.replay(&mut gen(WorkloadId::MapredWr, 3), 20_000);
        // 90% writes: mean service must be far below the raw disk time.
        let raw = DiskModel::laptop_remote().access_secs(1048576.0);
        assert!(stats.mean_service_secs() < raw * 0.6);
        assert!(stats.background_bytes > 0);
    }

    #[test]
    fn wear_within_endurance_over_three_years() {
        // The paper's argument: with the 3-year depreciation cycle, a
        // 1 GB / 100k-cycle device survives typical workload write rates.
        let flash = FlashModel::table3();
        let mut cached = StorageSystem::with_flash(DiskModel::laptop_remote(), flash.clone());
        let stats = cached.replay(&mut gen(WorkloadId::Webmail, 5), 100_000);
        // Assume 20 disk IOs/s — generous for webmail on one emb1-class
        // server — so the replayed window spans 5000 s of operation.
        let window_secs = 100_000.0 / 20.0;
        let bytes_per_sec = stats.wear.bytes_programmed as f64 / window_secs;
        assert!(stats.wear.survives(
            (flash.capacity_gb * 1e9) as u64,
            flash.endurance_cycles,
            bytes_per_sec,
            3.0
        ));
    }

    #[test]
    fn trace_replay_is_bit_identical_to_generator_replay() {
        for (id, flash) in [
            (WorkloadId::Ytube, Some(FlashModel::table3())),
            (WorkloadId::MapredWr, Some(FlashModel::table3())),
            (WorkloadId::Webmail, None),
        ] {
            let params = params_for(id);
            let build = || match &flash {
                Some(f) => StorageSystem::with_flash(DiskModel::laptop_remote(), f.clone()),
                None => StorageSystem::disk_only(DiskModel::laptop_remote()),
            };
            let from_gen = build().replay(&mut gen(id, 31), 50_000);
            let trace = wcs_workloads::disktrace::materialize(params, 31, 50_000);
            let from_trace = build().replay_trace(params.request_blocks, &trace);
            assert_eq!(
                format!("{from_gen:?}"),
                format!("{from_trace:?}"),
                "{id} diverged"
            );
        }
    }

    #[test]
    fn chunked_replay_is_invariant_to_chunk_count() {
        let params = params_for(WorkloadId::Ytube);
        let n = 50_000;
        let trace = wcs_workloads::disktrace::materialize(params, 17, n);
        let mut whole = StorageSystem::with_flash(DiskModel::laptop_remote(), FlashModel::table3());
        let want = whole.replay_trace(params.request_blocks, &trace);
        for chunks in [1usize, 2, 7, 64] {
            let mut sys =
                StorageSystem::with_flash(DiskModel::laptop_remote(), FlashModel::table3());
            let mut session = sys.begin_replay(params.request_blocks);
            // Split only at epoch-aligned boundaries.
            let epochs = n.div_ceil(REPLAY_CHUNK_ALIGN);
            let per = epochs.div_ceil(chunks) * REPLAY_CHUNK_ALIGN;
            let mut at = 0;
            while at < n {
                let end = (at + per).min(n);
                sys.replay_chunk(&mut session, &trace[at..end]);
                at = end;
            }
            let got = sys.finish_replay(session);
            assert_eq!(
                format!("{want:?}"),
                format!("{got:?}"),
                "chunks={chunks} diverged"
            );
            assert_eq!(
                want.total_service_secs.to_bits(),
                got.total_service_secs.to_bits(),
                "chunks={chunks} f64 total"
            );
        }
    }

    #[test]
    fn heterogeneous_trace_sizes_fall_back_bit_consistently() {
        // Hand-built trace mixing request sizes: the per-request
        // fallback must agree with a table-free scalar expectation.
        let disk = DiskModel::laptop_remote();
        let trace: Vec<BlockAccess> = (0..9000u64)
            .map(|i| BlockAccess {
                block: (i * 64) % 4096,
                blocks: if i % 3 == 0 { 64 } else { 16 },
                write: i % 5 == 0,
            })
            .collect();
        let mut sys = StorageSystem::disk_only(disk.clone());
        let got = sys.replay_trace(64, &trace);
        assert_eq!(got.requests, 9000);
        let want: f64 = trace
            .iter()
            .map(|r| disk.access_secs(r.bytes() as f64))
            .sum();
        assert!(
            (got.total_service_secs - want).abs() < 1e-9,
            "{} vs {want}",
            got.total_service_secs
        );
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_mid_session_chunks_are_rejected() {
        let params = params_for(WorkloadId::Webmail);
        let trace = wcs_workloads::disktrace::materialize(params, 3, 5000);
        let mut sys = StorageSystem::disk_only(DiskModel::desktop());
        let mut session = sys.begin_replay(params.request_blocks);
        sys.replay_chunk(&mut session, &trace[..100]); // off-boundary
        sys.replay_chunk(&mut session, &trace[100..]);
    }

    #[test]
    fn scan_workload_gets_few_hits() {
        let mut cached =
            StorageSystem::with_flash(DiskModel::laptop_remote(), FlashModel::table3());
        let stats = cached.replay(&mut gen(WorkloadId::MapredWc, 7), 30_000);
        // wc is a near-sequential scan over 5 GB with a 1 GB cache: the
        // read hit ratio must be low (writes still count as "hits" only
        // when resident).
        assert!(stats.hit_ratio() < 0.45, "hit ratio {}", stats.hit_ratio());
    }
}

#[cfg(test)]
mod degraded_tests {
    use super::*;
    use wcs_workloads::disktrace::params_for;
    use wcs_workloads::WorkloadId;

    fn gen(id: WorkloadId, seed: u64) -> DiskTraceGen {
        DiskTraceGen::new(params_for(id), seed)
    }

    #[test]
    fn failed_flash_serves_at_bare_disk_speed() {
        let mut cached =
            StorageSystem::with_flash(DiskModel::laptop_remote(), FlashModel::table3());
        let mut bare = StorageSystem::disk_only(DiskModel::laptop_remote());
        cached.fail_flash();
        assert!(!cached.flash_available());
        let a = cached.replay(&mut gen(WorkloadId::Ytube, 4), 20_000);
        let b = bare.replay(&mut gen(WorkloadId::Ytube, 4), 20_000);
        // Bypass mode is indistinguishable from a disk-only system.
        assert_eq!(a.flash_hits, 0);
        assert_eq!(a.wear.bytes_programmed, 0);
        assert!((a.mean_service_secs() - b.mean_service_secs()).abs() < 1e-12);
    }

    #[test]
    fn outage_degrades_service_but_never_fails() {
        let mut sys = StorageSystem::with_flash(DiskModel::laptop_remote(), FlashModel::table3());
        let mut g = gen(WorkloadId::Ytube, 5);
        let healthy = sys.replay(&mut g, 40_000);
        sys.fail_flash();
        let outage = sys.replay(&mut g, 40_000);
        assert!(healthy.hit_ratio() > 0.3);
        assert_eq!(outage.hit_ratio(), 0.0);
        // Degraded, not dead: every request still completes, just slower.
        assert_eq!(outage.requests, 40_000);
        assert!(outage.mean_service_secs() > healthy.mean_service_secs());
    }

    #[test]
    fn repair_restarts_cold_then_rewarms() {
        let mut sys = StorageSystem::with_flash(DiskModel::laptop_remote(), FlashModel::table3());
        let mut g = gen(WorkloadId::Ytube, 6);
        let warm = sys.replay(&mut g, 40_000);
        sys.fail_flash();
        let _ = sys.replay(&mut g, 10_000);
        sys.repair_flash();
        assert!(sys.flash_available());
        // The replacement device starts cold but re-warms to a similar
        // steady-state hit ratio.
        let rewarmed = sys.replay(&mut g, 40_000);
        assert!(rewarmed.hit_ratio() > 0.0);
        assert!(rewarmed.hit_ratio() > warm.hit_ratio() * 0.5);
        // Replacement device: wear restarts from zero.
        assert!(rewarmed.wear.bytes_programmed <= warm.wear.bytes_programmed);
    }

    #[test]
    fn fail_flash_on_disk_only_is_a_noop() {
        let mut sys = StorageSystem::disk_only(DiskModel::desktop());
        sys.fail_flash();
        let stats = sys.replay(&mut gen(WorkloadId::Webmail, 7), 1000);
        assert_eq!(stats.requests, 1000);
        assert!(!sys.flash_available());
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;
    use wcs_platforms::storage::{DiskModel, FlashModel};
    use wcs_workloads::disktrace::{params_for, DiskTraceGen};
    use wcs_workloads::WorkloadId;

    #[test]
    fn cached_service_times_are_bimodal() {
        let mut sys = StorageSystem::with_flash(DiskModel::laptop_remote(), FlashModel::table3());
        let mut gen = DiskTraceGen::new(params_for(WorkloadId::Ytube), 21);
        let stats = sys.replay(&mut gen, 60_000);
        let p25 = stats.service_percentile(25.0).unwrap();
        let p99 = stats.service_percentile(99.0).unwrap();
        // Flash hits are ~5 ms transfers; disk misses ~28 ms: the tail
        // must sit far above the body.
        assert!(p99 > 3.0 * p25, "p25 {p25} vs p99 {p99}");
        // Mean matches the running total.
        assert!((stats.latency.mean() - stats.mean_service_secs()).abs() < 1e-9);
    }

    #[test]
    fn bare_disk_has_tight_distribution() {
        let mut sys = StorageSystem::disk_only(DiskModel::desktop());
        let mut gen = DiskTraceGen::new(params_for(WorkloadId::Webmail), 23);
        let stats = sys.replay(&mut gen, 10_000);
        let p10 = stats.service_percentile(10.0).unwrap();
        let p99 = stats.service_percentile(99.0).unwrap();
        assert!(
            p99 < p10 * 1.1,
            "fixed-size requests on one disk are uniform"
        );
    }
}
