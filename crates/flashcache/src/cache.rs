//! The flash cache: extent entries, clock eviction, wear accounting.
//!
//! The slot bookkeeping (key map, dirty/ref bits, clock hand) is the
//! shared [`SlotCache`] kernel — the same machinery the memshare page
//! store uses — leaving this module with what is flash-specific: wear
//! accounting (program bytes, erases) layered over the kernel's events.

use wcs_simcore::slotcache::SlotCache;

/// Wear statistics for the flash device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WearStats {
    /// Bytes programmed into flash (inserts + write hits).
    pub bytes_programmed: u64,
    /// Block erases performed (eviction of a written extent).
    pub erases: u64,
}

impl WearStats {
    /// Average program/erase cycles per flash block so far, given the
    /// device capacity in bytes.
    ///
    /// # Panics
    /// Panics if `capacity_bytes` is zero.
    pub fn avg_pe_cycles(&self, capacity_bytes: u64) -> f64 {
        assert!(capacity_bytes > 0);
        self.bytes_programmed as f64 / capacity_bytes as f64
    }

    /// Whether the device survives `years` at the observed programming
    /// rate (`bytes_per_sec`), given capacity and endurance. The paper
    /// leans on the 3-year depreciation cycle to argue flash endurance
    /// is workable.
    pub fn survives(
        &self,
        capacity_bytes: u64,
        endurance_cycles: u64,
        bytes_per_sec: f64,
        years: f64,
    ) -> bool {
        assert!(capacity_bytes > 0);
        let lifetime_bytes = capacity_bytes as f64 * endurance_cycles as f64;
        bytes_per_sec * years * 365.25 * 86400.0 <= lifetime_bytes
    }
}

/// A flash cache over fixed-size extents (a workload's request size).
///
/// Entries are whole request extents; eviction is clock (second chance);
/// writes are absorbed write-back, so a dirty extent's eviction costs an
/// erase plus the background flush the [`crate::system`] layer accounts.
///
/// # Example
/// ```
/// use wcs_flashcache::cache::FlashCacheIndex;
/// let mut c = FlashCacheIndex::new(2);
/// assert!(!c.access(10, false)); // miss, inserted
/// assert!(c.access(10, false));  // hit
/// ```
#[derive(Debug)]
pub struct FlashCacheIndex {
    cache: SlotCache,
    wear_extent_bytes: u64,
    wear: WearStats,
}

impl FlashCacheIndex {
    /// Creates a cache holding up to `capacity` extents (clamped up to
    /// one).
    pub fn new(capacity: usize) -> Self {
        FlashCacheIndex {
            // Clock eviction never consults a recency list.
            cache: SlotCache::new(capacity.max(1), false),
            wear_extent_bytes: 0,
            wear: WearStats::default(),
        }
    }

    /// Sets the extent size used for wear accounting.
    pub fn set_extent_bytes(&mut self, bytes: u64) {
        self.wear_extent_bytes = bytes;
    }

    /// The extent size used for wear accounting, in bytes.
    pub fn extent_bytes(&self) -> u64 {
        self.wear_extent_bytes
    }

    /// Maximum number of extents the cache can hold.
    pub fn capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Number of cached extents.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Wear counters so far.
    pub fn wear(&self) -> WearStats {
        self.wear
    }

    /// Touches `extent`; returns true on a hit. On a miss the extent is
    /// inserted (programming flash), possibly evicting a victim (erasing
    /// its blocks). `write` marks the extent dirty.
    pub fn access(&mut self, extent: u64, write: bool) -> bool {
        if let Some(slot) = self.cache.lookup(extent) {
            self.cache.touch_existing(slot, write);
            if write {
                self.wear.bytes_programmed += self.wear_extent_bytes;
            }
            return true;
        }
        // Miss: insert (programming flash), evicting if full (erasing
        // the victim's blocks).
        if self.cache.is_full() {
            let victim = self.cache.clock_victim();
            self.cache.replace(victim, extent, write);
            self.wear.erases += 1;
        } else {
            self.cache.insert(extent, write);
        }
        self.wear.bytes_programmed += self.wear_extent_bytes;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut c = FlashCacheIndex::new(4);
        assert!(!c.access(1, false));
        assert!(c.access(1, false));
        assert!(c.access(1, true));
    }

    #[test]
    fn capacity_respected_with_eviction() {
        let mut c = FlashCacheIndex::new(8);
        for e in 0..100u64 {
            c.access(e, false);
            assert!(c.len() <= 8);
        }
        assert_eq!(c.len(), 8);
        assert!(c.wear().erases >= 90);
    }

    #[test]
    fn clock_protects_hot_extent() {
        let mut c = FlashCacheIndex::new(4);
        for e in 0..4u64 {
            c.access(e, false);
        }
        // Keep extent 0 hot while streaming new extents through: the
        // second-chance bit must let it survive most sweeps (a plain
        // FIFO would evict it every `capacity` misses).
        let mut hot_hits = 0;
        for e in 4..104u64 {
            if c.access(0, false) {
                hot_hits += 1;
            }
            c.access(e, false);
        }
        assert!(hot_hits >= 60, "hot extent only hit {hot_hits}/100 times");
    }

    #[test]
    fn wear_accounts_programs() {
        let mut c = FlashCacheIndex::new(2);
        c.set_extent_bytes(4096);
        c.access(1, false); // program 4096
        c.access(1, true); // write hit: program 4096
        c.access(2, true); // program 4096
        assert_eq!(c.wear().bytes_programmed, 3 * 4096);
    }

    #[test]
    fn endurance_math() {
        let w = WearStats {
            bytes_programmed: 0,
            erases: 0,
        };
        // 1 GB device, 100k cycles: 1e14 bytes lifetime. 1 MB/s for 3
        // years is ~9.5e13 — survives; 2 MB/s does not.
        let cap = 1_000_000_000u64;
        assert!(w.survives(cap, 100_000, 1.0e6, 3.0));
        assert!(!w.survives(cap, 100_000, 2.0e6, 3.0));
    }
}
