//! A flash translation layer with wear leveling and garbage collection.
//!
//! Table 3(a)'s caveat — flash "wears out after 100,000 writes (assuming
//! current technology)", with "predicted future technology and software
//! fixes" cited as mitigation — is about exactly this layer. The FTL
//! remaps logical pages to physical flash pages so writes spread across
//! the device (dynamic wear leveling), reclaims space in erase-block
//! units, and pays write amplification for the privilege. The cache
//! layer above ([`crate::cache`]) counts raw programmed bytes; this
//! module answers whether the *device* survives them.
//!
//! Design: a log-structured FTL with a single write frontier, a pool of
//! erased blocks, and greedy garbage collection (victim = fewest valid
//! pages, ties broken toward less-worn blocks). Over-provisioned space
//! guarantees every GC pass reclaims something, so write amplification
//! stays bounded.

const UNMAPPED: u32 = u32::MAX;

/// Geometry and state of a NAND device managed by the FTL.
#[derive(Debug)]
pub struct Ftl {
    pages_per_block: u32,
    blocks: u32,
    overprovision: f64,
    // logical page -> physical page
    l2p: Vec<u32>,
    // physical page -> logical page
    p2l: Vec<u32>,
    erase_counts: Vec<u32>,
    valid_in_block: Vec<u32>,
    free_blocks: Vec<u32>,
    used_blocks: Vec<u32>,
    active_block: u32,
    next_page_in_block: u32,
    host_writes: u64,
    device_writes: u64,
}

impl Ftl {
    /// Creates an FTL over `blocks` erase blocks of `pages_per_block`
    /// pages, reserving `overprovision` of the space (typical devices
    /// reserve ~7%).
    ///
    /// # Panics
    /// Panics on degenerate geometry or `overprovision` outside
    /// `[0.02, 0.5]` (below 2% spare, garbage collection livelocks).
    pub fn new(blocks: u32, pages_per_block: u32, overprovision: f64) -> Self {
        assert!(blocks >= 4 && pages_per_block >= 4, "degenerate geometry");
        assert!(
            (0.02..=0.5).contains(&overprovision),
            "overprovision in [0.02, 0.5]"
        );
        let phys_pages = (blocks * pages_per_block) as usize;
        let logical = (phys_pages as f64 * (1.0 - overprovision)) as usize;
        Ftl {
            pages_per_block,
            blocks,
            overprovision,
            l2p: vec![UNMAPPED; logical],
            p2l: vec![UNMAPPED; phys_pages],
            erase_counts: vec![0; blocks as usize],
            valid_in_block: vec![0; blocks as usize],
            free_blocks: (1..blocks).collect(),
            used_blocks: Vec::new(),
            active_block: 0,
            next_page_in_block: 0,
            host_writes: 0,
            device_writes: 0,
        }
    }

    /// Number of logical pages exposed to the host.
    pub fn logical_pages(&self) -> u32 {
        self.l2p.len() as u32
    }

    /// Host-visible write of one logical page.
    ///
    /// # Panics
    /// Panics if `lpage` is out of range.
    pub fn write(&mut self, lpage: u32) {
        assert!(
            (lpage as usize) < self.l2p.len(),
            "logical page out of range"
        );
        self.host_writes += 1;
        self.invalidate(lpage);
        let phys = self.frontier_page();
        self.install(lpage, phys);
        self.device_writes += 1;
    }

    fn invalidate(&mut self, lpage: u32) {
        let old = self.l2p[lpage as usize];
        if old != UNMAPPED {
            self.p2l[old as usize] = UNMAPPED;
            self.valid_in_block[(old / self.pages_per_block) as usize] -= 1;
            self.l2p[lpage as usize] = UNMAPPED;
        }
    }

    fn install(&mut self, lpage: u32, phys: u32) {
        self.l2p[lpage as usize] = phys;
        self.p2l[phys as usize] = lpage;
        self.valid_in_block[(phys / self.pages_per_block) as usize] += 1;
    }

    /// Returns the next physical page at the write frontier, advancing
    /// it (and switching/GC-ing blocks as needed).
    fn frontier_page(&mut self) -> u32 {
        if self.next_page_in_block >= self.pages_per_block {
            self.switch_active();
        }
        let phys = self.active_block * self.pages_per_block + self.next_page_in_block;
        self.next_page_in_block += 1;
        phys
    }

    /// Retires the full active block and opens a fresh one, garbage
    /// collecting if the pool ran dry.
    fn switch_active(&mut self) {
        self.used_blocks.push(self.active_block);
        if self.free_blocks.is_empty() {
            self.gc_one();
        }
        self.active_block = self.take_least_worn_free();
        self.next_page_in_block = 0;
        // Keep a spare around so a GC that fills the active block can
        // still switch.
        if self.free_blocks.is_empty() {
            self.gc_one();
        }
    }

    fn take_least_worn_free(&mut self) -> u32 {
        let (idx, _) = self
            .free_blocks
            .iter()
            .enumerate()
            .min_by_key(|(_, &b)| self.erase_counts[b as usize])
            .expect("free pool is non-empty");
        self.free_blocks.swap_remove(idx)
    }

    /// Reclaims one used block: relocate its valid pages to the
    /// frontier, erase it, return it to the pool.
    fn gc_one(&mut self) {
        let (idx, _) = self
            .used_blocks
            .iter()
            .enumerate()
            .min_by_key(|(_, &b)| {
                (
                    self.valid_in_block[b as usize],
                    self.erase_counts[b as usize],
                )
            })
            .expect("a used block exists when the pool is dry");
        let victim = self.used_blocks.swap_remove(idx);
        let base = victim * self.pages_per_block;
        for i in 0..self.pages_per_block {
            let phys = base + i;
            let lpage = self.p2l[phys as usize];
            if lpage != UNMAPPED {
                // Relocate. The frontier always has room: the active
                // block was freshly opened with >= pages_per_block free
                // pages, and a victim holds at most pages_per_block - 1
                // valid pages (over-provisioning guarantees the min-valid
                // block is not full) -- but a mid-GC switch is still
                // handled by frontier_page() via the spare.
                self.p2l[phys as usize] = UNMAPPED;
                self.valid_in_block[victim as usize] -= 1;
                let dst = self.frontier_page_for_gc();
                self.install(lpage, dst);
                self.device_writes += 1;
            }
        }
        debug_assert_eq!(self.valid_in_block[victim as usize], 0);
        self.erase_counts[victim as usize] += 1;
        self.free_blocks.push(victim);
    }

    /// Frontier allocation during GC: must not recurse into gc_one.
    fn frontier_page_for_gc(&mut self) -> u32 {
        if self.next_page_in_block >= self.pages_per_block {
            self.used_blocks.push(self.active_block);
            self.active_block = self.take_least_worn_free();
            self.next_page_in_block = 0;
        }
        let phys = self.active_block * self.pages_per_block + self.next_page_in_block;
        self.next_page_in_block += 1;
        phys
    }

    /// Write amplification so far: device writes per host write.
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            1.0
        } else {
            self.device_writes as f64 / self.host_writes as f64
        }
    }

    /// Maximum and mean erase counts — the wear-leveling report.
    pub fn wear_spread(&self) -> (u32, f64) {
        let max = *self.erase_counts.iter().max().expect("blocks exist");
        let mean = self.erase_counts.iter().map(|&e| e as f64).sum::<f64>() / self.blocks as f64;
        (max, mean)
    }

    /// Whether the device is still within `endurance` erase cycles.
    pub fn healthy(&self, endurance: u32) -> bool {
        self.wear_spread().0 <= endurance
    }

    /// Fraction of physical space reserved.
    pub fn overprovision(&self) -> f64 {
        self.overprovision
    }

    /// Internal consistency check (used by tests and debug assertions):
    /// every mapped logical page round-trips through `p2l`, and
    /// per-block valid counts agree with the maps.
    pub fn check_consistency(&self) -> bool {
        for (l, &p) in self.l2p.iter().enumerate() {
            if p != UNMAPPED && self.p2l[p as usize] != l as u32 {
                return false;
            }
        }
        for b in 0..self.blocks {
            let base = (b * self.pages_per_block) as usize;
            let count = (0..self.pages_per_block as usize)
                .filter(|&i| self.p2l[base + i] != UNMAPPED)
                .count() as u32;
            if count != self.valid_in_block[b as usize] {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcs_simcore::SimRng;

    #[test]
    fn sequential_writes_have_unit_amplification() {
        let mut ftl = Ftl::new(16, 32, 0.1);
        for l in 0..ftl.logical_pages() {
            ftl.write(l);
        }
        assert!(
            ftl.write_amplification() < 1.05,
            "WA {}",
            ftl.write_amplification()
        );
        assert!(ftl.check_consistency());
    }

    #[test]
    fn overwrite_churn_stays_bounded() {
        let mut ftl = Ftl::new(16, 32, 0.15);
        let n = ftl.logical_pages();
        let mut rng = SimRng::seed_from(7);
        for _ in 0..(n as usize * 20) {
            ftl.write(rng.index(n as usize) as u32);
        }
        let wa = ftl.write_amplification();
        assert!(wa >= 1.0);
        assert!(wa < 8.0, "WA {wa} exploded");
        assert!(ftl.check_consistency());
    }

    #[test]
    fn wear_levels_across_blocks() {
        let mut ftl = Ftl::new(16, 32, 0.15);
        let n = ftl.logical_pages();
        let mut rng = SimRng::seed_from(9);
        for _ in 0..(n as usize * 30) {
            ftl.write(rng.index(n as usize) as u32);
        }
        let (max, mean) = ftl.wear_spread();
        assert!(mean > 1.0, "device has cycled");
        assert!(
            (max as f64) < mean * 3.0 + 3.0,
            "wear skew: max {max} vs mean {mean:.1}"
        );
    }

    #[test]
    fn hot_page_does_not_burn_one_block() {
        // Pathological host: hammer a single logical page. The
        // log-structured frontier spreads its rewrites over the device.
        let mut ftl = Ftl::new(8, 16, 0.2);
        for _ in 0..5_000 {
            ftl.write(0);
        }
        let (max, mean) = ftl.wear_spread();
        assert!(mean > 5.0);
        assert!((max as f64) < mean * 4.0, "max {max} mean {mean:.1}");
        assert!(ftl.healthy(100_000));
        assert!(ftl.check_consistency());
    }

    #[test]
    fn more_overprovisioning_lowers_amplification() {
        let run = |op: f64| {
            let mut ftl = Ftl::new(32, 32, op);
            let n = ftl.logical_pages();
            let mut rng = SimRng::seed_from(13);
            for _ in 0..(n as usize * 15) {
                ftl.write(rng.index(n as usize) as u32);
            }
            ftl.write_amplification()
        };
        let tight = run(0.05);
        let roomy = run(0.30);
        assert!(roomy < tight, "WA: 5% op {tight} vs 30% op {roomy}");
    }

    #[test]
    fn mapping_stays_consistent_under_churn() {
        let mut ftl = Ftl::new(8, 16, 0.2);
        let n = ftl.logical_pages();
        let mut rng = SimRng::seed_from(11);
        for i in 0..(n as usize * 10) {
            ftl.write(rng.index(n as usize) as u32);
            if i % 97 == 0 {
                assert!(ftl.check_consistency(), "inconsistent at step {i}");
            }
        }
        assert!(ftl.check_consistency());
    }

    #[test]
    #[should_panic(expected = "overprovision")]
    fn rejects_no_spare() {
        Ftl::new(8, 16, 0.0);
    }
}
