//! The six platforms of Table 2, with the cost/power data of Figure 1.
//!
//! `srvr1` and `srvr2` use the paper's published per-component numbers
//! verbatim. For `desk`, `mobl`, `emb1`, and `emb2` the paper publishes
//! only totals (Table 2: 135 W/$849-with-switch, 78 W/$989, 52 W/$499,
//! 35 W/$379) plus stacked-bar charts; the per-component splits below are
//! our estimates constrained to reproduce those totals exactly and to
//! follow the text's qualitative statements (CPU is the biggest saving;
//! mobile parts carry a low-power premium; all consumer platforms keep
//! 4 GB of memory and a desktop disk).

use crate::component::{BomItem, Component};
use crate::cpu::{CpuModel, Microarch};
use crate::memory::{MemoryConfig, MemoryTech};
use crate::net::NicModel;
use crate::platform::{Platform, PlatformId};
use crate::storage::DiskModel;

/// Number of servers per rack in the paper's default configuration.
pub const SERVERS_PER_RACK: u32 = 40;
/// Rack switch + enclosure cost, amortized across the rack (Figure 1(a)).
pub const SWITCH_COST_USD: f64 = 2750.0;
/// Rack switch power in watts (Figure 1(a)).
pub const SWITCH_POWER_W: f64 = 40.0;

/// Builds the catalog platform with the given id.
///
/// # Example
/// ```
/// use wcs_platforms::{catalog, PlatformId};
/// let emb1 = catalog::platform(PlatformId::Emb1);
/// assert_eq!(emb1.cpu.total_cores(), 2);
/// assert!((emb1.max_power_w() - 52.0).abs() < 0.5);
/// ```
pub fn platform(id: PlatformId) -> Platform {
    match id {
        PlatformId::Srvr1 => srvr1(),
        PlatformId::Srvr2 => srvr2(),
        PlatformId::Desk => desk(),
        PlatformId::Mobl => mobl(),
        PlatformId::Emb1 => emb1(),
        PlatformId::Emb2 => emb2(),
    }
}

/// All six catalog platforms in Table 2 order.
pub fn all() -> Vec<Platform> {
    PlatformId::ALL.iter().map(|&id| platform(id)).collect()
}

fn srvr1() -> Platform {
    let mut b = Platform::builder("srvr1");
    b.cpu(
        CpuModel::new(
            "Xeon MP / Opteron MP",
            2,
            4,
            2.6,
            Microarch::OutOfOrder,
            64,
            8192,
        ),
        1700.0,
        210.0,
    )
    .memory(MemoryConfig::new(4.0, MemoryTech::FbDimm), 350.0, 25.0)
    .disk(DiskModel::server_15k())
    .nic(NicModel::ten_gigabit())
    .board_cost(400.0, 50.0)
    .power_fans_cost(500.0, 40.0);
    b.build()
}

fn srvr2() -> Platform {
    let mut b = Platform::builder("srvr2");
    b.cpu(
        CpuModel::new("Xeon / Opteron", 1, 4, 2.6, Microarch::OutOfOrder, 64, 8192),
        650.0,
        105.0,
    )
    .memory(MemoryConfig::new(4.0, MemoryTech::FbDimm), 350.0, 25.0)
    .disk(DiskModel::desktop())
    .nic(NicModel::gigabit())
    .board_cost(250.0, 40.0)
    .power_fans_cost(250.0, 35.0);
    // Figure 1(a) lists srvr2's disk at $120/10 W, which matches the
    // desktop disk model exactly.
    b.build()
}

fn desk() -> Platform {
    let mut b = Platform::builder("desk");
    b.cpu(
        CpuModel::new(
            "Core 2 / Athlon 64",
            1,
            2,
            2.2,
            Microarch::OutOfOrder,
            32,
            2048,
        ),
        180.0,
        65.0,
    )
    .memory(MemoryConfig::new(4.0, MemoryTech::Ddr2), 200.0, 20.0)
    .disk(DiskModel::desktop())
    .nic(NicModel::gigabit())
    .board_cost(160.0, 25.0)
    .power_fans_cost(120.0, 15.0);
    b.build()
}

fn mobl() -> Platform {
    let mut b = Platform::builder("mobl");
    b.cpu(
        CpuModel::new(
            "Core 2 Mobile / Turion",
            1,
            2,
            2.0,
            Microarch::OutOfOrder,
            32,
            2048,
        ),
        280.0,
        25.0,
    )
    .memory(MemoryConfig::new(4.0, MemoryTech::Ddr2), 230.0, 12.0)
    .disk(DiskModel::desktop())
    .nic(NicModel::gigabit())
    .board_cost(170.0, 18.0)
    .power_fans_cost(120.0, 13.0);
    b.build()
}

fn emb1() -> Platform {
    let mut b = Platform::builder("emb1");
    b.cpu(
        CpuModel::new(
            "PA Semi / Embedded Athlon 64",
            1,
            2,
            1.2,
            Microarch::OutOfOrder,
            32,
            1024,
        ),
        60.0,
        12.0,
    )
    .memory(MemoryConfig::new(4.0, MemoryTech::Ddr2), 130.0, 12.0)
    .disk(DiskModel::desktop())
    .nic(NicModel::gigabit())
    .board_cost(70.0, 10.0)
    .power_fans_cost(50.0, 8.0);
    b.build()
}

fn emb2() -> Platform {
    let mut b = Platform::builder("emb2");
    b.cpu(
        CpuModel::new(
            "AMD Geode / VIA Eden-N",
            1,
            1,
            0.6,
            Microarch::InOrder,
            32,
            128,
        ),
        25.0,
        4.0,
    )
    .memory(MemoryConfig::new(4.0, MemoryTech::Ddr1), 95.0, 9.0)
    .disk(DiskModel::desktop())
    .nic(NicModel::gigabit())
    .board_cost(45.0, 7.0)
    .power_fans_cost(25.0, 5.0);
    b.build()
}

/// Per-server share of the rack switch as a BOM item.
pub fn switch_share() -> BomItem {
    BomItem::new(
        Component::RackSwitch,
        SWITCH_COST_USD / SERVERS_PER_RACK as f64,
        SWITCH_POWER_W / SERVERS_PER_RACK as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 2's published per-platform totals: (watts, hw-cost-with-
    /// switch-share). The Inf-$ column of Table 2 includes the $68.75
    /// switch share (srvr1: $3,225 + $68.75 = $3,294).
    const TABLE2: [(PlatformId, f64, f64); 6] = [
        (PlatformId::Srvr1, 340.0, 3294.0),
        (PlatformId::Srvr2, 215.0, 1689.0),
        (PlatformId::Desk, 135.0, 849.0),
        (PlatformId::Mobl, 78.0, 989.0),
        (PlatformId::Emb1, 52.0, 499.0),
        (PlatformId::Emb2, 35.0, 379.0),
    ];

    #[test]
    fn totals_match_table2() {
        for (id, watts, inf_usd) in TABLE2 {
            let p = platform(id);
            assert!(
                (p.max_power_w() - watts).abs() < 0.51,
                "{id}: power {} != {watts}",
                p.max_power_w()
            );
            let with_switch = p.hardware_cost_usd() + switch_share().cost_usd;
            assert!(
                (with_switch - inf_usd).abs() < 1.0,
                "{id}: inf ${with_switch} != ${inf_usd}"
            );
        }
    }

    #[test]
    fn srvr_component_lines_match_figure1() {
        let s1 = platform(PlatformId::Srvr1);
        assert_eq!(s1.component_cost(Component::Cpu), 1700.0);
        assert_eq!(s1.component_cost(Component::Memory), 350.0);
        assert_eq!(s1.component_cost(Component::Disk), 275.0);
        assert_eq!(s1.component_cost(Component::BoardMgmt), 400.0);
        assert_eq!(s1.component_cost(Component::PowerFans), 500.0);
        assert_eq!(s1.component_power(Component::Cpu), 210.0);

        let s2 = platform(PlatformId::Srvr2);
        assert_eq!(s2.component_cost(Component::Cpu), 650.0);
        assert_eq!(s2.component_cost(Component::Disk), 120.0);
        assert_eq!(s2.component_power(Component::Cpu), 105.0);
        assert_eq!(s2.component_power(Component::PowerFans), 35.0);
    }

    #[test]
    fn cpu_configs_match_table2() {
        assert_eq!(platform(PlatformId::Srvr1).cpu.total_cores(), 8);
        assert_eq!(platform(PlatformId::Srvr2).cpu.total_cores(), 4);
        assert_eq!(platform(PlatformId::Desk).cpu.total_cores(), 2);
        assert_eq!(platform(PlatformId::Mobl).cpu.total_cores(), 2);
        assert_eq!(platform(PlatformId::Emb1).cpu.total_cores(), 2);
        assert_eq!(platform(PlatformId::Emb2).cpu.total_cores(), 1);
        assert_eq!(platform(PlatformId::Emb2).cpu.microarch, Microarch::InOrder);
        assert_eq!(platform(PlatformId::Emb1).cpu.l2_kib, 1024);
    }

    #[test]
    fn all_platforms_have_4gb() {
        for p in all() {
            assert_eq!(p.memory.capacity_gib, 4.0, "{}", p.name);
        }
    }

    #[test]
    fn only_srvr1_has_fast_io() {
        for p in all() {
            if p.name == "srvr1" {
                assert_eq!(p.nic.gbps, 10.0);
                assert_eq!(p.disk.name, "15k server disk");
            } else {
                assert_eq!(p.nic.gbps, 1.0);
                assert_eq!(p.disk.name, "desktop disk");
            }
        }
    }

    #[test]
    fn switch_share_amortizes() {
        let s = switch_share();
        assert!((s.cost_usd - 68.75).abs() < 1e-9);
        assert!((s.power_w - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cost_ordering_matches_paper_narrative() {
        // "desk is only 25% of the costs of srvr1, emb1 only 15%".
        let s1 = platform(PlatformId::Srvr1).hardware_cost_usd();
        let d = platform(PlatformId::Desk).hardware_cost_usd();
        let e1 = platform(PlatformId::Emb1).hardware_cost_usd();
        let ratio_desk = d / s1;
        let ratio_emb1 = e1 / s1;
        assert!(
            (0.20..=0.30).contains(&ratio_desk),
            "desk/srvr1 {ratio_desk}"
        );
        assert!(
            (0.10..=0.18).contains(&ratio_emb1),
            "emb1/srvr1 {ratio_emb1}"
        );
        // mobl costs more than desk (low-power premium).
        assert!(
            platform(PlatformId::Mobl).hardware_cost_usd()
                > platform(PlatformId::Desk).hardware_cost_usd()
        );
    }
}
