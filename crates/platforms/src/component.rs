//! Component taxonomy and bill-of-materials items.

use std::fmt;

/// The component categories the paper's cost model tracks (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Component {
    /// Processor package(s).
    Cpu,
    /// Main-memory DIMMs (local to the server).
    Memory,
    /// Disk drive(s), local or remote.
    Disk,
    /// Motherboard, management controller (iLO), and NIC.
    BoardMgmt,
    /// Power supplies and fans.
    PowerFans,
    /// Flash disk cache (used by the N2 design).
    Flash,
    /// Per-server share of a shared memory blade (used by the N2 design).
    MemoryBlade,
    /// Rack-level switch and enclosure, amortized per server.
    RackSwitch,
    /// Datacenter floor space, amortized per server (Section 2.2 lists
    /// real estate in the lifecycle cost; see `wcs_tco`'s real-estate
    /// extension).
    RealEstate,
}

impl Component {
    /// All component kinds, in the order the paper's figures list them.
    pub const ALL: [Component; 9] = [
        Component::Cpu,
        Component::Memory,
        Component::Disk,
        Component::BoardMgmt,
        Component::PowerFans,
        Component::Flash,
        Component::MemoryBlade,
        Component::RackSwitch,
        Component::RealEstate,
    ];
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Component::Cpu => "CPU",
            Component::Memory => "Memory",
            Component::Disk => "Disk",
            Component::BoardMgmt => "Board+mgmt",
            Component::PowerFans => "Power+fans",
            Component::Flash => "Flash",
            Component::MemoryBlade => "Memory blade",
            Component::RackSwitch => "Rack+switch",
            Component::RealEstate => "Real estate",
        };
        f.write_str(s)
    }
}

/// One line of a server bill of materials: a component with its purchase
/// cost and maximum operational power draw.
///
/// # Example
/// ```
/// use wcs_platforms::{BomItem, Component};
/// let cpu = BomItem::new(Component::Cpu, 650.0, 105.0);
/// assert_eq!(cpu.component, Component::Cpu);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BomItem {
    /// What kind of component this is.
    pub component: Component,
    /// Purchase cost in US dollars.
    pub cost_usd: f64,
    /// Maximum operational power draw in watts.
    pub power_w: f64,
}

impl BomItem {
    /// Creates a BOM line.
    ///
    /// # Panics
    /// Panics if cost or power is negative or non-finite — a BOM with
    /// garbage entries poisons every downstream cost figure.
    pub fn new(component: Component, cost_usd: f64, power_w: f64) -> Self {
        assert!(
            cost_usd.is_finite() && cost_usd >= 0.0,
            "BOM cost must be finite and >= 0"
        );
        assert!(
            power_w.is_finite() && power_w >= 0.0,
            "BOM power must be finite and >= 0"
        );
        BomItem {
            component,
            cost_usd,
            power_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_match_paper_labels() {
        assert_eq!(Component::Cpu.to_string(), "CPU");
        assert_eq!(Component::BoardMgmt.to_string(), "Board+mgmt");
        assert_eq!(Component::PowerFans.to_string(), "Power+fans");
        assert_eq!(Component::RackSwitch.to_string(), "Rack+switch");
    }

    #[test]
    fn all_is_exhaustive_and_unique() {
        let mut set = std::collections::HashSet::new();
        for c in Component::ALL {
            assert!(set.insert(c));
        }
        assert_eq!(set.len(), 9);
    }

    #[test]
    #[should_panic(expected = "BOM cost")]
    fn rejects_negative_cost() {
        BomItem::new(Component::Cpu, -1.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "BOM power")]
    fn rejects_nan_power() {
        BomItem::new(Component::Cpu, 1.0, f64::NAN);
    }
}
