//! Platform assembly: a server is a set of components with costs, power,
//! and the performance-relevant parameters.

use std::fmt;

use crate::component::{BomItem, Component};
use crate::cpu::CpuModel;
use crate::memory::MemoryConfig;
use crate::net::NicModel;
use crate::storage::DiskModel;

/// The six platform design points of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PlatformId {
    /// Mid-range server (Xeon MP / Opteron MP class, 2p x 4 cores).
    Srvr1,
    /// Low-end server (Xeon / Opteron class, 1p x 4 cores).
    Srvr2,
    /// Desktop (Core 2 / Athlon 64 class, 2 cores).
    Desk,
    /// Mobile (Core 2 Mobile / Turion class, 2 cores).
    Mobl,
    /// Mid-range embedded (PA Semi / embedded Athlon class, 2 cores).
    Emb1,
    /// Low-end embedded (AMD Geode / VIA Eden class, 1 in-order core).
    Emb2,
}

impl PlatformId {
    /// All six platforms in the paper's order.
    pub const ALL: [PlatformId; 6] = [
        PlatformId::Srvr1,
        PlatformId::Srvr2,
        PlatformId::Desk,
        PlatformId::Mobl,
        PlatformId::Emb1,
        PlatformId::Emb2,
    ];

    /// The paper's lower-case label for the platform.
    pub fn label(self) -> &'static str {
        match self {
            PlatformId::Srvr1 => "srvr1",
            PlatformId::Srvr2 => "srvr2",
            PlatformId::Desk => "desk",
            PlatformId::Mobl => "mobl",
            PlatformId::Emb1 => "emb1",
            PlatformId::Emb2 => "emb2",
        }
    }
}

impl fmt::Display for PlatformId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error parsing a platform name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePlatformError(String);

impl fmt::Display for ParsePlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown platform {:?}; expected one of srvr1, srvr2, desk, mobl, emb1, emb2",
            self.0
        )
    }
}

impl std::error::Error for ParsePlatformError {}

impl std::str::FromStr for PlatformId {
    type Err = ParsePlatformError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PlatformId::ALL
            .iter()
            .find(|id| id.label() == s)
            .copied()
            .ok_or_else(|| ParsePlatformError(s.to_owned()))
    }
}

/// A fully specified server platform: performance-relevant component
/// models plus the per-component cost/power bill of materials.
///
/// Construct catalog instances through [`crate::catalog::platform`] and
/// custom designs through [`Platform::builder`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Platform {
    /// Short name (e.g. "srvr1" or a custom label).
    pub name: String,
    /// Processor model.
    pub cpu: CpuModel,
    /// Memory configuration.
    pub memory: MemoryConfig,
    /// Disk model.
    pub disk: DiskModel,
    /// NIC model.
    pub nic: NicModel,
    bom: Vec<BomItem>,
}

impl Platform {
    /// Starts building a custom platform.
    pub fn builder(name: &str) -> PlatformBuilder {
        PlatformBuilder::new(name)
    }

    /// Per-server hardware cost: sum of all BOM lines (excludes the rack
    /// switch, which the TCO model amortizes separately).
    pub fn hardware_cost_usd(&self) -> f64 {
        self.bom.iter().map(|i| i.cost_usd).sum()
    }

    /// Maximum operational server power in watts (sum of all BOM lines).
    pub fn max_power_w(&self) -> f64 {
        self.bom.iter().map(|i| i.power_w).sum()
    }

    /// The bill of materials.
    pub fn bom(&self) -> &[BomItem] {
        &self.bom
    }

    /// Cost of one component category (0 if absent).
    pub fn component_cost(&self, c: Component) -> f64 {
        self.bom
            .iter()
            .filter(|i| i.component == c)
            .map(|i| i.cost_usd)
            .sum()
    }

    /// Power of one component category (0 if absent).
    pub fn component_power(&self, c: Component) -> f64 {
        self.bom
            .iter()
            .filter(|i| i.component == c)
            .map(|i| i.power_w)
            .sum()
    }

    /// Returns a copy with one component's BOM line replaced (used by the
    /// unified designs to swap disks, add flash, or shrink memory).
    pub fn with_component(&self, item: BomItem) -> Platform {
        let mut p = self.clone();
        p.bom.retain(|i| i.component != item.component);
        p.bom.push(item);
        p
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} | {} | {} | {} | ${:.0} HW, {:.0} W",
            self.name,
            self.cpu,
            self.memory,
            self.disk.name,
            self.nic,
            self.hardware_cost_usd(),
            self.max_power_w()
        )
    }
}

/// Builder for [`Platform`], following the non-consuming builder pattern.
///
/// # Example
/// ```
/// use wcs_platforms::{Platform, CpuModel, Microarch, MemoryConfig, MemoryTech,
///                     NicModel, Component};
/// use wcs_platforms::storage::DiskModel;
/// let p = Platform::builder("custom")
///     .cpu(CpuModel::new("tiny", 1, 2, 1.0, Microarch::OutOfOrder, 32, 1024), 50.0, 10.0)
///     .memory(MemoryConfig::new(2.0, MemoryTech::Ddr2), 100.0, 10.0)
///     .disk(DiskModel::desktop())
///     .nic(NicModel::gigabit())
///     .board_cost(60.0, 8.0)
///     .power_fans_cost(40.0, 6.0)
///     .build();
/// assert_eq!(p.component_cost(Component::Cpu), 50.0);
/// ```
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    name: String,
    cpu: Option<(CpuModel, f64, f64)>,
    memory: Option<(MemoryConfig, f64, f64)>,
    disk: Option<DiskModel>,
    nic: Option<NicModel>,
    board: (f64, f64),
    power_fans: (f64, f64),
    extra: Vec<BomItem>,
}

impl PlatformBuilder {
    fn new(name: &str) -> Self {
        PlatformBuilder {
            name: name.to_owned(),
            cpu: None,
            memory: None,
            disk: None,
            nic: None,
            board: (0.0, 0.0),
            power_fans: (0.0, 0.0),
            extra: Vec::new(),
        }
    }

    /// Sets the CPU model with its cost and power.
    pub fn cpu(&mut self, model: CpuModel, cost_usd: f64, power_w: f64) -> &mut Self {
        self.cpu = Some((model, cost_usd, power_w));
        self
    }

    /// Sets the memory configuration with its cost and power.
    pub fn memory(&mut self, model: MemoryConfig, cost_usd: f64, power_w: f64) -> &mut Self {
        self.memory = Some((model, cost_usd, power_w));
        self
    }

    /// Sets the disk; its cost and power come from the disk model itself.
    pub fn disk(&mut self, model: DiskModel) -> &mut Self {
        self.disk = Some(model);
        self
    }

    /// Sets the NIC (cost and power are folded into the board line, as in
    /// the paper's breakdown).
    pub fn nic(&mut self, model: NicModel) -> &mut Self {
        self.nic = Some(model);
        self
    }

    /// Board + management cost and power.
    pub fn board_cost(&mut self, cost_usd: f64, power_w: f64) -> &mut Self {
        self.board = (cost_usd, power_w);
        self
    }

    /// Power-supply + fan cost and power.
    pub fn power_fans_cost(&mut self, cost_usd: f64, power_w: f64) -> &mut Self {
        self.power_fans = (cost_usd, power_w);
        self
    }

    /// Adds an extra BOM line (e.g. flash, memory-blade share).
    pub fn extra_item(&mut self, item: BomItem) -> &mut Self {
        self.extra.push(item);
        self
    }

    /// Builds the platform.
    ///
    /// # Panics
    /// Panics if the CPU, memory, disk, or NIC was not set.
    pub fn build(&self) -> Platform {
        let (cpu, cpu_cost, cpu_power) = self.cpu.clone().expect("builder: cpu not set");
        let (memory, mem_cost, mem_power) = self.memory.expect("builder: memory not set");
        let disk = self.disk.clone().expect("builder: disk not set");
        let nic = self.nic.expect("builder: nic not set");
        let mut bom = vec![
            BomItem::new(Component::Cpu, cpu_cost, cpu_power),
            BomItem::new(Component::Memory, mem_cost, mem_power),
            BomItem::new(Component::Disk, disk.price_usd, disk.power_w),
            BomItem::new(Component::BoardMgmt, self.board.0, self.board.1),
            BomItem::new(Component::PowerFans, self.power_fans.0, self.power_fans.1),
        ];
        bom.extend(self.extra.iter().copied());
        Platform {
            name: self.name.clone(),
            cpu,
            memory,
            disk,
            nic,
            bom,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Microarch;
    use crate::memory::MemoryTech;

    fn tiny() -> Platform {
        let mut b = Platform::builder("t");
        b.cpu(
            CpuModel::new("c", 1, 1, 1.0, Microarch::InOrder, 32, 256),
            10.0,
            5.0,
        )
        .memory(MemoryConfig::new(1.0, MemoryTech::Ddr1), 20.0, 4.0)
        .disk(DiskModel::desktop())
        .nic(NicModel::gigabit())
        .board_cost(30.0, 3.0)
        .power_fans_cost(15.0, 2.0);
        b.build()
    }

    #[test]
    fn totals_sum_bom() {
        let p = tiny();
        assert!((p.hardware_cost_usd() - (10.0 + 20.0 + 120.0 + 30.0 + 15.0)).abs() < 1e-9);
        assert!((p.max_power_w() - (5.0 + 4.0 + 10.0 + 3.0 + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn component_lookup() {
        let p = tiny();
        assert_eq!(p.component_cost(Component::Disk), 120.0);
        assert_eq!(p.component_power(Component::Cpu), 5.0);
        assert_eq!(p.component_cost(Component::Flash), 0.0);
    }

    #[test]
    fn with_component_replaces() {
        let p = tiny();
        let p2 = p.with_component(BomItem::new(Component::Disk, 40.0, 2.0));
        assert_eq!(p2.component_cost(Component::Disk), 40.0);
        assert_eq!(p2.component_power(Component::Disk), 2.0);
        // other lines intact
        assert_eq!(p2.component_cost(Component::Cpu), 10.0);
    }

    #[test]
    fn with_component_adds_when_absent() {
        let p = tiny();
        let p2 = p.with_component(BomItem::new(Component::Flash, 14.0, 0.5));
        assert_eq!(p2.component_cost(Component::Flash), 14.0);
        assert!((p2.hardware_cost_usd() - p.hardware_cost_usd() - 14.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cpu not set")]
    fn builder_requires_cpu() {
        Platform::builder("x").build();
    }

    #[test]
    fn platform_id_labels() {
        assert_eq!(PlatformId::Srvr1.label(), "srvr1");
        assert_eq!(PlatformId::Emb2.to_string(), "emb2");
        assert_eq!(PlatformId::ALL.len(), 6);
    }

    #[test]
    fn platform_id_parses_round_trip() {
        for id in PlatformId::ALL {
            let parsed: PlatformId = id.label().parse().unwrap();
            assert_eq!(parsed, id);
        }
        let err = "srvr9".parse::<PlatformId>().unwrap_err();
        assert!(err.to_string().contains("srvr9"));
    }
}
