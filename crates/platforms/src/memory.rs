//! Main-memory technology and configuration models.

use std::fmt;

/// DRAM technology generations used across the six platforms (Table 2) and
/// the memory blade (Section 3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MemoryTech {
    /// Fully-buffered DIMMs (server platforms; highest power).
    FbDimm,
    /// Commodity DDR2 (desktop / mobile / mid embedded).
    Ddr2,
    /// Older DDR1 (low-end embedded).
    Ddr1,
}

impl MemoryTech {
    /// Fraction of active power drawn in "active power-down" mode.
    ///
    /// The paper keeps all memory-blade DRAM in active power-down, which
    /// "reduces power by more than 90% in DDR2" [Micron power calculator],
    /// at a ~6-DRAM-cycle wake penalty.
    pub fn powerdown_fraction(self) -> f64 {
        match self {
            MemoryTech::FbDimm => 0.25, // AMB keeps drawing power
            MemoryTech::Ddr2 => 0.08,
            MemoryTech::Ddr1 => 0.10,
        }
    }

    /// Wake-up latency from active power-down, in nanoseconds (~6 DRAM
    /// cycles at the technology's typical clock).
    pub fn powerdown_wake_ns(self) -> f64 {
        match self {
            MemoryTech::FbDimm => 9.0,
            MemoryTech::Ddr2 => 15.0, // 6 cycles @ 400 MHz
            MemoryTech::Ddr1 => 30.0, // 6 cycles @ 200 MHz
        }
    }
}

impl fmt::Display for MemoryTech {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryTech::FbDimm => f.write_str("FB-DIMM"),
            MemoryTech::Ddr2 => f.write_str("DDR2"),
            MemoryTech::Ddr1 => f.write_str("DDR1"),
        }
    }
}

/// A memory subsystem configuration: capacity plus technology.
///
/// # Example
/// ```
/// use wcs_platforms::{MemoryConfig, MemoryTech};
/// let mem = MemoryConfig::new(4.0, MemoryTech::Ddr2);
/// assert_eq!(mem.capacity_gib, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemoryConfig {
    /// Installed capacity in GiB.
    pub capacity_gib: f64,
    /// DRAM technology.
    pub tech: MemoryTech,
}

impl MemoryConfig {
    /// Creates a memory configuration.
    ///
    /// # Panics
    /// Panics unless the capacity is a positive finite number.
    pub fn new(capacity_gib: f64, tech: MemoryTech) -> Self {
        assert!(
            capacity_gib.is_finite() && capacity_gib > 0.0,
            "memory capacity must be positive"
        );
        MemoryConfig { capacity_gib, tech }
    }

    /// Capacity in 4 KiB pages.
    pub fn pages_4k(&self) -> u64 {
        (self.capacity_gib * 1024.0 * 1024.0 / 4.0) as u64
    }
}

impl fmt::Display for MemoryConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} GiB {}", self.capacity_gib, self.tech)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_for_4gib() {
        let mem = MemoryConfig::new(4.0, MemoryTech::Ddr2);
        assert_eq!(mem.pages_4k(), 1_048_576);
    }

    #[test]
    fn powerdown_saves_most_power() {
        for t in [MemoryTech::FbDimm, MemoryTech::Ddr2, MemoryTech::Ddr1] {
            assert!(t.powerdown_fraction() < 0.5);
            assert!(t.powerdown_wake_ns() > 0.0);
        }
        // DDR2's >90% saving claim from the paper.
        assert!(MemoryTech::Ddr2.powerdown_fraction() < 0.10);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        MemoryConfig::new(0.0, MemoryTech::Ddr1);
    }

    #[test]
    fn display() {
        let mem = MemoryConfig::new(2.0, MemoryTech::FbDimm);
        assert_eq!(mem.to_string(), "2 GiB FB-DIMM");
    }
}
