//! Forward technology projection.
//!
//! The paper closes Section 3.4 with "we expect these trends to hold
//! into the future as well, as workload sizes and memory densities both
//! increase", and Section 3.6 notes N2's custom parts are "likely to
//! become cost-effective in a few years with the volumes in this
//! market". This module projects the component catalog forward so those
//! claims can be tested: DRAM and flash get denser and cheaper per GB,
//! embedded cores get faster at equal power, disks get bigger but no
//! faster, and blade/packaging custom parts commoditize.

use crate::catalog;
use crate::platform::{Platform, PlatformId};
use crate::{BomItem, Component};

/// A technology projection: per-component scaling factors per year.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TechTrend {
    /// DRAM $/GB decline per year (2008-era: ~30%/yr).
    pub dram_cost_decline: f64,
    /// Flash $/GB decline per year (steeper: ~40%/yr).
    pub flash_cost_decline: f64,
    /// Embedded-core performance growth per year at equal power.
    pub embedded_perf_growth: f64,
    /// Custom-part (blade controller, packaging) cost decline per year
    /// as volume builds.
    pub custom_cost_decline: f64,
}

impl TechTrend {
    /// The 2008-vintage trend rates above.
    pub fn vintage_2008() -> Self {
        TechTrend {
            dram_cost_decline: 0.30,
            flash_cost_decline: 0.40,
            embedded_perf_growth: 0.25,
            custom_cost_decline: 0.20,
        }
    }

    fn decline(rate: f64, years: f64) -> f64 {
        (1.0 - rate).powf(years)
    }

    /// Projects a platform `years` forward: memory cost declines, the
    /// CPU gets faster at the same cost and power (process scaling spent
    /// on frequency for these small cores), everything else holds.
    ///
    /// # Panics
    /// Panics if `years` is negative or non-finite.
    pub fn project_platform(&self, platform: &Platform, years: f64) -> Platform {
        assert!(years.is_finite() && years >= 0.0, "years must be >= 0");
        let mem_cost = platform.component_cost(Component::Memory)
            * Self::decline(self.dram_cost_decline, years);
        let mem_power = platform.component_power(Component::Memory);
        let mut p = platform.with_component(BomItem::new(Component::Memory, mem_cost, mem_power));
        p.cpu.freq_ghz *= (1.0 + self.embedded_perf_growth).powf(years);
        p.name = format!("{}+{:.0}yr", platform.name, years);
        p
    }

    /// Projected flash price per GB, from the Table 3(a) $14/GB point.
    pub fn flash_usd_per_gb(&self, years: f64) -> f64 {
        assert!(years.is_finite() && years >= 0.0);
        14.0 * Self::decline(self.flash_cost_decline, years)
    }

    /// Projected per-server blade-controller cost, from the paper's $10.
    pub fn blade_controller_usd(&self, years: f64) -> f64 {
        assert!(years.is_finite() && years >= 0.0);
        10.0 * Self::decline(self.custom_cost_decline, years)
    }
}

impl Default for TechTrend {
    fn default() -> Self {
        Self::vintage_2008()
    }
}

/// Convenience: the emb1 platform projected `years` forward.
pub fn emb1_projected(years: f64) -> Platform {
    TechTrend::vintage_2008().project_platform(&catalog::platform(PlatformId::Emb1), years)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_preserves_power_and_cuts_memory_cost() {
        let now = catalog::platform(PlatformId::Emb1);
        let later = emb1_projected(3.0);
        assert!((later.max_power_w() - now.max_power_w()).abs() < 1e-9);
        assert!(
            later.component_cost(Component::Memory) < now.component_cost(Component::Memory) * 0.4
        );
        assert!(later.cpu.freq_ghz > now.cpu.freq_ghz * 1.9);
    }

    #[test]
    fn zero_years_is_identity_modulo_name() {
        let now = catalog::platform(PlatformId::Desk);
        let same = TechTrend::vintage_2008().project_platform(&now, 0.0);
        assert!((same.hardware_cost_usd() - now.hardware_cost_usd()).abs() < 1e-9);
        assert_eq!(same.cpu.freq_ghz, now.cpu.freq_ghz);
    }

    #[test]
    fn flash_commoditizes_fast() {
        let t = TechTrend::vintage_2008();
        assert!((t.flash_usd_per_gb(0.0) - 14.0).abs() < 1e-12);
        assert!(t.flash_usd_per_gb(3.0) < 3.1);
        assert!(t.blade_controller_usd(3.0) < 5.2);
    }

    #[test]
    fn papers_claim_custom_parts_become_cost_effective() {
        // At 3 years out, the N2 bill's custom adders (controller $10,
        // flash $14) shrink to under $8 combined — noise next to the
        // $60 CPU.
        let t = TechTrend::vintage_2008();
        let adders = t.blade_controller_usd(3.0) + t.flash_usd_per_gb(3.0);
        assert!(adders < 8.5, "custom adders ${adders}");
    }

    #[test]
    #[should_panic(expected = "years")]
    fn rejects_negative_years() {
        emb1_projected(-1.0);
    }
}
