//! Disk and flash storage models (Table 3(a) of the paper).

use std::fmt;

/// Where a disk lives relative to the server that uses it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DiskLocation {
    /// Directly attached to the server board.
    Local,
    /// Reached over a basic SATA SAN (Section 3.5); adds latency and the
    /// conservative shared-bandwidth figures of Table 3(a).
    Remote,
}

impl fmt::Display for DiskLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskLocation::Local => f.write_str("local"),
            DiskLocation::Remote => f.write_str("remote"),
        }
    }
}

/// A rotating-disk model with the parameters the simulators need.
///
/// The catalog constructors embed Table 3(a) plus the 15k server disk of
/// `srvr1` (Figure 1(a): $275 / 15 W).
///
/// # Example
/// ```
/// use wcs_platforms::storage::DiskModel;
/// let d = DiskModel::desktop();
/// assert_eq!(d.capacity_gb, 500.0);
/// assert!((d.avg_access_ms - 4.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiskModel {
    /// Human-readable name.
    pub name: String,
    /// Capacity in GB.
    pub capacity_gb: f64,
    /// Sustained bandwidth in MB/s (as seen by the server; remote disks
    /// use the conservative SAN figure).
    pub bandwidth_mbs: f64,
    /// Average access (seek + rotation + path) latency in milliseconds.
    pub avg_access_ms: f64,
    /// Power draw in watts.
    pub power_w: f64,
    /// Purchase price in dollars.
    pub price_usd: f64,
    /// Local or SAN-remote.
    pub location: DiskLocation,
}

impl wcs_simcore::memo::MemoHash for DiskLocation {
    fn memo_hash(&self, key: &mut wcs_simcore::memo::MemoKey) {
        *key = key.push_bool(matches!(self, DiskLocation::Remote));
    }
}

impl wcs_simcore::memo::MemoHash for DiskModel {
    fn memo_hash(&self, key: &mut wcs_simcore::memo::MemoKey) {
        *key = key
            .push_str(&self.name)
            .push_f64(self.capacity_gb)
            .push_f64(self.bandwidth_mbs)
            .push_f64(self.avg_access_ms)
            .push_f64(self.power_w)
            .push_f64(self.price_usd)
            .push(&self.location);
    }
}

impl DiskModel {
    fn new(
        name: &str,
        capacity_gb: f64,
        bandwidth_mbs: f64,
        avg_access_ms: f64,
        power_w: f64,
        price_usd: f64,
        location: DiskLocation,
    ) -> Self {
        assert!(capacity_gb > 0.0 && bandwidth_mbs > 0.0 && avg_access_ms > 0.0);
        assert!(power_w >= 0.0 && price_usd >= 0.0);
        DiskModel {
            name: name.to_owned(),
            capacity_gb,
            bandwidth_mbs,
            avg_access_ms,
            power_w,
            price_usd,
            location,
        }
    }

    /// The 15k RPM server disk used by `srvr1` (Figure 1(a)).
    pub fn server_15k() -> Self {
        DiskModel::new(
            "15k server disk",
            300.0,
            90.0,
            3.0,
            15.0,
            275.0,
            DiskLocation::Local,
        )
    }

    /// The local 7.2k desktop disk of Table 3(a): 500 GB, 70 MB/s, 4 ms,
    /// 10 W, $120.
    pub fn desktop() -> Self {
        DiskModel::new(
            "desktop disk",
            500.0,
            70.0,
            4.0,
            10.0,
            120.0,
            DiskLocation::Local,
        )
    }

    /// The SAN-remote laptop disk of Table 3(a): 200 GB, 20 MB/s
    /// (conservative remote figure), 15 ms, 2 W, $80.
    pub fn laptop_remote() -> Self {
        DiskModel::new(
            "laptop disk",
            200.0,
            20.0,
            15.0,
            2.0,
            80.0,
            DiskLocation::Remote,
        )
    }

    /// The cheaper "laptop-2" variant of Table 3(a): identical behaviour
    /// at $40 — the paper's commoditized-price scenario.
    pub fn laptop2_remote() -> Self {
        DiskModel::new(
            "laptop-2 disk",
            200.0,
            20.0,
            15.0,
            2.0,
            40.0,
            DiskLocation::Remote,
        )
    }

    /// Service time for a random transfer of `bytes`, in seconds.
    pub fn access_secs(&self, bytes: f64) -> f64 {
        assert!(bytes >= 0.0 && bytes.is_finite());
        self.avg_access_ms * 1e-3 + bytes / (self.bandwidth_mbs * 1e6)
    }
}

impl fmt::Display for DiskModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} GB, {} MB/s, {} ms, {} W, ${}, {})",
            self.name,
            self.capacity_gb,
            self.bandwidth_mbs,
            self.avg_access_ms,
            self.power_w,
            self.price_usd,
            self.location
        )
    }
}

/// NAND flash device model (Table 3(a)): asymmetric read/write/erase,
/// finite write endurance.
///
/// # Example
/// ```
/// use wcs_platforms::storage::FlashModel;
/// let f = FlashModel::table3();
/// assert_eq!(f.capacity_gb, 1.0);
/// assert!(f.read_secs(4096.0) < f.write_secs(4096.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FlashModel {
    /// Capacity in GB.
    pub capacity_gb: f64,
    /// Sustained bandwidth in MB/s.
    pub bandwidth_mbs: f64,
    /// Read setup latency in microseconds.
    pub read_us: f64,
    /// Program (write) latency in microseconds.
    pub write_us: f64,
    /// Block-erase latency in milliseconds.
    pub erase_ms: f64,
    /// Power draw in watts.
    pub power_w: f64,
    /// Purchase price in dollars.
    pub price_usd: f64,
    /// Write-endurance limit per block (program/erase cycles).
    pub endurance_cycles: u64,
}

impl wcs_simcore::memo::MemoHash for FlashModel {
    fn memo_hash(&self, key: &mut wcs_simcore::memo::MemoKey) {
        *key = key
            .push_f64(self.capacity_gb)
            .push_f64(self.bandwidth_mbs)
            .push_f64(self.read_us)
            .push_f64(self.write_us)
            .push_f64(self.erase_ms)
            .push_f64(self.power_w)
            .push_f64(self.price_usd)
            .push_u64(self.endurance_cycles);
    }
}

impl FlashModel {
    /// The flash device of Table 3(a): 1 GB, 50 MB/s, 20 µs read / 200 µs
    /// write / 1.2 ms erase, 0.5 W, $14, 100k-cycle endurance.
    pub fn table3() -> Self {
        FlashModel {
            capacity_gb: 1.0,
            bandwidth_mbs: 50.0,
            read_us: 20.0,
            write_us: 200.0,
            erase_ms: 1.2,
            power_w: 0.5,
            price_usd: 14.0,
            endurance_cycles: 100_000,
        }
    }

    /// A flash device of the same technology scaled to `capacity_gb`,
    /// with price scaling linearly (the paper's $14/GB point).
    ///
    /// # Panics
    /// Panics unless the capacity is positive and finite.
    pub fn scaled(capacity_gb: f64) -> Self {
        assert!(capacity_gb.is_finite() && capacity_gb > 0.0);
        let base = FlashModel::table3();
        FlashModel {
            capacity_gb,
            price_usd: base.price_usd * capacity_gb,
            power_w: base.power_w * capacity_gb.sqrt(), // sub-linear: shared controller
            ..base
        }
    }

    /// Read service time for `bytes`, in seconds.
    pub fn read_secs(&self, bytes: f64) -> f64 {
        self.read_us * 1e-6 + bytes / (self.bandwidth_mbs * 1e6)
    }

    /// Write service time for `bytes`, in seconds (no erase; the cache
    /// layer accounts for amortized erases separately).
    pub fn write_secs(&self, bytes: f64) -> f64 {
        self.write_us * 1e-6 + bytes / (self.bandwidth_mbs * 1e6)
    }

    /// Erase time for one block, in seconds.
    pub fn erase_secs(&self) -> f64 {
        self.erase_ms * 1e-3
    }
}

impl fmt::Display for FlashModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flash ({} GB, {} MB/s, {}us/{}us/{}ms r/w/e, {} W, ${})",
            self.capacity_gb,
            self.bandwidth_mbs,
            self.read_us,
            self.write_us,
            self.erase_ms,
            self.power_w,
            self.price_usd
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_parameters_match_paper() {
        let flash = FlashModel::table3();
        assert_eq!(flash.price_usd, 14.0);
        assert_eq!(flash.power_w, 0.5);
        assert_eq!(flash.endurance_cycles, 100_000);

        let laptop = DiskModel::laptop_remote();
        assert_eq!(laptop.price_usd, 80.0);
        assert_eq!(laptop.power_w, 2.0);
        assert_eq!(laptop.location, DiskLocation::Remote);

        let laptop2 = DiskModel::laptop2_remote();
        assert_eq!(laptop2.price_usd, 40.0);

        let desktop = DiskModel::desktop();
        assert_eq!(desktop.price_usd, 120.0);
        assert_eq!(desktop.power_w, 10.0);
        assert_eq!(desktop.location, DiskLocation::Local);
    }

    #[test]
    fn laptop_slower_than_desktop() {
        let bytes = 64.0 * 1024.0;
        assert!(
            DiskModel::laptop_remote().access_secs(bytes) > DiskModel::desktop().access_secs(bytes)
        );
    }

    #[test]
    fn flash_much_faster_than_disk() {
        let bytes = 4096.0;
        let flash = FlashModel::table3();
        let disk = DiskModel::desktop();
        assert!(flash.read_secs(bytes) * 10.0 < disk.access_secs(bytes));
        assert!(flash.write_secs(bytes) < disk.access_secs(bytes));
    }

    #[test]
    fn access_time_includes_transfer() {
        let d = DiskModel::desktop();
        let small = d.access_secs(0.0);
        let large = d.access_secs(70e6); // one second of transfer
        assert!((large - small - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_flash_prices_linearly() {
        let f4 = FlashModel::scaled(4.0);
        assert!((f4.price_usd - 56.0).abs() < 1e-9);
        assert_eq!(f4.capacity_gb, 4.0);
    }

    #[test]
    #[should_panic]
    fn scaled_rejects_zero() {
        FlashModel::scaled(0.0);
    }
}
