//! Processor models.

use std::fmt;

/// Core microarchitecture class, used by the performance model to scale
/// per-core instruction throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Microarch {
    /// Wide out-of-order core (server/desktop/mobile class).
    OutOfOrder,
    /// Simple in-order core (low-end embedded class, e.g. AMD Geode).
    InOrder,
}

impl Microarch {
    /// Relative instructions-per-cycle factor on the suite's workloads,
    /// normalized to a wide out-of-order core.
    ///
    /// The 0.5 in-order factor reflects the roughly 2x CPI gap measured
    /// between contemporaneous in-order embedded cores and OoO cores on
    /// branchy server code.
    pub fn ipc_factor(self) -> f64 {
        match self {
            Microarch::OutOfOrder => 1.0,
            Microarch::InOrder => 0.5,
        }
    }
}

impl fmt::Display for Microarch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Microarch::OutOfOrder => f.write_str("OoO"),
            Microarch::InOrder => f.write_str("in-order"),
        }
    }
}

/// A processor configuration: sockets x cores, frequency, caches, and the
/// per-socket cost/power that feed the BOM.
///
/// # Example
/// ```
/// use wcs_platforms::{CpuModel, Microarch};
/// let cpu = CpuModel::new("Xeon-class", 2, 4, 2.6, Microarch::OutOfOrder, 64, 8192);
/// assert_eq!(cpu.total_cores(), 8);
/// assert!((cpu.peak_core_ghz_total() - 20.8).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CpuModel {
    /// Marketing-class name ("similar to" column of Table 2).
    pub name: String,
    /// Number of sockets.
    pub sockets: u32,
    /// Cores per socket.
    pub cores_per_socket: u32,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Core microarchitecture class.
    pub microarch: Microarch,
    /// L1 cache size in KiB (per core).
    pub l1_kib: u32,
    /// Last-level cache size in KiB (total).
    pub l2_kib: u32,
}

impl CpuModel {
    /// Creates a processor model.
    ///
    /// # Panics
    /// Panics if any count is zero or the frequency is not a positive
    /// finite number.
    pub fn new(
        name: &str,
        sockets: u32,
        cores_per_socket: u32,
        freq_ghz: f64,
        microarch: Microarch,
        l1_kib: u32,
        l2_kib: u32,
    ) -> Self {
        assert!(sockets > 0 && cores_per_socket > 0, "CPU needs >= 1 core");
        assert!(
            freq_ghz.is_finite() && freq_ghz > 0.0,
            "CPU frequency must be positive"
        );
        assert!(l1_kib > 0 && l2_kib > 0, "cache sizes must be positive");
        CpuModel {
            name: name.to_owned(),
            sockets,
            cores_per_socket,
            freq_ghz,
            microarch,
            l1_kib,
            l2_kib,
        }
    }

    /// Total hardware core count.
    pub fn total_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Aggregate core-GHz (cores x frequency), before any IPC or cache
    /// scaling. A convenient raw-capability scalar.
    pub fn peak_core_ghz_total(&self) -> f64 {
        self.total_cores() as f64 * self.freq_ghz
    }

    /// Per-core compute capability relative to a 1 GHz wide OoO core:
    /// frequency x microarchitecture IPC factor.
    pub fn core_capability(&self) -> f64 {
        self.freq_ghz * self.microarch.ipc_factor()
    }

    /// Last-level cache size in MiB.
    pub fn l2_mib(&self) -> f64 {
        self.l2_kib as f64 / 1024.0
    }
}

impl fmt::Display for CpuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}p x {} cores, {:.1} GHz, {}, {}K/{} L1/L2)",
            self.name,
            self.sockets,
            self.cores_per_socket,
            self.freq_ghz,
            self.microarch,
            self.l1_kib,
            if self.l2_kib >= 1024 {
                format!("{}MB", self.l2_kib / 1024)
            } else {
                format!("{}K", self.l2_kib)
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_scales_with_microarch() {
        let ooo = CpuModel::new("a", 1, 2, 2.0, Microarch::OutOfOrder, 32, 2048);
        let ino = CpuModel::new("b", 1, 2, 2.0, Microarch::InOrder, 32, 2048);
        assert!(ooo.core_capability() > ino.core_capability());
        assert!((ooo.core_capability() - 2.0).abs() < 1e-12);
        assert!((ino.core_capability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_descriptive() {
        let cpu = CpuModel::new("Geode", 1, 1, 0.6, Microarch::InOrder, 32, 128);
        let s = cpu.to_string();
        assert!(s.contains("Geode") && s.contains("in-order") && s.contains("128K"));
        let big = CpuModel::new("Xeon", 2, 4, 2.6, Microarch::OutOfOrder, 64, 8192);
        assert!(big.to_string().contains("8MB"));
    }

    #[test]
    #[should_panic(expected = "frequency")]
    fn rejects_zero_frequency() {
        CpuModel::new("bad", 1, 1, 0.0, Microarch::InOrder, 32, 128);
    }

    #[test]
    #[should_panic(expected = "core")]
    fn rejects_zero_cores() {
        CpuModel::new("bad", 1, 0, 1.0, Microarch::InOrder, 32, 128);
    }
}
