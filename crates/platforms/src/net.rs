//! Network interface models.

use std::fmt;

/// A NIC model: link speed plus a fixed per-packet processing overhead.
///
/// `srvr1` has a 10 Gb NIC; every other platform in Table 2 uses 1 Gb.
///
/// # Example
/// ```
/// use wcs_platforms::NicModel;
/// let nic = NicModel::gigabit();
/// assert!((nic.gbps - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NicModel {
    /// Link speed in Gb/s.
    pub gbps: f64,
    /// Fixed per-transfer overhead in microseconds (interrupt + stack).
    pub per_transfer_us: f64,
}

impl NicModel {
    /// A 1 Gb/s NIC.
    pub fn gigabit() -> Self {
        NicModel {
            gbps: 1.0,
            per_transfer_us: 20.0,
        }
    }

    /// A 10 Gb/s NIC (srvr1).
    pub fn ten_gigabit() -> Self {
        NicModel {
            gbps: 10.0,
            per_transfer_us: 10.0,
        }
    }

    /// Wire+stack service time in seconds for `bytes` of payload.
    ///
    /// # Panics
    /// Panics if `bytes` is negative or non-finite.
    pub fn transfer_secs(&self, bytes: f64) -> f64 {
        assert!(bytes.is_finite() && bytes >= 0.0, "bad byte count");
        self.per_transfer_us * 1e-6 + bytes * 8.0 / (self.gbps * 1e9)
    }

    /// Usable bandwidth in bytes/second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.gbps * 1e9 / 8.0
    }
}

impl fmt::Display for NicModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} Gb NIC", self.gbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_gig_is_faster() {
        let big = 1_000_000.0;
        assert!(
            NicModel::ten_gigabit().transfer_secs(big) < NicModel::gigabit().transfer_secs(big)
        );
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let nic = NicModel::gigabit();
        // 125 MB at 1 Gb/s is one second on the wire.
        let t = nic.transfer_secs(125e6);
        assert!((t - 1.0).abs() < 1e-3, "t = {t}");
    }

    #[test]
    #[should_panic(expected = "bad byte count")]
    fn rejects_negative_bytes() {
        NicModel::gigabit().transfer_secs(-1.0);
    }
}
