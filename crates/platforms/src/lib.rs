//! Component and platform catalog for warehouse-computing server designs.
//!
//! This crate is the data backbone of the suite: it defines models for
//! every hardware component the ISCA 2008 paper's cost and performance
//! studies touch — CPUs, memory technologies, disks, flash, NICs, boards —
//! and assembles them into the six platforms of Table 2 (`srvr1`, `srvr2`,
//! `desk`, `mobl`, `emb1`, `emb2`).
//!
//! Cost and power numbers for `srvr1`/`srvr2` are the paper's own
//! (Figure 1(a)); storage parameters are Table 3(a); the component-level
//! splits for the four consumer platforms are our estimates constrained to
//! reproduce the paper's published per-platform totals (Table 2's `Watt`
//! and `Inf-$` columns) exactly.
//!
//! # Example
//! ```
//! use wcs_platforms::{catalog, PlatformId};
//! let srvr1 = catalog::platform(PlatformId::Srvr1);
//! assert_eq!(srvr1.cpu.total_cores(), 8);
//! assert!((srvr1.hardware_cost_usd() - 3225.0).abs() < 1.0);
//! assert!((srvr1.max_power_w() - 340.0).abs() < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
mod component;
mod cpu;
pub mod future;
mod memory;
mod net;
mod platform;
pub mod power;
pub mod storage;

pub use component::{BomItem, Component};
pub use cpu::{CpuModel, Microarch};
pub use memory::{MemoryConfig, MemoryTech};
pub use net::NicModel;
pub use platform::{ParsePlatformError, Platform, PlatformId};
pub use power::CpuPowerModel;
pub use storage::{DiskLocation, DiskModel, FlashModel};
