//! CPU power scaling: DVFS and idle states.
//!
//! The paper's cost model prices maximum operational power times a flat
//! activity factor. This module refines the CPU's share: active power
//! scales roughly with `V^2 f` (and voltage tracks frequency across a
//! DVFS range), idle cores drop to a fraction of active power, and deep
//! sleep nearly eliminates it. The diurnal-energy studies use it to
//! derive activity factors from load instead of assuming them.

use crate::cpu::CpuModel;

/// A processor's power behaviour across operating points.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CpuPowerModel {
    /// Power at full frequency, all cores active, watts (the BOM figure).
    pub max_active_w: f64,
    /// Fraction of max power that does not scale with DVFS (leakage,
    /// uncore, caches).
    pub static_fraction: f64,
    /// Lowest DVFS frequency as a fraction of nominal.
    pub min_freq_fraction: f64,
    /// Idle (clock-gated, C1-class) power as a fraction of max.
    pub idle_fraction: f64,
    /// Deep-sleep (package C-state) power as a fraction of max.
    pub sleep_fraction: f64,
}

impl CpuPowerModel {
    /// A 2008-era server/desktop part: ~30% static power, DVFS down to
    /// half frequency, ~30% idle, ~5% deep sleep.
    pub fn typical_2008(max_active_w: f64) -> Self {
        assert!(max_active_w.is_finite() && max_active_w > 0.0);
        CpuPowerModel {
            max_active_w,
            static_fraction: 0.30,
            min_freq_fraction: 0.50,
            idle_fraction: 0.30,
            sleep_fraction: 0.05,
        }
    }

    /// Builds the model from a platform CPU's BOM power.
    pub fn for_cpu(cpu: &CpuModel, bom_power_w: f64) -> Self {
        let _ = cpu; // geometry does not change the shape, only the scale
        Self::typical_2008(bom_power_w)
    }

    /// Active power at a DVFS point `freq_fraction` of nominal
    /// frequency: static part plus a dynamic part scaling with `f^3`
    /// (voltage tracks frequency across the DVFS range).
    ///
    /// # Panics
    /// Panics unless `freq_fraction` is within the DVFS range.
    pub fn active_power_w(&self, freq_fraction: f64) -> f64 {
        assert!(
            freq_fraction >= self.min_freq_fraction && freq_fraction <= 1.0,
            "frequency outside DVFS range"
        );
        let dynamic = self.max_active_w * (1.0 - self.static_fraction);
        self.max_active_w * self.static_fraction + dynamic * freq_fraction.powi(3)
    }

    /// Idle power, watts.
    pub fn idle_power_w(&self) -> f64 {
        self.max_active_w * self.idle_fraction
    }

    /// Deep-sleep power, watts.
    pub fn sleep_power_w(&self) -> f64 {
        self.max_active_w * self.sleep_fraction
    }

    /// Mean power at `utilization` (0-1) under a race-to-idle policy:
    /// the CPU runs at full frequency while busy and idles otherwise.
    ///
    /// # Panics
    /// Panics unless `utilization` is in `[0, 1]`.
    pub fn race_to_idle_w(&self, utilization: f64) -> f64 {
        assert!((0.0..=1.0).contains(&utilization), "utilization in [0,1]");
        utilization * self.max_active_w + (1.0 - utilization) * self.idle_power_w()
    }

    /// Mean power at `utilization` when DVFS stretches the work to run
    /// at the slowest frequency that still keeps up.
    ///
    /// # Panics
    /// Panics unless `utilization` is in `[0, 1]`.
    pub fn dvfs_stretch_w(&self, utilization: f64) -> f64 {
        assert!((0.0..=1.0).contains(&utilization), "utilization in [0,1]");
        let f = utilization.max(self.min_freq_fraction).min(1.0);
        // Running at fraction f, the work occupies utilization/f of time.
        let busy = (utilization / f).min(1.0);
        busy * self.active_power_w(f) + (1.0 - busy) * self.idle_power_w()
    }

    /// The energy-optimal policy at `utilization`: whichever of
    /// race-to-idle or DVFS-stretch draws less.
    pub fn best_policy_w(&self, utilization: f64) -> f64 {
        self.race_to_idle_w(utilization)
            .min(self.dvfs_stretch_w(utilization))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CpuPowerModel {
        CpuPowerModel::typical_2008(100.0)
    }

    #[test]
    fn endpoints_are_consistent() {
        let m = model();
        assert!((m.active_power_w(1.0) - 100.0).abs() < 1e-9);
        assert_eq!(m.idle_power_w(), 30.0);
        assert_eq!(m.sleep_power_w(), 5.0);
        assert!((m.race_to_idle_w(1.0) - 100.0).abs() < 1e-9);
        assert!((m.race_to_idle_w(0.0) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn dvfs_cubic_saves_power() {
        let m = model();
        // At half frequency: 30 + 70 * 0.125 = 38.75 W.
        assert!((m.active_power_w(0.5) - 38.75).abs() < 1e-9);
        assert!(m.active_power_w(0.7) < m.active_power_w(1.0));
    }

    #[test]
    fn dvfs_beats_race_to_idle_at_moderate_load() {
        let m = model();
        // At 50% utilization, stretching to half frequency keeps the CPU
        // busy at much lower power than racing at full speed.
        assert!(m.dvfs_stretch_w(0.5) < m.race_to_idle_w(0.5));
        // At very low load the idle floor dominates; both converge.
        let lo_dvfs = m.dvfs_stretch_w(0.05);
        let lo_race = m.race_to_idle_w(0.05);
        assert!((lo_dvfs - lo_race).abs() / lo_race < 0.25);
    }

    #[test]
    fn best_policy_is_the_lower_envelope() {
        let m = model();
        for u in [0.0, 0.2, 0.5, 0.8, 1.0] {
            let b = m.best_policy_w(u);
            assert!(b <= m.race_to_idle_w(u) + 1e-12);
            assert!(b <= m.dvfs_stretch_w(u) + 1e-12);
        }
    }

    #[test]
    fn power_monotone_in_utilization() {
        let m = model();
        let mut last = 0.0;
        for i in 0..=10 {
            let u = i as f64 / 10.0;
            let p = m.best_policy_w(u);
            assert!(p >= last - 1e-9, "power not monotone at u={u}");
            last = p;
        }
    }

    #[test]
    #[should_panic(expected = "DVFS range")]
    fn rejects_frequency_below_floor() {
        model().active_power_w(0.2);
    }
}
