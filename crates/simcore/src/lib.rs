//! Discrete-event simulation substrate for the warehouse-computing suite.
//!
//! This crate provides the building blocks that every simulator in the
//! workspace is built on:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond simulated time, so
//!   event ordering is exact and runs are bit-reproducible,
//! * [`EventQueue`] — a deterministic future-event list with FIFO tie
//!   breaking,
//! * [`SimRng`] — a seedable deterministic random-number generator,
//! * [`dist`] — the distributions the benchmark suite needs (exponential,
//!   log-normal, Pareto, Zipf, empirical mixes),
//! * [`stats`] — online statistics and latency histograms with percentile
//!   queries.
//!
//! # Example
//!
//! Run a tiny M/M/1-style arrival process and measure the mean gap:
//!
//! ```
//! use wcs_simcore::{EventQueue, SimTime, SimRng, dist::{Distribution, Exp}};
//! use wcs_simcore::stats::OnlineStats;
//!
//! let mut q = EventQueue::new();
//! let mut rng = SimRng::seed_from(42);
//! let iat = Exp::new(1e-6).expect("positive rate"); // 1 event/us on average
//! let mut t = SimTime::ZERO;
//! for i in 0..100 {
//!     t = t + iat.sample_duration(&mut rng);
//!     q.schedule(t, i);
//! }
//! let mut stats = OnlineStats::new();
//! let mut last = SimTime::ZERO;
//! while let Some((when, _id)) = q.pop() {
//!     stats.record((when - last).as_nanos() as f64);
//!     last = when;
//! }
//! assert!(stats.mean() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod event;
mod rng;
mod time;

pub mod batchmeans;
pub mod dist;
pub mod error;
pub mod faults;
pub mod intern;
pub mod journal;
pub mod memo;
pub mod obs;
pub mod pool;
pub mod service;
pub mod simd;
pub mod slotcache;
pub mod stats;
pub mod table;
pub mod timeseries;
pub mod watchdog;

pub use arena::{ArenaSlice, EpochArena};
pub use error::ConfigError;
pub use event::{EventQueue, QueueKind};
pub use obs::Registry;
pub use pool::ThreadPool;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
