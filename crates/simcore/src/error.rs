//! The workspace-wide configuration-error type.
//!
//! Public constructors and entry points across the workspace validate
//! their inputs and report problems through [`ConfigError`] instead of
//! panicking, so library callers (dashboards, sweep drivers, services)
//! can surface bad configurations gracefully. Internal invariants — the
//! bugs-only cases — stay as `debug_assert!`.

use std::fmt;

/// A rejected configuration input.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A numeric parameter violated its documented range.
    OutOfRange {
        /// Parameter name.
        param: &'static str,
        /// Human-readable requirement, e.g. "must be in (0, 1]".
        requirement: &'static str,
        /// The offending value.
        got: f64,
    },
    /// A count that must be non-zero was zero.
    ZeroCount {
        /// Parameter name.
        param: &'static str,
    },
    /// A collection input that must be non-empty was empty.
    Empty {
        /// What was empty.
        what: &'static str,
    },
    /// A resource request exceeded a configured capacity.
    CapacityExceeded {
        /// What overflowed.
        what: &'static str,
        /// The amount requested.
        requested: u64,
        /// The amount available.
        available: u64,
    },
    /// An event was scheduled before the simulation clock.
    PastEvent {
        /// Requested firing time, nanoseconds since the epoch.
        when_ns: u64,
        /// The clock at the time of the attempt, nanoseconds.
        now_ns: u64,
    },
}

impl ConfigError {
    /// Validates that `value` is finite and satisfies `ok`, describing
    /// the requirement on failure.
    pub fn check_f64(
        param: &'static str,
        value: f64,
        requirement: &'static str,
        ok: bool,
    ) -> Result<(), ConfigError> {
        if value.is_finite() && ok {
            Ok(())
        } else {
            Err(ConfigError::OutOfRange {
                param,
                requirement,
                got: value,
            })
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::OutOfRange {
                param,
                requirement,
                got,
            } => write!(f, "{param} {requirement} (got {got})"),
            ConfigError::ZeroCount { param } => write!(f, "{param} must be non-zero"),
            ConfigError::Empty { what } => write!(f, "{what} must be non-empty"),
            ConfigError::CapacityExceeded {
                what,
                requested,
                available,
            } => write!(
                f,
                "{what}: requested {requested} exceeds available {available}"
            ),
            ConfigError::PastEvent { when_ns, now_ns } => write!(
                f,
                "scheduled event at {:.6}s before current time {:.6}s",
                *when_ns as f64 * 1e-9,
                *now_ns as f64 * 1e-9
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ConfigError::OutOfRange {
            param: "local_fraction",
            requirement: "must be in (0, 1]",
            got: 1.5,
        };
        assert!(e.to_string().contains("local_fraction"));
        assert!(e.to_string().contains("1.5"));
        assert!(ConfigError::ZeroCount { param: "servers" }
            .to_string()
            .contains("servers"));
        assert!(ConfigError::Empty { what: "ensemble" }
            .to_string()
            .contains("ensemble"));
    }

    #[test]
    fn check_f64_accepts_and_rejects() {
        assert!(ConfigError::check_f64("x", 0.5, "in (0,1]", true).is_ok());
        assert!(ConfigError::check_f64("x", f64::NAN, "in (0,1]", true).is_err());
        assert!(ConfigError::check_f64("x", 2.0, "in (0,1]", false).is_err());
    }
}
