//! The shared slot-cache kernel behind every fixed-capacity cache
//! simulator in the workspace.
//!
//! The flash cache index and the local page store used to carry two
//! copies of the same machinery: a `key -> slot` map, a slot array of
//! `(key, dirty, ref)` tuples, a clock hand, and (for LRU) an intrusive
//! doubly-linked recency list. [`SlotCache`] is that machinery once, laid
//! out struct-of-arrays so the replay inner loops touch only the columns
//! they need: hits read/write `dirty`/`refbit`, clock sweeps scan
//! `refbit` alone, and the recency links live in their own `u32` arrays.
//!
//! Policy stays with the caller: the kernel exposes victim *mechanisms*
//! ([`clock_victim`](SlotCache::clock_victim),
//! [`lru_victim`](SlotCache::lru_victim), or any caller-chosen slot for
//! random replacement) and the caller decides which to invoke.
//!
//! # Example
//! ```
//! use wcs_simcore::slotcache::SlotCache;
//! let mut c = SlotCache::new(2, false);
//! assert!(c.lookup(10).is_none());
//! let slot = c.insert(10, false);
//! assert_eq!(c.lookup(10), Some(slot));
//! c.touch_existing(slot, true); // now dirty
//! ```

use crate::table::OpenMap;

/// Sentinel for "no slot" in the recency links.
const NIL: u32 = u32::MAX;

/// The `key -> slot` index of a [`SlotCache`].
///
/// The open-addressed map handles arbitrary `u64` keys; the dense
/// variant is a direct-indexed `Vec<u32>` over a known finite key
/// universe (page numbers below a footprint, extent numbers below a
/// dataset size). Dense lookups are one predictable array access — no
/// hashing, no probe chain — which is where the replay kernels spend
/// most of their per-touch time.
#[derive(Debug, Clone)]
enum KeyIndex {
    Open(OpenMap<u64, u32>),
    Dense(Vec<u32>),
}

impl KeyIndex {
    #[inline]
    fn get(&self, key: u64) -> Option<u32> {
        match self {
            KeyIndex::Open(map) => map.get(&key).copied(),
            KeyIndex::Dense(slots) => {
                let s = slots[key as usize];
                (s != NIL).then_some(s)
            }
        }
    }

    #[inline]
    fn set(&mut self, key: u64, slot: u32) {
        match self {
            KeyIndex::Open(map) => {
                map.insert(key, slot);
            }
            KeyIndex::Dense(slots) => slots[key as usize] = slot,
        }
    }

    #[inline]
    fn clear(&mut self, key: u64) {
        match self {
            KeyIndex::Open(map) => {
                map.remove(&key);
            }
            KeyIndex::Dense(slots) => slots[key as usize] = NIL,
        }
    }
}

/// Fixed-capacity cache state: key map, SoA slot columns, clock hand,
/// and an optional intrusive LRU list.
///
/// Slot indices are `u32` (capacities here are at most a few million
/// pages); construction rejects capacities that would not fit.
#[derive(Debug, Clone)]
pub struct SlotCache {
    capacity: usize,
    index: KeyIndex,
    keys: Vec<u64>,
    dirty: Vec<bool>,
    refbit: Vec<bool>,
    // Intrusive LRU list (only maintained when `linked`): head = MRU,
    // tail = eviction victim.
    linked: bool,
    prev: Vec<u32>,
    next: Vec<u32>,
    head: u32,
    tail: u32,
    hand: u32,
}

impl SlotCache {
    /// Creates an empty cache holding up to `capacity` keys. Pass
    /// `linked = true` when the caller needs [`lru_victim`](Self::lru_victim)
    /// (the recency list costs two pointer updates per touch).
    ///
    /// # Panics
    /// Panics if `capacity` is zero or does not fit slot indices.
    pub fn new(capacity: usize, linked: bool) -> Self {
        Self::with_index(
            capacity,
            linked,
            KeyIndex::Open(OpenMap::with_capacity(capacity)),
        )
    }

    /// Creates an empty cache whose keys are known to lie in
    /// `0..universe`: the key index is a direct-indexed array (one
    /// predictable load per lookup) instead of a hash map. Behaviour is
    /// otherwise identical to [`new`](Self::new), including every victim
    /// mechanism — only the lookup machinery changes.
    ///
    /// # Panics
    /// Panics on a zero/oversized capacity or a zero universe; keys at
    /// or above `universe` panic at first use (index out of bounds).
    pub fn with_dense_keys(capacity: usize, linked: bool, universe: u64) -> Self {
        assert!(universe > 0, "dense slot cache needs a key universe");
        Self::with_index(
            capacity,
            linked,
            KeyIndex::Dense(vec![NIL; universe as usize]),
        )
    }

    fn with_index(capacity: usize, linked: bool, index: KeyIndex) -> Self {
        assert!(capacity > 0, "slot cache needs capacity");
        assert!(
            capacity < NIL as usize,
            "slot cache capacity must fit u32 slot indices"
        );
        SlotCache {
            capacity,
            index,
            keys: Vec::with_capacity(capacity),
            dirty: Vec::with_capacity(capacity),
            refbit: Vec::with_capacity(capacity),
            linked,
            prev: Vec::with_capacity(if linked { capacity } else { 0 }),
            next: Vec::with_capacity(if linked { capacity } else { 0 }),
            head: NIL,
            tail: NIL,
            hand: 0,
        }
    }

    /// Maximum number of keys the cache can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// True once every slot is occupied (misses must evict).
    pub fn is_full(&self) -> bool {
        self.keys.len() >= self.capacity
    }

    /// True if `key` is resident (no policy state update).
    pub fn contains(&self, key: u64) -> bool {
        self.index.get(key).is_some()
    }

    /// The slot holding `key`, if resident (no policy state update).
    #[inline]
    pub fn lookup(&self, key: u64) -> Option<u32> {
        self.index.get(key)
    }

    /// The key resident in `slot`.
    #[inline]
    pub fn key_at(&self, slot: u32) -> u64 {
        self.keys[slot as usize]
    }

    /// Registers a hit on `slot`: sets the reference bit, ORs in the
    /// dirty bit, and (when linked) moves the slot to the recency head.
    #[inline]
    pub fn touch_existing(&mut self, slot: u32, write: bool) {
        let s = slot as usize;
        self.dirty[s] |= write;
        self.refbit[s] = true;
        if self.linked {
            self.unlink(slot);
            self.push_front(slot);
        }
    }

    /// Installs `key` into a fresh slot while the cache is filling;
    /// returns the slot. The new entry is referenced, dirty iff `write`,
    /// and (when linked) most-recent.
    ///
    /// # Panics
    /// Panics if the cache is already full — use
    /// [`replace`](Self::replace) with a victim instead.
    pub fn insert(&mut self, key: u64, write: bool) -> u32 {
        assert!(!self.is_full(), "insert on a full slot cache");
        let slot = self.keys.len() as u32;
        self.keys.push(key);
        self.dirty.push(write);
        self.refbit.push(true);
        if self.linked {
            self.prev.push(NIL);
            self.next.push(NIL);
            self.push_front(slot);
        }
        self.index.set(key, slot);
        slot
    }

    /// Evicts the occupant of `slot` and installs `key` in its place,
    /// returning `(old_key, old_dirty)`. The new entry is referenced,
    /// dirty iff `write`, and (when linked) most-recent.
    pub fn replace(&mut self, slot: u32, key: u64, write: bool) -> (u64, bool) {
        let s = slot as usize;
        let old_key = self.keys[s];
        let old_dirty = self.dirty[s];
        self.index.clear(old_key);
        self.keys[s] = key;
        self.dirty[s] = write;
        self.refbit[s] = true;
        self.index.set(key, slot);
        if self.linked {
            self.unlink(slot);
            self.push_front(slot);
        }
        (old_key, old_dirty)
    }

    /// The clock (second-chance) victim: advances the hand, clearing
    /// reference bits, until it finds an unreferenced slot.
    ///
    /// # Panics
    /// Panics if the cache is empty.
    pub fn clock_victim(&mut self) -> u32 {
        assert!(!self.is_empty(), "clock victim on an empty cache");
        let n = self.keys.len() as u32;
        loop {
            let slot = self.hand;
            self.hand = (self.hand + 1) % n;
            if self.refbit[slot as usize] {
                self.refbit[slot as usize] = false; // second chance
            } else {
                return slot;
            }
        }
    }

    /// The least-recently-used slot (the recency tail).
    ///
    /// # Panics
    /// Panics if the cache was built without the recency list or is
    /// empty.
    pub fn lru_victim(&self) -> u32 {
        assert!(self.linked, "lru victim needs a linked slot cache");
        assert!(self.tail != NIL, "lru victim on an empty cache");
        self.tail
    }

    #[inline]
    fn unlink(&mut self, slot: u32) {
        let s = slot as usize;
        let (p, n) = (self.prev[s], self.next[s]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail = p;
        }
    }

    #[inline]
    fn push_front(&mut self, slot: u32) {
        let s = slot as usize;
        self.prev[s] = NIL;
        self.next[s] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_then_hit() {
        let mut c = SlotCache::new(4, true);
        let s = c.insert(10, false);
        assert_eq!(c.lookup(10), Some(s));
        assert!(c.contains(10));
        assert_eq!(c.key_at(s), 10);
        assert_eq!(c.len(), 1);
        assert!(!c.is_full());
    }

    #[test]
    fn lru_victim_tracks_recency() {
        let mut c = SlotCache::new(3, true);
        let s1 = c.insert(1, false);
        let _ = c.insert(2, false);
        let _ = c.insert(3, false);
        // 1 is LRU; touching it promotes it, making 2 the victim.
        assert_eq!(c.key_at(c.lru_victim()), 1);
        c.touch_existing(s1, false);
        assert_eq!(c.key_at(c.lru_victim()), 2);
    }

    #[test]
    fn replace_reports_old_entry_and_dirty_bit() {
        let mut c = SlotCache::new(2, true);
        let s = c.insert(1, true);
        let _ = c.insert(2, false);
        let (old, dirty) = c.replace(s, 9, false);
        assert_eq!((old, dirty), (1, true));
        assert!(!c.contains(1));
        assert_eq!(c.lookup(9), Some(s));
        // Replaced entry becomes MRU: victim is 2.
        assert_eq!(c.key_at(c.lru_victim()), 2);
    }

    #[test]
    fn clock_gives_second_chances() {
        let mut c = SlotCache::new(3, false);
        for k in 1..=3u64 {
            c.insert(k, false);
        }
        // All ref bits set: first victim pass clears 1, 2, 3 then evicts
        // slot 0 (key 1) on the wrap.
        let v = c.clock_victim();
        assert_eq!(c.key_at(v), 1);
        // Slot 1 (key 2) still has ref cleared; re-referencing key 3
        // protects it for the next sweep.
        c.touch_existing(c.lookup(3).unwrap(), false);
        let v2 = c.clock_victim();
        assert_eq!(c.key_at(v2), 2);
    }

    #[test]
    fn dirty_bit_ors_across_touches() {
        let mut c = SlotCache::new(2, false);
        let s = c.insert(5, false);
        c.touch_existing(s, false);
        c.touch_existing(s, true);
        c.touch_existing(s, false);
        let (_, dirty) = c.replace(s, 6, false);
        assert!(dirty);
    }

    #[test]
    fn dense_index_behaves_like_open_map() {
        // Same operation sequence through both index kinds must agree on
        // every observable: lookups, victims, replace results.
        let mut open = SlotCache::new(3, true);
        let mut dense = SlotCache::with_dense_keys(3, true, 64);
        let ops: &[(u64, bool)] = &[
            (5, false),
            (9, true),
            (5, false),
            (1, false),
            (7, true),
            (9, false),
            (3, false),
        ];
        for &(key, write) in ops {
            let a = open.lookup(key);
            let b = dense.lookup(key);
            assert_eq!(a, b, "lookup {key}");
            match a {
                Some(slot) => {
                    open.touch_existing(slot, write);
                    dense.touch_existing(slot, write);
                }
                None if !open.is_full() => {
                    assert_eq!(open.insert(key, write), dense.insert(key, write));
                }
                None => {
                    let (vo, vd) = (open.lru_victim(), dense.lru_victim());
                    assert_eq!(vo, vd);
                    assert_eq!(open.replace(vo, key, write), dense.replace(vd, key, write));
                }
            }
            assert_eq!(open.len(), dense.len());
            for k in 0..16u64 {
                assert_eq!(open.contains(k), dense.contains(k), "contains {k}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "universe")]
    fn dense_rejects_zero_universe() {
        SlotCache::with_dense_keys(4, false, 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        SlotCache::new(0, false);
    }

    #[test]
    #[should_panic(expected = "full")]
    fn rejects_insert_when_full() {
        let mut c = SlotCache::new(1, false);
        c.insert(1, false);
        c.insert(2, false);
    }
}
