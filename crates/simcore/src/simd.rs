//! Branch-free lane helpers for the SoA replay kernels.
//!
//! The replay kernels in `memshare::twolevel` and `flashcache::system`
//! run in two passes over a staged epoch chunk: a scalar *touch* pass
//! that mutates cache state and writes one outcome-code byte per
//! element, then a *fold* pass that reduces the code lane into counters.
//! This module holds the fold-pass primitives, shaped so rustc's
//! autovectorizer turns them into SIMD: fixed-width `chunks_exact`
//! bodies with no data-dependent branches, integer accumulation in
//! per-chunk partials, and f64 accumulation in a **fixed-shape pairwise
//! tree** whose rounding order depends only on the slice length — never
//! on chunking, thread count, or target features — so results stay
//! bit-identical everywhere.
//!
//! Outcome codes are bitmasks, not enums: bit `b` of each code byte is
//! an independent stage outcome (miss, writeback, flash hit, absorbed
//! write, ...), and [`fold_mask_counts`] pops all eight bit populations
//! in one pass.

/// Lane width of the integer fold pass. 32 byte-codes fill one or two
/// vector registers on every target this workspace builds for.
pub const FOLD_LANES: usize = 32;

/// Elements per f64 accumulation block. Chunked replay paths may only
/// split work at multiples of this block, so the fixed-shape per-block
/// sums compose bit-identically for every chunk count.
pub const F64_BLOCK: usize = 4096;

/// Population counts of every code bit over the lane: `counts[b]` is the
/// number of elements whose code has bit `b` set.
///
/// Branch-free and width-fixed: the main loop handles [`FOLD_LANES`]
/// codes per iteration with u32 partials (safe: a partial counts at most
/// `FOLD_LANES` per iteration and is drained every iteration), the
/// remainder is folded scalarly.
#[must_use]
pub fn fold_mask_counts(codes: &[u8]) -> [u64; 8] {
    let mut counts = [0u64; 8];
    let mut chunks = codes.chunks_exact(FOLD_LANES);
    for chunk in chunks.by_ref() {
        let mut partial = [0u32; 8];
        for &c in chunk {
            for (b, p) in partial.iter_mut().enumerate() {
                *p += u32::from(c >> b) & 1;
            }
        }
        for (b, p) in partial.iter().enumerate() {
            counts[b] += u64::from(*p);
        }
    }
    for &c in chunks.remainder() {
        for (b, slot) in counts.iter_mut().enumerate() {
            *slot += u64::from(c >> b) & 1;
        }
    }
    counts
}

/// Number of elements whose code byte is exactly `value`.
#[must_use]
pub fn fold_code_eq(codes: &[u8], value: u8) -> u64 {
    let mut count = 0u64;
    let mut chunks = codes.chunks_exact(FOLD_LANES);
    for chunk in chunks.by_ref() {
        let mut partial = 0u32;
        for &c in chunk {
            partial += u32::from(c == value);
        }
        count += u64::from(partial);
    }
    for &c in chunks.remainder() {
        count += u64::from(c == value);
    }
    count
}

/// Fixed-shape pairwise sum of an f64 slice: the reduction tree is a
/// pure function of `xs.len()`, so the result is bit-identical no matter
/// how the surrounding code is threaded or chunked — and the pairwise
/// shape keeps rounding error O(log n) instead of a serial fold's O(n).
#[must_use]
pub fn tree_sum_f64(xs: &[f64]) -> f64 {
    const LEAF: usize = 8;
    if xs.len() <= LEAF {
        let mut acc = 0.0;
        for &x in xs {
            acc += x;
        }
        return acc;
    }
    // Split at the largest power-of-two strictly below len: every
    // left subtree is full, so equal-length slices share one shape.
    let split = (xs.len() / 2).next_power_of_two().min(xs.len() - 1);
    tree_sum_f64(&xs[..split]) + tree_sum_f64(&xs[split..])
}

/// Append the fixed-shape [`tree_sum_f64`] of each [`F64_BLOCK`]-sized
/// block of `xs` to `out`.
///
/// This is the chunk-composable half of the deterministic f64 reduction:
/// a replay path that splits its lane at block multiples produces, chunk
/// by chunk, exactly the block-sum sequence the unsplit lane produces.
/// Reducing that sequence with [`reduce_block_sums`] therefore yields a
/// bit-identical total for every chunk count.
pub fn block_sums_f64(xs: &[f64], out: &mut Vec<f64>) {
    for block in xs.chunks(F64_BLOCK) {
        out.push(tree_sum_f64(block));
    }
}

/// Reduce a block-sum sequence with one fixed-shape pairwise tree.
///
/// The tree shape depends only on `sums.len()`, so any two paths that
/// assembled the same block-sum sequence — single-threaded, chunked, or
/// merged from per-chunk pieces in chunk order — get the same bits.
#[must_use]
pub fn reduce_block_sums(sums: &[f64]) -> f64 {
    tree_sum_f64(sums)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    fn random_codes(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = SimRng::seed_from(seed);
        (0..n).map(|_| (rng.index(256)) as u8).collect()
    }

    #[test]
    fn mask_counts_match_scalar_reference() {
        for n in [0, 1, 31, 32, 33, 257, 4096, 10_000] {
            let codes = random_codes(n, 0xC0DE + n as u64);
            let got = fold_mask_counts(&codes);
            for (b, &count) in got.iter().enumerate() {
                let want = codes.iter().filter(|&&c| (c >> b) & 1 == 1).count() as u64;
                assert_eq!(count, want, "n={n} bit={b}");
            }
        }
    }

    #[test]
    fn code_eq_matches_scalar_reference() {
        let codes = random_codes(5000, 7);
        for v in [0u8, 1, 3, 200, 255] {
            let want = codes.iter().filter(|&&c| c == v).count() as u64;
            assert_eq!(fold_code_eq(&codes, v), want);
        }
        assert_eq!(fold_code_eq(&[], 0), 0);
    }

    #[test]
    fn tree_sum_is_deterministic_and_close() {
        let mut rng = SimRng::seed_from(11);
        let xs: Vec<f64> = (0..12_345).map(|_| rng.uniform() * 1e-3).collect();
        let a = tree_sum_f64(&xs);
        let b = tree_sum_f64(&xs);
        assert_eq!(a.to_bits(), b.to_bits());
        let serial: f64 = xs.iter().sum();
        assert!((a - serial).abs() < 1e-9, "{a} vs {serial}");
    }

    #[test]
    fn block_sums_are_invariant_to_block_aligned_splits() {
        let mut rng = SimRng::seed_from(13);
        // Long enough for several blocks plus a ragged tail.
        let xs: Vec<f64> = (0..3 * F64_BLOCK + 517).map(|_| rng.uniform()).collect();
        let mut whole = Vec::new();
        block_sums_f64(&xs, &mut whole);
        let total = reduce_block_sums(&whole);
        for pieces in [1usize, 2, 3, 7] {
            // Split only at block multiples, as chunked replay does.
            let blocks = xs.len().div_ceil(F64_BLOCK);
            let per = blocks.div_ceil(pieces) * F64_BLOCK;
            let mut sums = Vec::new();
            let mut at = 0;
            while at < xs.len() {
                let end = (at + per).min(xs.len());
                block_sums_f64(&xs[at..end], &mut sums);
                at = end;
            }
            assert_eq!(sums, whole, "pieces={pieces}");
            assert_eq!(
                reduce_block_sums(&sums).to_bits(),
                total.to_bits(),
                "pieces={pieces}"
            );
        }
    }

    #[test]
    fn tree_shape_depends_only_on_length() {
        // Two equal-content slices handed in via different paths must
        // agree; and manual split at the documented point reproduces it.
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.1).collect();
        let split = (xs.len() / 2).next_power_of_two();
        let manual = tree_sum_f64(&xs[..split]) + tree_sum_f64(&xs[split..]);
        assert_eq!(manual.to_bits(), tree_sum_f64(&xs).to_bits());
    }
}
