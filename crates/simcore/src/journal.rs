//! Append-only, checksummed write-ahead journal of completed sweep cells.
//!
//! Long-running ensemble studies evaluate thousands of design cells; a crash
//! an hour in should not restart the run from zero. The journal records each
//! completed cell as an opaque payload keyed by its 128-bit [`memo`]
//! content key, framed with a CRC-32 so a torn tail (process killed mid
//! `write`) or a corrupted record (bit rot, truncated copy) is detected on
//! replay and cleanly truncated rather than poisoning the resumed run.
//!
//! # On-disk format
//!
//! All integers are little-endian.
//!
//! ```text
//! file      := magic record*
//! magic     := b"WCSJRNL1"                          (8 bytes)
//! record    := len:u32 key:u128 digest:u64 crc:u32 payload:[u8; len]
//! crc       := CRC-32/IEEE over len || key || digest || payload
//! ```
//!
//! The reader walks records from the start and stops at the first frame that
//! is short, oversized, or fails its checksum; everything before that point
//! is the *valid prefix* and is returned, everything after is truncated from
//! the file when opened for appending. Appends are flushed record-by-record
//! so at most the in-flight record is lost on a kill.
//!
//! The journal stores payload bytes only; interpreting them (and verifying
//! the semantic `digest`) is the caller's job — see `wcs_core::memo` which
//! journals memoized perf samples and seeds resumed runs from the replay.
//!
//! [`memo`]: crate::memo

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File magic identifying a sweep journal, version 1.
pub const MAGIC: [u8; 8] = *b"WCSJRNL1";

/// Fixed bytes per record frame before the payload: len + key + digest + crc.
const FRAME_HEADER: usize = 4 + 16 + 8 + 4;

/// Upper bound on a single payload; anything larger is treated as corruption
/// (a flipped bit in `len` must not make the reader seek gigabytes ahead).
pub const MAX_PAYLOAD: usize = 1 << 20;

/// One replayed journal record: content key, semantic digest, payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// 128-bit content key of the cell (a finished [`crate::memo::MemoKey`]).
    pub key: u128,
    /// Caller-defined digest of the decoded result (cross-checked on decode).
    pub digest: u64,
    /// Opaque encoded result payload.
    pub payload: Vec<u8>,
}

/// Outcome of replaying a journal file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Number of valid records recovered from the prefix.
    pub records: usize,
    /// Bytes of torn or corrupt tail discarded after the valid prefix.
    pub truncated_bytes: u64,
    /// True when the file ended mid-record or failed a checksum.
    pub was_torn: bool,
}

/// Errors raised by journal open/replay/append.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying filesystem error, with the path it occurred on.
    Io {
        /// Journal path the operation targeted.
        path: PathBuf,
        /// The originating I/O error.
        source: io::Error,
    },
    /// The file exists but does not start with the journal magic — refusing
    /// to truncate or append to something that is not a journal.
    BadMagic {
        /// Path of the non-journal file.
        path: PathBuf,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, source } => {
                write!(f, "journal I/O error on {}: {source}", path.display())
            }
            JournalError::BadMagic { path } => write!(
                f,
                "{} is not a sweep journal (bad magic); refusing to touch it",
                path.display()
            ),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            JournalError::BadMagic { .. } => None,
        }
    }
}

fn io_err(path: &Path, source: io::Error) -> JournalError {
    JournalError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// CRC-32/IEEE (reflected, polynomial 0xEDB88320), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Encode one record into its on-disk frame.
fn encode_frame(key: u128, digest: u64, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&key.to_le_bytes());
    frame.extend_from_slice(&digest.to_le_bytes());
    // CRC covers len || key || digest || payload; splice it in after.
    let mut crc_input = frame.clone();
    crc_input.extend_from_slice(payload);
    frame.extend_from_slice(&crc32(&crc_input).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Parse the longest valid record prefix out of raw journal bytes
/// (excluding the magic). Returns the records and the byte length of the
/// valid region (again excluding the magic).
fn parse_records(buf: &[u8]) -> (Vec<JournalRecord>, usize) {
    let mut records = Vec::new();
    let mut at = 0usize;
    while buf.len() - at >= FRAME_HEADER {
        let len = u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes")) as usize;
        if len > MAX_PAYLOAD || buf.len() - at - FRAME_HEADER < len {
            break; // oversized (corrupt len) or torn mid-payload
        }
        let key = u128::from_le_bytes(buf[at + 4..at + 20].try_into().expect("16 bytes"));
        let digest = u64::from_le_bytes(buf[at + 20..at + 28].try_into().expect("8 bytes"));
        let crc = u32::from_le_bytes(buf[at + 28..at + 32].try_into().expect("4 bytes"));
        let payload = &buf[at + FRAME_HEADER..at + FRAME_HEADER + len];
        let mut crc_input = Vec::with_capacity(28 + len);
        crc_input.extend_from_slice(&buf[at..at + 28]);
        crc_input.extend_from_slice(payload);
        if crc32(&crc_input) != crc {
            break; // checksum failure: corrupt record, stop here
        }
        records.push(JournalRecord {
            key,
            digest,
            payload: payload.to_vec(),
        });
        at += FRAME_HEADER + len;
    }
    (records, at)
}

/// Append handle positioned after the valid prefix of a journal file.
///
/// Each [`append`](JournalWriter::append) writes one whole frame with a
/// single `write_all` and flushes, so a killed process loses at most the
/// record being written — which the next replay detects and truncates.
/// Duplicate keys are skipped (first write wins), matching the
/// first-insert-wins semantics of [`crate::memo::MemoCache`].
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
    seen: crate::table::OpenMap<u128, ()>,
    appended: u64,
}

impl JournalWriter {
    /// Append a record unless `key` was already journaled (either replayed
    /// from the valid prefix or appended earlier in this process).
    /// Returns `true` when the record was written.
    pub fn append(&mut self, key: u128, digest: u64, payload: &[u8]) -> Result<bool, JournalError> {
        if self.seen.get(&key).is_some() {
            return Ok(false);
        }
        debug_assert!(payload.len() <= MAX_PAYLOAD, "journal payload too large");
        let frame = encode_frame(key, digest, payload);
        self.file
            .write_all(&frame)
            .map_err(|e| io_err(&self.path, e))?;
        self.file.flush().map_err(|e| io_err(&self.path, e))?;
        self.seen.insert(key, ());
        self.appended += 1;
        Ok(true)
    }

    /// Number of records appended through this writer (excludes replayed).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Path of the underlying journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Flush and sync file contents to the OS; used by tests and at clean
    /// shutdown. Append already flushes per record.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.file.flush().map_err(|e| io_err(&self.path, e))?;
        self.file.sync_data().map_err(|e| io_err(&self.path, e))
    }
}

/// Replay a journal read-only: return the valid record prefix and a report.
///
/// A missing file replays as empty (zero records); this makes `--resume` on
/// a first run a no-op rather than an error. The file is not modified.
pub fn replay(path: &Path) -> Result<(Vec<JournalRecord>, ReplayReport), JournalError> {
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut buf).map_err(|e| io_err(path, e))?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok((Vec::new(), ReplayReport::default()));
        }
        Err(e) => return Err(io_err(path, e)),
    }
    if buf.len() < MAGIC.len() {
        // Shorter than the magic: treat the whole file as a torn header.
        let report = ReplayReport {
            records: 0,
            truncated_bytes: buf.len() as u64,
            was_torn: !buf.is_empty(),
        };
        return Ok((Vec::new(), report));
    }
    if buf[..MAGIC.len()] != MAGIC {
        return Err(JournalError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    let (records, valid) = parse_records(&buf[MAGIC.len()..]);
    let truncated = (buf.len() - MAGIC.len() - valid) as u64;
    let report = ReplayReport {
        records: records.len(),
        truncated_bytes: truncated,
        was_torn: truncated > 0,
    };
    Ok((records, report))
}

/// Incrementally replay a growing journal from a previously returned
/// offset: parse only the bytes appended since, returning the new
/// records and the offset of the valid prefix end to resume from next
/// time.
///
/// Pass `0` on the first call (the magic is skipped automatically); pass
/// the returned offset afterwards. Offsets are only meaningful if they
/// came from this function (or `0`) for the same file — they always sit
/// on a record boundary. A torn or still-in-flight tail is *not* an
/// error: the records before it are returned and the offset stays at the
/// boundary, so the next poll retries the tail after the writer finishes
/// the frame. A missing file replays as empty at offset `0`.
///
/// This is what supervisor heartbeats use: polling N workers every few
/// milliseconds must not re-read and re-checksum every worker's whole
/// journal each tick — only the appended tail.
pub fn replay_tail(path: &Path, offset: u64) -> Result<(Vec<JournalRecord>, u64), JournalError> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(io_err(path, e)),
    };
    let len = file.metadata().map_err(|e| io_err(path, e))?.len();
    let start = if offset == 0 {
        // First read: verify the magic before trusting any offsets.
        if len < MAGIC.len() as u64 {
            return Ok((Vec::new(), 0));
        }
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic).map_err(|e| io_err(path, e))?;
        if magic != MAGIC {
            return Err(JournalError::BadMagic {
                path: path.to_path_buf(),
            });
        }
        MAGIC.len() as u64
    } else {
        offset
    };
    if len <= start {
        return Ok((Vec::new(), start));
    }
    file.seek(SeekFrom::Start(start))
        .map_err(|e| io_err(path, e))?;
    let mut buf = Vec::with_capacity((len - start) as usize);
    file.read_to_end(&mut buf).map_err(|e| io_err(path, e))?;
    let (records, valid) = parse_records(&buf);
    Ok((records, start + valid as u64))
}

/// Open a journal for resuming: replay the valid prefix, truncate any torn
/// or corrupt tail in place, and return the records plus an append handle
/// positioned at the end of the valid prefix.
///
/// Creates the file (with magic) when it does not exist yet.
pub fn open(
    path: &Path,
) -> Result<(Vec<JournalRecord>, JournalWriter, ReplayReport), JournalError> {
    let (records, report) = replay(path)?;
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)
        .map_err(|e| io_err(path, e))?;
    let len = file.metadata().map_err(|e| io_err(path, e))?.len();
    if len < MAGIC.len() as u64 {
        // Fresh file or torn header: (re)write the magic from scratch.
        // `replay` already rejected any file with a *wrong* magic.
        file.set_len(0).map_err(|e| io_err(path, e))?;
        file.write_all(&MAGIC).map_err(|e| io_err(path, e))?;
    } else {
        let mut valid = MAGIC.len() as u64;
        for r in &records {
            valid += (FRAME_HEADER + r.payload.len()) as u64;
        }
        file.set_len(valid).map_err(|e| io_err(path, e))?;
    }
    file.seek(SeekFrom::End(0)).map_err(|e| io_err(path, e))?;
    file.flush().map_err(|e| io_err(path, e))?;
    let mut seen = crate::table::OpenMap::new();
    for r in &records {
        seen.insert(r.key, ());
    }
    let writer = JournalWriter {
        file,
        path: path.to_path_buf(),
        seen,
        appended: 0,
    };
    Ok((records, writer, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique temp path per test (std-only; no tempfile crate).
    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let pid = std::process::id();
        std::env::temp_dir().join(format!("wcs-journal-{tag}-{pid}-{n}.wal"))
    }

    fn sample_records(n: usize) -> Vec<JournalRecord> {
        (0..n)
            .map(|i| JournalRecord {
                key: ((i as u128) << 64) | (0xABCD + i as u128),
                digest: 0x1234_5678_9ABC_DEF0 ^ i as u64,
                payload: vec![i as u8; 5 + (i * 7) % 40],
            })
            .collect()
    }

    fn write_all(path: &Path, records: &[JournalRecord]) {
        let (_, mut w, _) = open(path).expect("open fresh journal");
        for r in records {
            assert!(w.append(r.key, r.digest, &r.payload).expect("append"));
        }
        w.sync().expect("sync");
    }

    #[test]
    fn crc32_known_vector() {
        // Standard check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_and_idempotent_dedup() {
        let path = temp_path("roundtrip");
        let records = sample_records(7);
        write_all(&path, &records);
        let (read, report) = replay(&path).expect("replay");
        assert_eq!(read, records);
        assert_eq!(
            report,
            ReplayReport {
                records: 7,
                truncated_bytes: 0,
                was_torn: false
            }
        );

        // Re-open: replays the same records, duplicate appends are skipped.
        let (read2, mut w, _) = open(&path).expect("reopen");
        assert_eq!(read2, records);
        assert!(!w
            .append(records[0].key, records[0].digest, &records[0].payload)
            .unwrap());
        assert_eq!(w.appended(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tail_replay_resumes_from_offsets() {
        let path = temp_path("tail");
        let records = sample_records(9);
        // Write the first 4, tail-read, write the rest, tail-read again.
        let (_, mut w, _) = open(&path).expect("open");
        for r in &records[..4] {
            assert!(w.append(r.key, r.digest, &r.payload).unwrap());
        }
        w.sync().unwrap();
        let (head, at) = replay_tail(&path, 0).expect("first tail");
        assert_eq!(head, records[..4]);
        // Nothing appended: no bytes re-read, offset unchanged.
        let (none, at2) = replay_tail(&path, at).expect("idle tail");
        assert!(none.is_empty());
        assert_eq!(at2, at);
        for r in &records[4..] {
            assert!(w.append(r.key, r.digest, &r.payload).unwrap());
        }
        w.sync().unwrap();
        let (tail, end) = replay_tail(&path, at).expect("second tail");
        assert_eq!(tail, records[4..]);
        // Full replay agrees with the incremental reads.
        let (all, _) = replay(&path).expect("full replay");
        assert_eq!(all, records);
        // A torn in-flight frame is retried from the same boundary.
        {
            use std::fs::OpenOptions;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xAA; 7]).unwrap();
        }
        let (torn, still) = replay_tail(&path, end).expect("torn tail");
        assert!(torn.is_empty());
        assert_eq!(still, end);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tail_replay_missing_and_bad_magic() {
        let path = temp_path("tailmissing");
        let (records, at) = replay_tail(&path, 0).expect("missing file");
        assert!(records.is_empty());
        assert_eq!(at, 0);
        std::fs::write(&path, b"bogus bytes, not a journal").unwrap();
        assert!(matches!(
            replay_tail(&path, 0),
            Err(JournalError::BadMagic { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_replays_empty() {
        let path = temp_path("missing");
        let (records, report) = replay(&path).expect("replay missing");
        assert!(records.is_empty());
        assert_eq!(report, ReplayReport::default());
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = temp_path("torn");
        let records = sample_records(4);
        write_all(&path, &records);
        // Simulate a kill mid-write: append half a frame of garbage.
        {
            use std::fs::OpenOptions;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0x55; 13]).unwrap();
        }
        let (read, report) = replay(&path).expect("replay torn");
        assert_eq!(read, records);
        assert!(report.was_torn);
        assert_eq!(report.truncated_bytes, 13);

        // Open truncates the tail and further appends extend the valid log.
        let (read2, mut w, _) = open(&path).expect("open torn");
        assert_eq!(read2, records);
        let extra = JournalRecord {
            key: 999,
            digest: 42,
            payload: vec![9; 9],
        };
        assert!(w.append(extra.key, extra.digest, &extra.payload).unwrap());
        drop(w);
        let (read3, report3) = replay(&path).expect("replay after heal");
        assert_eq!(read3.len(), 5);
        assert_eq!(read3[4], extra);
        assert!(!report3.was_torn);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_record_stops_replay_at_prefix() {
        let path = temp_path("corrupt");
        let records = sample_records(6);
        write_all(&path, &records);
        // Flip one bit inside the 4th record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let mut at = MAGIC.len();
        for r in records.iter().take(3) {
            at += FRAME_HEADER + r.payload.len();
        }
        bytes[at + FRAME_HEADER + 2] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let (read, report) = replay(&path).expect("replay corrupt");
        assert_eq!(read, records[..3]);
        assert!(report.was_torn);
        assert!(report.truncated_bytes > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_journal_file_is_rejected() {
        let path = temp_path("notjournal");
        std::fs::write(&path, b"definitely not a journal").unwrap();
        assert!(matches!(replay(&path), Err(JournalError::BadMagic { .. })));
        assert!(matches!(open(&path), Err(JournalError::BadMagic { .. })));
        // The file must be left untouched.
        assert_eq!(std::fs::read(&path).unwrap(), b"definitely not a journal");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_len_field_is_treated_as_corruption() {
        let path = temp_path("oversize");
        let records = sample_records(2);
        write_all(&path, &records);
        // Corrupt the second record's len field to a huge value.
        let mut bytes = std::fs::read(&path).unwrap();
        let at = MAGIC.len() + FRAME_HEADER + records[0].payload.len();
        bytes[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let (read, report) = replay(&path).expect("replay oversize");
        assert_eq!(read, records[..1]);
        assert!(report.was_torn);
        std::fs::remove_file(&path).ok();
    }
}
