//! Cooperative task deadlines: a monitor thread plus shared cancel flags.
//!
//! A hung or pathologically slow sweep cell must not stall the whole
//! ensemble run. The [`Watchdog`] owns a background monitor thread; each
//! task registers with [`Watchdog::watch`] and receives a [`CancelToken`].
//! When a task's wall-clock runtime exceeds the configured budget the
//! monitor sets the token. Cancellation is *cooperative*: compute kernels
//! poll [`CancelToken::is_cancelled`] at cell boundaries and bail out with a
//! degraded-cell error instead of being killed mid-write — so a deadline
//! never corrupts shared state, it only marks the cell as degraded.
//!
//! Deadlines are wall-clock and therefore not deterministic; runs that rely
//! on bit-identical output use generous budgets (or none) so the watchdog
//! only fires on genuinely stuck cells. The [`deadline_cancels`]
//! counter is exported under the wall metric class for exactly this reason.
//!
//! [`deadline_cancels`]: Watchdog::deadline_cancels

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Shared cancellation flag handed to a task by the watchdog (or created
/// standalone with [`CancelToken::never`] when no deadline applies).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A token that is never set by any watchdog; polling it is a single
    /// relaxed load, so uncancellable paths pay essentially nothing.
    pub fn never() -> Self {
        Self::default()
    }

    /// True once the budget was exceeded (or [`cancel`](Self::cancel) ran).
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Set the flag directly (used by the watchdog and by tests).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }
}

/// One registered task: start time plus its cancel token.
#[derive(Debug)]
struct WatchEntry {
    id: u64,
    started: Instant,
    token: CancelToken,
}

#[derive(Debug)]
struct Shared {
    budget: Duration,
    stop: AtomicBool,
    next_id: AtomicU64,
    cancels: AtomicU64,
    active: Mutex<Vec<WatchEntry>>,
}

/// Recover a possibly poisoned mutex: a panic while holding the lock leaves
/// the entry list intact (all mutations are single push/retain calls), so
/// the data is safe to keep using.
fn lock_active(shared: &Shared) -> std::sync::MutexGuard<'_, Vec<WatchEntry>> {
    shared.active.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Deadline monitor for a pool of cooperative tasks.
///
/// Dropping the watchdog stops and joins the monitor thread. Tokens already
/// handed out keep working (they are plain shared flags); they just stop
/// being cancelled by deadline.
#[derive(Debug)]
pub struct Watchdog {
    shared: Arc<Shared>,
    monitor: Option<thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Create a watchdog whose tasks may run for `budget` wall-clock time.
    /// The monitor polls at `budget / 4`, clamped to [1ms, 250ms], so
    /// cancellation lands within ~25% of the budget.
    pub fn new(budget: Duration) -> Self {
        let poll = (budget / 4).clamp(Duration::from_millis(1), Duration::from_millis(250));
        let shared = Arc::new(Shared {
            budget,
            stop: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            cancels: AtomicU64::new(0),
            active: Mutex::new(Vec::new()),
        });
        let mon = Arc::clone(&shared);
        let monitor = thread::Builder::new()
            .name("wcs-watchdog".into())
            .spawn(move || {
                while !mon.stop.load(Ordering::Relaxed) {
                    thread::sleep(poll);
                    let now = Instant::now();
                    let active = lock_active(&mon);
                    for entry in active.iter() {
                        if now.duration_since(entry.started) > mon.budget
                            && !entry.token.is_cancelled()
                        {
                            entry.token.cancel();
                            mon.cancels.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
            .expect("spawn watchdog monitor thread");
        Watchdog {
            shared,
            monitor: Some(monitor),
        }
    }

    /// Configured per-task budget.
    pub fn budget(&self) -> Duration {
        self.shared.budget
    }

    /// Register the calling task; hold the guard for the task's duration and
    /// poll [`WatchGuard::token`] at convenient boundaries.
    pub fn watch(&self) -> WatchGuard {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let token = CancelToken::default();
        lock_active(&self.shared).push(WatchEntry {
            id,
            started: Instant::now(),
            token: token.clone(),
        });
        WatchGuard {
            shared: Arc::clone(&self.shared),
            id,
            token,
        }
    }

    /// Total tasks cancelled for exceeding the budget since creation.
    pub fn deadline_cancels(&self) -> u64 {
        self.shared.cancels.load(Ordering::Relaxed)
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.monitor.take() {
            let _ = handle.join();
        }
    }
}

/// Registration handle for one watched task; deregisters on drop.
#[derive(Debug)]
pub struct WatchGuard {
    shared: Arc<Shared>,
    id: u64,
    token: CancelToken,
}

impl WatchGuard {
    /// The cancel token the monitor will set if this task overruns.
    pub fn token(&self) -> &CancelToken {
        &self.token
    }
}

impl Drop for WatchGuard {
    fn drop(&mut self) {
        lock_active(&self.shared).retain(|e| e.id != self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_is_never_cancelled() {
        let t = CancelToken::never();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled()); // manual cancel still works
    }

    #[test]
    fn overrunning_task_is_cancelled() {
        let wd = Watchdog::new(Duration::from_millis(5));
        let guard = wd.watch();
        let started = Instant::now();
        while !guard.token().is_cancelled() {
            assert!(
                started.elapsed() < Duration::from_secs(10),
                "watchdog never fired"
            );
            thread::sleep(Duration::from_millis(1));
        }
        assert!(wd.deadline_cancels() >= 1);
    }

    #[test]
    fn fast_task_is_not_cancelled() {
        let wd = Watchdog::new(Duration::from_secs(3600));
        {
            let guard = wd.watch();
            assert!(!guard.token().is_cancelled());
        }
        // Give the monitor a couple of polls; nothing should fire.
        thread::sleep(Duration::from_millis(5));
        assert_eq!(wd.deadline_cancels(), 0);
    }

    #[test]
    fn guard_drop_deregisters() {
        let wd = Watchdog::new(Duration::from_millis(1));
        let g1 = wd.watch();
        drop(g1);
        // A deregistered task can no longer be cancelled by deadline.
        thread::sleep(Duration::from_millis(10));
        // cancels may only come from still-registered tasks; none exist.
        let before = wd.deadline_cancels();
        thread::sleep(Duration::from_millis(5));
        assert_eq!(wd.deadline_cancels(), before);
    }
}
