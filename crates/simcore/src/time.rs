//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant in simulated time, counted in integer nanoseconds
/// from the start of the simulation.
///
/// Using integers (rather than `f64` seconds) keeps event ordering exact and
/// simulation runs bit-reproducible across platforms.
///
/// # Example
/// ```
/// use wcs_simcore::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (lossy above ~2^53 ns).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Saturating subtraction: returns `ZERO` rather than wrapping when
    /// `other` is later than `self`.
    pub fn saturating_sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A span of simulated time in integer nanoseconds.
///
/// # Example
/// ```
/// use wcs_simcore::SimDuration;
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_nanos(), 2_500_000);
/// assert!((d.as_secs_f64() - 0.0025).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimDuration(u64);

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from float seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round().min(u64::MAX as f64) as u64)
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in float seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// True when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_sub`] when that can happen.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_nanos(5_000);
        let d = SimDuration::from_micros(2);
        assert_eq!((t + d).as_nanos(), 7_000);
        assert_eq!(((t + d) - t).as_nanos(), 2_000);
    }

    #[test]
    fn duration_from_float_seconds() {
        assert_eq!(SimDuration::from_secs_f64(1.5e-6).as_nanos(), 1_500);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(20);
        assert_eq!(early.saturating_sub(late), SimDuration::ZERO);
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::ZERO < SimTime::from_nanos(1));
        assert_eq!(format!("{}", SimDuration::from_millis(1)), "0.001000s");
        assert_eq!(format!("{}", SimTime::from_nanos(500)), "0.000001s");
    }

    #[test]
    fn duration_scalar_ops() {
        let d = SimDuration::from_micros(10);
        assert_eq!((d * 3).as_nanos(), 30_000);
        assert_eq!((d / 2).as_nanos(), 5_000);
        assert_eq!((d * 0.5).as_nanos(), 5_000);
    }
}
