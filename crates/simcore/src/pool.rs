//! Deterministic parallel execution of independent simulation tasks.
//!
//! Every study in this workspace fans out over *independent* design
//! points, scenarios, or servers: each task seeds its own [`SimRng`]
//! stream (see [`SimRng::stream`]) and shares no mutable state with its
//! siblings. That independence makes parallelism trivial to get right —
//! as long as the executor never lets scheduling order leak into
//! results. [`ThreadPool::par_map`] guarantees exactly that: results come
//! back in **input order**, each task sees only its own index and input,
//! and therefore the output is bit-identical at any thread count,
//! including one.
//!
//! The pool is std-only (scoped threads, no work-stealing runtime):
//! tasks here are coarse — whole simulator runs taking milliseconds to
//! seconds — so an atomic-counter work queue is both simple and within
//! noise of fancier schedulers.
//!
//! # Example
//! ```
//! use wcs_simcore::pool::ThreadPool;
//! use wcs_simcore::SimRng;
//!
//! let seeds: Vec<u64> = (0..16).collect();
//! let serial = ThreadPool::serial();
//! let parallel = ThreadPool::new(4).unwrap();
//! let f = |i: usize, &seed: &u64| SimRng::stream(seed, i as u64).next_u64();
//! assert_eq!(serial.par_map(&seeds, f), parallel.par_map(&seeds, f));
//! ```

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::error::ConfigError;
use crate::watchdog::{CancelToken, Watchdog};

/// A boxed one-shot job for [`ThreadPool::par_tasks`].
pub type Task<'a, R> = Box<dyn FnOnce() -> R + Send + 'a>;

/// A worker panic caught and isolated to its own cell by one of the
/// `*_isolated` / `*_watched` pool entry points.
///
/// Panics in this workspace's tasks are pure functions of `(index, item)` —
/// tasks share no mutable state — so whether a cell panics is deterministic
/// and thread-count invariant, even though *when* it panics is not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Input-order index of the cell that panicked.
    pub index: usize,
    /// Rendered panic payload (the `panic!` message when it was a string).
    pub message: String,
    /// True when this panic came from the retry attempt — i.e. the cell
    /// failed twice and is being reported as permanently poisoned.
    pub retried: bool,
}

impl fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let attempt = if self.retried {
            "panicked twice"
        } else {
            "panicked"
        };
        write!(f, "task {} {attempt}: {}", self.index, self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Recovery counters aggregated across one isolated pool call.
///
/// `panics_caught` counts every caught unwind (first attempts and retries);
/// `retries` counts retry attempts made. Both are pure functions of the
/// input cells, so they are deterministic across thread counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolRecovery {
    /// Worker panics caught by `catch_unwind` (includes failed retries).
    pub panics_caught: u64,
    /// Retry attempts made after a first-attempt panic.
    pub retries: u64,
}

impl PoolRecovery {
    /// Combine counters from two calls.
    pub fn merge(self, other: PoolRecovery) -> PoolRecovery {
        PoolRecovery {
            panics_caught: self.panics_caught + other.panics_caught,
            retries: self.retries + other.retries,
        }
    }
}

/// Lock a mutex, recovering from poisoning: every slot mutation here is a
/// single `*guard = Some(..)` store, so a panic while holding the lock
/// cannot leave partially-written data behind.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Render a panic payload into a human-readable message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A scoped-thread work pool executing independent tasks with
/// order-preserving results.
///
/// Cheap to construct and to clone (it holds only a thread count);
/// threads are spawned per call and joined before the call returns, so
/// borrowed data flows into tasks freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool with exactly `threads` workers.
    ///
    /// # Errors
    /// Rejects a zero thread count.
    pub fn new(threads: usize) -> Result<Self, ConfigError> {
        if threads == 0 {
            return Err(ConfigError::ZeroCount { param: "threads" });
        }
        Ok(ThreadPool { threads })
    }

    /// A single-threaded pool: every call runs inline on the caller's
    /// thread. The deterministic reference all other thread counts are
    /// measured against.
    pub fn serial() -> Self {
        ThreadPool { threads: 1 }
    }

    /// A pool sized to the machine's available parallelism (1 when the
    /// runtime cannot tell).
    pub fn available() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ThreadPool { threads }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` on the pool, returning results in **input
    /// order**.
    ///
    /// `f` receives each item's index alongside the item so tasks can
    /// derive per-task seeds ([`SimRng::stream`](crate::SimRng::stream))
    /// without sharing a generator. Because tasks only depend on
    /// `(index, item)`, the output is bit-identical for every thread
    /// count.
    ///
    /// # Panics
    /// Propagates the first worker panic after all threads join.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(i, &items[i]);
                    *lock_recover(&slots[i]) = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("worker filled every slot")
            })
            .collect()
    }

    /// Runs heterogeneous one-shot jobs on the pool, returning their
    /// results in input order.
    ///
    /// The fan-out counterpart of [`par_map`](Self::par_map) for stages
    /// whose tasks differ in *kind*, not just input — e.g. a fault
    /// study's scenario runs next to its blade-outage assessments.
    ///
    /// # Panics
    /// Propagates the first worker panic after all threads join.
    pub fn par_tasks<'a, R: Send>(&self, tasks: Vec<Task<'a, R>>) -> Vec<R> {
        let workers = self.threads.min(tasks.len());
        if workers <= 1 {
            return tasks.into_iter().map(|t| t()).collect();
        }
        let n = tasks.len();
        let next = AtomicUsize::new(0);
        let jobs: Vec<Mutex<Option<Task<'a, R>>>> =
            tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let task = lock_recover(&jobs[i]).take().expect("each job taken once");
                    let r = task();
                    *lock_recover(&slots[i]) = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("worker filled every slot")
            })
            .collect()
    }

    /// Like [`par_map`](Self::par_map) but each cell runs under
    /// `catch_unwind`: a panicking cell becomes `Err(TaskPanic)` in its own
    /// slot while every other cell completes normally. A cell that panics
    /// on the first attempt is retried exactly once (tasks are pure, so a
    /// second failure means the cell is deterministically poisoned).
    pub fn par_map_isolated<T, R, F>(
        &self,
        items: &[T],
        f: F,
    ) -> (Vec<Result<R, TaskPanic>>, PoolRecovery)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_map_watched(items, None, |i, item, _token| f(i, item))
    }

    /// [`par_map_isolated`](Self::par_map_isolated) with an optional
    /// deadline [`Watchdog`]: each attempt of each cell is registered with
    /// the watchdog and handed a [`CancelToken`] that the monitor thread
    /// sets once the cell overruns its budget. Cancellation is cooperative
    /// — `f` polls the token at convenient boundaries and returns a
    /// degraded result; the pool never kills a thread.
    ///
    /// With `watchdog: None` every cell receives a never-firing token, so
    /// results stay pure functions of `(index, item)` and bit-identical
    /// across thread counts.
    pub fn par_map_watched<T, R, F>(
        &self,
        items: &[T],
        watchdog: Option<&Watchdog>,
        f: F,
    ) -> (Vec<Result<R, TaskPanic>>, PoolRecovery)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T, &CancelToken) -> R + Sync,
    {
        let panics = AtomicU64::new(0);
        let retries = AtomicU64::new(0);
        let run_cell = |i: usize| -> Result<R, TaskPanic> {
            let attempt = |retried: bool| -> Result<R, TaskPanic> {
                let guard = watchdog.map(|w| w.watch());
                let token = guard
                    .as_ref()
                    .map(|g| g.token().clone())
                    .unwrap_or_default();
                match catch_unwind(AssertUnwindSafe(|| f(i, &items[i], &token))) {
                    Ok(r) => Ok(r),
                    Err(payload) => {
                        panics.fetch_add(1, Ordering::Relaxed);
                        Err(TaskPanic {
                            index: i,
                            message: panic_message(payload.as_ref()),
                            retried,
                        })
                    }
                }
            };
            match attempt(false) {
                Ok(r) => Ok(r),
                Err(_first) => {
                    retries.fetch_add(1, Ordering::Relaxed);
                    attempt(true)
                }
            }
        };
        let workers = self.threads.min(items.len());
        let results: Vec<Result<R, TaskPanic>> = if workers <= 1 {
            (0..items.len()).map(run_cell).collect()
        } else {
            let next = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<Result<R, TaskPanic>>>> =
                items.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        *lock_recover(&slots[i]) = Some(run_cell(i));
                    });
                }
            });
            slots
                .into_iter()
                .map(|m| {
                    m.into_inner()
                        .unwrap_or_else(PoisonError::into_inner)
                        .expect("worker filled every slot")
                })
                .collect()
        };
        let recovery = PoolRecovery {
            panics_caught: panics.load(Ordering::Relaxed),
            retries: retries.load(Ordering::Relaxed),
        };
        (results, recovery)
    }

    /// Like [`par_tasks`](Self::par_tasks) but each job runs under
    /// `catch_unwind`: a panicking job becomes `Err(TaskPanic)` in its own
    /// slot instead of aborting the fan-out. One-shot jobs are consumed by
    /// their attempt, so there is no retry here — retry-once applies to the
    /// re-runnable closures of [`par_map_isolated`](Self::par_map_isolated).
    pub fn par_tasks_isolated<'a, R: Send>(
        &self,
        tasks: Vec<Task<'a, R>>,
    ) -> (Vec<Result<R, TaskPanic>>, PoolRecovery) {
        let panics = AtomicU64::new(0);
        let run_task = |i: usize, task: Task<'a, R>| -> Result<R, TaskPanic> {
            match catch_unwind(AssertUnwindSafe(task)) {
                Ok(r) => Ok(r),
                Err(payload) => {
                    panics.fetch_add(1, Ordering::Relaxed);
                    Err(TaskPanic {
                        index: i,
                        message: panic_message(payload.as_ref()),
                        retried: false,
                    })
                }
            }
        };
        let workers = self.threads.min(tasks.len());
        let results: Vec<Result<R, TaskPanic>> = if workers <= 1 {
            tasks
                .into_iter()
                .enumerate()
                .map(|(i, t)| run_task(i, t))
                .collect()
        } else {
            let n = tasks.len();
            let next = AtomicUsize::new(0);
            let jobs: Vec<Mutex<Option<Task<'a, R>>>> =
                tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
            let slots: Vec<Mutex<Option<Result<R, TaskPanic>>>> =
                (0..n).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let task = lock_recover(&jobs[i]).take().expect("each job taken once");
                        *lock_recover(&slots[i]) = Some(run_task(i, task));
                    });
                }
            });
            slots
                .into_iter()
                .map(|m| {
                    m.into_inner()
                        .unwrap_or_else(PoisonError::into_inner)
                        .expect("worker filled every slot")
                })
                .collect()
        };
        let recovery = PoolRecovery {
            panics_caught: panics.load(Ordering::Relaxed),
            retries: 0,
        };
        (results, recovery)
    }

    /// Maps a fallible `f` over `items`, returning either every result in
    /// input order or the error of the **lowest-indexed** failing item —
    /// the same error a serial loop would have surfaced first, regardless
    /// of which worker finished when.
    ///
    /// # Panics
    /// Propagates the first worker panic after all threads join.
    pub fn try_par_map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
    {
        let mut out = Vec::with_capacity(items.len());
        for r in self.par_map(items, f) {
            out.push(r?);
        }
        Ok(out)
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        Self::available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 3, 8, 64] {
            let pool = ThreadPool::new(threads).unwrap();
            let out = pool.par_map(&items, |i, &x| {
                // Uneven task costs so completion order scrambles.
                let spin = (x * 37) % 101;
                let mut acc = 0u64;
                for k in 0..spin * 50 {
                    acc = acc.wrapping_add(k);
                }
                std::hint::black_box(acc);
                (i as u64, x * 2)
            });
            assert_eq!(out.len(), items.len());
            for (i, (idx, doubled)) in out.iter().enumerate() {
                assert_eq!(*idx, i as u64, "threads={threads}");
                assert_eq!(*doubled, items[i] * 2);
            }
        }
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let seeds: Vec<u64> = (0..40).collect();
        let f = |i: usize, &s: &u64| {
            let mut rng = SimRng::stream(s, i as u64);
            (0..100)
                .map(|_| rng.next_u64())
                .fold(0u64, u64::wrapping_add)
        };
        let reference = ThreadPool::serial().par_map(&seeds, f);
        for threads in [2, 4, 8] {
            let got = ThreadPool::new(threads).unwrap().par_map(&seeds, f);
            assert_eq!(reference, got, "threads={threads}");
        }
    }

    #[test]
    fn par_tasks_orders_heterogeneous_jobs() {
        let pool = ThreadPool::new(4).unwrap();
        let tasks: Vec<Task<'_, u64>> = (0..20u64)
            .map(|i| Box::new(move || i * i) as Task<'_, u64>)
            .collect();
        let out = pool.par_tasks(tasks);
        assert_eq!(out, (0..20u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn try_par_map_reports_first_error_in_input_order() {
        let items: Vec<u64> = (0..64).collect();
        let pool = ThreadPool::new(8).unwrap();
        let r: Result<Vec<u64>, u64> =
            pool.try_par_map(&items, |_, &x| if x % 7 == 3 { Err(x) } else { Ok(x) });
        // Serial would fail at x = 3 first; parallel must agree.
        assert_eq!(r.unwrap_err(), 3);
        let ok: Result<Vec<u64>, u64> = pool.try_par_map(&items, |_, &x| Ok(x + 1));
        assert_eq!(ok.unwrap(), (1..65).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_zero_threads() {
        assert!(matches!(
            ThreadPool::new(0),
            Err(ConfigError::ZeroCount { param: "threads" })
        ));
        assert!(ThreadPool::available().threads() >= 1);
    }

    #[test]
    fn panicking_cell_is_isolated_and_others_complete() {
        let items: Vec<u64> = (0..64).collect();
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads).unwrap();
            let (out, recovery) = pool.par_map_isolated(&items, |_, &x| {
                if x % 13 == 5 {
                    panic!("poisoned cell {x}");
                }
                x * 3
            });
            assert_eq!(out.len(), items.len());
            for (i, r) in out.iter().enumerate() {
                if items[i] % 13 == 5 {
                    let e = r.as_ref().unwrap_err();
                    assert_eq!(e.index, i);
                    assert!(e.retried, "second attempt also panics");
                    assert!(e.message.contains("poisoned cell"));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), items[i] * 3, "threads={threads}");
                }
            }
            // 5 poisoned cells (5, 18, 31, 44, 57): each panics twice.
            assert_eq!(recovery.retries, 5, "threads={threads}");
            assert_eq!(recovery.panics_caught, 10, "threads={threads}");
        }
    }

    #[test]
    fn retry_once_recovers_flaky_cell() {
        use std::sync::atomic::AtomicU64;
        // A cell that panics on its first attempt only; the retry succeeds.
        let attempts = AtomicU64::new(0);
        let items = [7u64];
        let pool = ThreadPool::serial();
        let (out, recovery) = pool.par_map_isolated(&items, |_, &x| {
            if attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient failure");
            }
            x + 1
        });
        assert_eq!(out[0].as_ref().unwrap(), &8);
        assert_eq!(
            recovery,
            PoolRecovery {
                panics_caught: 1,
                retries: 1
            }
        );
    }

    #[test]
    fn par_tasks_isolated_catches_without_retry() {
        let pool = ThreadPool::new(4).unwrap();
        let tasks: Vec<Task<'_, u64>> = (0..12u64)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        panic!("job {i} exploded");
                    }
                    i * i
                }) as Task<'_, u64>
            })
            .collect();
        let (out, recovery) = pool.par_tasks_isolated(tasks);
        assert_eq!(
            recovery,
            PoolRecovery {
                panics_caught: 1,
                retries: 0
            }
        );
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                let e = r.as_ref().unwrap_err();
                assert!(!e.retried);
                assert!(e.message.contains("job 3 exploded"));
            } else {
                assert_eq!(*r.as_ref().unwrap(), (i * i) as u64);
            }
        }
    }

    #[test]
    fn isolated_results_are_thread_count_invariant() {
        let items: Vec<u64> = (0..40).collect();
        let f = |i: usize, &s: &u64| {
            if s % 11 == 7 {
                panic!("cell {i} poisoned");
            }
            SimRng::stream(s, i as u64).next_u64()
        };
        let (reference, ref_rec) = ThreadPool::serial().par_map_isolated(&items, f);
        for threads in [2, 8] {
            let (got, rec) = ThreadPool::new(threads)
                .unwrap()
                .par_map_isolated(&items, f);
            assert_eq!(reference, got, "threads={threads}");
            assert_eq!(ref_rec, rec, "threads={threads}");
        }
    }

    #[test]
    fn watched_token_cancels_cooperatively() {
        use crate::watchdog::Watchdog;
        use std::time::Duration;
        let wd = Watchdog::new(Duration::from_millis(5));
        let pool = ThreadPool::new(2).unwrap();
        let items = [0u64, 1];
        let (out, _) = pool.par_map_watched(&items, Some(&wd), |_, &x, token| {
            if x == 0 {
                return "fast";
            }
            // Slow cell: loop until the watchdog cancels us.
            let start = std::time::Instant::now();
            while !token.is_cancelled() {
                if start.elapsed() > Duration::from_secs(10) {
                    return "watchdog never fired";
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            "degraded"
        });
        assert_eq!(out[0].as_ref().unwrap(), &"fast");
        assert_eq!(out[1].as_ref().unwrap(), &"degraded");
        assert!(wd.deadline_cancels() >= 1);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let pool = ThreadPool::new(8).unwrap();
        let out: Vec<u64> = pool.par_map(&[] as &[u64], |_, &x| x);
        assert!(out.is_empty());
        let out = pool.par_tasks(Vec::<Task<'_, u64>>::new());
        assert!(out.is_empty());
    }
}
