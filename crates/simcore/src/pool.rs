//! Deterministic parallel execution of independent simulation tasks.
//!
//! Every study in this workspace fans out over *independent* design
//! points, scenarios, or servers: each task seeds its own [`SimRng`]
//! stream (see [`SimRng::stream`]) and shares no mutable state with its
//! siblings. That independence makes parallelism trivial to get right —
//! as long as the executor never lets scheduling order leak into
//! results. [`ThreadPool::par_map`] guarantees exactly that: results come
//! back in **input order**, each task sees only its own index and input,
//! and therefore the output is bit-identical at any thread count,
//! including one.
//!
//! The pool is std-only (scoped threads, no work-stealing runtime):
//! tasks here are coarse — whole simulator runs taking milliseconds to
//! seconds — so an atomic-counter work queue is both simple and within
//! noise of fancier schedulers.
//!
//! # Example
//! ```
//! use wcs_simcore::pool::ThreadPool;
//! use wcs_simcore::SimRng;
//!
//! let seeds: Vec<u64> = (0..16).collect();
//! let serial = ThreadPool::serial();
//! let parallel = ThreadPool::new(4).unwrap();
//! let f = |i: usize, &seed: &u64| SimRng::stream(seed, i as u64).next_u64();
//! assert_eq!(serial.par_map(&seeds, f), parallel.par_map(&seeds, f));
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::error::ConfigError;

/// A boxed one-shot job for [`ThreadPool::par_tasks`].
pub type Task<'a, R> = Box<dyn FnOnce() -> R + Send + 'a>;

/// A scoped-thread work pool executing independent tasks with
/// order-preserving results.
///
/// Cheap to construct and to clone (it holds only a thread count);
/// threads are spawned per call and joined before the call returns, so
/// borrowed data flows into tasks freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool with exactly `threads` workers.
    ///
    /// # Errors
    /// Rejects a zero thread count.
    pub fn new(threads: usize) -> Result<Self, ConfigError> {
        if threads == 0 {
            return Err(ConfigError::ZeroCount { param: "threads" });
        }
        Ok(ThreadPool { threads })
    }

    /// A single-threaded pool: every call runs inline on the caller's
    /// thread. The deterministic reference all other thread counts are
    /// measured against.
    pub fn serial() -> Self {
        ThreadPool { threads: 1 }
    }

    /// A pool sized to the machine's available parallelism (1 when the
    /// runtime cannot tell).
    pub fn available() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ThreadPool { threads }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` on the pool, returning results in **input
    /// order**.
    ///
    /// `f` receives each item's index alongside the item so tasks can
    /// derive per-task seeds ([`SimRng::stream`](crate::SimRng::stream))
    /// without sharing a generator. Because tasks only depend on
    /// `(index, item)`, the output is bit-identical for every thread
    /// count.
    ///
    /// # Panics
    /// Propagates the first worker panic after all threads join.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(i, &items[i]);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker filled every slot")
            })
            .collect()
    }

    /// Runs heterogeneous one-shot jobs on the pool, returning their
    /// results in input order.
    ///
    /// The fan-out counterpart of [`par_map`](Self::par_map) for stages
    /// whose tasks differ in *kind*, not just input — e.g. a fault
    /// study's scenario runs next to its blade-outage assessments.
    ///
    /// # Panics
    /// Propagates the first worker panic after all threads join.
    pub fn par_tasks<'a, R: Send>(&self, tasks: Vec<Task<'a, R>>) -> Vec<R> {
        let workers = self.threads.min(tasks.len());
        if workers <= 1 {
            return tasks.into_iter().map(|t| t()).collect();
        }
        let n = tasks.len();
        let next = AtomicUsize::new(0);
        let jobs: Vec<Mutex<Option<Task<'a, R>>>> =
            tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let task = jobs[i]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("each job taken once");
                    let r = task();
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker filled every slot")
            })
            .collect()
    }

    /// Maps a fallible `f` over `items`, returning either every result in
    /// input order or the error of the **lowest-indexed** failing item —
    /// the same error a serial loop would have surfaced first, regardless
    /// of which worker finished when.
    ///
    /// # Panics
    /// Propagates the first worker panic after all threads join.
    pub fn try_par_map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
    {
        let mut out = Vec::with_capacity(items.len());
        for r in self.par_map(items, f) {
            out.push(r?);
        }
        Ok(out)
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        Self::available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 3, 8, 64] {
            let pool = ThreadPool::new(threads).unwrap();
            let out = pool.par_map(&items, |i, &x| {
                // Uneven task costs so completion order scrambles.
                let spin = (x * 37) % 101;
                let mut acc = 0u64;
                for k in 0..spin * 50 {
                    acc = acc.wrapping_add(k);
                }
                std::hint::black_box(acc);
                (i as u64, x * 2)
            });
            assert_eq!(out.len(), items.len());
            for (i, (idx, doubled)) in out.iter().enumerate() {
                assert_eq!(*idx, i as u64, "threads={threads}");
                assert_eq!(*doubled, items[i] * 2);
            }
        }
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let seeds: Vec<u64> = (0..40).collect();
        let f = |i: usize, &s: &u64| {
            let mut rng = SimRng::stream(s, i as u64);
            (0..100)
                .map(|_| rng.next_u64())
                .fold(0u64, u64::wrapping_add)
        };
        let reference = ThreadPool::serial().par_map(&seeds, f);
        for threads in [2, 4, 8] {
            let got = ThreadPool::new(threads).unwrap().par_map(&seeds, f);
            assert_eq!(reference, got, "threads={threads}");
        }
    }

    #[test]
    fn par_tasks_orders_heterogeneous_jobs() {
        let pool = ThreadPool::new(4).unwrap();
        let tasks: Vec<Task<'_, u64>> = (0..20u64)
            .map(|i| Box::new(move || i * i) as Task<'_, u64>)
            .collect();
        let out = pool.par_tasks(tasks);
        assert_eq!(out, (0..20u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn try_par_map_reports_first_error_in_input_order() {
        let items: Vec<u64> = (0..64).collect();
        let pool = ThreadPool::new(8).unwrap();
        let r: Result<Vec<u64>, u64> =
            pool.try_par_map(&items, |_, &x| if x % 7 == 3 { Err(x) } else { Ok(x) });
        // Serial would fail at x = 3 first; parallel must agree.
        assert_eq!(r.unwrap_err(), 3);
        let ok: Result<Vec<u64>, u64> = pool.try_par_map(&items, |_, &x| Ok(x + 1));
        assert_eq!(ok.unwrap(), (1..65).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_zero_threads() {
        assert!(matches!(
            ThreadPool::new(0),
            Err(ConfigError::ZeroCount { param: "threads" })
        ));
        assert!(ThreadPool::available().threads() >= 1);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let pool = ThreadPool::new(8).unwrap();
        let out: Vec<u64> = pool.par_map(&[] as &[u64], |_, &x| x);
        assert!(out.is_empty());
        let out = pool.par_tasks(Vec::<Task<'_, u64>>::new());
        assert!(out.is_empty());
    }
}
