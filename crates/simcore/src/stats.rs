//! Online statistics and latency histograms.
//!
//! The QoS definitions in the paper are percentile bounds ("more than 95%
//! of queries under 0.5 s"), so the central tool here is a log-bucketed
//! [`Histogram`] with percentile queries. [`OnlineStats`] provides
//! numerically stable streaming mean/variance, and [`harmonic_mean`]
//! implements the cross-benchmark aggregation the paper uses for its
//! "HMean" rows.

use crate::SimDuration;

/// Streaming mean / variance / extrema (Welford's algorithm).
///
/// # Example
/// ```
/// use wcs_simcore::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] { s.record(x); }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation. Non-finite values are ignored.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A log-bucketed histogram of non-negative values with percentile queries.
///
/// Buckets grow geometrically, giving ~2% relative resolution across twelve
/// decades — plenty for latencies from nanoseconds to minutes.
///
/// # Example
/// ```
/// use wcs_simcore::stats::Histogram;
/// let mut h = Histogram::new();
/// for i in 1..=100 { h.record(i as f64); }
/// let p50 = h.percentile(50.0).expect("non-empty");
/// assert!((45.0..=56.0).contains(&p50));
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    zero_count: u64,
    stats: OnlineStats,
}

/// A value pre-classified by [`Histogram::prepare`] so repeated
/// recording skips the bucket computation. `bucket` is the bucket
/// index, `NBUCKETS` for the zero bin, or `usize::MAX` for ignored
/// (negative / non-finite) values.
#[derive(Debug, Clone, Copy)]
pub struct PreparedSample {
    x: f64,
    bucket: usize,
}

/// Ratio between consecutive bucket upper bounds (~2% resolution).
const GROWTH: f64 = 1.02;
/// Lower edge of the first bucket. Values below land in bucket 0.
const FLOOR: f64 = 1e-9;
/// Number of geometric buckets (covers up to ~FLOOR * GROWTH^N ≈ 10^3 s
/// when N = 1400).
const NBUCKETS: usize = 1400;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; NBUCKETS],
            total: 0,
            zero_count: 0,
            stats: OnlineStats::new(),
        }
    }

    fn bucket_of(x: f64) -> usize {
        if x <= FLOOR {
            return 0;
        }
        let b = ((x / FLOOR).ln() / GROWTH.ln()).floor() as usize;
        b.min(NBUCKETS - 1)
    }

    fn bucket_upper(b: usize) -> f64 {
        FLOOR * GROWTH.powi(b as i32 + 1)
    }

    /// Records one value. Negative and non-finite values are ignored;
    /// zeros are counted separately and report as exactly zero.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() || x < 0.0 {
            return;
        }
        if x == 0.0 {
            self.zero_count += 1;
        } else {
            self.counts[Self::bucket_of(x)] += 1;
        }
        self.total += 1;
        self.stats.record(x);
    }

    /// Records a duration in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Pre-classifies `x` for repeated recording via
    /// [`record_prepared`](Self::record_prepared).
    ///
    /// Replay kernels record the same few distinct service times
    /// millions of times; preparing each distinct value once hoists the
    /// bucket logarithm out of the per-request loop.
    pub fn prepare(x: f64) -> PreparedSample {
        if !x.is_finite() || x < 0.0 {
            return PreparedSample {
                x,
                bucket: usize::MAX,
            };
        }
        let bucket = if x == 0.0 {
            NBUCKETS // sentinel: zero bin
        } else {
            Self::bucket_of(x)
        };
        PreparedSample { x, bucket }
    }

    /// Records a pre-classified value — bit-identical in every counter
    /// and statistic to calling [`record`](Self::record) with the same
    /// value.
    pub fn record_prepared(&mut self, p: PreparedSample) {
        if p.bucket == usize::MAX {
            return;
        }
        if p.bucket == NBUCKETS {
            self.zero_count += 1;
        } else {
            self.counts[p.bucket] += 1;
        }
        self.total += 1;
        self.stats.record(p.x);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Arithmetic mean of recorded values.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Largest recorded value.
    pub fn max(&self) -> Option<f64> {
        self.stats.max()
    }

    /// The value at percentile `p` (0–100), or `None` when empty.
    ///
    /// The answer is the upper edge of the bucket containing the rank, so
    /// it overestimates by at most one bucket width (~2%), never
    /// underestimates — the conservative direction for QoS checks.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        if self.total == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        if rank <= self.zero_count {
            return Some(0.0);
        }
        let mut seen = self.zero_count;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_upper(b));
            }
        }
        self.stats.max()
    }

    /// Fraction of recorded values that are `<= bound` (bucket-granular,
    /// biased toward reporting violations — never hides one).
    pub fn fraction_at_or_below(&self, bound: f64) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        let limit = Self::bucket_of(bound);
        let mut seen = self.zero_count;
        for (b, &c) in self.counts.iter().enumerate() {
            if b >= limit {
                break;
            }
            seen += c;
        }
        seen as f64 / self.total as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.zero_count += other.zero_count;
        self.stats.merge(&other.stats);
    }
}

/// Harmonic mean of a set of positive values.
///
/// The paper aggregates cross-benchmark performance as "the harmonic mean
/// of the throughput and reciprocal of execution times"; this is that
/// aggregator. Returns `None` if the slice is empty or any value is
/// non-positive or non-finite.
///
/// # Example
/// ```
/// use wcs_simcore::stats::harmonic_mean;
/// let h = harmonic_mean(&[1.0, 4.0, 4.0]).expect("positive inputs");
/// assert!((h - 2.0).abs() < 1e-12);
/// ```
pub fn harmonic_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut acc = 0.0;
    for &v in values {
        if !v.is_finite() || v <= 0.0 {
            return None;
        }
        acc += 1.0 / v;
    }
    Some(values.len() as f64 / acc)
}

/// Geometric mean of a set of positive values; used for sanity
/// cross-checks against the harmonic mean in reports.
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut acc = 0.0;
    for &v in values {
        if !v.is_finite() || v <= 0.0 {
            return None;
        }
        acc += v.ln();
    }
    Some((acc / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_mean_var() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_ignores_non_finite() {
        let mut s = OnlineStats::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn online_stats_merge_matches_combined() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin().abs() + 0.1).collect();
        let mut all = OnlineStats::new();
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for (i, &x) in xs.iter().enumerate() {
            all.record(x);
            if i % 2 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_percentiles_bracket_truth() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-3); // 1ms .. 1s
        }
        let p95 = h.percentile(95.0).unwrap();
        assert!(
            (0.94..=0.99).contains(&p95),
            "p95 {p95} should be near 0.95"
        );
        let p0 = h.percentile(0.0).unwrap();
        assert!(p0 <= 0.0011);
        let p100 = h.percentile(100.0).unwrap();
        assert!(p100 >= 1.0);
    }

    #[test]
    fn histogram_zeroes_and_empty() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(50.0), None);
        for _ in 0..10 {
            h.record(0.0);
        }
        h.record(1.0);
        assert_eq!(h.percentile(50.0), Some(0.0));
        assert!(h.percentile(99.9).unwrap() >= 1.0);
    }

    #[test]
    fn histogram_fraction_at_or_below() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.record(i as f64);
        }
        let f = h.fraction_at_or_below(50.0);
        assert!((0.45..=0.52).contains(&f), "fraction {f}");
        assert_eq!(Histogram::new().fraction_at_or_below(1.0), 1.0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 1..=50 {
            a.record(i as f64);
        }
        for i in 51..=100 {
            b.record(i as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        let p50 = a.percentile(50.0).unwrap();
        assert!((45.0..=56.0).contains(&p50));
    }

    #[test]
    fn histogram_ignores_garbage() {
        let mut h = Histogram::new();
        h.record(-1.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn hmean_known_value() {
        assert!(harmonic_mean(&[]).is_none());
        assert!(harmonic_mean(&[1.0, 0.0]).is_none());
        assert!(harmonic_mean(&[1.0, -2.0]).is_none());
        let h = harmonic_mean(&[40.0, 60.0]).unwrap();
        assert!((h - 48.0).abs() < 1e-12);
    }

    #[test]
    fn gmean_known_value() {
        let g = geometric_mean(&[1.0, 100.0]).unwrap();
        assert!((g - 10.0).abs() < 1e-9);
        assert!(geometric_mean(&[]).is_none());
    }

    #[test]
    fn hmean_le_gmean_le_amean() {
        let vals = [3.0, 7.0, 11.0, 2.0];
        let h = harmonic_mean(&vals).unwrap();
        let g = geometric_mean(&vals).unwrap();
        let a = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(h <= g && g <= a);
    }

    #[test]
    fn prepared_recording_is_bit_identical_to_record() {
        let values = [0.0, 1e-12, 5e-3, 0.028, 1.5, -2.0, f64::NAN, 700.0];
        let mut plain = Histogram::new();
        let mut prepped = Histogram::new();
        for &v in &values {
            let p = Histogram::prepare(v);
            for _ in 0..3 {
                plain.record(v);
                prepped.record_prepared(p);
            }
        }
        assert_eq!(plain.count(), prepped.count());
        assert_eq!(plain.mean().to_bits(), prepped.mean().to_bits());
        assert_eq!(plain.max(), prepped.max());
        for q in [1.0, 25.0, 50.0, 99.0] {
            assert_eq!(plain.percentile(q), prepped.percentile(q), "p{q}");
        }
    }
}
