//! Deterministic random-number generation.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::SimDuration;

/// A seedable, deterministic random-number generator for simulations.
///
/// Thin wrapper around a fixed algorithm (`StdRng`) so every simulator in
/// the workspace draws from the same, reproducible stream for a given seed.
/// Prefer [`SimRng::fork`] to derive independent streams for sub-components
/// instead of sharing one generator across them — forked streams keep
/// results stable when one component changes how many numbers it draws.
///
/// # Example
/// ```
/// use wcs_simcore::SimRng;
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Builds the generator for substream `stream` of base seed `seed`
    /// without a parent generator — the stream-splitting primitive for
    /// parallel tasks.
    ///
    /// Unlike [`fork`](SimRng::fork), which advances the parent (and so
    /// depends on *when* it is called), `stream` is a pure function of
    /// `(seed, stream)`: task `i` of a parallel fan-out draws exactly the
    /// same numbers no matter which thread runs it, in what order, or at
    /// what thread count. Distinct stream labels yield statistically
    /// independent generators (SplitMix64 finalizer over the mixed pair).
    ///
    /// # Example
    /// ```
    /// use wcs_simcore::SimRng;
    /// let mut a = SimRng::stream(7, 3);
    /// let mut b = SimRng::stream(7, 3);
    /// assert_eq!(a.next_u64(), b.next_u64());
    /// assert_ne!(SimRng::stream(7, 4).next_u64(), SimRng::stream(7, 3).next_u64());
    /// ```
    pub fn stream(seed: u64, stream: u64) -> SimRng {
        // SplitMix64 finalizer over the golden-ratio-mixed pair: cheap,
        // well-dispersed, and stable across platforms.
        let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::seed_from(z ^ (z >> 31))
    }

    /// Derives an independent child stream labelled by `stream`.
    ///
    /// Children with distinct labels are statistically independent of each
    /// other and of the parent's future output.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        // Mix the label into fresh state drawn from the parent.
        let base = self.inner.gen::<u64>();
        SimRng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// A uniform float in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform float in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
        lo + (hi - lo) * self.uniform()
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.inner.gen_range(0..n)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// An exponentially distributed duration with the given mean.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        let u = 1.0 - self.uniform(); // in (0, 1]
        SimDuration::from_secs_f64(-mean.as_secs_f64() * u.ln())
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_reproducible_and_distinct() {
        let mut parent1 = SimRng::seed_from(9);
        let mut parent2 = SimRng::seed_from(9);
        let mut c1 = parent1.fork(5);
        let mut c2 = parent2.fork(5);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut parent3 = SimRng::seed_from(9);
        let mut other = parent3.fork(6);
        let mut c3 = SimRng::seed_from(9).fork(5);
        assert_ne!(other.next_u64(), c3.next_u64());
    }

    #[test]
    fn uniform_in_bounds() {
        let mut rng = SimRng::seed_from(4);
        for _ in 0..1000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
            let r = rng.uniform_range(3.0, 5.0);
            assert!((3.0..5.0).contains(&r));
            let i = rng.index(7);
            assert!(i < 7);
        }
    }

    #[test]
    fn exp_duration_mean_is_close() {
        let mut rng = SimRng::seed_from(11);
        let mean = SimDuration::from_micros(100);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exp_duration(mean).as_secs_f64()).sum();
        let observed = total / n as f64;
        assert!((observed - 1e-4).abs() / 1e-4 < 0.05, "mean {observed}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(2);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-3.0));
        assert!(rng.chance(7.0));
    }
}
