//! Deterministic future-event list.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A pending event: payload plus firing time plus insertion sequence.
struct Scheduled<E> {
    when: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.when == other.when && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event (and among
        // ties, the earliest-scheduled) pops first.
        other
            .when
            .cmp(&self.when)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list: the core of every discrete-event simulator in this
/// workspace.
///
/// Events pop in nondecreasing time order. Events scheduled for the same
/// instant pop in the order they were scheduled (FIFO), which keeps
/// simulations deterministic regardless of heap internals.
///
/// # Example
/// ```
/// use wcs_simcore::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "late");
/// q.schedule(SimTime::from_nanos(10), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The instant of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at `when`.
    ///
    /// # Panics
    /// Panics if `when` is before the current clock: scheduling into the
    /// past is always a simulator bug.
    pub fn schedule(&mut self, when: SimTime, payload: E) {
        assert!(
            when >= self.now,
            "scheduled event at {when} before current time {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { when, seq, payload });
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// firing time. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| {
            debug_assert!(s.when >= self.now);
            self.now = s.when;
            (s.when, s.payload)
        })
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.when)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events, leaving the clock where it is.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[50u64, 10, 30, 20, 40] {
            q.schedule(SimTime::from_nanos(t), t);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(5), ());
        q.schedule(SimTime::from_nanos(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(5));
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(9));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(3), 1);
        q.schedule(SimTime::from_nanos(1), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(1)));
        q.clear();
        assert!(q.is_empty());
    }
}
