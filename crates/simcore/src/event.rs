//! Deterministic future-event list.

use std::collections::VecDeque;

use crate::error::ConfigError;
use crate::SimTime;

/// A pending event: payload plus firing time plus insertion sequence.
struct Scheduled<E> {
    when: SimTime,
    seq: u64,
    payload: E,
}

impl<E> Scheduled<E> {
    /// Events order by `(when, seq)`: nondecreasing time, FIFO among
    /// ties. Smaller keys pop first.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.when, self.seq)
    }
}

/// A future-event list: the core of every discrete-event simulator in this
/// workspace.
///
/// Events pop in nondecreasing time order. Events scheduled for the same
/// instant pop in the order they were scheduled (FIFO), which keeps
/// simulations deterministic regardless of heap internals.
///
/// Internally this is an indexed 4-ary min-heap rather than
/// `std::collections::BinaryHeap`: the shallower tree roughly halves the
/// comparisons per pop on simulator-sized queues, and the flat `Vec`
/// layout keeps sift operations cache-friendly. Two hot-path
/// optimizations matter for the server engines:
///
/// * [`with_capacity`](EventQueue::with_capacity) pre-sizes the arena so
///   steady-state runs never reallocate, and
/// * a FIFO side buffer holding events for a single epoch `imm_time`
///   keeps the heap out of the hot path entirely. An empty buffer adopts
///   the next scheduled event's timestamp as its epoch, and while it is
///   non-empty every schedule at exactly `imm_time` appends to it.
///   Ordering is unaffected: a heap entry at `imm_time` was necessarily
///   scheduled before every current buffer entry (while the buffer is
///   non-empty, same-epoch events are routed to the buffer, never the
///   heap), so the pop path drains the heap's `imm_time` entries before
///   touching the buffer. Two real scheduling patterns ride this buffer
///   with zero heap comparisons, counted by the `fast_path` statistic:
///   runs of events landing on *one shared instant* (identical batch
///   tasks, fixed retry timeouts), and the *pure event chain* — pop one
///   event, schedule its successor, repeat — where the heap stays empty
///   and the queue degenerates to a deque (every single-client
///   feasibility probe and every drain tail runs in this mode).
///
/// # Example
/// ```
/// use wcs_simcore::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "late");
/// q.schedule(SimTime::from_nanos(10), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// 4-ary min-heap on `(when, seq)`.
    heap: Vec<Scheduled<E>>,
    /// FIFO of events all firing at the shared epoch `imm_time`. Every
    /// entry was sequenced after every heap entry with `when ==
    /// imm_time`, so draining the heap's `imm_time` entries first
    /// preserves global FIFO order.
    immediate: VecDeque<E>,
    /// The epoch of the `immediate` buffer; meaningful only while the
    /// buffer is non-empty. Always `>= now` then (the pop path never
    /// advances the clock past a pending buffer).
    imm_time: SimTime,
    next_seq: u64,
    now: SimTime,
    /// Schedules that took an O(1) buffer path with no heap comparison:
    /// same-epoch appends, plus adoptions while the heap was empty.
    fast_path: u64,
    /// Largest pending-event count ever reached.
    max_depth: u64,
}

/// Occupancy counters of an [`EventQueue`], exported to the
/// observability layer after a run. Derived purely from the simulated
/// event stream, so the values are bit-identical for identical runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueObs {
    /// Events scheduled over the queue's lifetime.
    pub scheduled: u64,
    /// Schedules that bypassed the heap through the epoch buffer with
    /// zero comparisons: same-instant appends at the buffer's epoch, and
    /// epoch adoptions while the heap was empty (the pure pop-schedule
    /// chain of a single-client probe or a drain tail).
    pub fast_path: u64,
    /// High-water mark of pending events.
    pub max_depth: u64,
}

impl QueueObs {
    /// Component-wise accumulation (sums, max for the high-water mark) —
    /// commutative and associative, like every obs merge.
    #[must_use]
    pub fn merged(&self, other: &QueueObs) -> QueueObs {
        QueueObs {
            scheduled: self.scheduled + other.scheduled,
            fast_path: self.fast_path + other.fast_path,
            max_depth: self.max_depth.max(other.max_depth),
        }
    }

    /// Records this queue's counters into `registry` under the standard
    /// `queue.*` names.
    pub fn export(&self, registry: &crate::obs::Registry) {
        registry.counter("queue.scheduled").add(self.scheduled);
        registry.counter("queue.fast_path").add(self.fast_path);
        registry
            .max_gauge("queue.max_depth")
            .observe(self.max_depth);
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

const ARITY: usize = 4;

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            immediate: VecDeque::new(),
            imm_time: SimTime::ZERO,
            next_seq: 0,
            now: SimTime::ZERO,
            fast_path: 0,
            max_depth: 0,
        }
    }

    /// Creates an empty queue pre-sized for `capacity` pending events, so
    /// a steady-state simulation never reallocates the event arena.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(capacity),
            immediate: VecDeque::new(),
            imm_time: SimTime::ZERO,
            next_seq: 0,
            now: SimTime::ZERO,
            fast_path: 0,
            max_depth: 0,
        }
    }

    /// The instant of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at `when`, rejecting events in the
    /// past.
    ///
    /// # Errors
    /// Returns [`ConfigError::PastEvent`] when `when` is before the
    /// current clock — scheduling into the past is always a simulator
    /// bug, but library callers driving a queue from external input can
    /// surface it gracefully instead of panicking.
    pub fn try_schedule(&mut self, when: SimTime, payload: E) -> Result<(), ConfigError> {
        if when < self.now {
            return Err(ConfigError::PastEvent {
                when_ns: when.as_nanos(),
                now_ns: self.now.as_nanos(),
            });
        }
        self.next_seq += 1;
        if self.immediate.is_empty() {
            // An empty buffer adopts this event's timestamp as the new
            // epoch: an O(1) append with no sift. With the heap also
            // empty this is the pure event-chain mode — the whole
            // schedule/pop cycle runs on the deque without a single
            // comparison, so it counts as a fast-path schedule.
            self.imm_time = when;
            self.immediate.push_back(payload);
            if self.heap.is_empty() {
                self.fast_path += 1;
            }
        } else if when == self.imm_time {
            // Fast path: fires at the buffer's epoch, after everything
            // already pending for that instant. O(1) instead of a sift.
            self.immediate.push_back(payload);
            self.fast_path += 1;
        } else {
            let seq = self.next_seq;
            self.heap.push(Scheduled { when, seq, payload });
            self.sift_up(self.heap.len() - 1);
        }
        let depth = (self.heap.len() + self.immediate.len()) as u64;
        if depth > self.max_depth {
            self.max_depth = depth;
        }
        Ok(())
    }

    /// Occupancy counters accumulated since construction; a pure
    /// function of the simulated event stream.
    pub fn obs_stats(&self) -> QueueObs {
        QueueObs {
            scheduled: self.next_seq,
            fast_path: self.fast_path,
            max_depth: self.max_depth,
        }
    }

    /// Schedules `payload` to fire at `when`.
    ///
    /// # Panics
    /// Panics if `when` is before the current clock: scheduling into the
    /// past is always a simulator bug. Use
    /// [`try_schedule`](Self::try_schedule) to handle it as a
    /// [`ConfigError`] instead.
    pub fn schedule(&mut self, when: SimTime, payload: E) {
        if let Err(e) = self.try_schedule(when, payload) {
            panic!("{e}");
        }
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// firing time. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // Heap entries at `when == imm_time` predate everything in the
        // immediate buffer (while the buffer is non-empty, same-epoch
        // schedules are routed to the buffer), so they pop first; heap
        // entries at earlier times pop first by time order.
        if !self.immediate.is_empty() && self.heap.first().is_none_or(|s| s.when > self.imm_time) {
            let payload = self.immediate.pop_front().expect("checked non-empty");
            self.now = self.imm_time;
            return Some((self.now, payload));
        }
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let s = self.heap.pop().expect("checked non-empty");
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        debug_assert!(s.when >= self.now);
        self.now = s.when;
        Some((s.when, s.payload))
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        let heap_min = self.heap.first().map(|s| s.when);
        if self.immediate.is_empty() {
            return heap_min;
        }
        // A heap entry may fire before the buffer's epoch; the earliest
        // pending time is the minimum of the two.
        Some(match heap_min {
            Some(h) if h < self.imm_time => h,
            _ => self.imm_time,
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + self.immediate.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.immediate.is_empty()
    }

    /// Drops all pending events, leaving the clock where it is.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.immediate.clear();
    }

    /// Moves the entry at `i` toward the root until its parent is no
    /// larger.
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.heap[parent].key() <= self.heap[i].key() {
                break;
            }
            self.heap.swap(i, parent);
            i = parent;
        }
    }

    /// Moves the entry at `i` toward the leaves until no child is
    /// smaller.
    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        loop {
            let first_child = i * ARITY + 1;
            if first_child >= len {
                break;
            }
            let mut best = first_child;
            let last_child = (first_child + ARITY).min(len);
            for c in (first_child + 1)..last_child {
                if self.heap[c].key() < self.heap[best].key() {
                    best = c;
                }
            }
            if self.heap[i].key() <= self.heap[best].key() {
                break;
            }
            self.heap.swap(i, best);
            i = best;
        }
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[50u64, 10, 30, 20, 40] {
            q.schedule(SimTime::from_nanos(t), t);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(5), ());
        q.schedule(SimTime::from_nanos(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(5));
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(9));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn try_schedule_reports_past_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 1);
        q.pop();
        let err = q.try_schedule(SimTime::from_nanos(5), 2).unwrap_err();
        assert!(matches!(
            err,
            ConfigError::PastEvent {
                when_ns: 5,
                now_ns: 10
            }
        ));
        // The failed schedule left the queue untouched.
        assert!(q.is_empty());
        assert!(q.try_schedule(SimTime::from_nanos(10), 3).is_ok());
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), 3)));
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(3), 1);
        q.schedule(SimTime::from_nanos(1), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(1)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn with_capacity_behaves_identically() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::with_capacity(64);
        for &t in &[9u64, 2, 2, 7, 4, 4, 4, 1] {
            a.schedule(SimTime::from_nanos(t), t);
            b.schedule(SimTime::from_nanos(t), t);
        }
        loop {
            let (x, y) = (a.pop(), b.pop());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn same_instant_fast_path_preserves_fifo() {
        // Mix buffered and heap entries at one instant: earlier-scheduled
        // must still pop first, wherever each entry landed internally.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "a"); // starts the epoch buffer
        q.schedule(SimTime::from_nanos(10), "b"); // same epoch: O(1) append
        q.schedule(SimTime::from_nanos(20), "later"); // different time: heap
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
        q.schedule(SimTime::from_nanos(10), "c");
        q.schedule(SimTime::from_nanos(10), "d");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "c")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "d")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "later")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fast_path_fires_on_future_time_ties() {
        // Regression: the pre-epoch fast path required `when == now`
        // exactly, which no engine ever does (every stage has positive
        // service time), so the counter sat at zero. A batch of events
        // landing on one *future* timestamp must now take the O(1) path.
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(1_000);
        for i in 0..64 {
            q.schedule(t, i);
        }
        assert!(
            q.obs_stats().fast_path > 0,
            "same-epoch schedules must take the fast path"
        );
        // The heap-empty adoption counts, and so does every follower.
        assert_eq!(q.obs_stats().fast_path, 64);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..64).collect::<Vec<_>>(), "FIFO preserved");
    }

    #[test]
    fn pure_event_chain_never_touches_the_heap() {
        // The dominant single-client pattern: pop the only pending event,
        // schedule its successor at a strictly later (untied) time. The
        // buffer absorbs every schedule with the heap empty throughout,
        // so each one counts as a fast-path schedule.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(3), 0u64);
        for i in 1..100u64 {
            let (t, e) = q.pop().expect("chain event pending");
            assert_eq!(e, i - 1);
            q.schedule(t + crate::SimDuration::from_nanos(2 * i + 1), i);
        }
        assert_eq!(q.obs_stats().fast_path, 100, "every chain schedule is O(1)");
        // Once a second event makes the heap non-empty, adoption stops
        // counting: ordering work is back on the table.
        q.schedule(SimTime::from_nanos(1 << 40), 1000);
        let (_, e) = q.pop().expect("pending");
        assert_eq!(e, 99);
        q.schedule(SimTime::from_nanos(1 << 41), 1001); // adopts, heap busy
        assert_eq!(
            q.obs_stats().fast_path,
            100,
            "heap-backed adoption is not fast"
        );
    }

    #[test]
    fn epoch_buffer_restart_respects_older_heap_entries() {
        // A heap entry at time T scheduled while the buffer held an
        // earlier epoch must pop before buffer entries from a *restarted*
        // epoch at T.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(5), "early"); // epoch 5
        q.schedule(SimTime::from_nanos(10), "heap@10"); // heap (epoch is 5)
        assert_eq!(q.pop(), Some((SimTime::from_nanos(5), "early")));
        q.schedule(SimTime::from_nanos(10), "buf@10"); // buffer restarts at 10
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "heap@10")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "buf@10")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn epoch_buffer_matches_reference_model_with_heavy_ties() {
        // Exhaustive order check against a naive (when, seq) reference
        // model, on a tie-heavy interleaved schedule/pop workload — the
        // pattern batch engines and fixed retry timeouts produce.
        let mut rng = crate::SimRng::seed_from(4242);
        let mut q = EventQueue::new();
        let mut model: Vec<(u64, u64)> = Vec::new(); // (when, seq)
        let mut seq = 0u64;
        let mut fast = 0u64;
        for _ in 0..4000 {
            if rng.chance(0.55) || q.is_empty() {
                // Few distinct offsets => many exact ties, some at `now`.
                let when = q.now().as_nanos() + [0u64, 3, 3, 7][rng.next_u64() as usize % 4];
                q.schedule(SimTime::from_nanos(when), seq);
                model.push((when, seq));
                seq += 1;
            } else {
                let (t, e) = q.pop().unwrap();
                let min = model
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &k)| k)
                    .map(|(i, _)| i)
                    .unwrap();
                let want = model.remove(min);
                assert_eq!((t.as_nanos(), e), want, "pop order diverged from model");
            }
            fast = q.obs_stats().fast_path;
        }
        while let Some((t, e)) = q.pop() {
            let min = model
                .iter()
                .enumerate()
                .min_by_key(|(_, &k)| k)
                .map(|(i, _)| i)
                .unwrap();
            let want = model.remove(min);
            assert_eq!((t.as_nanos(), e), want, "drain order diverged from model");
        }
        assert!(model.is_empty());
        assert!(fast > 0, "tie-heavy schedule must exercise the fast path");
    }

    #[test]
    fn immediate_buffer_counts_and_clears() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 1); // immediate at t = 0
        q.schedule(SimTime::from_nanos(5), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn randomized_order_matches_reference_sort() {
        // Heavier mixed workload: interleaved schedules and pops must
        // reproduce a stable (when, seq) sort.
        let mut rng = crate::SimRng::seed_from(99);
        let mut q = EventQueue::new();
        let mut popped: Vec<(u64, u64)> = Vec::new();
        let mut id = 0u64;
        let mut pending: Vec<(u64, u64)> = Vec::new();
        for _ in 0..2000 {
            if rng.chance(0.6) || q.is_empty() {
                let when = q.now().as_nanos() + rng.next_u64() % 50;
                q.schedule(SimTime::from_nanos(when), id);
                pending.push((when, id));
                id += 1;
            } else {
                let (t, e) = q.pop().unwrap();
                popped.push((t.as_nanos(), e));
            }
        }
        while let Some((t, e)) = q.pop() {
            popped.push((t.as_nanos(), e));
        }
        // Times nondecreasing; ties FIFO by id *within a batch*: verify
        // against a full stable sort of the reference schedule is not
        // possible (pops interleave with schedules), so check the
        // invariants directly.
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "time went backwards: {w:?}");
        }
        assert_eq!(popped.len(), pending.len());
    }
}
