//! Deterministic future-event list.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};

use crate::error::ConfigError;
use crate::SimTime;

/// A pending event: payload plus firing time plus insertion sequence.
struct Scheduled<E> {
    when: SimTime,
    seq: u64,
    payload: E,
}

impl<E> Scheduled<E> {
    /// Events order by `(when, seq)`: nondecreasing time, FIFO among
    /// ties. Smaller keys pop first.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.when, self.seq)
    }
}

/// Which ordering structure an [`EventQueue`] uses for events that miss
/// the epoch buffer.
///
/// Every kind pops the exact same `(when, seq)` order — the choice only
/// affects wall-clock cost, never simulation results. `Auto` is the
/// default: it runs on the heap at low occupancy (where sift costs are
/// trivial and the wheel's fixed overheads are not amortized) and
/// switches new inserts to the calendar wheel once the pending set is
/// deep enough for bucketing to win.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// Indexed 4-ary min-heap only (the pre-calendar scheduler).
    Heap,
    /// Hierarchical timing wheel, with the heap kept as an overflow lane
    /// for events outside the wheel horizon.
    Calendar,
    /// Occupancy-based routing: heap below [`AUTO_WHEEL_MIN_DEPTH`]
    /// pending events, calendar wheel above.
    #[default]
    Auto,
}

impl QueueKind {
    /// Every kind, in CLI presentation order.
    pub const ALL: [QueueKind; 3] = [QueueKind::Heap, QueueKind::Calendar, QueueKind::Auto];

    /// The CLI spelling of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            QueueKind::Heap => "heap",
            QueueKind::Calendar => "calendar",
            QueueKind::Auto => "auto",
        }
    }

    /// Parses a CLI spelling (`heap`, `calendar`, `auto`).
    pub fn parse(s: &str) -> Option<QueueKind> {
        match s {
            "heap" => Some(QueueKind::Heap),
            "calendar" => Some(QueueKind::Calendar),
            "auto" => Some(QueueKind::Auto),
            _ => None,
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            QueueKind::Heap => 0,
            QueueKind::Calendar => 1,
            QueueKind::Auto => 2,
        }
    }

    fn from_u8(v: u8) -> QueueKind {
        match v {
            0 => QueueKind::Heap,
            1 => QueueKind::Calendar,
            _ => QueueKind::Auto,
        }
    }
}

impl std::fmt::Display for QueueKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Process-wide default scheduler kind, read by [`EventQueue::new`] and
/// [`EventQueue::with_capacity`]. Studies construct queues deep inside
/// engine code, so the `--queue` bench flag sets this once instead of
/// threading a parameter through every constructor. Because all kinds
/// pop identically, flipping the default mid-run can never change
/// simulation output — only wall time and the `queue.calendar_hits` /
/// `queue.heap_fallbacks` diagnostics.
static DEFAULT_QUEUE_KIND: AtomicU8 = AtomicU8::new(2);

/// Sets the process-wide default [`QueueKind`] for new queues.
pub fn set_default_queue_kind(kind: QueueKind) {
    DEFAULT_QUEUE_KIND.store(kind.to_u8(), Ordering::Relaxed);
}

/// The process-wide default [`QueueKind`] (initially [`QueueKind::Auto`]).
pub fn default_queue_kind() -> QueueKind {
    QueueKind::from_u8(DEFAULT_QUEUE_KIND.load(Ordering::Relaxed))
}

/// Pending-event depth at which [`QueueKind::Auto`] starts routing new
/// inserts to the calendar wheel instead of the heap.
///
/// Tuned from the steady-state occupancy sweep (spread timestamps, pop +
/// reschedule): the heap wins clearly below depth 8 (31M vs 25M events/s
/// at 8), the wheel wins clearly from 16 up (29M vs 23M at 16, 35M vs
/// 15M at 64) and its cost stays flat with depth, and the band in
/// between is a tie within noise (27M vs 26M at 11). Real studies peak
/// at depth ~11, so the threshold sits at the bottom of the tie band:
/// deep enough to keep short chains on the small-n-optimal heap, shallow
/// enough that real study workloads actually ride the wheel (perfsmoke
/// asserts `queue.calendar_hits > 0` on a study, not just on synthetic
/// benches).
pub const AUTO_WHEEL_MIN_DEPTH: usize = 10;

const WHEEL_BITS: u32 = 6;
const WHEEL_SLOTS: usize = 1 << WHEEL_BITS; // 64
const WHEEL_LEVELS: usize = 6;
/// log2 of the wheel horizon: 2^36 ns ≈ 68.7 simulated seconds ahead of
/// the wheel base. Events beyond it overflow to the heap lane.
const WHEEL_RANGE_BITS: u32 = WHEEL_BITS * WHEEL_LEVELS as u32; // 36

/// One bucketed event inside the timing wheel.
struct WheelEntry<E> {
    when: SimTime,
    seq: u64,
    payload: E,
}

/// Hierarchical timing wheel: [`WHEEL_LEVELS`] levels of
/// [`WHEEL_SLOTS`] buckets, level `l` slots spanning `2^(6l)` ns.
///
/// Invariants (all relative to `base`, the wheel's reference instant):
///
/// * An entry at `when` lives at the level of the highest differing
///   6-bit group of `when ^ base`, in the slot indexed by `when`'s bits
///   at that level. Entries therefore require `when >= base` and
///   `(when ^ base) >> 36 == 0` (see [`accepts`](Wheel::accepts)).
/// * Every level-0 slot holds exactly one timestamp, so draining it
///   front-to-back is FIFO delivery for that instant with zero sorting.
/// * All level-`l` entries fire before all level-`l+1` entries, and
///   within a level, slot index orders firing time — so the lowest
///   occupied slot of the lowest occupied level always holds the
///   minimum.
/// * Within any slot, entries are `seq`-ascending: slots are append-only
///   and a cascade redistributes a slot (itself seq-ascending per
///   timestamp) only into empty lower-level slots.
///
/// `base` only advances (monotonically) when a cascade promotes a
/// higher-level slot down, zeroing the lower groups; inserts that land
/// below the advanced `base` are the caller's job to route to the
/// overflow heap.
struct Wheel<E> {
    base: u64,
    len: usize,
    /// Per-level occupancy bitmap; bit `s` set iff slot `s` is non-empty.
    occ: [u64; WHEEL_LEVELS],
    /// Flat `WHEEL_LEVELS * WHEEL_SLOTS` slot array (empty until the
    /// first insert, so heap-only queues pay nothing).
    slots: Vec<VecDeque<WheelEntry<E>>>,
    /// Reusable scratch for cascades: keeps redistribution allocation-free
    /// after warmup.
    spare: VecDeque<WheelEntry<E>>,
}

impl<E> Wheel<E> {
    fn new() -> Self {
        Wheel {
            base: 0,
            len: 0,
            occ: [0; WHEEL_LEVELS],
            slots: Vec::new(),
            spare: VecDeque::new(),
        }
    }

    /// True when `when_ns` can be bucketed relative to the current base:
    /// not below it, and within the `2^36` ns horizon (checked as "no
    /// differing bit groups above level 5", which also catches carries).
    #[inline]
    fn accepts(&self, when_ns: u64) -> bool {
        when_ns >= self.base && (when_ns ^ self.base) >> WHEEL_RANGE_BITS == 0
    }

    /// Re-anchors an empty wheel at the current clock so long simulations
    /// never outrun the horizon.
    #[inline]
    fn rebase(&mut self, now_ns: u64) {
        debug_assert_eq!(self.len, 0);
        self.base = now_ns;
    }

    /// (level, slot) for an accepted timestamp.
    #[inline]
    fn level_slot(&self, when_ns: u64) -> (usize, usize) {
        let diff = when_ns ^ self.base;
        let level = if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / WHEEL_BITS) as usize
        };
        let slot = ((when_ns >> (WHEEL_BITS * level as u32)) & (WHEEL_SLOTS as u64 - 1)) as usize;
        (level, slot)
    }

    /// Buckets one entry. Caller must have checked [`accepts`](Self::accepts).
    fn insert(&mut self, when: SimTime, seq: u64, payload: E) {
        if self.slots.is_empty() {
            self.slots
                .resize_with(WHEEL_LEVELS * WHEEL_SLOTS, VecDeque::new);
        }
        let (level, slot) = self.level_slot(when.as_nanos());
        self.occ[level] |= 1 << slot;
        self.slots[level * WHEEL_SLOTS + slot].push_back(WheelEntry { when, seq, payload });
        self.len += 1;
    }

    /// Cascades until the minimum entry sits in a level-0 slot. Each
    /// round promotes the earliest occupied slot of the lowest occupied
    /// level, advancing `base` to that slot's window; every entry then
    /// re-buckets at a strictly lower level, so at most
    /// `WHEEL_LEVELS - 1` rounds run. No-op when level 0 is already
    /// occupied or the wheel is empty.
    fn prepare_min(&mut self) {
        while self.len > 0 && self.occ[0] == 0 {
            let level = (1..WHEEL_LEVELS)
                .find(|&l| self.occ[l] != 0)
                .expect("non-empty wheel has an occupied level");
            let slot = self.occ[level].trailing_zeros() as usize;
            self.occ[level] &= !(1 << slot);
            debug_assert!(self.spare.is_empty());
            std::mem::swap(&mut self.spare, &mut self.slots[level * WHEEL_SLOTS + slot]);
            // The promoted slot's window becomes the new base: groups
            // above `level` unchanged, group `level` pinned to the slot,
            // groups below zeroed. Monotonic: the old base's group at
            // `level` was smaller (entries require `when >= base` and
            // agree with base above `level`).
            let low_mask = (1u64 << (WHEEL_BITS * (level as u32 + 1))) - 1;
            self.base = (self.base & !low_mask) | ((slot as u64) << (WHEEL_BITS * level as u32));
            while let Some(e) = self.spare.pop_front() {
                let (l, s) = self.level_slot(e.when.as_nanos());
                debug_assert!(l < level, "cascade must strictly lower the level");
                self.occ[l] |= 1 << s;
                self.slots[l * WHEEL_SLOTS + s].push_back(e);
            }
        }
    }

    /// Key of the earliest entry; only valid after
    /// [`prepare_min`](Self::prepare_min) (level 0 occupied).
    #[inline]
    fn front_key(&self) -> Option<(SimTime, u64)> {
        if self.occ[0] == 0 {
            return None;
        }
        let slot = self.occ[0].trailing_zeros() as usize;
        self.slots[slot].front().map(|e| (e.when, e.seq))
    }

    /// Pops the earliest entry; only valid after `prepare_min`.
    fn pop_front(&mut self) -> WheelEntry<E> {
        let slot = self.occ[0].trailing_zeros() as usize;
        let e = self.slots[slot].pop_front().expect("occupied slot");
        if self.slots[slot].is_empty() {
            self.occ[0] &= !(1 << slot);
        }
        self.len -= 1;
        e
    }

    /// Minimum pending firing time without mutating the wheel: the
    /// lowest occupied level's earliest slot holds the minimum; at level
    /// 0 its front entry is it, above that the slot must be scanned.
    fn peek_min_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        let level = (0..WHEEL_LEVELS).find(|&l| self.occ[l] != 0)?;
        let slot = self.occ[level].trailing_zeros() as usize;
        let bucket = &self.slots[level * WHEEL_SLOTS + slot];
        if level == 0 {
            return bucket.front().map(|e| e.when);
        }
        bucket.iter().map(|e| e.when).min()
    }

    fn clear(&mut self) {
        if self.len == 0 {
            return;
        }
        for s in &mut self.slots {
            s.clear();
        }
        self.occ = [0; WHEEL_LEVELS];
        self.len = 0;
    }
}

/// A future-event list: the core of every discrete-event simulator in this
/// workspace.
///
/// Events pop in nondecreasing time order. Events scheduled for the same
/// instant pop in the order they were scheduled (FIFO), which keeps
/// simulations deterministic regardless of scheduler internals.
///
/// Internally the queue runs three lanes, all totally ordered by
/// `(when, seq)` so any event may live in any lane without affecting pop
/// order (see `DESIGN.md` §11 for the full argument):
///
/// * **Epoch buffer (front lane)** — a FIFO holding events for a single
///   epoch `imm_time`. An empty buffer adopts the next scheduled event's
///   timestamp as its epoch, and while it is non-empty every schedule at
///   exactly `imm_time` appends to it. Ordering is unaffected: a lane
///   entry at `imm_time` was necessarily scheduled before every current
///   buffer entry (while the buffer is non-empty, same-epoch events are
///   routed to the buffer, never the lanes), so the pop path drains lane
///   entries at `imm_time` before touching the buffer. Two real
///   scheduling patterns ride this buffer with zero comparisons, counted
///   by the `fast_path` statistic: runs of events landing on *one shared
///   instant* (identical batch tasks, fixed retry timeouts), and the
///   *pure event chain* — pop one event, schedule its successor, repeat.
/// * **Calendar wheel (primary lane)** — a hierarchical timing wheel
///   (6 levels × 64 slots, 1 ns granularity, `2^36` ns horizon) that
///   buckets events by timestamp: O(1) insert, cascade-amortized O(1)
///   pop, and same-instant events land in one level-0 slot in FIFO
///   order, which is what makes [`pop_epoch`](Self::pop_epoch) a slice
///   drain instead of repeated heap pops.
/// * **Heap (overflow lane)** — the indexed 4-ary min-heap, retained in
///   full as both the [`QueueKind::Heap`] implementation and the
///   overflow lane for events the wheel cannot bucket (beyond its
///   horizon, or below its advanced base).
///
/// [`with_capacity`](EventQueue::with_capacity) pre-sizes the heap arena
/// so steady-state runs never reallocate.
pub struct EventQueue<E> {
    /// 4-ary min-heap on `(when, seq)`: the [`QueueKind::Heap`]
    /// scheduler and the wheel's overflow lane.
    heap: Vec<Scheduled<E>>,
    /// Hierarchical timing wheel (empty and unallocated under
    /// [`QueueKind::Heap`]).
    wheel: Wheel<E>,
    /// FIFO of events all firing at the shared epoch `imm_time`. Every
    /// entry was sequenced after every lane entry with `when ==
    /// imm_time`, so draining the lanes' `imm_time` entries first
    /// preserves global FIFO order.
    immediate: VecDeque<E>,
    /// The epoch of the `immediate` buffer; meaningful only while the
    /// buffer is non-empty. Always `>= now` then (the pop path never
    /// advances the clock past a pending buffer).
    imm_time: SimTime,
    next_seq: u64,
    now: SimTime,
    kind: QueueKind,
    /// Schedules that took an O(1) buffer path with no lane comparison:
    /// same-epoch appends, plus adoptions while the lanes were empty.
    fast_path: u64,
    /// Non-buffer schedules bucketed into the calendar wheel.
    calendar_hits: u64,
    /// Non-buffer schedules the wheel refused (outside its horizon or
    /// below its base) that fell back to the heap lane.
    heap_fallbacks: u64,
    /// Largest pending-event count ever reached.
    max_depth: u64,
}

/// Occupancy counters of an [`EventQueue`], exported to the
/// observability layer after a run. Derived purely from the simulated
/// event stream, so the values are bit-identical for identical runs at
/// any thread count; `calendar_hits` / `heap_fallbacks` additionally
/// depend on the configured [`QueueKind`] (routing diagnostics), while
/// the other three are identical across kinds too.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueObs {
    /// Events scheduled over the queue's lifetime.
    pub scheduled: u64,
    /// Schedules that bypassed the ordering lanes through the epoch
    /// buffer with zero comparisons: same-instant appends at the
    /// buffer's epoch, and epoch adoptions while the lanes were empty
    /// (the pure pop-schedule chain of a single-client probe or a drain
    /// tail).
    pub fast_path: u64,
    /// Schedules bucketed into the calendar wheel lane.
    pub calendar_hits: u64,
    /// Schedules the wheel refused that fell back to the overflow heap.
    pub heap_fallbacks: u64,
    /// High-water mark of pending events.
    pub max_depth: u64,
}

impl QueueObs {
    /// Component-wise accumulation (sums, max for the high-water mark) —
    /// commutative and associative, like every obs merge.
    #[must_use]
    pub fn merged(&self, other: &QueueObs) -> QueueObs {
        QueueObs {
            scheduled: self.scheduled + other.scheduled,
            fast_path: self.fast_path + other.fast_path,
            calendar_hits: self.calendar_hits + other.calendar_hits,
            heap_fallbacks: self.heap_fallbacks + other.heap_fallbacks,
            max_depth: self.max_depth.max(other.max_depth),
        }
    }

    /// Records this queue's counters into `registry` under the standard
    /// `queue.*` names.
    pub fn export(&self, registry: &crate::obs::Registry) {
        registry.counter("queue.scheduled").add(self.scheduled);
        registry.counter("queue.fast_path").add(self.fast_path);
        registry
            .counter("queue.calendar_hits")
            .add(self.calendar_hits);
        registry
            .counter("queue.heap_fallbacks")
            .add(self.heap_fallbacks);
        registry
            .max_gauge("queue.max_depth")
            .observe(self.max_depth);
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

const ARITY: usize = 4;

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`], using
    /// the process-wide default [`QueueKind`].
    pub fn new() -> Self {
        Self::with_kind(default_queue_kind())
    }

    /// Creates an empty queue pre-sized for `capacity` pending events, so
    /// a steady-state simulation never reallocates the event arena.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_kind(capacity, default_queue_kind())
    }

    /// Creates an empty queue with an explicit scheduler kind.
    pub fn with_kind(kind: QueueKind) -> Self {
        Self::with_capacity_and_kind(0, kind)
    }

    /// Creates an empty pre-sized queue with an explicit scheduler kind.
    pub fn with_capacity_and_kind(capacity: usize, kind: QueueKind) -> Self {
        EventQueue {
            heap: Vec::with_capacity(capacity),
            wheel: Wheel::new(),
            immediate: VecDeque::new(),
            imm_time: SimTime::ZERO,
            next_seq: 0,
            now: SimTime::ZERO,
            kind,
            fast_path: 0,
            calendar_hits: 0,
            heap_fallbacks: 0,
            max_depth: 0,
        }
    }

    /// The scheduler kind this queue was constructed with.
    pub fn kind(&self) -> QueueKind {
        self.kind
    }

    /// The instant of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// True when both ordering lanes are empty (the epoch buffer may
    /// still hold events). This is kind-independent — the lanes hold the
    /// same *set* of events whichever way they are split — which keeps
    /// the `fast_path` counter bit-identical across [`QueueKind`]s.
    #[inline]
    fn lanes_empty(&self) -> bool {
        self.heap.is_empty() && self.wheel.len == 0
    }

    /// Routes a non-buffer schedule to the wheel or the heap.
    #[inline]
    fn push_lane(&mut self, when: SimTime, seq: u64, payload: E) {
        let want_wheel = match self.kind {
            QueueKind::Heap => false,
            QueueKind::Calendar => true,
            QueueKind::Auto => self.len() >= AUTO_WHEEL_MIN_DEPTH,
        };
        if want_wheel {
            if self.wheel.len == 0 {
                self.wheel.rebase(self.now.as_nanos());
            }
            if self.wheel.accepts(when.as_nanos()) {
                self.wheel.insert(when, seq, payload);
                self.calendar_hits += 1;
                return;
            }
            self.heap_fallbacks += 1;
        }
        self.heap.push(Scheduled { when, seq, payload });
        self.sift_up(self.heap.len() - 1);
    }

    /// Schedules `payload` to fire at `when`, rejecting events in the
    /// past.
    ///
    /// # Errors
    /// Returns [`ConfigError::PastEvent`] when `when` is before the
    /// current clock — scheduling into the past is always a simulator
    /// bug, but library callers driving a queue from external input can
    /// surface it gracefully instead of panicking.
    pub fn try_schedule(&mut self, when: SimTime, payload: E) -> Result<(), ConfigError> {
        if when < self.now {
            return Err(ConfigError::PastEvent {
                when_ns: when.as_nanos(),
                now_ns: self.now.as_nanos(),
            });
        }
        self.next_seq += 1;
        if self.immediate.is_empty() {
            // An empty buffer adopts this event's timestamp as the new
            // epoch: an O(1) append with no sift. With the lanes also
            // empty this is the pure event-chain mode — the whole
            // schedule/pop cycle runs on the deque without a single
            // comparison, so it counts as a fast-path schedule.
            self.imm_time = when;
            self.immediate.push_back(payload);
            if self.lanes_empty() {
                self.fast_path += 1;
            }
        } else if when == self.imm_time {
            // Fast path: fires at the buffer's epoch, after everything
            // already pending for that instant. O(1) instead of a sift.
            self.immediate.push_back(payload);
            self.fast_path += 1;
        } else {
            let seq = self.next_seq;
            self.push_lane(when, seq, payload);
        }
        let depth = self.len() as u64;
        if depth > self.max_depth {
            self.max_depth = depth;
        }
        Ok(())
    }

    /// Occupancy counters accumulated since construction; a pure
    /// function of the simulated event stream (and, for the routing
    /// diagnostics, the configured kind).
    pub fn obs_stats(&self) -> QueueObs {
        QueueObs {
            scheduled: self.next_seq,
            fast_path: self.fast_path,
            calendar_hits: self.calendar_hits,
            heap_fallbacks: self.heap_fallbacks,
            max_depth: self.max_depth,
        }
    }

    /// Schedules `payload` to fire at `when`.
    ///
    /// # Panics
    /// Panics if `when` is before the current clock: scheduling into the
    /// past is always a simulator bug. Use
    /// [`try_schedule`](Self::try_schedule) to handle it as a
    /// [`ConfigError`] instead.
    pub fn schedule(&mut self, when: SimTime, payload: E) {
        if let Err(e) = self.try_schedule(when, payload) {
            panic!("{e}");
        }
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// firing time. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // Surface the wheel's minimum into a level-0 slot, then take the
        // smaller of the two lane fronts. Lane entries at `when ==
        // imm_time` predate everything in the immediate buffer (while
        // the buffer is non-empty, same-epoch schedules are routed to
        // the buffer), so they pop first; lane entries at earlier times
        // pop first by time order.
        self.wheel.prepare_min();
        let heap_key = self.heap.first().map(|s| s.key());
        let wheel_key = self.wheel.front_key();
        let lane_key = match (heap_key, wheel_key) {
            (Some(h), Some(w)) => Some(h.min(w)),
            (h, w) => h.or(w),
        };
        if !self.immediate.is_empty() && lane_key.is_none_or(|(t, _)| t > self.imm_time) {
            let payload = self.immediate.pop_front().expect("checked non-empty");
            self.now = self.imm_time;
            return Some((self.now, payload));
        }
        let key = lane_key?;
        if wheel_key == Some(key) {
            let e = self.wheel.pop_front();
            debug_assert!(e.when >= self.now);
            self.now = e.when;
            return Some((e.when, e.payload));
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let s = self.heap.pop().expect("checked non-empty");
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        debug_assert!(s.when >= self.now);
        self.now = s.when;
        Some((s.when, s.payload))
    }

    /// Drains *every* event firing at the earliest pending instant into
    /// `out` (cleared first), in exact pop order, advancing the clock to
    /// that instant. Returns the epoch's firing time, or `None` when the
    /// queue is empty.
    ///
    /// This is the batched delivery path: one lane comparison per epoch
    /// instead of one per event, and the wheel contributes its entire
    /// level-0 slot (all events of the instant, already FIFO) as a
    /// slice-style drain. Events the caller schedules *while processing*
    /// the batch carry higher sequence numbers than everything drained,
    /// so delivering them in a follow-up epoch (same instant or later)
    /// reproduces exactly the one-at-a-time [`pop`](Self::pop) order.
    pub fn pop_epoch(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        out.clear();
        self.wheel.prepare_min();
        let heap_t = self.heap.first().map(|s| s.when);
        let wheel_t = self.wheel.front_key().map(|(t, _)| t);
        let lane_t = match (heap_t, wheel_t) {
            (Some(h), Some(w)) => Some(h.min(w)),
            (h, w) => h.or(w),
        };
        let buf_t = (!self.immediate.is_empty()).then_some(self.imm_time);
        let t = match (lane_t, buf_t) {
            (Some(l), Some(b)) => l.min(b),
            (l, b) => l.or(b)?,
        };
        if lane_t.is_some_and(|l| l == t) {
            // Merge the two lane runs at `t` by sequence number; each
            // lane yields its own run in ascending seq already.
            loop {
                let h = self
                    .heap
                    .first()
                    .filter(|s| s.when == t)
                    .map(|s| s.seq)
                    .unwrap_or(u64::MAX);
                let w = self
                    .wheel
                    .front_key()
                    .filter(|&(wt, _)| wt == t)
                    .map(|(_, seq)| seq)
                    .unwrap_or(u64::MAX);
                if h == u64::MAX && w == u64::MAX {
                    break;
                }
                if w < h {
                    out.push(self.wheel.pop_front().payload);
                } else {
                    let last = self.heap.len() - 1;
                    self.heap.swap(0, last);
                    let s = self.heap.pop().expect("checked non-empty");
                    if !self.heap.is_empty() {
                        self.sift_down(0);
                    }
                    out.push(s.payload);
                }
            }
        }
        if !self.immediate.is_empty() && self.imm_time == t {
            // Buffer entries carry the highest seqs at this instant.
            out.extend(self.immediate.drain(..));
        }
        debug_assert!(t >= self.now);
        self.now = t;
        Some(t)
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        let lane_min = match (
            self.heap.first().map(|s| s.when),
            self.wheel.peek_min_time(),
        ) {
            (Some(h), Some(w)) => Some(h.min(w)),
            (h, w) => h.or(w),
        };
        if self.immediate.is_empty() {
            return lane_min;
        }
        // A lane entry may fire before the buffer's epoch; the earliest
        // pending time is the minimum of the two.
        Some(match lane_min {
            Some(l) if l < self.imm_time => l,
            _ => self.imm_time,
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + self.wheel.len + self.immediate.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.lanes_empty() && self.immediate.is_empty()
    }

    /// Drops all pending events, leaving the clock where it is.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.wheel.clear();
        self.immediate.clear();
    }

    /// Moves the entry at `i` toward the root until its parent is no
    /// larger.
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.heap[parent].key() <= self.heap[i].key() {
                break;
            }
            self.heap.swap(i, parent);
            i = parent;
        }
    }

    /// Moves the entry at `i` toward the leaves until no child is
    /// smaller.
    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        loop {
            let first_child = i * ARITY + 1;
            if first_child >= len {
                break;
            }
            let mut best = first_child;
            let last_child = (first_child + ARITY).min(len);
            for c in (first_child + 1)..last_child {
                if self.heap[c].key() < self.heap[best].key() {
                    best = c;
                }
            }
            if self.heap[i].key() <= self.heap[best].key() {
                break;
            }
            self.heap.swap(i, best);
            i = best;
        }
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[50u64, 10, 30, 20, 40] {
            q.schedule(SimTime::from_nanos(t), t);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn ties_break_fifo() {
        for kind in QueueKind::ALL {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_nanos(7);
            for i in 0..100 {
                q.schedule(t, i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>(), "{kind} broke FIFO");
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(5), ());
        q.schedule(SimTime::from_nanos(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(5));
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(9));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn try_schedule_reports_past_events() {
        for kind in QueueKind::ALL {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_nanos(10), 1);
            q.pop();
            let err = q.try_schedule(SimTime::from_nanos(5), 2).unwrap_err();
            assert!(matches!(
                err,
                ConfigError::PastEvent {
                    when_ns: 5,
                    now_ns: 10
                }
            ));
            // The failed schedule left the queue untouched.
            assert!(q.is_empty());
            assert!(q.try_schedule(SimTime::from_nanos(10), 3).is_ok());
            assert_eq!(q.pop(), Some((SimTime::from_nanos(10), 3)));
        }
    }

    #[test]
    fn peek_len_clear() {
        for kind in QueueKind::ALL {
            let mut q = EventQueue::with_kind(kind);
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
            q.schedule(SimTime::from_nanos(3), 1);
            q.schedule(SimTime::from_nanos(1), 2);
            assert_eq!(q.len(), 2);
            assert_eq!(q.peek_time(), Some(SimTime::from_nanos(1)));
            q.clear();
            assert!(q.is_empty());
        }
    }

    #[test]
    fn with_capacity_behaves_identically() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::with_capacity(64);
        for &t in &[9u64, 2, 2, 7, 4, 4, 4, 1] {
            a.schedule(SimTime::from_nanos(t), t);
            b.schedule(SimTime::from_nanos(t), t);
        }
        loop {
            let (x, y) = (a.pop(), b.pop());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn same_instant_fast_path_preserves_fifo() {
        // Mix buffered and lane entries at one instant: earlier-scheduled
        // must still pop first, wherever each entry landed internally.
        for kind in QueueKind::ALL {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_nanos(10), "a"); // starts the epoch buffer
            q.schedule(SimTime::from_nanos(10), "b"); // same epoch: O(1) append
            q.schedule(SimTime::from_nanos(20), "later"); // different time: lane
            assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
            q.schedule(SimTime::from_nanos(10), "c");
            q.schedule(SimTime::from_nanos(10), "d");
            assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "b")));
            assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "c")));
            assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "d")));
            assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "later")));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn fast_path_fires_on_future_time_ties() {
        // Regression: the pre-epoch fast path required `when == now`
        // exactly, which no engine ever does (every stage has positive
        // service time), so the counter sat at zero. A batch of events
        // landing on one *future* timestamp must now take the O(1) path.
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(1_000);
        for i in 0..64 {
            q.schedule(t, i);
        }
        assert!(
            q.obs_stats().fast_path > 0,
            "same-epoch schedules must take the fast path"
        );
        // The lanes-empty adoption counts, and so does every follower.
        assert_eq!(q.obs_stats().fast_path, 64);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..64).collect::<Vec<_>>(), "FIFO preserved");
    }

    #[test]
    fn pure_event_chain_never_touches_the_lanes() {
        // The dominant single-client pattern: pop the only pending event,
        // schedule its successor at a strictly later (untied) time. The
        // buffer absorbs every schedule with the lanes empty throughout,
        // so each one counts as a fast-path schedule — identically under
        // every QueueKind.
        for kind in QueueKind::ALL {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_nanos(3), 0u64);
            for i in 1..100u64 {
                let (t, e) = q.pop().expect("chain event pending");
                assert_eq!(e, i - 1);
                q.schedule(t + crate::SimDuration::from_nanos(2 * i + 1), i);
            }
            assert_eq!(
                q.obs_stats().fast_path,
                100,
                "every chain schedule is O(1) under {kind}"
            );
            // Once a second event makes a lane non-empty, adoption stops
            // counting: ordering work is back on the table.
            q.schedule(SimTime::from_nanos(1 << 40), 1000);
            let (_, e) = q.pop().expect("pending");
            assert_eq!(e, 99);
            q.schedule(SimTime::from_nanos(1 << 41), 1001); // adopts, lane busy
            assert_eq!(
                q.obs_stats().fast_path,
                100,
                "lane-backed adoption is not fast"
            );
        }
    }

    #[test]
    fn epoch_buffer_restart_respects_older_lane_entries() {
        // A lane entry at time T scheduled while the buffer held an
        // earlier epoch must pop before buffer entries from a *restarted*
        // epoch at T.
        for kind in QueueKind::ALL {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_nanos(5), "early"); // epoch 5
            q.schedule(SimTime::from_nanos(10), "lane@10"); // lane (epoch is 5)
            assert_eq!(q.pop(), Some((SimTime::from_nanos(5), "early")));
            q.schedule(SimTime::from_nanos(10), "buf@10"); // buffer restarts at 10
            assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "lane@10")));
            assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "buf@10")));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn epoch_buffer_matches_reference_model_with_heavy_ties() {
        // Exhaustive order check against a naive (when, seq) reference
        // model, on a tie-heavy interleaved schedule/pop workload — the
        // pattern batch engines and fixed retry timeouts produce.
        for kind in QueueKind::ALL {
            let mut rng = crate::SimRng::seed_from(4242);
            let mut q = EventQueue::with_kind(kind);
            let mut model: Vec<(u64, u64)> = Vec::new(); // (when, seq)
            let mut seq = 0u64;
            let mut fast = 0u64;
            for _ in 0..4000 {
                if rng.chance(0.55) || q.is_empty() {
                    // Few distinct offsets => many exact ties, some at `now`.
                    let when = q.now().as_nanos() + [0u64, 3, 3, 7][rng.next_u64() as usize % 4];
                    q.schedule(SimTime::from_nanos(when), seq);
                    model.push((when, seq));
                    seq += 1;
                } else {
                    let (t, e) = q.pop().unwrap();
                    let min = model
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &k)| k)
                        .map(|(i, _)| i)
                        .unwrap();
                    let want = model.remove(min);
                    assert_eq!((t.as_nanos(), e), want, "pop order diverged from model");
                }
                fast = q.obs_stats().fast_path;
            }
            while let Some((t, e)) = q.pop() {
                let min = model
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &k)| k)
                    .map(|(i, _)| i)
                    .unwrap();
                let want = model.remove(min);
                assert_eq!((t.as_nanos(), e), want, "drain order diverged from model");
            }
            assert!(model.is_empty());
            assert!(fast > 0, "tie-heavy schedule must exercise the fast path");
        }
    }

    #[test]
    fn immediate_buffer_counts_and_clears() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 1); // immediate at t = 0
        q.schedule(SimTime::from_nanos(5), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn randomized_order_matches_reference_sort() {
        // Heavier mixed workload: interleaved schedules and pops must
        // reproduce a stable (when, seq) sort.
        let mut rng = crate::SimRng::seed_from(99);
        let mut q = EventQueue::new();
        let mut popped: Vec<(u64, u64)> = Vec::new();
        let mut id = 0u64;
        let mut pending: Vec<(u64, u64)> = Vec::new();
        for _ in 0..2000 {
            if rng.chance(0.6) || q.is_empty() {
                let when = q.now().as_nanos() + rng.next_u64() % 50;
                q.schedule(SimTime::from_nanos(when), id);
                pending.push((when, id));
                id += 1;
            } else {
                let (t, e) = q.pop().unwrap();
                popped.push((t.as_nanos(), e));
            }
        }
        while let Some((t, e)) = q.pop() {
            popped.push((t.as_nanos(), e));
        }
        // Times nondecreasing; ties FIFO by id *within a batch*: verify
        // against a full stable sort of the reference schedule is not
        // possible (pops interleave with schedules), so check the
        // invariants directly.
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "time went backwards: {w:?}");
        }
        assert_eq!(popped.len(), pending.len());
    }

    // ------------------------------------------------------------------
    // Calendar-queue drop-in property tests: every kind must pop the
    // exact (when, seq) order the heap kind pops, across random
    // interleavings, heavy ties, horizon overflow, and base-advance
    // insertions that tear events across the wheel and overflow lanes.
    // ------------------------------------------------------------------

    /// Drives `q` and a heap-kind reference through an identical
    /// scripted workload and asserts every pop matches.
    fn assert_drop_in(script_seed: u64, spread: u64, kind: QueueKind) {
        let mut rng = crate::SimRng::seed_from(script_seed);
        let mut q = EventQueue::with_kind(kind);
        let mut reference = EventQueue::with_kind(QueueKind::Heap);
        let mut id = 0u64;
        for _ in 0..6000 {
            if rng.chance(0.55) || q.is_empty() {
                // A mix of near ties, mid-range, and far-beyond-horizon
                // times, all relative to the current clock.
                let offset = match rng.next_u64() % 8 {
                    0 | 1 => 0,
                    2 => 3,
                    3..=5 => rng.next_u64() % spread,
                    6 => rng.next_u64() % (1 << 30),
                    _ => (1 << WHEEL_RANGE_BITS) + rng.next_u64() % 1000,
                };
                let when = SimTime::from_nanos(q.now().as_nanos() + offset);
                q.schedule(when, id);
                reference.schedule(when, id);
                id += 1;
            } else {
                assert_eq!(q.pop(), reference.pop(), "{kind} diverged from heap");
            }
            assert_eq!(q.len(), reference.len());
            assert_eq!(q.peek_time(), reference.peek_time());
        }
        loop {
            let (a, b) = (q.pop(), reference.pop());
            assert_eq!(a, b, "{kind} drain diverged from heap");
            if a.is_none() {
                break;
            }
        }
        let (mine, theirs) = (q.obs_stats(), reference.obs_stats());
        assert_eq!(mine.scheduled, theirs.scheduled);
        assert_eq!(mine.fast_path, theirs.fast_path, "fast_path kind-dependent");
        assert_eq!(mine.max_depth, theirs.max_depth, "max_depth kind-dependent");
    }

    #[test]
    fn calendar_is_a_drop_in_for_the_heap() {
        for seed in [1u64, 7, 1234] {
            for spread in [50u64, 100_000, 1 << 34] {
                assert_drop_in(seed, spread, QueueKind::Calendar);
                assert_drop_in(seed, spread, QueueKind::Auto);
            }
        }
    }

    #[test]
    fn calendar_rejects_past_events_like_the_heap() {
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        for i in 0..100u64 {
            q.schedule(SimTime::from_nanos(10 + i), i);
        }
        q.pop();
        q.pop();
        let err = q.try_schedule(SimTime::from_nanos(3), 999).unwrap_err();
        assert!(matches!(err, ConfigError::PastEvent { .. }));
        assert_eq!(q.len(), 98, "failed schedule left the queue untouched");
    }

    #[test]
    fn wheel_overflow_lane_handles_far_future() {
        // Events beyond the 2^36 ns horizon overflow to the heap lane
        // and must interleave correctly with wheel entries.
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        let far = 1u64 << 40;
        q.schedule(SimTime::from_nanos(far), "far");
        q.schedule(SimTime::from_nanos(100), "near");
        q.schedule(SimTime::from_nanos(far + 1), "farther");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(100), "near")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(far), "far")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(far + 1), "farther")));
        assert!(q.obs_stats().heap_fallbacks > 0, "overflow lane used");
        assert!(q.obs_stats().calendar_hits > 0, "wheel used");
    }

    #[test]
    fn wheel_rebase_survives_long_simulations() {
        // Drain the wheel completely, jump the clock far past the old
        // base, and keep scheduling: the empty wheel re-anchors instead
        // of permanently overflowing to the heap.
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        q.schedule(SimTime::from_nanos(5), 0u64);
        q.schedule(SimTime::from_nanos(6), 1u64);
        while q.pop().is_some() {}
        let far = 1u64 << 50; // far beyond the initial horizon
        q.schedule(SimTime::from_nanos(far), 2u64);
        q.schedule(SimTime::from_nanos(far + 3), 3u64);
        q.schedule(SimTime::from_nanos(far + 1), 4u64);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(far), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(far + 1), 4)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(far + 3), 3)));
    }

    #[test]
    fn base_advance_routes_late_inserts_to_the_overflow_lane() {
        // Cascading can advance the wheel base ahead of `now`; an insert
        // between `now` and the advanced base cannot be bucketed and
        // must fall back to the heap lane — and still pop in order.
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        q.schedule(SimTime::from_nanos(10), "early"); // buffer epoch 10
        q.schedule(SimTime::from_nanos(100_000), "late"); // wheel, level 2
                                                          // This pop cascades "late" down to level 0, advancing the wheel
                                                          // base to 100_000's window — far ahead of `now` (10).
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early")));
        assert_eq!(q.obs_stats().heap_fallbacks, 0);
        q.schedule(SimTime::from_nanos(40), "buf"); // buffer epoch 40
                                                    // Valid future time, but below the advanced base: the wheel
                                                    // cannot bucket it, so it overflows to the heap lane.
        q.schedule(SimTime::from_nanos(50), "low");
        assert_eq!(
            q.obs_stats().heap_fallbacks,
            1,
            "below-base insert overflows"
        );
        assert_eq!(q.pop(), Some((SimTime::from_nanos(40), "buf")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(50), "low")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(100_000), "late")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn auto_starts_on_heap_and_switches_to_wheel() {
        let mut q = EventQueue::with_kind(QueueKind::Auto);
        // Below the depth threshold: heap only (plus buffer).
        for i in 0..(AUTO_WHEEL_MIN_DEPTH as u64 / 2) {
            q.schedule(SimTime::from_nanos(10 + 7 * i), i);
        }
        assert_eq!(
            q.obs_stats().calendar_hits,
            0,
            "shallow queue stays on heap"
        );
        // Push past the threshold: new inserts go to the wheel.
        for i in 0..(4 * AUTO_WHEEL_MIN_DEPTH as u64) {
            q.schedule(SimTime::from_nanos(20 + 11 * i), 1000 + i);
        }
        assert!(q.obs_stats().calendar_hits > 0, "deep queue uses the wheel");
        // Still pops in exact global order.
        let mut last = (SimTime::ZERO, 0u64);
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last.0);
            last = (t, 0);
            n += 1;
        }
        assert_eq!(n, AUTO_WHEEL_MIN_DEPTH / 2 + 4 * AUTO_WHEEL_MIN_DEPTH);
    }

    // ------------------------------------------------------------------
    // pop_epoch: batched delivery must replay exactly the pop order.
    // ------------------------------------------------------------------

    #[test]
    fn pop_epoch_matches_pop_order() {
        for kind in QueueKind::ALL {
            let mut rng = crate::SimRng::seed_from(2024);
            let mut a = EventQueue::with_kind(kind);
            let mut b = EventQueue::with_kind(kind);
            for id in 0..3000u64 {
                let when = [0u64, 0, 3, 17, 1 << 20][rng.next_u64() as usize % 5];
                let t = SimTime::from_nanos(a.now().as_nanos() + when);
                a.schedule(t, id);
                b.schedule(t, id);
                if rng.chance(0.3) {
                    if let Some((t, e)) = a.pop() {
                        let mut epoch = Vec::new();
                        // Single-event epochs via pop must match the head
                        // of b's epoch; drain b one epoch at a time and
                        // compare against a popped one-by-one.
                        let bt = b.pop_epoch(&mut epoch).expect("same pending set");
                        assert_eq!(t, bt);
                        assert_eq!(e, epoch[0]);
                        for want in &epoch[1..] {
                            let (t2, e2) = a.pop().expect("epoch peer pending");
                            assert_eq!(t2, bt);
                            assert_eq!(e2, *want);
                        }
                    }
                }
            }
            let mut epoch = Vec::new();
            while let Some(t) = b.pop_epoch(&mut epoch) {
                for want in &epoch {
                    let (t2, e2) = a.pop().expect("epoch peer pending");
                    assert_eq!(t2, t, "epoch time diverged under {kind}");
                    assert_eq!(e2, *want, "epoch order diverged under {kind}");
                }
            }
            assert_eq!(a.pop(), None, "pop lane had extra events under {kind}");
        }
    }

    #[test]
    fn pop_epoch_drains_ties_across_all_three_lanes() {
        // One instant torn across heap lane, wheel lane, and epoch
        // buffer must come out as a single seq-ordered batch. Auto
        // routing splits the lanes: shallow schedules hit the heap,
        // deep ones the wheel.
        let mut q = EventQueue::with_kind(QueueKind::Auto);
        let t = SimTime::from_nanos(500);
        q.schedule(SimTime::from_nanos(100), 0u64); // adopts the buffer epoch
        let mut want = Vec::new();
        let mut id = 1u64;
        // Shallow: these land on the heap lane.
        for _ in 0..8 {
            q.schedule(t, id);
            want.push(id);
            id += 1;
        }
        // Fillers to push depth past the Auto threshold (later instant).
        let mut fillers = 0;
        while q.len() < AUTO_WHEEL_MIN_DEPTH {
            q.schedule(SimTime::from_nanos(900), id);
            id += 1;
            fillers += 1;
        }
        // Deep: these land on the wheel lane, same instant `t`.
        for _ in 0..8 {
            q.schedule(t, id);
            want.push(id);
            id += 1;
        }
        let stats = q.obs_stats();
        assert!(stats.calendar_hits > 0, "deep schedules used the wheel");
        let mut epoch = Vec::new();
        assert_eq!(q.pop_epoch(&mut epoch), Some(SimTime::from_nanos(100)));
        assert_eq!(epoch, vec![0]);
        // The `t` epoch merges the heap run and the wheel run by seq.
        assert_eq!(q.pop_epoch(&mut epoch), Some(t));
        assert_eq!(epoch, want, "heap+wheel runs must merge FIFO");
        assert_eq!(q.pop_epoch(&mut epoch), Some(SimTime::from_nanos(900)));
        assert_eq!(epoch.len(), fillers);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_epoch_on_empty_queue_returns_none() {
        let mut q: EventQueue<u8> = EventQueue::new();
        let mut epoch = vec![1, 2, 3];
        assert_eq!(q.pop_epoch(&mut epoch), None);
        assert!(epoch.is_empty(), "pop_epoch clears the scratch");
    }

    #[test]
    fn queue_kind_parse_round_trips() {
        for kind in QueueKind::ALL {
            assert_eq!(QueueKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(QueueKind::parse("fifo"), None);
        assert_eq!(
            QueueKind::from_u8(QueueKind::Calendar.to_u8()),
            QueueKind::Calendar
        );
    }

    #[test]
    fn default_kind_is_process_configurable() {
        let original = default_queue_kind();
        set_default_queue_kind(QueueKind::Heap);
        assert_eq!(EventQueue::<u8>::new().kind(), QueueKind::Heap);
        set_default_queue_kind(original);
        assert_eq!(EventQueue::<u8>::new().kind(), original);
    }

    #[test]
    fn obs_merge_accumulates_all_counters() {
        let a = QueueObs {
            scheduled: 10,
            fast_path: 4,
            calendar_hits: 3,
            heap_fallbacks: 1,
            max_depth: 7,
        };
        let b = QueueObs {
            scheduled: 5,
            fast_path: 1,
            calendar_hits: 2,
            heap_fallbacks: 2,
            max_depth: 9,
        };
        let m = a.merged(&b);
        assert_eq!(
            m,
            QueueObs {
                scheduled: 15,
                fast_path: 5,
                calendar_hits: 5,
                heap_fallbacks: 3,
                max_depth: 9,
            }
        );
    }
}
