//! Deterministic future-event list.

use std::collections::VecDeque;

use crate::error::ConfigError;
use crate::SimTime;

/// A pending event: payload plus firing time plus insertion sequence.
struct Scheduled<E> {
    when: SimTime,
    seq: u64,
    payload: E,
}

impl<E> Scheduled<E> {
    /// Events order by `(when, seq)`: nondecreasing time, FIFO among
    /// ties. Smaller keys pop first.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.when, self.seq)
    }
}

/// A future-event list: the core of every discrete-event simulator in this
/// workspace.
///
/// Events pop in nondecreasing time order. Events scheduled for the same
/// instant pop in the order they were scheduled (FIFO), which keeps
/// simulations deterministic regardless of heap internals.
///
/// Internally this is an indexed 4-ary min-heap rather than
/// `std::collections::BinaryHeap`: the shallower tree roughly halves the
/// comparisons per pop on simulator-sized queues, and the flat `Vec`
/// layout keeps sift operations cache-friendly. Two hot-path
/// optimizations matter for the server engines:
///
/// * [`with_capacity`](EventQueue::with_capacity) pre-sizes the arena so
///   steady-state runs never reallocate, and
/// * events scheduled *at the current clock instant* (the pop-then-push
///   pattern the engines hit when a completion immediately launches new
///   work) bypass the heap entirely into a FIFO side buffer, turning an
///   O(log n) sift into an O(1) append. Ordering is unaffected: an event
///   at `now` already in the heap was necessarily scheduled earlier (the
///   clock only reaches `now` by popping) and therefore still pops first.
///
/// # Example
/// ```
/// use wcs_simcore::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "late");
/// q.schedule(SimTime::from_nanos(10), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// 4-ary min-heap on `(when, seq)`.
    heap: Vec<Scheduled<E>>,
    /// FIFO of events scheduled at exactly `now`. All entries fire at
    /// `now` and were sequenced after every heap entry with `when ==
    /// now`, so draining the heap's `now`-entries first preserves global
    /// FIFO order.
    immediate: VecDeque<E>,
    next_seq: u64,
    now: SimTime,
    /// Schedules that took the O(1) same-instant fast path.
    fast_path: u64,
    /// Largest pending-event count ever reached.
    max_depth: u64,
}

/// Occupancy counters of an [`EventQueue`], exported to the
/// observability layer after a run. Derived purely from the simulated
/// event stream, so the values are bit-identical for identical runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueObs {
    /// Events scheduled over the queue's lifetime.
    pub scheduled: u64,
    /// Schedules that took the same-instant O(1) fast path.
    pub fast_path: u64,
    /// High-water mark of pending events.
    pub max_depth: u64,
}

impl QueueObs {
    /// Component-wise accumulation (sums, max for the high-water mark) —
    /// commutative and associative, like every obs merge.
    #[must_use]
    pub fn merged(&self, other: &QueueObs) -> QueueObs {
        QueueObs {
            scheduled: self.scheduled + other.scheduled,
            fast_path: self.fast_path + other.fast_path,
            max_depth: self.max_depth.max(other.max_depth),
        }
    }

    /// Records this queue's counters into `registry` under the standard
    /// `queue.*` names.
    pub fn export(&self, registry: &crate::obs::Registry) {
        registry.counter("queue.scheduled").add(self.scheduled);
        registry.counter("queue.fast_path").add(self.fast_path);
        registry
            .max_gauge("queue.max_depth")
            .observe(self.max_depth);
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

const ARITY: usize = 4;

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            immediate: VecDeque::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            fast_path: 0,
            max_depth: 0,
        }
    }

    /// Creates an empty queue pre-sized for `capacity` pending events, so
    /// a steady-state simulation never reallocates the event arena.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(capacity),
            immediate: VecDeque::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            fast_path: 0,
            max_depth: 0,
        }
    }

    /// The instant of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at `when`, rejecting events in the
    /// past.
    ///
    /// # Errors
    /// Returns [`ConfigError::PastEvent`] when `when` is before the
    /// current clock — scheduling into the past is always a simulator
    /// bug, but library callers driving a queue from external input can
    /// surface it gracefully instead of panicking.
    pub fn try_schedule(&mut self, when: SimTime, payload: E) -> Result<(), ConfigError> {
        if when < self.now {
            return Err(ConfigError::PastEvent {
                when_ns: when.as_nanos(),
                now_ns: self.now.as_nanos(),
            });
        }
        self.next_seq += 1;
        if when == self.now {
            // Fast path: fires at the current instant, after everything
            // already pending for this instant. O(1) instead of a sift.
            self.immediate.push_back(payload);
            self.fast_path += 1;
        } else {
            let seq = self.next_seq;
            self.heap.push(Scheduled { when, seq, payload });
            self.sift_up(self.heap.len() - 1);
        }
        let depth = (self.heap.len() + self.immediate.len()) as u64;
        if depth > self.max_depth {
            self.max_depth = depth;
        }
        Ok(())
    }

    /// Occupancy counters accumulated since construction; a pure
    /// function of the simulated event stream.
    pub fn obs_stats(&self) -> QueueObs {
        QueueObs {
            scheduled: self.next_seq,
            fast_path: self.fast_path,
            max_depth: self.max_depth,
        }
    }

    /// Schedules `payload` to fire at `when`.
    ///
    /// # Panics
    /// Panics if `when` is before the current clock: scheduling into the
    /// past is always a simulator bug. Use
    /// [`try_schedule`](Self::try_schedule) to handle it as a
    /// [`ConfigError`] instead.
    pub fn schedule(&mut self, when: SimTime, payload: E) {
        if let Err(e) = self.try_schedule(when, payload) {
            panic!("{e}");
        }
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// firing time. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // Heap entries at `when == now` predate everything in the
        // immediate buffer (the buffer only accepts events once the
        // clock has already reached `now`), so they pop first.
        if !self.immediate.is_empty() && self.heap.first().is_none_or(|s| s.when > self.now) {
            let payload = self.immediate.pop_front().expect("checked non-empty");
            return Some((self.now, payload));
        }
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let s = self.heap.pop().expect("checked non-empty");
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        debug_assert!(s.when >= self.now);
        self.now = s.when;
        Some((s.when, s.payload))
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if !self.immediate.is_empty() {
            // Immediate events fire at `now`; no heap entry fires
            // earlier, so `now` is the minimum either way.
            return Some(self.now);
        }
        self.heap.first().map(|s| s.when)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + self.immediate.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.immediate.is_empty()
    }

    /// Drops all pending events, leaving the clock where it is.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.immediate.clear();
    }

    /// Moves the entry at `i` toward the root until its parent is no
    /// larger.
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.heap[parent].key() <= self.heap[i].key() {
                break;
            }
            self.heap.swap(i, parent);
            i = parent;
        }
    }

    /// Moves the entry at `i` toward the leaves until no child is
    /// smaller.
    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        loop {
            let first_child = i * ARITY + 1;
            if first_child >= len {
                break;
            }
            let mut best = first_child;
            let last_child = (first_child + ARITY).min(len);
            for c in (first_child + 1)..last_child {
                if self.heap[c].key() < self.heap[best].key() {
                    best = c;
                }
            }
            if self.heap[i].key() <= self.heap[best].key() {
                break;
            }
            self.heap.swap(i, best);
            i = best;
        }
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[50u64, 10, 30, 20, 40] {
            q.schedule(SimTime::from_nanos(t), t);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(5), ());
        q.schedule(SimTime::from_nanos(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(5));
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(9));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn try_schedule_reports_past_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 1);
        q.pop();
        let err = q.try_schedule(SimTime::from_nanos(5), 2).unwrap_err();
        assert!(matches!(
            err,
            ConfigError::PastEvent {
                when_ns: 5,
                now_ns: 10
            }
        ));
        // The failed schedule left the queue untouched.
        assert!(q.is_empty());
        assert!(q.try_schedule(SimTime::from_nanos(10), 3).is_ok());
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), 3)));
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(3), 1);
        q.schedule(SimTime::from_nanos(1), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(1)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn with_capacity_behaves_identically() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::with_capacity(64);
        for &t in &[9u64, 2, 2, 7, 4, 4, 4, 1] {
            a.schedule(SimTime::from_nanos(t), t);
            b.schedule(SimTime::from_nanos(t), t);
        }
        loop {
            let (x, y) = (a.pop(), b.pop());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn same_instant_fast_path_preserves_fifo() {
        // Mix heap entries and immediate-buffer entries at one instant:
        // earlier-scheduled must still pop first.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "heap-a"); // goes to heap (now = 0)
        q.schedule(SimTime::from_nanos(10), "heap-b");
        q.schedule(SimTime::from_nanos(20), "later");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "heap-a")));
        // Clock is now 10: these take the O(1) immediate path.
        q.schedule(SimTime::from_nanos(10), "imm-a");
        q.schedule(SimTime::from_nanos(10), "imm-b");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "heap-b")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "imm-a")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "imm-b")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "later")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn immediate_buffer_counts_and_clears() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 1); // immediate at t = 0
        q.schedule(SimTime::from_nanos(5), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn randomized_order_matches_reference_sort() {
        // Heavier mixed workload: interleaved schedules and pops must
        // reproduce a stable (when, seq) sort.
        let mut rng = crate::SimRng::seed_from(99);
        let mut q = EventQueue::new();
        let mut popped: Vec<(u64, u64)> = Vec::new();
        let mut id = 0u64;
        let mut pending: Vec<(u64, u64)> = Vec::new();
        for _ in 0..2000 {
            if rng.chance(0.6) || q.is_empty() {
                let when = q.now().as_nanos() + rng.next_u64() % 50;
                q.schedule(SimTime::from_nanos(when), id);
                pending.push((when, id));
                id += 1;
            } else {
                let (t, e) = q.pop().unwrap();
                popped.push((t.as_nanos(), e));
            }
        }
        while let Some((t, e)) = q.pop() {
            popped.push((t.as_nanos(), e));
        }
        // Times nondecreasing; ties FIFO by id *within a batch*: verify
        // against a full stable sort of the reference schedule is not
        // possible (pops interleave with schedules), so check the
        // invariants directly.
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "time went backwards: {w:?}");
        }
        assert_eq!(popped.len(), pending.len());
    }
}
