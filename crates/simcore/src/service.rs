//! Service-layer records and deterministic journal merging for the
//! multi-process sweep service (`wcs-served`).
//!
//! A supervisor shards sweep cells across worker processes; each worker
//! appends to its own [`journal`](crate::journal) file. Two kinds of
//! records coexist in a worker journal:
//!
//! * **result records** — memoized sweep-cell payloads written by the
//!   evaluation layer (opaque to this module), and
//! * **service records** — leases and completion markers written by the
//!   worker runtime, carved out of the 128-bit key space under the
//!   [`SERVICE_KEY_PREFIX`] namespace and tagged with a payload byte the
//!   result decoder rejects, so replaying a worker journal into a resume
//!   memo silently drops them.
//!
//! [`merge_journals`] folds any number of per-worker record streams into
//! one deterministic result set: service records are dropped, duplicate
//! keys collapse to a single canonical record (first-valid-wins under a
//! content tiebreak, so the merge is order-independent and idempotent),
//! and conflicting payloads for one key are counted as merge conflicts.
//! The merged set is *key-sorted* — a canonical artifact, not yet the
//! byte-identical single-process journal; the supervisor re-journals it
//! through a serial resume pass to recover first-compute order.
//!
//! [`StatusServer`] is the minimal HTTP liveness endpoint the supervisor
//! exposes (`/status` JSON, `/metrics` Prometheus) on a plain
//! `std::net::TcpListener` — no external dependencies.

use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::journal::JournalRecord;
use crate::obs::Registry;

/// Top 16 bits of every service-record key: `0x5EA5` ("seas", for
/// lea-*ses*). Result records are finished memo keys (uniform hashes), so
/// a deliberate constant prefix keeps the namespaces collision-free in
/// practice and lets the merge filter service records by key alone.
pub const SERVICE_KEY_PREFIX: u128 = 0x5EA5 << 112;

/// Mask selecting the namespace bits of a key.
const PREFIX_MASK: u128 = 0xFFFF << 112;

/// First payload byte of every service record. The perf-payload decoder
/// recognises tags 0 (Ok) and 1 (Err) only, so a `0xFE`-tagged payload
/// fails to decode and is dropped by resume seeding.
pub const SERVICE_PAYLOAD_TAG: u8 = 0xFE;

/// True when `key` lives in the service-record namespace.
pub fn is_service_key(key: u128) -> bool {
    key & PREFIX_MASK == SERVICE_KEY_PREFIX
}

/// A service record a worker appends to its journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceRecord {
    /// The worker claimed the half-open cell range `[start, end)` on its
    /// `attempt`-th try (0-based; retries after a kill bump it).
    Lease {
        /// Supervisor-assigned worker id.
        worker: u32,
        /// First cell index of the claimed range.
        start: u32,
        /// One past the last cell index of the claimed range.
        end: u32,
        /// Retry generation of this claim.
        attempt: u32,
    },
    /// The worker finished evaluating plan cell `cell` and journaled its
    /// results; the supervisor uses these markers to reclaim only the
    /// genuinely unfinished cells of a dead worker.
    CellDone {
        /// Completed plan cell index.
        cell: u32,
    },
}

impl ServiceRecord {
    /// The record's journal key: namespace prefix, kind, and enough of
    /// the fields to make every distinct record a distinct key (the
    /// journal writer dedups by key; a retried lease must not be
    /// swallowed by its predecessor).
    pub fn key(&self) -> u128 {
        match *self {
            ServiceRecord::Lease {
                worker,
                start,
                end,
                attempt,
            } => {
                SERVICE_KEY_PREFIX
                    | (1u128 << 104)
                    | (u128::from(worker) << 72)
                    | (u128::from(attempt) << 64)
                    | (u128::from(start) << 32)
                    | u128::from(end)
            }
            ServiceRecord::CellDone { cell } => {
                SERVICE_KEY_PREFIX | (2u128 << 104) | u128::from(cell)
            }
        }
    }

    /// Encode to the journal payload: tag, kind, fields (little-endian).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![SERVICE_PAYLOAD_TAG];
        match *self {
            ServiceRecord::Lease {
                worker,
                start,
                end,
                attempt,
            } => {
                out.push(1);
                out.extend_from_slice(&worker.to_le_bytes());
                out.extend_from_slice(&start.to_le_bytes());
                out.extend_from_slice(&end.to_le_bytes());
                out.extend_from_slice(&attempt.to_le_bytes());
            }
            ServiceRecord::CellDone { cell } => {
                out.push(2);
                out.extend_from_slice(&cell.to_le_bytes());
            }
        }
        out
    }

    /// Decode a journal payload; `None` for anything that is not a
    /// well-formed service record.
    pub fn decode(payload: &[u8]) -> Option<ServiceRecord> {
        let (&tag, rest) = payload.split_first()?;
        if tag != SERVICE_PAYLOAD_TAG {
            return None;
        }
        let (&kind, rest) = rest.split_first()?;
        let word = |i: usize| -> Option<u32> {
            Some(u32::from_le_bytes(
                rest.get(i * 4..i * 4 + 4)?.try_into().ok()?,
            ))
        };
        match kind {
            1 if rest.len() == 16 => Some(ServiceRecord::Lease {
                worker: word(0)?,
                start: word(1)?,
                end: word(2)?,
                attempt: word(3)?,
            }),
            2 if rest.len() == 4 => Some(ServiceRecord::CellDone { cell: word(0)? }),
            _ => None,
        }
    }

    /// Digest for the journal frame — FNV-1a 64 over the payload, the
    /// same construction the result layer uses, so every record in a
    /// worker journal carries a self-describing digest.
    pub fn digest(payload: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in payload {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Outcome of merging per-worker journals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeOutcome {
    /// The canonical merged result records, sorted by key, one per
    /// distinct key.
    pub records: Vec<JournalRecord>,
    /// Keys that appeared with more than one distinct (digest, payload)
    /// content across the inputs. The canonical winner is kept; every
    /// additional distinct content counts one conflict.
    pub conflicts: u64,
    /// Service records (leases, markers) dropped from the result set.
    pub service_dropped: u64,
    /// Exact-duplicate records collapsed (same key, same content).
    pub duplicates: u64,
}

/// Merge K per-worker record streams into one canonical result set.
///
/// Properties (the supervisor and its tests rely on all three):
///
/// * **order-independent** — permuting the inputs, or the records within
///   one input, yields a byte-identical outcome: records are keyed, and
///   per key the smallest (digest, payload) content wins;
/// * **idempotent** — merging the merge with anything it already
///   contains changes nothing;
/// * **service-blind** — lease and marker records never reach the result
///   set.
///
/// The winner rule degenerates to first-valid-wins in the non-conflict
/// case (every copy of a key carries identical bytes, since results are
/// pure functions of their keys); the content tiebreak only arbitrates
/// genuinely conflicting inputs, deterministically.
pub fn merge_journals(inputs: &[Vec<JournalRecord>]) -> MergeOutcome {
    let mut by_key: std::collections::BTreeMap<u128, JournalRecord> =
        std::collections::BTreeMap::new();
    let mut conflicts = 0u64;
    let mut service_dropped = 0u64;
    let mut duplicates = 0u64;
    for input in inputs {
        for r in input {
            if is_service_key(r.key) {
                service_dropped += 1;
                continue;
            }
            match by_key.get_mut(&r.key) {
                None => {
                    by_key.insert(r.key, r.clone());
                }
                Some(kept) if kept.digest == r.digest && kept.payload == r.payload => {
                    duplicates += 1;
                }
                Some(kept) => {
                    conflicts += 1;
                    // Deterministic winner: smallest (digest, payload).
                    if (r.digest, &r.payload) < (kept.digest, &kept.payload) {
                        *kept = r.clone();
                    }
                }
            }
        }
    }
    MergeOutcome {
        records: by_key.into_values().collect(),
        conflicts,
        service_dropped,
        duplicates,
    }
}

/// Live progress counters the supervisor publishes and the
/// [`StatusServer`] serves. All atomics: the supervisor loop writes,
/// the HTTP thread reads, no locks.
#[derive(Debug, Default)]
pub struct ServiceProgress {
    /// Total plan cells.
    pub cells_total: AtomicU64,
    /// Cells confirmed complete (via markers).
    pub cells_done: AtomicU64,
    /// Currently live worker processes.
    pub workers_live: AtomicU64,
    /// Worker processes spawned (including respawns).
    pub worker_spawns: AtomicU64,
    /// Worker deaths observed (non-graceful exits).
    pub worker_kills_observed: AtomicU64,
    /// Leases expired by the supervisor (stall deadline).
    pub worker_leases_expired: AtomicU64,
    /// Cells reassigned away from a dead or stalled worker.
    pub worker_cells_stolen: AtomicU64,
    /// Conflicting records seen at merge time.
    pub worker_merge_conflicts: AtomicU64,
    /// Worker respawn retries performed.
    pub worker_retries: AtomicU64,
    /// True once the sweep completed and the merge was written.
    pub complete: AtomicBool,
}

impl ServiceProgress {
    /// A fresh all-zero progress block.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Render the progress block as one JSON object (the `/status` body).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"cells_total\": {}, \"cells_done\": {}, \"workers_live\": {}, \
             \"worker_spawns\": {}, \"worker_kills_observed\": {}, \
             \"worker_leases_expired\": {}, \"worker_cells_stolen\": {}, \
             \"worker_merge_conflicts\": {}, \"worker_retries\": {}, \
             \"complete\": {}}}\n",
            self.cells_total.load(Ordering::Relaxed),
            self.cells_done.load(Ordering::Relaxed),
            self.workers_live.load(Ordering::Relaxed),
            self.worker_spawns.load(Ordering::Relaxed),
            self.worker_kills_observed.load(Ordering::Relaxed),
            self.worker_leases_expired.load(Ordering::Relaxed),
            self.worker_cells_stolen.load(Ordering::Relaxed),
            self.worker_merge_conflicts.load(Ordering::Relaxed),
            self.worker_retries.load(Ordering::Relaxed),
            self.complete.load(Ordering::Relaxed),
        )
    }

    /// Export the recovery counters into `registry` under the standard
    /// `recovery.worker_*` names. Call once, at end of run.
    pub fn export(&self, registry: &Registry) {
        registry
            .counter("recovery.worker_spawns")
            .add(self.worker_spawns.load(Ordering::Relaxed));
        registry
            .counter("recovery.worker_kills_observed")
            .add(self.worker_kills_observed.load(Ordering::Relaxed));
        registry
            .counter("recovery.worker_leases_expired")
            .add(self.worker_leases_expired.load(Ordering::Relaxed));
        registry
            .counter("recovery.worker_cells_stolen")
            .add(self.worker_cells_stolen.load(Ordering::Relaxed));
        registry
            .counter("recovery.worker_merge_conflicts")
            .add(self.worker_merge_conflicts.load(Ordering::Relaxed));
        registry
            .counter("recovery.worker_retries")
            .add(self.worker_retries.load(Ordering::Relaxed));
    }
}

/// Minimal HTTP liveness endpoint: `GET /status` returns the progress
/// block as JSON, `GET /metrics` the registry snapshot in Prometheus
/// text exposition; anything else is 404. One thread, sequential
/// accepts — a liveness probe, not a web server.
#[derive(Debug)]
pub struct StatusServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl StatusServer {
    /// Bind `127.0.0.1:port` (`port` 0 picks an ephemeral port) and
    /// serve until [`shutdown`](Self::shutdown) or drop.
    ///
    /// # Errors
    /// Surfaces the bind error (port in use, permission).
    pub fn start(
        port: u16,
        progress: Arc<ServiceProgress>,
        registry: Registry,
    ) -> std::io::Result<StatusServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        // Poll for shutdown between accepts rather than blocking forever.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("wcs-status".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = serve_one(stream, &progress, &registry);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(std::time::Duration::from_millis(20));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn status thread");
        Ok(StatusServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop serving and join the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Answer one HTTP request on `stream`.
fn serve_one(
    mut stream: TcpStream,
    progress: &ServiceProgress,
    registry: &Registry,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_millis(250)))?;
    stream.set_nonblocking(false)?;
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf).unwrap_or(0);
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = match path {
        "/status" => ("200 OK", "application/json", progress.to_json()),
        "/metrics" => {
            // Fold a point-in-time export of the live progress counters
            // into the response alongside the ambient registry's series,
            // so `/metrics` is useful mid-run (the supervisor only
            // exports into the shared registry after the run finishes).
            let view = Registry::with_enabled(true);
            view.merge(registry);
            progress.export(&view);
            (
                "200 OK",
                "text/plain; version=0.0.4",
                view.snapshot().to_prometheus(),
            )
        }
        _ => ("404 Not Found", "text/plain", "not found\n".to_owned()),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_record(key: u128, byte: u8) -> JournalRecord {
        let payload = vec![0u8, byte, byte, byte];
        JournalRecord {
            key,
            digest: ServiceRecord::digest(&payload),
            payload,
        }
    }

    #[test]
    fn service_records_roundtrip() {
        let records = [
            ServiceRecord::Lease {
                worker: 3,
                start: 10,
                end: 14,
                attempt: 2,
            },
            ServiceRecord::CellDone { cell: 12 },
        ];
        for r in records {
            let payload = r.encode();
            assert_eq!(ServiceRecord::decode(&payload), Some(r));
            assert!(is_service_key(r.key()));
        }
        // Distinct fields produce distinct keys (the writer dedups by key).
        let a = ServiceRecord::Lease {
            worker: 1,
            start: 0,
            end: 4,
            attempt: 0,
        };
        let b = ServiceRecord::Lease {
            worker: 1,
            start: 0,
            end: 4,
            attempt: 1,
        };
        assert_ne!(a.key(), b.key());
    }

    #[test]
    fn decode_rejects_result_payloads_and_garbage() {
        assert_eq!(ServiceRecord::decode(&[]), None);
        assert_eq!(ServiceRecord::decode(&[0, 1, 2, 3]), None, "result tag");
        assert_eq!(ServiceRecord::decode(&[SERVICE_PAYLOAD_TAG]), None);
        assert_eq!(
            ServiceRecord::decode(&[SERVICE_PAYLOAD_TAG, 1, 0, 0]),
            None,
            "short lease"
        );
        assert_eq!(
            ServiceRecord::decode(&[SERVICE_PAYLOAD_TAG, 9, 0, 0, 0, 0]),
            None,
            "unknown kind"
        );
    }

    #[test]
    fn merge_drops_service_records_and_dedups() {
        let lease = ServiceRecord::Lease {
            worker: 0,
            start: 0,
            end: 2,
            attempt: 0,
        };
        let marker = ServiceRecord::CellDone { cell: 0 };
        let svc = |r: ServiceRecord| {
            let payload = r.encode();
            JournalRecord {
                key: r.key(),
                digest: ServiceRecord::digest(&payload),
                payload,
            }
        };
        let a = vec![svc(lease), result_record(1, 0xAA), svc(marker)];
        let b = vec![result_record(2, 0xBB), result_record(1, 0xAA)];
        let out = merge_journals(&[a, b]);
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.records[0].key, 1);
        assert_eq!(out.records[1].key, 2);
        assert_eq!(out.service_dropped, 2);
        assert_eq!(out.duplicates, 1);
        assert_eq!(out.conflicts, 0);
    }

    #[test]
    fn merge_is_order_independent_and_idempotent() {
        let inputs = vec![
            vec![result_record(5, 1), result_record(3, 2)],
            vec![result_record(3, 2), result_record(9, 3)],
            vec![result_record(1, 4)],
        ];
        let forward = merge_journals(&inputs);
        let mut reversed = inputs.clone();
        reversed.reverse();
        for input in &mut reversed {
            input.reverse();
        }
        assert_eq!(forward, merge_journals(&reversed));
        // Idempotent: merging the merge with the originals changes nothing.
        let mut again = inputs;
        again.push(forward.records.clone());
        assert_eq!(forward.records, merge_journals(&again).records);
    }

    #[test]
    fn merge_conflicts_resolve_deterministically() {
        let a = vec![result_record(7, 0x01)];
        let b = vec![result_record(7, 0x02)];
        let ab = merge_journals(&[a.clone(), b.clone()]);
        let ba = merge_journals(&[b, a]);
        assert_eq!(ab.conflicts, 1);
        assert_eq!(ab.records, ba.records, "winner must not depend on order");
    }

    #[test]
    fn status_server_serves_status_and_metrics() {
        let progress = ServiceProgress::new();
        progress.cells_total.store(16, Ordering::Relaxed);
        progress.cells_done.store(5, Ordering::Relaxed);
        let registry = Registry::new();
        registry.counter("recovery.worker_spawns").add(4);
        let server =
            StatusServer::start(0, Arc::clone(&progress), registry).expect("bind ephemeral port");
        let get = |path: &str| -> String {
            let mut s = TcpStream::connect(server.addr()).expect("connect");
            write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("send");
            let mut out = String::new();
            s.read_to_string(&mut out).expect("read");
            out
        };
        let status = get("/status");
        assert!(status.starts_with("HTTP/1.1 200"), "{status}");
        assert!(status.contains("\"cells_done\": 5"), "{status}");
        let metrics = get("/metrics");
        assert!(metrics.contains("recovery_worker_spawns") || metrics.contains("worker_spawns"));
        // The handler folds a live export of the progress counters into
        // every response — mid-run state must be visible even though
        // nothing was exported into the ambient registry yet.
        progress.worker_cells_stolen.store(3, Ordering::Relaxed);
        let live = get("/metrics");
        assert!(
            live.contains("recovery_worker_cells_stolen 3"),
            "mid-run progress missing from /metrics: {live}"
        );
        let missing = get("/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        server.shutdown();
    }
}
