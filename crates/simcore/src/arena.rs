//! Bump arena for event payloads.
//!
//! Server engines used to allocate one `Vec` or `Rc<[T]>` per request
//! for its stage list — millions of short-lived heap allocations per
//! run, all freed together when the run ends. [`EpochArena`] replaces
//! them with a single growing buffer: payloads copy in with a bump
//! append, events carry a [`ArenaSlice`] (a `Copy` index range) instead
//! of an owning pointer, and the whole arena resets in O(1) between
//! runs. A generation tag on every slice catches the classic arena bug
//! — dereferencing a slice after the arena was reset — deterministically
//! in every build, instead of yielding stale data.

/// A `Copy` handle to a contiguous range of items in an [`EpochArena`].
///
/// Slices are only meaningful against the arena and generation that
/// issued them; [`EpochArena::get`] panics on a stale generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaSlice {
    start: u32,
    len: u32,
    generation: u32,
}

impl ArenaSlice {
    /// An empty slice, valid against any arena at generation 0.
    pub const EMPTY: ArenaSlice = ArenaSlice {
        start: 0,
        len: 0,
        generation: 0,
    };

    /// Number of items the slice spans.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the slice spans no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A bump arena holding the payload data of one simulation epoch (one
/// run, one generation). See the module docs for the rationale.
///
/// # Example
/// ```
/// use wcs_simcore::EpochArena;
/// let mut arena: EpochArena<u32> = EpochArena::new();
/// let s = arena.alloc_copy(&[1, 2, 3]);
/// assert_eq!(arena.get(s), &[1, 2, 3]);
/// arena.reset(); // O(1): next generation, storage reused
/// assert!(arena.is_empty());
/// ```
pub struct EpochArena<T> {
    items: Vec<T>,
    generation: u32,
}

impl<T> Default for EpochArena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EpochArena<T> {
    /// An empty arena at generation 0.
    pub fn new() -> Self {
        EpochArena {
            items: Vec::new(),
            generation: 0,
        }
    }

    /// An empty arena pre-sized for `capacity` items.
    pub fn with_capacity(capacity: usize) -> Self {
        EpochArena {
            items: Vec::with_capacity(capacity),
            generation: 0,
        }
    }

    /// Bump-appends everything `iter` yields, returning the handle.
    ///
    /// # Panics
    /// Panics if the arena would exceed `u32::MAX` items — engine runs
    /// are bounded far below that, and a 32-bit handle keeps event
    /// payloads small.
    pub fn alloc_extend(&mut self, iter: impl IntoIterator<Item = T>) -> ArenaSlice {
        let start = self.items.len();
        self.items.extend(iter);
        let len = self.items.len() - start;
        assert!(
            self.items.len() <= u32::MAX as usize,
            "EpochArena overflowed u32 indexing"
        );
        ArenaSlice {
            start: start as u32,
            len: len as u32,
            generation: self.generation,
        }
    }

    /// The items a slice refers to.
    ///
    /// # Panics
    /// Panics when `slice` was issued by a previous generation (the
    /// arena has been [`reset`](Self::reset) since): a stale handle is
    /// always a bug, and failing loudly keeps it deterministic.
    pub fn get(&self, slice: ArenaSlice) -> &[T] {
        assert_eq!(
            slice.generation, self.generation,
            "stale ArenaSlice: arena was reset since this slice was allocated"
        );
        &self.items[slice.start as usize..(slice.start + slice.len) as usize]
    }

    /// Drops every allocation and advances the generation; the backing
    /// storage is retained, so steady-state epochs never reallocate.
    pub fn reset(&mut self) {
        self.items.clear();
        self.generation = self.generation.wrapping_add(1);
    }

    /// Items currently allocated.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is allocated in the current generation.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The current generation (advanced by every [`reset`](Self::reset)).
    pub fn generation(&self) -> u32 {
        self.generation
    }
}

impl<T: Copy> EpochArena<T> {
    /// Bump-copies a slice of `Copy` items, returning the handle. This
    /// is the hot-path entry: a `memcpy` into the bump buffer, no
    /// per-payload allocator round trip.
    pub fn alloc_copy(&mut self, items: &[T]) -> ArenaSlice {
        let start = self.items.len();
        self.items.extend_from_slice(items);
        assert!(
            self.items.len() <= u32::MAX as usize,
            "EpochArena overflowed u32 indexing"
        );
        ArenaSlice {
            start: start as u32,
            len: items.len() as u32,
            generation: self.generation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_get_round_trip() {
        let mut arena = EpochArena::new();
        let a = arena.alloc_copy(&[1u64, 2, 3]);
        let b = arena.alloc_copy(&[9u64]);
        let c = arena.alloc_copy(&[]);
        assert_eq!(arena.get(a), &[1, 2, 3]);
        assert_eq!(arena.get(b), &[9]);
        assert_eq!(arena.get(c), &[] as &[u64]);
        assert_eq!(a.len(), 3);
        assert!(c.is_empty());
        assert_eq!(arena.len(), 4);
    }

    #[test]
    fn alloc_extend_matches_alloc_copy() {
        let mut a = EpochArena::new();
        let mut b = EpochArena::with_capacity(16);
        let sa = a.alloc_extend([5u32, 6, 7]);
        let sb = b.alloc_copy(&[5u32, 6, 7]);
        assert_eq!(a.get(sa), b.get(sb));
    }

    #[test]
    fn reset_keeps_capacity_and_bumps_generation() {
        let mut arena = EpochArena::with_capacity(8);
        let _ = arena.alloc_copy(&[1u8, 2, 3, 4]);
        let g0 = arena.generation();
        arena.reset();
        assert!(arena.is_empty());
        assert_eq!(arena.generation(), g0 + 1);
        let s = arena.alloc_copy(&[7u8]);
        assert_eq!(arena.get(s), &[7]);
    }

    #[test]
    #[should_panic(expected = "stale ArenaSlice")]
    fn stale_slice_panics() {
        let mut arena = EpochArena::new();
        let s = arena.alloc_copy(&[1u8]);
        arena.reset();
        let _ = arena.get(s);
    }

    #[test]
    fn empty_const_is_valid_on_fresh_arena() {
        let arena: EpochArena<u16> = EpochArena::new();
        assert_eq!(arena.get(ArenaSlice::EMPTY), &[] as &[u16]);
    }
}
